//! Integration: XML in, answers out, through every engine.

use treewalk::core::from_core::core_path_to_regular;
use treewalk::core::rpath_to_ntwa;
use treewalk::corexpath::parser::parse_path_expr;
use treewalk::twa::eval::eval_image;
use treewalk::xtree::parse::{parse_xml, parse_xml_with, XmlOptions};
use treewalk::xtree::serialize::{to_sexp, to_xml};
use treewalk::xtree::{Alphabet, NodeSet};

const CATALOG: &str = r#"
<catalog>
  <book>
    <title/><author/><price/>
    <chapter><section/><section/></chapter>
    <chapter><section/></chapter>
  </book>
  <book>
    <title/><author/>
    <chapter><section><figure/></section></chapter>
  </book>
  <journal>
    <title/><article><figure/></article>
  </journal>
</catalog>"#;

#[test]
fn same_answers_from_all_engines() {
    let mut doc = parse_xml(CATALOG).unwrap();
    let queries = [
        "down[book]/down[chapter]/down[section]",
        "down+[figure]",
        "down[book]/down+[section][<down[figure]>]",
        "down+[title]/up",
    ];
    for src in queries {
        let p = parse_path_expr(src, &mut doc.alphabet).unwrap();
        let ctx = NodeSet::singleton(doc.tree.len(), doc.tree.root());
        // engine 1: GKP linear evaluator
        let gkp = treewalk::corexpath::eval_path_image(&doc.tree, &p, &ctx);
        // engine 2: naive relational
        let rel = treewalk::corexpath::eval_path_rel(&doc.tree, &p);
        assert_eq!(rel.image(&ctx), gkp, "{src}: naive");
        // engine 3: Regular XPath product evaluator
        let rp = core_path_to_regular(&p);
        assert_eq!(
            treewalk::regxpath::eval_image(&doc.tree, &rp, &ctx),
            gkp,
            "{src}: regxpath"
        );
        // engine 4: nested tree walking automaton
        let auto = rpath_to_ntwa(&rp);
        assert_eq!(eval_image(&doc.tree, &auto, &ctx), gkp, "{src}: ntwa");
        // engine 5: FO(MTC) model checking
        let f = treewalk::core::rpath_to_formula(&rp, 0, 1, 2);
        let logic_rel = treewalk::fotc::eval::eval_binary(&doc.tree, &f, 0, 1);
        assert_eq!(logic_rel.image(&ctx), gkp, "{src}: fotc");
    }
}

#[test]
fn xml_roundtrip_preserves_query_answers() {
    let mut doc = parse_xml(CATALOG).unwrap();
    let xml = to_xml(&doc.tree, &doc.alphabet);
    let doc2 = parse_xml(&xml).unwrap();
    assert_eq!(doc.tree, doc2.tree);
    let p = parse_path_expr("down+[section]", &mut doc.alphabet).unwrap();
    assert_eq!(
        treewalk::corexpath::query(&doc.tree, &p, doc.tree.root()),
        treewalk::corexpath::query(&doc2.tree, &p, doc2.tree.root()),
    );
}

#[test]
fn attributes_as_children_are_queryable() {
    let mut ab = Alphabet::new();
    let t = parse_xml_with(
        r#"<talk date="15-Dec-2010"><speaker uni="Leicester"/></talk>"#,
        &mut ab,
        XmlOptions {
            attributes_as_children: true,
        },
    )
    .unwrap();
    // query for the attribute node
    let p = parse_path_expr("down+[@uni=Leicester]", &mut ab).unwrap();
    let hits = treewalk::corexpath::query(&t, &p, t.root());
    assert_eq!(hits.count(), 1);
    assert_eq!(
        to_sexp(&t, &ab),
        "(talk @date=15-Dec-2010 (speaker @uni=Leicester))"
    );
}

#[test]
fn the_talk_example_document() {
    // The slide deck's example, queried for its <i> elements.
    let mut doc = parse_xml(
        r#"<talk date="x">
             <speaker uni="L">T</speaker>
             <title><i>XPath</i> rest</title>
             <location><i>ATT</i><b>Leicester</b></location>
           </talk>"#,
    )
    .unwrap();
    let p = parse_path_expr("down/down[i]", &mut doc.alphabet).unwrap();
    let hits = treewalk::corexpath::query(&doc.tree, &p, doc.tree.root());
    let names: Vec<&str> = hits.iter().map(|v| doc.label_name(v)).collect();
    assert_eq!(names, ["i", "i"]);
}

//! Golden-corpus conformance gate: every repro line in
//! `tests/corpus/regressions.jsonl` — minimal counterexamples found (and
//! shrunk) by `twx-fuzz`, plus handcrafted tricky cases — must evaluate
//! identically on every route: the naive oracle, the pipeline-off raw
//! product, cold and plan-cache-hot engines on all three backends, and
//! the sharded query service.
//!
//! When `twx-fuzz` finds a divergence it appends the shrunk repro here
//! (via `--corpus`), so once a bug is caught it is replayed forever.

use std::path::Path;
use twx_conform::corpus;

#[test]
fn golden_corpus_replays_with_zero_divergences() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/regressions.jsonl");
    let repros = corpus::load(&path).expect("golden corpus must parse");
    assert!(
        !repros.is_empty(),
        "golden corpus is empty — was {} deleted?",
        path.display()
    );
    let mut failures = Vec::new();
    for (i, r) in repros.iter().enumerate() {
        match r.replay() {
            Ok(None) => {}
            Ok(Some(d)) => failures.push(format!(
                "line {i} ({note}): routes [{routes}] diverge on `{q}` over {doc}",
                note = r.note,
                routes = d.route_names().join(", "),
                q = r.query,
                doc = r.doc,
            )),
            Err(e) => failures.push(format!(
                "line {i} ({note}): repro no longer replays: {e}",
                note = r.note
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "golden corpus regressions:\n{}",
        failures.join("\n")
    );
}

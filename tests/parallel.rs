//! Determinism gate for frontier-parallel evaluation: the same
//! `(query, document, seed)` triple must produce **bit-identical** answer
//! sets at every thread count, and the [`QueryProfile`] must report the
//! same `total_steps` — parallelism may only change wall-clock, never the
//! answer or the amount of semantic work. A parallelism-1 engine must
//! additionally byte-match the plain sequential VM entry point, proving
//! the parallel plumbing is a true no-op when it is switched off.
//!
//! Documents are generated at ~24k nodes so the push/pull kernels really
//! split the work into multiple chunks (the grains are 128 source nodes /
//! 1024 candidate ids — tiny trees collapse to one chunk and would test
//! nothing).

use treewalk::{Backend, Engine};
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::rng::SplitMix64;
use twx_xtree::{Catalog, Document, NodeId};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const QUERIES: [&str; 6] = [
    "down*",
    "(up | down)*",
    "down*[b]/right*",
    "(down[b] | down/down)*",
    "down*/up*[a]",
    "(left | right)*[c]",
];

fn docs() -> (Catalog, Vec<Document>) {
    let catalog = Catalog::new();
    for name in ["a", "b", "c", "d"] {
        catalog.intern(name);
    }
    let mut rng = SplitMix64::seed_from_u64(0x9A7A11E1);
    let docs = vec![
        random_document_in(Shape::DocumentLike, 24_000, &catalog, &mut rng),
        random_document_in(Shape::Wide, 24_000, &catalog, &mut rng),
    ];
    (catalog, docs)
}

/// Context nodes spread across the preorder id space.
fn contexts(doc: &Document) -> Vec<NodeId> {
    let n = doc.tree.len() as u32;
    vec![
        doc.tree.root(),
        NodeId(n / 3),
        NodeId(2 * n / 3),
        NodeId(n - 1),
    ]
}

#[test]
fn answers_are_bit_identical_across_thread_counts() {
    let (_catalog, docs) = docs();
    for doc in &docs {
        for query in QUERIES {
            for ctx in contexts(doc) {
                let reference = Engine::with_backend(Backend::Vm)
                    .with_parallelism(1)
                    .query(doc, query, ctx)
                    .expect("query evaluates");
                for t in THREADS {
                    let parallel = Engine::with_backend(Backend::Vm)
                        .with_parallelism(t)
                        .query(doc, query, ctx)
                        .expect("query evaluates");
                    assert_eq!(
                        parallel.as_words(),
                        reference.as_words(),
                        "`{query}` ctx {ctx:?}: {t}-thread answer differs bit-for-bit"
                    );
                }
            }
        }
    }
}

#[test]
fn total_steps_is_invariant_under_thread_count() {
    let (_catalog, docs) = docs();
    let doc = &docs[0];
    let ctx = doc.tree.root();
    for query in QUERIES {
        let mut seen: Vec<(usize, u64)> = Vec::new();
        for t in THREADS {
            let engine = Engine::with_backend(Backend::Vm).with_parallelism(t);
            // warm the plan cache so the profiled run is eval-only and
            // comparable across engines
            engine.query(doc, query, ctx).expect("warmup");
            let profile = engine.explain(doc, query, ctx).expect("explain");
            seen.push((t, profile.total_steps()));
        }
        let (_, reference) = seen[0];
        for &(t, steps) in &seen {
            assert_eq!(
                steps, reference,
                "`{query}`: total_steps at {t} threads ({steps}) != at 1 thread ({reference}); \
                 scheduling must not change the semantic work accounting"
            );
        }
    }
}

#[test]
fn parallelism_one_matches_plain_sequential_vm() {
    // `with_parallelism(1)` must take the untouched sequential code path:
    // the answer byte-matches `twx_vm::eval_image` with default options
    // on the engine's own compiled program.
    let (_catalog, docs) = docs();
    let doc = &docs[1];
    for query in QUERIES {
        let engine = Engine::with_backend(Backend::Vm).with_parallelism(1);
        for ctx in contexts(doc) {
            let via_engine = engine.query(doc, query, ctx).expect("engine eval");
            let program = twx_vm::compile_path(
                &twx_regxpath::parser::parse_rpath(query, &mut doc.alphabet.clone())
                    .expect("parse"),
            );
            let ctx_set = twx_xtree::NodeSet::singleton(doc.tree.len(), ctx);
            let direct = twx_vm::eval_image(&doc.tree, &program, &ctx_set);
            assert_eq!(
                via_engine.as_words(),
                direct.as_words(),
                "`{query}` ctx {ctx:?}: parallelism=1 engine diverges from sequential VM"
            );
        }
    }
}

#[test]
fn default_parallelism_comes_from_env_or_one() {
    // The engine default is read from TWX_EVAL_THREADS once per process;
    // whatever it resolved to, it is ≥ 1 and the builder override wins.
    let e = Engine::with_backend(Backend::Vm);
    assert!(e.parallelism() >= 1);
    assert_eq!(e.with_parallelism(3).parallelism(), 3);
    assert_eq!(
        Engine::with_backend(Backend::Vm)
            .with_parallelism(0)
            .parallelism(),
        1,
        "parallelism clamps to at least one thread"
    );
}

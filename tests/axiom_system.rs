//! Integration: the Core XPath axiom system holds in *every* rendition of
//! the queries — not only under the Core XPath evaluator, but after
//! embedding into Regular XPath and compiling to nested tree walking
//! automata. Axioms are the contract of the whole stack.

use treewalk::core::from_core::core_path_to_regular;
use treewalk::core::rpath_to_ntwa;
use treewalk::corexpath::axioms::{all_axioms, AxiomInstance, Instantiation};
use treewalk::corexpath::generate::{random_node_expr, random_path_expr, GenConfig};
use treewalk::xtree::generate::enumerate_trees_up_to;
use twx_xtree::rng::SplitMix64 as StdRng;

fn random_instantiation(rng: &mut StdRng) -> Instantiation {
    let cfg = GenConfig {
        labels: 2,
        ..GenConfig::default()
    };
    Instantiation {
        a: random_path_expr(&cfg, 2, rng),
        b: random_path_expr(&cfg, 2, rng),
        c: random_path_expr(&cfg, 2, rng),
        phi: random_node_expr(&cfg, 2, rng),
        psi: random_node_expr(&cfg, 2, rng),
    }
}

/// Path axioms hold after embedding to Regular XPath and compiling to
/// automata: `[[lhs]] = [[rhs]]` under the NTWA evaluator too.
#[test]
fn axioms_hold_through_the_whole_stack() {
    let trees = enumerate_trees_up_to(4, 2);
    let mut rng = StdRng::seed_from_u64(123);
    for axiom in all_axioms() {
        // a couple of instantiations per schema (the per-crate test does
        // more; here the point is the cross-representation agreement)
        for _ in 0..2 {
            let inst = (axiom.instantiate)(&random_instantiation(&mut rng));
            if let AxiomInstance::Path(l, r) = inst {
                let rl = core_path_to_regular(&l);
                let rr = core_path_to_regular(&r);
                let al = rpath_to_ntwa(&rl);
                let ar = rpath_to_ntwa(&rr);
                for t in &trees {
                    let lhs = treewalk::twa::eval_rel(t, &al);
                    let rhs = treewalk::twa::eval_rel(t, &ar);
                    assert_eq!(
                        lhs, rhs,
                        "axiom {} broken under the NTWA rendition on {t:?}",
                        axiom.name
                    );
                }
            }
        }
    }
}

/// The axiom inventory is well-formed: names unique, statements nonempty.
#[test]
fn axiom_inventory_is_well_formed() {
    let axioms = all_axioms();
    let mut names: Vec<&str> = axioms.iter().map(|a| a.name).collect();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    assert_eq!(names.len(), before, "duplicate axiom names");
    for a in &axioms {
        assert!(!a.statement.is_empty());
    }
}

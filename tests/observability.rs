//! Integration tests for the observability layer (`twx-obs`) as seen
//! through the facade: backend agreement, EXPLAIN profiles, memoisation
//! counters, and the JSON export.
//!
//! The counter assertions are gated on `treewalk::obs::ENABLED` so the
//! suite also passes under `--no-default-features`, where every
//! instrumentation call compiles to a no-op.

use treewalk::obs::{self, Counter};
use treewalk::{Backend, Engine};
use twx_xtree::parse::parse_xml;
use twx_xtree::Document;

const ALL_BACKENDS: [Backend; 4] = [
    Backend::Product,
    Backend::Automaton,
    Backend::Logic,
    Backend::Vm,
];

fn doc() -> Document {
    parse_xml("<a><b><c/><d/></b><c><b><d/></b></c><d/></a>").unwrap()
}

/// Every backend must return the same node set for the same query — the
/// paper's equivalence triangle, exercised through the public engine API.
#[test]
fn backends_return_identical_nodesets() {
    let queries = [
        "down*[c]",
        "(down[b] | right)*",
        "down+[d]/up",
        "down[<?(true)/down[d]>]",
        "(down | right)*[b]/down*",
    ];
    for q in queries {
        let mut answers = Vec::new();
        for backend in ALL_BACKENDS {
            let d = doc();
            let root = d.tree.root();
            let ns = Engine::with_backend(backend)
                .query(&d, q, root)
                .unwrap_or_else(|e| panic!("{q}: {e}"));
            answers.push((backend.name(), ns));
        }
        for (name, ns) in &answers[1..] {
            assert_eq!(
                &answers[0].1, ns,
                "{q}: {} and {name} disagree",
                answers[0].0
            );
        }
    }
}

/// EXPLAIN returns a correct result count and, with obs enabled, non-zero
/// backend-specific work counters plus compiled-artifact sizes.
#[test]
fn explain_profiles_carry_backend_counters() {
    for backend in ALL_BACKENDS {
        let d = doc();
        let root = d.tree.root();
        let profile = Engine::with_backend(backend)
            .explain(&d, "down*[c]", root)
            .unwrap();
        assert_eq!(profile.backend, backend.name());
        assert_eq!(profile.tree_size, d.tree.len());
        assert_eq!(profile.result_count, 2, "{}", backend.name());
        assert_eq!(profile.compiled.query_size, 4);

        if !obs::ENABLED {
            assert!(
                profile.counters.is_zero(),
                "counters must no-op when disabled"
            );
            continue;
        }
        // each backend has a signature counter that any evaluation bumps
        let signature = match backend {
            Backend::Product => Counter::ProductConfigs,
            Backend::Automaton => Counter::TwaSteps,
            Backend::Logic => Counter::FoEvalSteps,
            Backend::Vm => Counter::VmInstructions,
        };
        assert!(
            profile.counters.get(signature) > 0,
            "{}: {} should be non-zero",
            backend.name(),
            signature.name()
        );
        assert_eq!(profile.counters.get(Counter::MemoMisses), 1);
        assert!(profile.eval_nanos > 0);
        assert!(profile.compile_nanos > 0);
        // the compiled size for the active backend must be reported
        let size = match backend {
            Backend::Product => profile.compiled.nfa_states,
            Backend::Automaton => profile.compiled.ntwa_states,
            Backend::Logic => profile.compiled.formula_size,
            Backend::Vm => profile.compiled.vm_instrs,
        };
        assert!(size > 0, "{}: compiled size missing", backend.name());
        assert!(profile.total_steps() > 0);
        // text and JSON renderings both carry the query
        assert!(profile.to_text().contains("down*[c]"));
        assert!(profile.to_json().render().contains("result_count"));
    }
}

/// Compilation happens once, at prepare time, through the plan cache: the
/// first prepare is a cache miss, repeat prepares are hits, and
/// evaluations through a `Prepared` value never compile.
#[test]
fn repeat_preparations_hit_the_plan_cache() {
    if !obs::ENABLED {
        return;
    }
    for backend in ALL_BACKENDS {
        let d = doc();
        let root = d.tree.root();
        let engine = Engine::with_backend(backend);

        let before = obs::snapshot();
        let p = engine.prepare(&d, "down+[b]").unwrap();
        let compile = obs::delta_since(&before);
        assert_eq!(
            compile.get(Counter::PlanCacheMisses),
            1,
            "{}",
            backend.name()
        );
        assert_eq!(compile.get(Counter::MemoMisses), 1, "{}", backend.name());
        assert_eq!(compile.get(Counter::PlanCacheHits), 0, "{}", backend.name());
        assert!(compile.get(Counter::CompileNanos) > 0, "{}", backend.name());
        assert!(
            compile.get(Counter::SimplifyPasses) > 0,
            "{}",
            backend.name()
        );

        // evaluating a prepared plan never re-compiles
        let first = p.explain(&d, root);
        assert_eq!(
            first.counters.get(Counter::CompileNanos),
            0,
            "{}",
            backend.name()
        );
        assert_eq!(
            first.counters.get(Counter::PlanCacheMisses),
            0,
            "{}",
            backend.name()
        );
        let second = p.explain(&d, root);
        assert_eq!(first.result_count, second.result_count);

        // a repeat prepare of the same query is a pure cache hit
        let before = obs::snapshot();
        let p2 = engine.prepare(&d, "down+[b]").unwrap();
        let hit = obs::delta_since(&before);
        assert_eq!(hit.get(Counter::PlanCacheHits), 1, "{}", backend.name());
        assert_eq!(hit.get(Counter::MemoHits), 1, "{}", backend.name());
        assert_eq!(hit.get(Counter::PlanCacheMisses), 0, "{}", backend.name());
        assert_eq!(hit.get(Counter::CompileNanos), 0, "{}", backend.name());
        assert_eq!(p2.eval(&d, root), p.eval(&d, root));

        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1), "{}", backend.name());
    }
}

/// The snapshot/delta protocol isolates concurrent work: counters are
/// thread-local, so a busy sibling thread never leaks into a profile.
#[test]
fn profiles_are_thread_local() {
    if !obs::ENABLED {
        return;
    }
    let noisy = std::thread::spawn(|| {
        for _ in 0..64 {
            let d = doc();
            let root = d.tree.root();
            let _ = Engine::new().query(&d, "(down | right)*", root).unwrap();
        }
    });
    let d = doc();
    let root = d.tree.root();
    let profile = Engine::with_backend(Backend::Product)
        .explain(&d, "down[b]", root)
        .unwrap();
    noisy.join().unwrap();
    // a single `down[b]` on a 9-node tree visits a bounded config set;
    // interference from the sibling thread would blow well past this
    assert!(
        profile.counters.get(Counter::ProductConfigs) < 100,
        "profile contaminated: {} configs",
        profile.counters.get(Counter::ProductConfigs)
    );
}

/// Profile JSON is parseable by the bundled strict parser and carries the
/// full counter map.
#[test]
fn profile_json_round_trips() {
    let d = doc();
    let root = d.tree.root();
    let profile = Engine::new().explain(&d, "down*[c]", root).unwrap();
    let rendered = profile.to_json().render();
    let parsed = obs::json::parse(&rendered).expect("profile JSON parses");
    let obj = match parsed {
        obs::json::Json::Obj(fields) => fields,
        other => panic!("expected object, got {other:?}"),
    };
    let get = |k: &str| {
        obj.iter()
            .find(|(name, _)| name == k)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field {k}"))
    };
    assert_eq!(get("query").render(), "\"down*[c]\"");
    assert_eq!(get("backend").render(), "\"product\"");
    assert_eq!(get("result_count").render(), "2");
    assert!(matches!(get("counters"), obs::json::Json::Obj(_)));
    assert!(matches!(get("compiled"), obs::json::Json::Obj(_)));
}

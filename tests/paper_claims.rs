//! Each test reproduces one claim from the paper (or its survey context),
//! named accordingly — the traceability layer referenced by
//! `EXPERIMENTS.md`.

use treewalk::core::decide::{
    downward_contains, downward_equivalent, node_equiv_bounded, path_equiv_bounded,
};
use treewalk::core::diff::{check_tri, standard_corpus, TriQuery};
use treewalk::corexpath::parser::parse_node_expr;
use treewalk::regxpath::parser::{parse_rnode, parse_rpath};
use treewalk::xtree::Alphabet;

fn ab() -> Alphabet {
    Alphabet::from_names(["a", "b"])
}

/// Claim: Regular XPath(W) ≡ FO(MTC) ≡ nested TWA (the main theorem),
/// validated by differential testing on the standard corpus.
#[test]
fn claim_equivalence_triangle() {
    let corpus = standard_corpus(4, 2, 3, 1);
    let mut alphabet = ab();
    for src in ["(down | right)*[a]", "down*[W(<down+[b]>)]", "?(!a)/up*"] {
        let p = parse_rpath(src, &mut alphabet).unwrap();
        assert!(
            check_tri(&TriQuery::from_xpath(&p), &corpus).is_none(),
            "triangle broken for {src}"
        );
    }
}

/// Claim: `W` adds expressive power *as an operator on intermediate
/// results*: `⟨↑⟩` and `W⟨↑⟩` differ (the latter is unsatisfiable).
#[test]
fn claim_within_changes_semantics() {
    let mut alphabet = ab();
    let plain = parse_rnode("<up>", &mut alphabet).unwrap();
    let within = parse_rnode("W(<up>)", &mut alphabet).unwrap();
    assert!(!node_equiv_bounded(&plain, &within, 3, 1).is_equivalent());
    // W⟨↑⟩ is unsatisfiable: each node is the root of its own subtree
    assert!(treewalk::core::decide::node_sat_bounded(&within, 4, 2).is_none());
}

/// Claim (evaluation): Regular XPath(W) queries are evaluable in
/// polynomial time — concretely, the product evaluator agrees with the
/// semantics and runs on a 100k-node tree in well under a second.
#[test]
fn claim_polynomial_evaluation() {
    use treewalk::xtree::generate::{random_tree, Shape};
    use twx_xtree::rng::SplitMix64 as StdRng;
    let mut alphabet = ab();
    let p = parse_rpath("(down[!a] | right)*[b]", &mut alphabet).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let t = random_tree(Shape::DocumentLike, 100_000, 2, &mut rng);
    let ctx = treewalk::xtree::NodeSet::singleton(t.len(), t.root());
    let t0 = std::time::Instant::now();
    let ans = treewalk::regxpath::eval_image(&t, &p, &ctx);
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "evaluation not polynomial-ish: {:?}",
        t0.elapsed()
    );
    assert!(ans.count() > 0);
}

/// Claim (survey quiz): `↓/↓⁺ ≡ ↓⁺/↓ ≡ ↓⁺/↓⁺` but the filtered variants
/// differ — the equivalences an optimizer must certify.
#[test]
fn claim_quiz_equivalences() {
    let mut alphabet = ab();
    let p1 = parse_rpath("down/down+", &mut alphabet).unwrap();
    let p2 = parse_rpath("down+/down", &mut alphabet).unwrap();
    let p3 = parse_rpath("down+/down+", &mut alphabet).unwrap();
    assert!(path_equiv_bounded(&p1, &p2, 5, 2).is_equivalent());
    assert!(path_equiv_bounded(&p2, &p3, 5, 2).is_equivalent());
    let f1 = parse_rpath("down[a]/down+", &mut alphabet).unwrap();
    let f2 = parse_rpath("down+[a]/down", &mut alphabet).unwrap();
    assert!(!path_equiv_bounded(&f1, &f2, 4, 2).is_equivalent());
}

/// Claim (decidability): containment for the downward fragment is
/// decidable — exercised through the automata-based procedure, including
/// the non-obvious valid containments.
#[test]
fn claim_downward_containment_decidable() {
    let mut alphabet = ab();
    let cases = [
        ("<down[a]>", "<down+[a]>", true),
        ("<down+[a]>", "<down[a]>", false),
        ("<down/down>", "<down+/down+>", true),
        ("<down+/down+>", "<down/down>", true), // both = depth ≥ 2 reachable
        ("a and <down[b]>", "<down>", true),
    ];
    for (f, g, expected) in cases {
        let ff = parse_node_expr(f, &mut alphabet).unwrap();
        let gg = parse_node_expr(g, &mut alphabet).unwrap();
        assert_eq!(
            downward_contains(&ff, &gg, 2).unwrap(),
            expected,
            "{f} ⊨ {g}"
        );
    }
}

/// Claim (unique labelling): with a fixed finite alphabet the label
/// predicates partition the nodes, making `a ≡ ¬b` valid over Σ = {a, b}
/// — the "labels are disjoint" axiom of the survey.
#[test]
fn claim_disjoint_labels() {
    let mut alphabet = ab();
    let a = parse_node_expr("a", &mut alphabet).unwrap();
    let not_b = parse_node_expr("!b", &mut alphabet).unwrap();
    assert!(downward_equivalent(&a, &not_b, 2).unwrap());
    // ... but not over a 3-letter alphabet
    assert!(!downward_equivalent(&a, &not_b, 3).unwrap());
}

/// Claim: Core XPath embeds into Regular XPath (s⁺ = s/s*), preserving
/// semantics — spot-checked here, fuzzed in `twx-core`.
#[test]
fn claim_core_embeds() {
    use treewalk::core::from_core::core_path_to_regular;
    let mut alphabet = ab();
    let core = treewalk::corexpath::parse_path_expr("down+[a]/right", &mut alphabet).unwrap();
    let reg = core_path_to_regular(&core);
    let direct = parse_rpath("down+[a]/right", &mut alphabet).unwrap();
    assert!(path_equiv_bounded(&reg, &direct, 4, 2).is_equivalent());
}

//! Integration: the equivalence triangle across all crates, driven from
//! the textual surface syntax (parser → translations → all evaluators).

use treewalk::core::diff::{check_tri, standard_corpus, TriQuery};
use treewalk::core::{ntwa_to_rpath, rpath_to_ntwa};
use treewalk::regxpath::parser::parse_rpath;
use treewalk::xtree::Alphabet;

/// Handcrafted queries covering every construct of Regular XPath(W).
const QUERIES: &[&str] = &[
    "down",
    "down*",
    "down+/right",
    "(down | up)*",
    "down[a]/right*[b]",
    "?(a)/down/?(!b)",
    "(down/?(<right>))*",
    "down*[W(<down[b]>)]",
    "(down[W(!<down*[a]>)])*",
    "up*[root]/down*[leaf and a]",
    "(left | right)+[<up[b]>]",
];

#[test]
fn triangle_commutes_on_handcrafted_queries() {
    let corpus = standard_corpus(4, 2, 3, 99);
    for src in QUERIES {
        let mut ab = Alphabet::from_names(["a", "b"]);
        let p = parse_rpath(src, &mut ab).unwrap_or_else(|e| panic!("parse {src}: {e}"));
        let q = TriQuery::from_xpath(&p);
        if let Some(m) = check_tri(&q, &corpus) {
            panic!(
                "triangle broken ({}) for {src} on {:?}",
                m.describe(),
                m.tree
            );
        }
    }
}

#[test]
fn double_roundtrip_is_stable() {
    // expr → NTWA → expr → NTWA → expr: still equivalent
    let corpus = standard_corpus(4, 2, 2, 7);
    for src in &QUERIES[..6] {
        let mut ab = Alphabet::from_names(["a", "b"]);
        let p0 = parse_rpath(src, &mut ab).unwrap();
        let p1 = ntwa_to_rpath(&rpath_to_ntwa(&p0));
        let p2 = ntwa_to_rpath(&rpath_to_ntwa(&p1));
        for t in &corpus {
            let r0 = treewalk::regxpath::eval_rel(t, &p0);
            assert_eq!(r0, treewalk::regxpath::eval_rel(t, &p1), "{src} first trip");
            assert_eq!(
                r0,
                treewalk::regxpath::eval_rel(t, &p2),
                "{src} second trip"
            );
        }
    }
}

#[test]
fn printed_queries_reparse_and_stay_equivalent() {
    // The textual pipeline: parse → translate → print → reparse.
    let corpus = standard_corpus(3, 2, 2, 5);
    for src in QUERIES {
        let mut ab = Alphabet::from_names(["a", "b"]);
        let p = parse_rpath(src, &mut ab).unwrap();
        let back = ntwa_to_rpath(&rpath_to_ntwa(&p));
        let printed = treewalk::regxpath::print::rpath_to_string(&back, &ab);
        let reparsed = parse_rpath(&printed, &mut ab)
            .unwrap_or_else(|e| panic!("reparse of '{printed}' failed: {e}"));
        for t in &corpus {
            assert_eq!(
                treewalk::regxpath::eval_rel(t, &p),
                treewalk::regxpath::eval_rel(t, &reparsed),
                "{src} → {printed}"
            );
        }
    }
}

//! Integration tests for the staged compile pipeline: the mandatory
//! simplify stage, the shared plan cache, and the `Send + Sync`
//! prepare-once/serve-many contract of [`Engine`] and [`Prepared`].

use std::sync::Arc;
use treewalk::obs;
use treewalk::{Backend, Engine, EngineError, Prepared};
use twx_core::{rpath_to_formula, rpath_to_ntwa};
use twx_regxpath::eval::Compiled;
use twx_regxpath::generate::{random_rpath, RGenConfig};
use twx_regxpath::print::rpath_to_string;
use twx_regxpath::simplify_rpath;
use twx_xtree::generate::{enumerate_trees_up_to, random_document_in, Shape};
use twx_xtree::parse::{parse_xml, parse_xml_catalog};
use twx_xtree::rng::SplitMix64;
use twx_xtree::{Catalog, Document, NodeSet, Tree};

const ALL_BACKENDS: [Backend; 4] = [
    Backend::Product,
    Backend::Automaton,
    Backend::Logic,
    Backend::Vm,
];

/// Compile-time proof that the engine types cross threads: `Prepared`
/// values are served from many threads, engines are cloned into them.
#[test]
fn engine_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<Prepared>();
    assert_send_sync::<Catalog>();
    assert_send_sync::<treewalk::CacheStats>();
}

fn eval_backend(t: &Tree, p: &twx_regxpath::RPath, backend: Backend, ctx: &NodeSet) -> NodeSet {
    match backend {
        Backend::Product => Compiled::new(p).image(t, ctx),
        Backend::Automaton => twx_twa::eval_image(t, &rpath_to_ntwa(p), ctx),
        Backend::Logic => twx_fotc::eval_binary(t, &rpath_to_formula(p, 0, 1, 2), 0, 1).image(ctx),
        Backend::Vm => twx_vm::eval_image(t, &twx_vm::compile_path(p), ctx),
    }
}

/// The simplify stage is semantics-preserving for every backend: a random
/// path and its simplification compile to plans with identical answers on
/// every tree of a bounded domain (seeded, deterministic).
#[test]
fn simplify_stage_preserves_semantics_on_all_backends() {
    let trees = enumerate_trees_up_to(4, 2);
    let mut rng = SplitMix64::seed_from_u64(2008);
    let cfg = RGenConfig::default();
    for _ in 0..12 {
        let p = random_rpath(&cfg, 3, &mut rng);
        let sp = simplify_rpath(&p);
        for t in &trees {
            let all = NodeSet::full(t.len());
            for backend in ALL_BACKENDS {
                assert_eq!(
                    eval_backend(t, &p, backend, &all),
                    eval_backend(t, &sp, backend, &all),
                    "{}: {p:?} vs simplified {sp:?}",
                    backend.name()
                );
            }
        }
    }
}

/// One `Prepared` value hammered from 8 threads returns identical answers
/// everywhere, and repeat prepares on those threads are all plan-cache
/// hits.
#[test]
fn one_prepared_serves_eight_threads() {
    let catalog = Catalog::new();
    let doc = parse_xml_catalog("<a><b><c/><d/></b><c><b><d/></b></c><d/></a>", &catalog).unwrap();
    let engine = Engine::new();
    let prepared = Arc::new(engine.prepare(&doc, "(down | right)*[b]").unwrap());
    let expected = prepared.eval(&doc, doc.tree.root());

    std::thread::scope(|s| {
        for _ in 0..8 {
            let p = Arc::clone(&prepared);
            let engine = engine.clone();
            let doc = &doc;
            let expected = &expected;
            s.spawn(move || {
                for _ in 0..16 {
                    assert_eq!(p.eval(doc, doc.tree.root()), *expected);
                }
                // the same query re-prepared on this thread is a cache hit
                let again = engine.prepare(doc, "(down | right)*[b]").unwrap();
                assert_eq!(again.eval(doc, doc.tree.root()), *expected);
            });
        }
    });

    let stats = engine.cache_stats();
    assert_eq!(stats.misses, 1, "one cold compile");
    assert_eq!(stats.hits, 8, "every thread re-prepare hit the cache");
    assert_eq!(stats.entries, 1);
}

/// `query_batch` fans one plan across catalog-shared documents and agrees
/// with sequential evaluation.
#[test]
fn query_batch_over_catalog_shared_documents() {
    let catalog = Catalog::from_names(["a", "b", "c"]);
    let mut rng = SplitMix64::seed_from_u64(77);
    let docs: Vec<Document> = (0..16)
        .map(|_| random_document_in(Shape::DocumentLike, 60, &catalog, &mut rng))
        .collect();
    let engine = Engine::new();
    let prepared = engine.prepare_in(&catalog, "down*[b]").unwrap();
    let jobs: Vec<(&Document, _)> = docs.iter().map(|d| (d, d.tree.root())).collect();
    let batch = engine.query_batch(&jobs, "down*[b]").unwrap();
    assert_eq!(batch.len(), docs.len());
    for (i, d) in docs.iter().enumerate() {
        assert_eq!(batch[i], prepared.eval(d, d.tree.root()), "doc {i}");
    }
}

/// Unknown labels surface as a typed error against immutable documents,
/// while `prepare_in` interns them into the shared catalog.
#[test]
fn unknown_labels_are_typed_errors_but_catalogs_intern() {
    let doc = parse_xml("<a><b/></a>").unwrap();
    let engine = Engine::new();
    match engine.prepare(&doc, "down[ghost]") {
        Err(EngineError::UnknownLabel { label }) => assert_eq!(label, "ghost"),
        other => panic!("expected UnknownLabel, got {other:?}"),
    }

    let catalog = Catalog::from_names(["a", "b"]);
    let doc2 = {
        let mut rng = SplitMix64::seed_from_u64(1);
        random_document_in(Shape::Wide, 20, &catalog, &mut rng)
    };
    let p = engine.prepare_in(&catalog, "down[ghost]").unwrap();
    assert!(catalog.lookup("ghost").is_some(), "prepare_in interns");
    // `ghost` labels no node, so the filter selects nothing
    assert_eq!(p.eval(&doc2, doc2.tree.root()).count(), 0);
}

/// The full simplify + unsat-prune stage is **idempotent** — feeding a
/// pipeline's output query back through the pipeline changes nothing —
/// and never grows the AST, across 500 random queries per backend.
#[test]
fn simplify_and_prune_are_idempotent_and_never_grow() {
    let catalog = Catalog::from_names(["p0", "p1"]);
    let mut rng = SplitMix64::seed_from_u64(500);
    let cfg = RGenConfig::default();
    for backend in ALL_BACKENDS {
        let engine = Engine::with_backend(backend);
        for i in 0..500 {
            let p = random_rpath(&cfg, 4, &mut rng);
            // the bare rewriting fixpoint is idempotent on its own…
            let s = simplify_rpath(&p);
            assert_eq!(simplify_rpath(&s), s, "simplify not a fixpoint: {p:?}");
            assert!(s.size() <= p.size(), "simplify grew {p:?} -> {s:?}");

            // …and so is the engine's full staged pipeline (simplify +
            // unsat-prune + re-simplify), observed through `path()`.
            let text = rpath_to_string(&p, &catalog.snapshot());
            let prepared = engine.prepare_in(&catalog, &text).unwrap();
            let once = prepared.path().clone();
            assert!(
                once.size() <= prepared.raw_size(),
                "{} query {i}: pipeline grew {} -> {} ({text})",
                backend.name(),
                prepared.raw_size(),
                once.size()
            );
            let again = engine
                .prepare_in(&catalog, &rpath_to_string(&once, &catalog.snapshot()))
                .unwrap();
            assert_eq!(
                *again.path(),
                once,
                "{} query {i}: pipeline not idempotent for {text}",
                backend.name()
            );
        }
    }
}

/// FIFO eviction under contention: 8 threads push 48 thread-disjoint
/// distinct queries through a capacity-8 cache. Keys never collide across
/// threads, so inserts == misses exactly, and the FIFO invariant
/// `evictions == inserts − capacity` must hold; the scoped join doubles
/// as the no-deadlock check.
#[test]
fn plan_cache_fifo_eviction_under_contention() {
    const CAPACITY: usize = 8;
    const THREADS: usize = 8;
    const PER_THREAD: usize = 6;
    let engine = Engine::with_cache_capacity(Backend::Product, CAPACITY);
    let catalog = Catalog::from_names(["a"]);

    std::thread::scope(|s| {
        for i in 0..THREADS {
            let engine = engine.clone();
            let catalog = &catalog;
            s.spawn(move || {
                for j in 0..PER_THREAD {
                    // a down-chain of thread-unique length: 48 distinct
                    // simplified ASTs, so every lookup is a cold miss
                    let len = i * PER_THREAD + j + 1;
                    let q = vec!["down"; len].join("/");
                    engine.prepare_in(catalog, &q).unwrap();
                }
            });
        }
    });

    let stats = engine.cache_stats();
    assert_eq!(stats.capacity, CAPACITY);
    assert_eq!(stats.entries, CAPACITY, "cache must sit at capacity");
    assert_eq!(stats.hits, 0, "disjoint keys cannot hit");
    assert_eq!(stats.misses, (THREADS * PER_THREAD) as u64);
    assert_eq!(
        stats.evictions,
        stats.misses - CAPACITY as u64,
        "FIFO invariant: evictions == inserts − capacity"
    );

    // determinism coda: one more distinct query misses and evicts, its
    // immediate re-prepare hits
    let q = vec!["down"; THREADS * PER_THREAD + 1].join("/");
    engine.prepare_in(&catalog, &q).unwrap();
    engine.prepare_in(&catalog, &q).unwrap();
    let after = engine.cache_stats();
    assert_eq!(after.hits, 1);
    assert_eq!(after.misses, stats.misses + 1);
    assert_eq!(after.evictions, stats.evictions + 1);
    assert_eq!(after.entries, CAPACITY);
}

/// The mandatory simplify stage is visible in EXPLAIN profiles: passes are
/// counted and shrinkage is reported for a query with redundancy.
#[test]
fn explain_shows_simplify_and_cache_counters() {
    if !obs::ENABLED {
        return;
    }
    let doc = parse_xml("<a><b/><b/></a>").unwrap();
    let engine = Engine::new();
    let profile = engine
        .explain(&doc, "(down | down)[b]", doc.tree.root())
        .unwrap();
    assert_eq!(profile.result_count, 2);
    assert!(profile.counters.get(obs::Counter::SimplifyPasses) > 0);
    assert!(profile.counters.get(obs::Counter::SimplifyShrunkNodes) > 0);
    assert_eq!(profile.counters.get(obs::Counter::PlanCacheMisses), 1);
    // `down|down` collapses to `down`: the cached plan is keyed on the
    // simplified AST, so the plainly-written query now hits
    let second = engine.explain(&doc, "down[b]", doc.tree.root()).unwrap();
    assert_eq!(second.counters.get(obs::Counter::PlanCacheHits), 1);
    assert_eq!(second.counters.get(obs::Counter::PlanCacheMisses), 0);
}

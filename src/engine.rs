//! A document-level query engine over the three equivalent back ends.
//!
//! [`Engine`] parses Regular XPath(W) queries and evaluates them through a
//! selectable [`Backend`] — the NFA-product evaluator, the nested tree
//! walking automaton, or the FO(MTC) model checker. Because the paper's
//! translations are exact, all back ends return identical answers; the
//! engine exists so downstream code can pick the cost profile it wants
//! (and so the equivalence is a one-liner to demonstrate).

use std::fmt;
use std::sync::OnceLock;
use twx_core::{rpath_to_formula, rpath_to_ntwa};
use twx_fotc::ast::Formula;
use twx_obs::{self as obs, CompiledSizes, Counter, QueryProfile};
use twx_regxpath::eval::Compiled;
use twx_regxpath::parser::parse_rpath;
use twx_regxpath::RPath;
use twx_twa::machine::Ntwa;
use twx_xtree::{Document, NodeId, NodeSet};

/// Which evaluation pipeline to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Backend {
    /// The NFA × tree product evaluator (`twx-regxpath`) — the fast path.
    #[default]
    Product,
    /// Compile to a nested tree walking automaton and run it (`twx-twa`).
    Automaton,
    /// Translate to FO(MTC) and model-check (`twx-fotc`) — the slow,
    /// declarative reference.
    Logic,
}

impl Backend {
    /// The stable lowercase name used in profiles and JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Product => "product",
            Backend::Automaton => "automaton",
            Backend::Logic => "logic",
        }
    }
}

/// An error from [`Engine::query`].
#[derive(Debug)]
pub enum EngineError {
    /// The query text did not parse.
    Syntax(twx_regxpath::parser::SyntaxError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Syntax(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A compiled query, reusable across context nodes and documents sharing
/// the alphabet.
///
/// The backend artifact (product NFA, nested automaton, or FO(MTC)
/// formula) is compiled once on first use and memoised for the lifetime
/// of the `Prepared` value; repeat evaluations register as
/// `memo_hits` in [`explain`](Prepared::explain) profiles.
pub struct Prepared {
    text: String,
    path: RPath,
    backend: Backend,
    product: OnceLock<Compiled>,
    automaton: OnceLock<Ntwa>,
    formula: OnceLock<Formula>,
}

/// Nested sub-automata at every nesting level.
fn ntwa_subtests(a: &Ntwa) -> usize {
    a.subs.len() + a.subs.iter().map(ntwa_subtests).sum::<usize>()
}

impl Prepared {
    fn product(&self) -> &Compiled {
        if let Some(c) = self.product.get() {
            obs::incr(Counter::MemoHits);
            return c;
        }
        obs::incr(Counter::MemoMisses);
        let _t = obs::span(Counter::CompileNanos);
        self.product.get_or_init(|| Compiled::new(&self.path))
    }

    fn automaton(&self) -> &Ntwa {
        if let Some(a) = self.automaton.get() {
            obs::incr(Counter::MemoHits);
            return a;
        }
        obs::incr(Counter::MemoMisses);
        let _t = obs::span(Counter::CompileNanos);
        self.automaton.get_or_init(|| rpath_to_ntwa(&self.path))
    }

    fn formula(&self) -> &Formula {
        if let Some(f) = self.formula.get() {
            obs::incr(Counter::MemoHits);
            return f;
        }
        obs::incr(Counter::MemoMisses);
        let _t = obs::span(Counter::CompileNanos);
        self.formula
            .get_or_init(|| rpath_to_formula(&self.path, 0, 1, 2))
    }

    /// Evaluates from a single context node.
    pub fn eval(&self, doc: &Document, ctx: NodeId) -> NodeSet {
        let t = &doc.tree;
        let ctx_set = NodeSet::singleton(t.len(), ctx);
        match self.backend {
            Backend::Product => {
                let c = self.product();
                let _t = obs::span(Counter::EvalNanos);
                c.image(t, &ctx_set)
            }
            Backend::Automaton => {
                let a = self.automaton();
                let _t = obs::span(Counter::EvalNanos);
                twx_twa::eval_image(t, a, &ctx_set)
            }
            Backend::Logic => {
                let f = self.formula();
                let _t = obs::span(Counter::EvalNanos);
                twx_fotc::eval_binary(t, f, 0, 1).image(&ctx_set)
            }
        }
    }

    /// Evaluates from `ctx` and returns the full cost profile of doing so
    /// (the EXPLAIN view), including the answer size, compiled-artifact
    /// sizes, and every counter the backend incremented.
    ///
    /// Counters are thread-local; the profile reflects only this
    /// evaluation. With the `obs` feature disabled the structural
    /// counters are all zero but artifact sizes are still reported.
    pub fn explain(&self, doc: &Document, ctx: NodeId) -> QueryProfile {
        let before = obs::snapshot();
        let result = self.eval(doc, ctx);
        let counters = obs::delta_since(&before);
        let mut compiled = CompiledSizes {
            query_size: self.path.size(),
            ..CompiledSizes::default()
        };
        match self.backend {
            Backend::Product => {
                compiled.nfa_states = self.product.get().map_or(0, |c| c.n_states() as usize)
            }
            Backend::Automaton => {
                if let Some(a) = self.automaton.get() {
                    compiled.ntwa_states = a.total_states();
                    compiled.ntwa_subtests = ntwa_subtests(a);
                }
            }
            Backend::Logic => compiled.formula_size = self.formula.get().map_or(0, Formula::size),
        }
        QueryProfile {
            query: self.text.clone(),
            backend: self.backend.name().to_string(),
            tree_size: doc.tree.len(),
            result_count: result.count(),
            eval_nanos: counters.get(Counter::EvalNanos),
            compile_nanos: counters.get(Counter::CompileNanos),
            compiled,
            counters,
        }
    }

    /// The parsed query.
    pub fn path(&self) -> &RPath {
        &self.path
    }

    /// The original query text.
    pub fn text(&self) -> &str {
        &self.text
    }
}

/// The query engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct Engine {
    backend: Backend,
}

impl Engine {
    /// An engine with the default (product) back end.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Selects a back end.
    pub fn with_backend(backend: Backend) -> Engine {
        Engine { backend }
    }

    /// Parses a query against the document's alphabet.
    pub fn prepare(&self, doc: &mut Document, query: &str) -> Result<Prepared, EngineError> {
        let path = parse_rpath(query, &mut doc.alphabet).map_err(EngineError::Syntax)?;
        Ok(Prepared {
            text: query.to_string(),
            path,
            backend: self.backend,
            product: OnceLock::new(),
            automaton: OnceLock::new(),
            formula: OnceLock::new(),
        })
    }

    /// Parses and evaluates in one step from `ctx`.
    pub fn query(
        &self,
        doc: &mut Document,
        query: &str,
        ctx: NodeId,
    ) -> Result<NodeSet, EngineError> {
        let prepared = self.prepare(doc, query)?;
        Ok(prepared.eval(doc, ctx))
    }

    /// Parses, evaluates, and profiles a query in one step: the EXPLAIN
    /// entry point.
    ///
    /// ```
    /// use treewalk::{Backend, Engine};
    /// use twx_xtree::parse::parse_xml;
    ///
    /// let mut doc = parse_xml("<a><b><c/></b><c/></a>").unwrap();
    /// let root = doc.tree.root();
    /// let profile = Engine::with_backend(Backend::Product)
    ///     .explain(&mut doc, "down*[c]", root)
    ///     .unwrap();
    /// assert_eq!(profile.result_count, 2);
    /// println!("{profile}"); // the text EXPLAIN view
    /// ```
    pub fn explain(
        &self,
        doc: &mut Document,
        query: &str,
        ctx: NodeId,
    ) -> Result<QueryProfile, EngineError> {
        let prepared = self.prepare(doc, query)?;
        Ok(prepared.explain(doc, ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::parse::parse_xml;

    fn doc() -> Document {
        parse_xml("<a><b><c/></b><c><b/></c></a>").unwrap()
    }

    #[test]
    fn backends_agree() {
        let queries = ["down*[c]", "(down[b] | right)*", "down[<?(true)/down>]"];
        for q in queries {
            let mut answers = Vec::new();
            for backend in [Backend::Product, Backend::Automaton, Backend::Logic] {
                let mut d = doc();
                let engine = Engine::with_backend(backend);
                let root = d.tree.root();
                answers.push(engine.query(&mut d, q, root).unwrap());
            }
            assert_eq!(answers[0], answers[1], "{q}: product vs automaton");
            assert_eq!(answers[0], answers[2], "{q}: product vs logic");
        }
    }

    #[test]
    fn prepared_queries_are_reusable() {
        let mut d = doc();
        let engine = Engine::new();
        let p = engine.prepare(&mut d, "down+[b]").unwrap();
        let from_root = p.eval(&d, d.tree.root());
        assert_eq!(from_root.count(), 2);
        let from_c = p.eval(&d, twx_xtree::NodeId(3));
        assert_eq!(from_c.count(), 1);
        assert_eq!(p.path().size(), 6); // (down/down*)[b] after plus-desugaring
    }

    #[test]
    fn syntax_errors_surface() {
        let mut d = doc();
        let root = d.tree.root();
        let e = Engine::new().query(&mut d, "down[[", root);
        assert!(matches!(e, Err(EngineError::Syntax(_))));
        assert!(e.unwrap_err().to_string().contains("syntax error"));
    }
}

//! A document-level query engine over the three equivalent back ends.
//!
//! [`Engine`] parses Regular XPath(W) queries and evaluates them through a
//! selectable [`Backend`] — the NFA-product evaluator, the nested tree
//! walking automaton, or the FO(MTC) model checker. Because the paper's
//! translations are exact, all back ends return identical answers; the
//! engine exists so downstream code can pick the cost profile it wants
//! (and so the equivalence is a one-liner to demonstrate).

use std::fmt;
use twx_core::{rpath_to_formula, rpath_to_ntwa};
use twx_regxpath::parser::parse_rpath;
use twx_regxpath::RPath;
use twx_xtree::{Document, NodeId, NodeSet};

/// Which evaluation pipeline to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Backend {
    /// The NFA × tree product evaluator (`twx-regxpath`) — the fast path.
    #[default]
    Product,
    /// Compile to a nested tree walking automaton and run it (`twx-twa`).
    Automaton,
    /// Translate to FO(MTC) and model-check (`twx-fotc`) — the slow,
    /// declarative reference.
    Logic,
}

/// An error from [`Engine::query`].
#[derive(Debug)]
pub enum EngineError {
    /// The query text did not parse.
    Syntax(twx_regxpath::parser::SyntaxError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Syntax(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A compiled query, reusable across context nodes and documents sharing
/// the alphabet.
pub struct Prepared {
    path: RPath,
    backend: Backend,
}

impl Prepared {
    /// Evaluates from a single context node.
    pub fn eval(&self, doc: &Document, ctx: NodeId) -> NodeSet {
        let t = &doc.tree;
        let ctx_set = NodeSet::singleton(t.len(), ctx);
        match self.backend {
            Backend::Product => twx_regxpath::eval_image(t, &self.path, &ctx_set),
            Backend::Automaton => {
                let auto = rpath_to_ntwa(&self.path);
                twx_twa::eval_image(t, &auto, &ctx_set)
            }
            Backend::Logic => {
                let f = rpath_to_formula(&self.path, 0, 1, 2);
                twx_fotc::eval_binary(t, &f, 0, 1).image(&ctx_set)
            }
        }
    }

    /// The parsed query.
    pub fn path(&self) -> &RPath {
        &self.path
    }
}

/// The query engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct Engine {
    backend: Backend,
}

impl Engine {
    /// An engine with the default (product) back end.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Selects a back end.
    pub fn with_backend(backend: Backend) -> Engine {
        Engine { backend }
    }

    /// Parses a query against the document's alphabet.
    pub fn prepare(&self, doc: &mut Document, query: &str) -> Result<Prepared, EngineError> {
        let path = parse_rpath(query, &mut doc.alphabet).map_err(EngineError::Syntax)?;
        Ok(Prepared {
            path,
            backend: self.backend,
        })
    }

    /// Parses and evaluates in one step from `ctx`.
    pub fn query(
        &self,
        doc: &mut Document,
        query: &str,
        ctx: NodeId,
    ) -> Result<NodeSet, EngineError> {
        let prepared = self.prepare(doc, query)?;
        Ok(prepared.eval(doc, ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::parse::parse_xml;

    fn doc() -> Document {
        parse_xml("<a><b><c/></b><c><b/></c></a>").unwrap()
    }

    #[test]
    fn backends_agree() {
        let queries = ["down*[c]", "(down[b] | right)*", "down[<?(true)/down>]"];
        for q in queries {
            let mut answers = Vec::new();
            for backend in [Backend::Product, Backend::Automaton, Backend::Logic] {
                let mut d = doc();
                let engine = Engine::with_backend(backend);
                let root = d.tree.root();
                answers.push(engine.query(&mut d, q, root).unwrap());
            }
            assert_eq!(answers[0], answers[1], "{q}: product vs automaton");
            assert_eq!(answers[0], answers[2], "{q}: product vs logic");
        }
    }

    #[test]
    fn prepared_queries_are_reusable() {
        let mut d = doc();
        let engine = Engine::new();
        let p = engine.prepare(&mut d, "down+[b]").unwrap();
        let from_root = p.eval(&d, d.tree.root());
        assert_eq!(from_root.count(), 2);
        let from_c = p.eval(&d, twx_xtree::NodeId(3));
        assert_eq!(from_c.count(), 1);
        assert_eq!(p.path().size(), 6); // (down/down*)[b] after plus-desugaring
    }

    #[test]
    fn syntax_errors_surface() {
        let mut d = doc();
        let root = d.tree.root();
        let e = Engine::new().query(&mut d, "down[[", root);
        assert!(matches!(e, Err(EngineError::Syntax(_))));
        assert!(e.unwrap_err().to_string().contains("syntax error"));
    }
}

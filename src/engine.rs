//! A document-level query engine over the three equivalent back ends.
//!
//! [`Engine`] compiles Regular XPath(W) queries through a staged pipeline
//! — parse → simplify → plan-cache lookup → backend compile — and
//! evaluates them through a selectable [`Backend`]: the NFA-product
//! evaluator, the nested tree walking automaton, or the FO(MTC) model
//! checker. Because the paper's translations are exact, all back ends
//! return identical answers; the engine exists so downstream code can pick
//! the cost profile it wants (and so the equivalence is a one-liner to
//! demonstrate).
//!
//! Compilation is decoupled from documents: queries resolve against a
//! document's alphabet (or a shared, append-only
//! [`Catalog`]) without mutating it, compiled plans
//! live in a concurrent plan cache shared by every clone of the engine,
//! and [`Engine`]/[`Prepared`] are `Send + Sync`, so one prepared query
//! can serve many threads and many documents over the same label space.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use twx_core::{rpath_to_formula, rpath_to_ntwa};
use twx_fotc::ast::Formula;
use twx_obs::{self as obs, AtomicHistogram, CompiledSizes, Counter, QueryProfile, SpanTree};
use twx_regxpath::eval::Compiled;
use twx_regxpath::parser::{parse_rpath_catalog, parse_rpath_resolved, ResolveError};
use twx_regxpath::{simplify_rpath, RPath};
use twx_twa::machine::Ntwa;
use twx_xtree::edit::{DocVersion, Span};
use twx_xtree::{Catalog, Document, NodeId, NodeSet};

/// Which evaluation pipeline to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The NFA × tree product evaluator (`twx-regxpath`) — the fast path.
    #[default]
    Product,
    /// Compile to a nested tree walking automaton and run it (`twx-twa`).
    Automaton,
    /// Translate to FO(MTC) and model-check (`twx-fotc`) — the slow,
    /// declarative reference.
    Logic,
    /// Compile to register bytecode over dense bitsets and interpret it
    /// with arena-recycled registers (`twx-vm`) — the serving hot path.
    Vm,
}

impl Backend {
    /// The stable lowercase name used in profiles and JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Product => "product",
            Backend::Automaton => "automaton",
            Backend::Logic => "logic",
            Backend::Vm => "vm",
        }
    }
}

/// The process-wide eval-latency histogram for a backend, registered in
/// the global [`obs::metrics`] registry as
/// `twx_engine_eval_ns{backend="…"}`. One shared series per backend:
/// every [`Prepared`] for that backend records into the same handle, so
/// the `metrics` exposition shows the full eval-latency distribution
/// per pipeline.
fn eval_histogram(backend: Backend) -> Arc<AtomicHistogram> {
    static HANDLES: OnceLock<[Arc<AtomicHistogram>; 4]> = OnceLock::new();
    let handles = HANDLES.get_or_init(|| {
        [
            Backend::Product,
            Backend::Automaton,
            Backend::Logic,
            Backend::Vm,
        ]
        .map(|b| obs::metrics::global().histogram("twx_engine_eval_ns", &[("backend", b.name())]))
    });
    let i = match backend {
        Backend::Product => 0,
        Backend::Automaton => 1,
        Backend::Logic => 2,
        Backend::Vm => 3,
    };
    Arc::clone(&handles[i])
}

/// An error from [`Engine::query`].
#[derive(Debug)]
pub enum EngineError {
    /// The query text did not parse.
    Syntax(twx_regxpath::parser::SyntaxError),
    /// The query mentions a label that is not in the document's alphabet
    /// (or shared catalog). Compilation never mutates the label space, so
    /// unknown labels surface as typed errors instead of silent interns.
    UnknownLabel {
        /// The label name as written in the query.
        label: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Syntax(e) => write!(f, "{e}"),
            EngineError::UnknownLabel { label } => {
                write!(
                    f,
                    "unknown label '{label}': not in the document's label space"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ResolveError> for EngineError {
    fn from(e: ResolveError) -> EngineError {
        match e {
            ResolveError::Syntax(e) => EngineError::Syntax(e),
            ResolveError::UnknownLabel { label, .. } => EngineError::UnknownLabel { label },
        }
    }
}

/// A compiled backend artifact: exactly one of the three equivalent forms,
/// matching the backend the plan was compiled for.
#[derive(Debug)]
enum Plan {
    Product(Compiled),
    Automaton(Ntwa),
    Logic(Formula),
    Vm(twx_vm::Program),
}

impl Plan {
    fn compile(path: &RPath, backend: Backend) -> Plan {
        match backend {
            Backend::Product => Plan::Product(Compiled::new(path)),
            Backend::Automaton => Plan::Automaton(rpath_to_ntwa(path)),
            Backend::Logic => Plan::Logic(rpath_to_formula(path, 0, 1, 2)),
            Backend::Vm => Plan::Vm(twx_vm::compile_path(path)),
        }
    }
}

/// Point-in-time statistics of an engine's plan cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries displaced by the FIFO capacity bound.
    pub evictions: u64,
    /// Plans currently resident.
    pub entries: usize,
    /// Maximum resident plans before eviction.
    pub capacity: usize,
}

/// Nested sub-automata at every nesting level.
fn ntwa_subtests(a: &Ntwa) -> usize {
    a.subs.len() + a.subs.iter().map(ntwa_subtests).sum::<usize>()
}

/// Default number of resident plans before FIFO eviction.
const DEFAULT_CACHE_CAPACITY: usize = 256;

/// A concurrent, bounded plan cache.
///
/// Keyed by the **simplified query AST** plus the backend. Labels inside
/// the AST are numeric ids, so a cached plan is exact for any document
/// whose alphabet assigns those ids the same way — i.e. documents sharing
/// a [`Catalog`]. Artifacts are `Arc`-shared: an eviction never
/// invalidates a live [`Prepared`].
///
/// Global hit/miss/eviction totals are kept in atomics (visible via
/// [`Engine::cache_stats`]); the same events also tick the thread-local
/// `plan_cache_*` observability counters so they appear in per-query
/// EXPLAIN profiles.
#[derive(Debug)]
struct PlanCache {
    inner: RwLock<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

#[derive(Debug)]
struct CacheInner {
    map: HashMap<(RPath, Backend), Arc<Plan>>,
    order: VecDeque<(RPath, Backend)>,
    capacity: usize,
}

impl PlanCache {
    fn new(capacity: usize) -> PlanCache {
        PlanCache {
            inner: RwLock::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the cached plan for `(path, backend)`, compiling and
    /// inserting it on a miss.
    fn get_or_compile(&self, path: &RPath, backend: Backend) -> Arc<Plan> {
        {
            let inner = self.inner.read().expect("plan cache poisoned");
            if let Some(plan) = inner.map.get(&(path.clone(), backend)) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::incr(Counter::PlanCacheHits);
                obs::incr(Counter::MemoHits);
                return Arc::clone(plan);
            }
        }
        // Compile outside any lock: concurrent misses on the same key may
        // compile twice, but the translations are pure, so the duplicates
        // are identical and the first insert wins.
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::incr(Counter::PlanCacheMisses);
        obs::incr(Counter::MemoMisses);
        let plan = {
            let _t = obs::span(Counter::CompileNanos);
            Arc::new(Plan::compile(path, backend))
        };
        let key = (path.clone(), backend);
        let mut inner = self.inner.write().expect("plan cache poisoned");
        if let Some(existing) = inner.map.get(&key) {
            return Arc::clone(existing);
        }
        inner.map.insert(key.clone(), Arc::clone(&plan));
        inner.order.push_back(key);
        while inner.map.len() > inner.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.map.remove(&old);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                obs::incr(Counter::PlanCacheEvictions);
            } else {
                break;
            }
        }
        plan
    }

    fn stats(&self) -> CacheStats {
        let inner = self.inner.read().expect("plan cache poisoned");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            capacity: inner.capacity,
        }
    }
}

/// Default number of resident answers before the result cache evicts.
const DEFAULT_RESULT_CACHE_CAPACITY: usize = 1024;

/// Point-in-time statistics of a [`ResultCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups answered from a cached node set.
    pub hits: u64,
    /// Lookups that found nothing (or a stale version).
    pub misses: u64,
    /// Answers inserted after an evaluation.
    pub insertions: u64,
    /// Entries kept across an edit (touched span disjoint from the
    /// edit's affected span).
    pub carried: u64,
    /// Entries dropped by an edit (spans overlapped).
    pub invalidated: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Answers currently resident (across all documents).
    pub entries: usize,
    /// Maximum resident answers before eviction.
    pub capacity: usize,
}

/// One cached answer: the node set, the preorder span the query actually
/// depends on, and an insertion tick for capacity eviction.
#[derive(Debug)]
struct CachedAnswer {
    touched: Span,
    result: Arc<NodeSet>,
    tick: u64,
}

/// Per-document slice of the result cache. All resident answers for a
/// document are for **one** version — its latest seen — so the version
/// lives here rather than in every key.
#[derive(Debug, Default)]
struct DocResults {
    version: DocVersion,
    answers: HashMap<u64, CachedAnswer>,
}

#[derive(Debug)]
struct ResultInner {
    docs: HashMap<u64, DocResults>,
    len: usize,
    tick: u64,
    capacity: usize,
}

/// A concurrent, bounded cache of **evaluated answers**, keyed by
/// `(plan-and-context fingerprint, document id, DocVersion)`.
///
/// The cache is the read-side half of the live-corpus story: queries on
/// unchanged documents are answered without touching the tree, and edits
/// invalidate **precisely** — [`ResultCache::invalidate`] is told the
/// edit's affected span (from [`twx_xtree::edit::apply_edit`]) and keeps
/// every entry whose touched span ends before it. Subtree-local queries
/// (see [`RPath::is_downward`]) record a touched span of just their
/// context subtree, so edits elsewhere in the document carry them across
/// versions; everything else records the whole document and drops on any
/// edit.
///
/// Capacity eviction removes the globally oldest entry (smallest
/// insertion tick). Totals are kept in atomics and mirrored to the
/// thread-local `result_cache_*` observability counters.
#[derive(Debug)]
pub struct ResultCache {
    inner: RwLock<ResultInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    carried: AtomicU64,
    invalidated: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> ResultCache {
        ResultCache::new(DEFAULT_RESULT_CACHE_CAPACITY)
    }
}

impl ResultCache {
    /// A cache bounded to `capacity` resident answers (min 1).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: RwLock::new(ResultInner {
                docs: HashMap::new(),
                len: 0,
                tick: 0,
                capacity: capacity.max(1),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            carried: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a cached answer. A hit requires the document slice to be
    /// at exactly `version` — answers cached against other versions never
    /// leak across.
    pub fn get(&self, fingerprint: u64, doc: u64, version: DocVersion) -> Option<Arc<NodeSet>> {
        let inner = self.inner.read().expect("result cache poisoned");
        let hit = inner
            .docs
            .get(&doc)
            .filter(|d| d.version == version)
            .and_then(|d| d.answers.get(&fingerprint))
            .map(|a| Arc::clone(&a.result));
        drop(inner);
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::incr(Counter::ResultCacheHits);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            obs::incr(Counter::ResultCacheMisses);
        }
        hit
    }

    /// Inserts an evaluated answer with the span it depends on. An
    /// answer computed against an **older** version than the cache has
    /// seen for the document (a reader on a pinned snapshot racing a
    /// writer) is silently dropped; a **newer** version resets the
    /// document's slice first.
    pub fn insert(
        &self,
        fingerprint: u64,
        doc: u64,
        version: DocVersion,
        touched: Span,
        result: Arc<NodeSet>,
    ) {
        let mut inner = self.inner.write().expect("result cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let (dropped, fresh) = {
            let slice = inner.docs.entry(doc).or_default();
            if slice.version > version {
                return; // stale snapshot's answer; don't pollute
            }
            let dropped = if slice.version != version {
                let d = slice.answers.len();
                slice.answers.clear();
                slice.version = version;
                d
            } else {
                0
            };
            let fresh = slice
                .answers
                .insert(
                    fingerprint,
                    CachedAnswer {
                        touched,
                        result,
                        tick,
                    },
                )
                .is_none();
            (dropped, fresh)
        };
        inner.len -= dropped;
        inner.len += usize::from(fresh);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        obs::incr(Counter::ResultCacheInsertions);
        while inner.len > inner.capacity {
            // Evict the globally oldest entry. O(n) scan: invalidation
            // re-homes surviving entries under new versions, which would
            // orphan any FIFO queue of keys, and n is small.
            let victim = inner
                .docs
                .iter()
                .flat_map(|(d, s)| s.answers.iter().map(move |(f, a)| (a.tick, *d, *f)))
                .min()
                .map(|(_, d, f)| (d, f));
            let Some((d, f)) = victim else { break };
            if let Some(slice) = inner.docs.get_mut(&d) {
                slice.answers.remove(&f);
            }
            inner.len -= 1;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            obs::incr(Counter::ResultCacheEvictions);
        }
    }

    /// Applies an edit to the cache: document `doc` moved to
    /// `new_version` with `affected` as the edit's span (in the pre-edit
    /// numbering). Entries whose touched span ends at or before
    /// `affected.start` are **carried** to the new version — nodes
    /// strictly before the edit point keep their preorder ids and their
    /// subtrees are untouched, so the cached answers remain exact.
    /// Overlapping entries are dropped. Returns `(carried, invalidated)`.
    pub fn invalidate(&self, doc: u64, affected: Span, new_version: DocVersion) -> (u64, u64) {
        let mut inner = self.inner.write().expect("result cache poisoned");
        let (carried, invalidated) = {
            let Some(slice) = inner.docs.get_mut(&doc) else {
                return (0, 0);
            };
            let before = slice.answers.len();
            if slice.version.bump() == new_version {
                slice.answers.retain(|_, a| a.touched.end <= affected.start);
            } else {
                // Not the edit immediately following the cached version
                // (e.g. racing writers delivered invalidations out of
                // order): carrying anything would skip an edit's span
                // check, so drop the whole slice.
                slice.answers.clear();
            }
            let kept = slice.answers.len();
            slice.version = new_version;
            (kept as u64, (before - kept) as u64)
        };
        inner.len -= invalidated as usize;
        self.carried.fetch_add(carried, Ordering::Relaxed);
        self.invalidated.fetch_add(invalidated, Ordering::Relaxed);
        obs::add(Counter::ResultCacheCarried, carried);
        obs::add(Counter::ResultCacheInvalidated, invalidated);
        (carried, invalidated)
    }

    /// **Deliberately unsound** fault-injection hook: moves a document
    /// slice to `new_version` while keeping every entry, skipping the
    /// span check entirely. Exists so the mutation fuzzer's
    /// `--fault cache=skip-invalidate` self-test can prove the harness
    /// detects a broken invalidation path; never call it otherwise.
    pub fn skip_invalidate(&self, doc: u64, new_version: DocVersion) {
        let mut inner = self.inner.write().expect("result cache poisoned");
        if let Some(slice) = inner.docs.get_mut(&doc) {
            slice.version = new_version;
        }
    }

    /// Drops every cached answer for `doc` (e.g. on document removal).
    pub fn purge_doc(&self, doc: u64) {
        let mut inner = self.inner.write().expect("result cache poisoned");
        if let Some(slice) = inner.docs.remove(&doc) {
            inner.len -= slice.answers.len();
        }
    }

    /// Point-in-time totals.
    pub fn stats(&self) -> ResultCacheStats {
        let inner = self.inner.read().expect("result cache poisoned");
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            carried: self.carried.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.len,
            capacity: inner.capacity,
        }
    }
}

/// A compiled query: the product of the full pipeline (parse → simplify →
/// cached backend compile), reusable across context nodes, threads, and
/// every document sharing the label space it was compiled against.
///
/// `Prepared` is `Send + Sync` and holds its artifact behind an [`Arc`],
/// so it stays valid even after the plan is evicted from the engine's
/// cache.
#[derive(Debug)]
pub struct Prepared {
    text: String,
    raw_size: usize,
    path: RPath,
    backend: Backend,
    plan: Arc<Plan>,
    /// The shared per-backend eval-latency series (resolved once at
    /// prepare time so the eval hot path never touches the registry).
    eval_hist: Arc<AtomicHistogram>,
    /// Worker-thread bound inherited from the engine's `parallelism`
    /// knob; only the VM backend consults it (the other plans are
    /// sequential artifacts).
    threads: usize,
}

impl Prepared {
    /// Evaluates from a single context node.
    ///
    /// One elapsed-time measurement feeds three sinks: the thread-local
    /// `eval_nanos` counter (per-query profiles), the process-wide
    /// per-backend latency histogram (the `metrics` exposition), and —
    /// when a trace is being collected on this thread — an `eval` span.
    pub fn eval(&self, doc: &Document, ctx: NodeId) -> NodeSet {
        let t = &doc.tree;
        let ctx_set = NodeSet::singleton(t.len(), ctx);
        let _stage = obs::trace::stage("eval");
        let clock = obs::Clock::start();
        let result = match &*self.plan {
            Plan::Product(c) => c.image(t, &ctx_set),
            Plan::Automaton(a) => twx_twa::eval_image(t, a, &ctx_set),
            Plan::Logic(f) => twx_fotc::eval_binary(t, f, 0, 1).image(&ctx_set),
            Plan::Vm(p) => twx_vm::eval_image_opts(
                t,
                p,
                &ctx_set,
                twx_vm::EvalOpts::with_threads(self.threads),
            ),
        };
        let nanos = clock.elapsed_nanos();
        obs::add(Counter::EvalNanos, nanos);
        self.eval_hist.record(nanos);
        result
    }

    /// A stable-within-this-process fingerprint of the compiled plan:
    /// the simplified AST plus the backend. Two `Prepared` values that
    /// would answer identically over the same label space fingerprint
    /// identically.
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.path.hash(&mut h);
        self.backend.name().hash(&mut h);
        // VM programs carry their own process-independent instruction
        // fingerprint; folding it in ties the cache key to the exact
        // bytecode that will answer.
        if let Plan::Vm(p) = &*self.plan {
            p.fingerprint().hash(&mut h);
        }
        h.finish()
    }

    /// The preorder span of `doc` this query's answer from `ctx` can
    /// depend on: the context subtree for subtree-local (downward-only)
    /// queries, the whole document otherwise. This is the span recorded
    /// with cached answers and tested against edit spans at
    /// invalidation.
    pub fn touched_span(&self, doc: &Document, ctx: NodeId) -> Span {
        if self.path.is_downward() {
            Span {
                start: ctx.0,
                end: doc.tree.subtree_end(ctx),
            }
        } else {
            Span {
                start: 0,
                end: doc.tree.len() as u32,
            }
        }
    }

    /// Evaluates through a [`ResultCache`]: answers from the cache when
    /// it holds this `(plan, ctx)` on this exact `(doc_id, version)`,
    /// evaluating and inserting otherwise.
    ///
    /// A carried entry may predate structural edits elsewhere in the
    /// document, leaving its node-set **universe** (bit width) at the
    /// old document length even though every id in it is still exact; in
    /// that case the set is re-based onto the current length before
    /// being returned.
    pub fn eval_cached(
        &self,
        cache: &ResultCache,
        doc_id: u64,
        version: DocVersion,
        doc: &Document,
        ctx: NodeId,
    ) -> Arc<NodeSet> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.fingerprint().hash(&mut h);
        ctx.0.hash(&mut h);
        let key = h.finish();
        let lookup = {
            let _stage = obs::trace::stage("result_cache");
            cache.get(key, doc_id, version)
        };
        if let Some(hit) = lookup {
            if hit.universe() == doc.tree.len() {
                return hit;
            }
            // Ids at or past the current length can only appear when an
            // invalidation was (deliberately, in tests) skipped after a
            // shrinking edit; dropping them keeps the rebase total.
            let len = doc.tree.len();
            let rebased = Arc::new(NodeSet::from_iter(
                len,
                hit.iter().filter(|v| (v.0 as usize) < len),
            ));
            // re-insert at the current width so later hits skip the remap
            cache.insert(
                key,
                doc_id,
                version,
                self.touched_span(doc, ctx),
                Arc::clone(&rebased),
            );
            return rebased;
        }
        let result = Arc::new(self.eval(doc, ctx));
        cache.insert(
            key,
            doc_id,
            version,
            self.touched_span(doc, ctx),
            Arc::clone(&result),
        );
        result
    }

    /// Evaluates from `ctx` and returns the full cost profile of doing so
    /// (the EXPLAIN view), including the answer size, compiled-artifact
    /// sizes, and every counter the backend incremented.
    ///
    /// Counters are thread-local; the profile reflects only this
    /// evaluation (compilation happened at prepare time — use
    /// [`Engine::explain`] for a profile that includes the compile stage).
    /// With the `obs` feature disabled the structural counters are all
    /// zero but artifact sizes are still reported.
    pub fn explain(&self, doc: &Document, ctx: NodeId) -> QueryProfile {
        let before = obs::snapshot();
        let result = self.eval(doc, ctx);
        let counters = obs::delta_since(&before);
        self.profile(doc, &result, counters)
    }

    fn profile(&self, doc: &Document, result: &NodeSet, counters: obs::Counters) -> QueryProfile {
        let mut compiled = CompiledSizes {
            query_size: self.path.size(),
            ..CompiledSizes::default()
        };
        match &*self.plan {
            Plan::Product(c) => compiled.nfa_states = c.n_states() as usize,
            Plan::Automaton(a) => {
                compiled.ntwa_states = a.total_states();
                compiled.ntwa_subtests = ntwa_subtests(a);
            }
            Plan::Logic(f) => compiled.formula_size = f.size(),
            Plan::Vm(p) => {
                compiled.vm_instrs = p.n_instrs();
                compiled.vm_regs = p.n_regs_total();
            }
        }
        QueryProfile {
            query: self.text.clone(),
            backend: self.backend.name().to_string(),
            tree_size: doc.tree.len(),
            result_count: result.count(),
            eval_nanos: counters.get(Counter::EvalNanos),
            compile_nanos: counters.get(Counter::CompileNanos),
            compiled,
            counters,
        }
    }

    /// The simplified query AST the plan was compiled from.
    pub fn path(&self) -> &RPath {
        &self.path
    }

    /// AST size as parsed, before the mandatory simplify stage.
    pub fn raw_size(&self) -> usize {
        self.raw_size
    }

    /// The original query text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The backend the plan targets.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The per-evaluation worker-thread bound this plan was prepared
    /// with (1 = fully sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// The query engine: a backend selection plus a shared, concurrent
/// plan cache. Cloning is cheap and clones share the cache; the engine
/// is `Send + Sync`.
#[derive(Clone, Debug)]
pub struct Engine {
    backend: Backend,
    cache: Arc<PlanCache>,
    /// Upper bound on scoped worker threads one evaluation may use.
    /// Defaults to `TWX_EVAL_THREADS` (read once per process) or 1;
    /// request-level parallelism (`query_batch`, the service worker
    /// pool) multiplies on top of this per-query bound.
    parallelism: usize,
}

/// The process-wide default for [`Engine::parallelism`]: the
/// `TWX_EVAL_THREADS` environment variable, read once, clamped to at
/// least 1. Unset or unparsable means sequential evaluation.
fn default_parallelism() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("TWX_EVAL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1)
            .max(1)
    })
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// An engine with the default (product) back end.
    pub fn new() -> Engine {
        Engine::with_backend(Backend::default())
    }

    /// Selects a back end.
    pub fn with_backend(backend: Backend) -> Engine {
        Engine {
            backend,
            cache: Arc::new(PlanCache::new(DEFAULT_CACHE_CAPACITY)),
            parallelism: default_parallelism(),
        }
    }

    /// Bounds the plan cache to `capacity` resident plans (FIFO eviction).
    pub fn with_cache_capacity(backend: Backend, capacity: usize) -> Engine {
        Engine {
            backend,
            cache: Arc::new(PlanCache::new(capacity)),
            parallelism: default_parallelism(),
        }
    }

    /// Sets the per-evaluation worker-thread bound (0 is clamped to 1).
    /// At 1 every evaluation is byte-for-byte the sequential code path;
    /// above 1 the VM backend splits axis images, star fixpoints and
    /// filter joins across scoped workers. Answers are identical at any
    /// setting — the conformance route 11 and `tests/parallel.rs` hold
    /// that line.
    pub fn with_parallelism(mut self, threads: usize) -> Engine {
        self.parallelism = threads.max(1);
        self
    }

    /// The per-evaluation worker-thread bound.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Runs the full compile pipeline against the document's (immutable)
    /// alphabet: parse, resolve labels, simplify, then fetch or compile
    /// the backend plan through the shared cache.
    ///
    /// Labels the alphabet does not know yield
    /// [`EngineError::UnknownLabel`]; the document is never mutated.
    pub fn prepare(&self, doc: &Document, query: &str) -> Result<Prepared, EngineError> {
        let path = {
            let _stage = obs::trace::stage("parse");
            parse_rpath_resolved(query, &doc.alphabet)?
        };
        Ok(self.finish_pipeline(query, path))
    }

    /// Like [`prepare`](Engine::prepare), but resolves the query against a
    /// shared [`Catalog`], **interning** any new labels into it. The plan
    /// then serves every document built from the catalog.
    pub fn prepare_in(&self, catalog: &Catalog, query: &str) -> Result<Prepared, EngineError> {
        let path = {
            let _stage = obs::trace::stage("parse");
            parse_rpath_catalog(query, catalog).map_err(EngineError::Syntax)?
        };
        Ok(self.finish_pipeline(query, path))
    }

    /// The shared simplify + cache + compile tail of the pipeline.
    ///
    /// The simplify stage is two-phase: the syntactic rewriting fixpoint
    /// of [`simplify_rpath`], then the automata-backed unsat-pruning
    /// pass of [`crate::prune`], which replaces statically-unsatisfiable
    /// downward filters with `⊥` (counted as `simplify_unsat_pruned`).
    /// The plan cache is keyed on the fully-simplified AST, so a pruned
    /// query and its hand-simplified form share one plan.
    fn finish_pipeline(&self, query: &str, raw: RPath) -> Prepared {
        let raw_size = raw.size();
        let path = {
            let _stage = obs::trace::stage("simplify");
            let path = simplify_rpath(&raw);
            let pruned = crate::prune::prune_unsat_rpath(&path);
            if pruned == path {
                path
            } else {
                simplify_rpath(&pruned)
            }
        };
        let plan = {
            let _stage = obs::trace::stage("plan_cache");
            self.cache.get_or_compile(&path, self.backend)
        };
        Prepared {
            text: query.to_string(),
            raw_size,
            path,
            backend: self.backend,
            plan,
            eval_hist: eval_histogram(self.backend),
            threads: self.parallelism,
        }
    }

    /// Compiles and evaluates in one step from `ctx`.
    pub fn query(&self, doc: &Document, query: &str, ctx: NodeId) -> Result<NodeSet, EngineError> {
        let prepared = self.prepare(doc, query)?;
        Ok(prepared.eval(doc, ctx))
    }

    /// Like [`query`](Engine::query), but collects a span tree of the
    /// pipeline (`parse` → `simplify` → `plan_cache` → `eval`, each with
    /// nanosecond timings and counter deltas) alongside the answer.
    ///
    /// The answer is **identical** to an untraced [`query`](Engine::query) —
    /// instrumentation never perturbs evaluation. The trace is `None`
    /// when the `obs` feature is disabled, or when a trace is already
    /// being collected on this thread (traces do not nest).
    pub fn query_traced(
        &self,
        doc: &Document,
        query: &str,
        ctx: NodeId,
    ) -> Result<(NodeSet, Option<SpanTree>), EngineError> {
        let began = obs::trace::begin("query", obs::TraceId::next());
        let result = (|| {
            let prepared = self.prepare(doc, query)?;
            Ok(prepared.eval(doc, ctx))
        })();
        let tree = if began { obs::trace::take() } else { None };
        result.map(|r| (r, tree))
    }

    /// Compiles once, then evaluates across all `(document, context)` jobs
    /// concurrently with [`std::thread::scope`], returning answers in job
    /// order. All documents must share the label space of `jobs[0].0`
    /// (e.g. via a [`Catalog`]).
    ///
    /// Observability counters are thread-local, so each worker drains its
    /// slots when its chunk completes and the deltas are merged back into
    /// the calling thread ([`obs::merge_local`]): a `snapshot`/
    /// `delta_since` window around this call sees the full fan-out cost,
    /// not just the compile.
    pub fn query_batch(
        &self,
        jobs: &[(&Document, NodeId)],
        query: &str,
    ) -> Result<Vec<NodeSet>, EngineError> {
        let Some((first, _)) = jobs.first() else {
            return Ok(Vec::new());
        };
        let prepared = self.prepare(first, query)?;
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(jobs.len());
        let chunk = jobs.len().div_ceil(threads);
        let mut out = Vec::with_capacity(jobs.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .chunks(chunk)
                .map(|part| {
                    let p = &prepared;
                    s.spawn(move || {
                        let answers = part
                            .iter()
                            .map(|(d, ctx)| p.eval(d, *ctx))
                            .collect::<Vec<_>>();
                        (answers, obs::drain())
                    })
                })
                .collect();
            for h in handles {
                let (answers, counters) = h.join().expect("batch worker panicked");
                obs::merge_local(&counters);
                out.extend(answers);
            }
        });
        Ok(out)
    }

    /// Compiles, evaluates, and profiles a query in one step: the EXPLAIN
    /// entry point. The counter snapshot is taken **before** the pipeline
    /// runs, so the profile includes compile time and the plan-cache
    /// hit/miss for this query.
    ///
    /// ```
    /// use treewalk::{Backend, Engine};
    /// use twx_xtree::parse::parse_xml;
    ///
    /// let doc = parse_xml("<a><b><c/></b><c/></a>").unwrap();
    /// let root = doc.tree.root();
    /// let profile = Engine::with_backend(Backend::Product)
    ///     .explain(&doc, "down*[c]", root)
    ///     .unwrap();
    /// assert_eq!(profile.result_count, 2);
    /// println!("{profile}"); // the text EXPLAIN view
    /// ```
    pub fn explain(
        &self,
        doc: &Document,
        query: &str,
        ctx: NodeId,
    ) -> Result<QueryProfile, EngineError> {
        let before = obs::snapshot();
        let prepared = self.prepare(doc, query)?;
        let result = prepared.eval(doc, ctx);
        let counters = obs::delta_since(&before);
        Ok(prepared.profile(doc, &result, counters))
    }

    /// Global statistics of the plan cache shared by all clones of this
    /// engine.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The backend this engine compiles for.
    pub fn backend(&self) -> Backend {
        self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::parse::parse_xml;

    fn doc() -> Document {
        parse_xml("<a><b><c/></b><c><b/></c></a>").unwrap()
    }

    #[test]
    fn backends_agree() {
        let queries = ["down*[c]", "(down[b] | right)*", "down[<?(true)/down>]"];
        for q in queries {
            let mut answers = Vec::new();
            for backend in [
                Backend::Product,
                Backend::Automaton,
                Backend::Logic,
                Backend::Vm,
            ] {
                let d = doc();
                let engine = Engine::with_backend(backend);
                let root = d.tree.root();
                answers.push(engine.query(&d, q, root).unwrap());
            }
            assert_eq!(answers[0], answers[1], "{q}: product vs automaton");
            assert_eq!(answers[0], answers[2], "{q}: product vs logic");
            assert_eq!(answers[0], answers[3], "{q}: product vs vm");
        }
    }

    #[test]
    fn vm_backend_profiles_and_caches() {
        let d = doc();
        let engine = Engine::with_backend(Backend::Vm);
        let root = d.tree.root();
        let profile = engine.explain(&d, "down*[c]", root).unwrap();
        assert_eq!(profile.backend, "vm");
        assert_eq!(profile.result_count, 2);
        assert!(profile.compiled.vm_instrs > 0, "vm sizes in the profile");
        assert!(profile.compiled.vm_regs > 0);
        assert_eq!(profile.compiled.nfa_states, 0);
        // plan-cache round trip and the per-backend latency series
        engine.explain(&d, "down*[c]", root).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        #[cfg(feature = "obs")]
        {
            assert!(profile.counters.get(Counter::VmInstructions) > 0);
            assert!(obs::metrics::global()
                .histogram_snapshot("twx_engine_eval_ns", &[("backend", "vm")])
                .is_some());
        }
        // the result cache keys on the plan fingerprint: identical VM
        // plans fingerprint identically, distinct programs differ
        let p1 = engine.prepare(&d, "down*[c]").unwrap();
        let p2 = engine.prepare(&d, "down*[c]").unwrap();
        assert_eq!(p1.fingerprint(), p2.fingerprint());
        let p3 = engine.prepare(&d, "down*[b]").unwrap();
        assert_ne!(p1.fingerprint(), p3.fingerprint());
    }

    #[test]
    fn prepared_queries_are_reusable() {
        let d = doc();
        let engine = Engine::new();
        let p = engine.prepare(&d, "down+[b]").unwrap();
        let from_root = p.eval(&d, d.tree.root());
        assert_eq!(from_root.count(), 2);
        let from_c = p.eval(&d, twx_xtree::NodeId(3));
        assert_eq!(from_c.count(), 1);
        assert_eq!(p.path().size(), 6); // (down/down*)[b] after plus-desugaring
        assert_eq!(p.raw_size(), 6);
    }

    #[test]
    fn syntax_errors_surface() {
        let d = doc();
        let root = d.tree.root();
        let e = Engine::new().query(&d, "down[[", root);
        assert!(matches!(e, Err(EngineError::Syntax(_))));
        assert!(e.unwrap_err().to_string().contains("syntax error"));
    }

    #[test]
    fn unknown_labels_surface_without_interning() {
        let d = doc();
        let before = d.alphabet.len();
        let root = d.tree.root();
        let e = Engine::new().query(&d, "down*[zzz]", root);
        match e {
            Err(EngineError::UnknownLabel { label }) => assert_eq!(label, "zzz"),
            other => panic!("expected UnknownLabel, got {other:?}"),
        }
        assert_eq!(d.alphabet.len(), before);
    }

    #[test]
    fn plan_cache_hits_across_documents_and_clones() {
        let engine = Engine::new();
        let d1 = doc();
        let d2 = doc(); // same label space (same parse order)
        let p1 = engine.prepare(&d1, "down*[c]").unwrap();
        let clone = engine.clone();
        let p2 = clone.prepare(&d2, "down*[c]").unwrap();
        assert!(Arc::ptr_eq(&p1.plan, &p2.plan), "clones share the cache");
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
        assert_eq!(p1.eval(&d1, d1.tree.root()), p2.eval(&d2, d2.tree.root()));
    }

    #[test]
    fn cache_evicts_fifo_at_capacity() {
        let engine = Engine::with_cache_capacity(Backend::Product, 2);
        let d = doc();
        for q in ["down", "down/down", "down*"] {
            engine.prepare(&d, q).unwrap();
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // the first plan was evicted; re-preparing it misses again
        engine.prepare(&d, "down").unwrap();
        assert_eq!(engine.cache_stats().misses, 4);
        // evicted plans held by Prepared values stay usable (Arc-shared)
        let held = engine.prepare(&d, "down*").unwrap();
        engine.prepare(&d, "down/down/down").unwrap();
        assert_eq!(held.eval(&d, d.tree.root()).count(), 5); // ε + 4 descendants
    }

    #[test]
    fn result_cache_hits_and_versions() {
        use twx_xtree::edit::{apply_edit, Edit};
        let d = doc();
        let engine = Engine::new();
        let cache = ResultCache::new(64);
        let p = engine.prepare(&d, "down*[c]").unwrap();
        let root = d.tree.root();
        let v0 = DocVersion(0);
        let a = p.eval_cached(&cache, 7, v0, &d, root);
        let b = p.eval_cached(&cache, 7, v0, &d, root);
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a, &b), "second lookup is a cache hit");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        // a different version misses
        let label = d.alphabet.lookup("b").unwrap();
        let (t2, affected) = apply_edit(
            &d.tree,
            &Edit::Relabel {
                node: NodeId(3),
                label,
            },
        )
        .unwrap();
        let d2 = Document::new(t2, d.alphabet.clone());
        let v1 = v0.bump();
        cache.invalidate(7, affected, v1);
        let c = p.eval_cached(&cache, 7, v1, &d2, root);
        assert_eq!(c.count(), 1, "relabeled c is gone from the answer");
        assert_ne!(a.to_vec(), c.to_vec());
    }

    #[test]
    fn result_cache_precise_invalidation_carries_disjoint_entries() {
        use twx_xtree::edit::{apply_edit, Edit};
        // (a (b (c)) (c (b))): subtree of node 1 is [1,3); node 3's is [3,5)
        let d = doc();
        let engine = Engine::new();
        let cache = ResultCache::new(64);
        let p = engine.prepare(&d, "down*[c]").unwrap();
        assert!(p.path().is_downward());
        // cache an answer scoped to the first subtree
        let early = p.eval_cached(&cache, 1, DocVersion(0), &d, NodeId(1));
        assert_eq!(p.touched_span(&d, NodeId(1)), Span { start: 1, end: 3 });
        // edit inside the *second* subtree: disjoint, entry must carry
        let label = d.alphabet.lookup("c").unwrap();
        let (t2, affected) = apply_edit(
            &d.tree,
            &Edit::Relabel {
                node: NodeId(4),
                label,
            },
        )
        .unwrap();
        assert_eq!(affected, Span { start: 4, end: 5 });
        let (carried, invalidated) = cache.invalidate(1, affected, DocVersion(1));
        assert_eq!((carried, invalidated), (1, 0));
        let d2 = Document::new(t2, d.alphabet.clone());
        let hit = p.eval_cached(&cache, 1, DocVersion(1), &d2, NodeId(1));
        assert!(Arc::ptr_eq(&early, &hit), "carried entry answers the hit");
        assert_eq!(hit.to_vec(), p.eval(&d2, NodeId(1)).to_vec());
        // an edit overlapping the cached subtree evicts it
        let (_, affected) = apply_edit(
            &d2.tree,
            &Edit::Relabel {
                node: NodeId(2),
                label,
            },
        )
        .unwrap();
        let (carried, invalidated) = cache.invalidate(1, affected, DocVersion(2));
        assert_eq!((carried, invalidated), (0, 1));
        let s = cache.stats();
        assert_eq!((s.carried, s.invalidated), (1, 1));
    }

    #[test]
    fn result_cache_rebases_universe_after_structural_carry() {
        use twx_xtree::edit::{apply_edit, Edit};
        let d = doc();
        let engine = Engine::new();
        let cache = ResultCache::new(64);
        let p = engine.prepare(&d, "down*[c]").unwrap();
        let cached = p.eval_cached(&cache, 1, DocVersion(0), &d, NodeId(1));
        assert_eq!(cached.universe(), 5);
        // append a leaf under the *last* subtree root (node 3): span [3,5)
        let label = d.alphabet.lookup("c").unwrap();
        let (t2, affected) = apply_edit(
            &d.tree,
            &Edit::InsertChild {
                parent: NodeId(3),
                position: 1,
                label,
            },
        )
        .unwrap();
        assert_eq!(affected, Span { start: 3, end: 5 });
        assert_eq!(cache.invalidate(1, affected, DocVersion(1)), (1, 0));
        let d2 = Document::new(t2, d.alphabet.clone());
        let hit = p.eval_cached(&cache, 1, DocVersion(1), &d2, NodeId(1));
        assert_eq!(hit.universe(), 6, "carried answer re-based to new width");
        assert_eq!(hit.to_vec(), p.eval(&d2, NodeId(1)).to_vec());
    }

    #[test]
    fn result_cache_capacity_evicts_oldest() {
        let d = doc();
        let engine = Engine::new();
        let cache = ResultCache::new(2);
        let root = d.tree.root();
        for (i, q) in ["down", "down/down", "down*"].iter().enumerate() {
            let p = engine.prepare(&d, q).unwrap();
            p.eval_cached(&cache, i as u64, DocVersion(0), &d, root);
        }
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        // the oldest (doc 0) was evicted; the newest still hits
        let p = engine.prepare(&d, "down*").unwrap();
        p.eval_cached(&cache, 2, DocVersion(0), &d, root);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn skip_invalidate_serves_stale_answers() {
        use twx_xtree::edit::{apply_edit, Edit};
        let d = doc();
        let engine = Engine::new();
        let cache = ResultCache::new(64);
        let p = engine.prepare(&d, "down*[c]").unwrap();
        let root = d.tree.root();
        let stale = p.eval_cached(&cache, 3, DocVersion(0), &d, root);
        let label = d.alphabet.lookup("c").unwrap();
        let (t2, _) = apply_edit(
            &d.tree,
            &Edit::Relabel {
                node: NodeId(4),
                label,
            },
        )
        .unwrap();
        let d2 = Document::new(t2, d.alphabet.clone());
        cache.skip_invalidate(3, DocVersion(1)); // the injected fault
        let answer = p.eval_cached(&cache, 3, DocVersion(1), &d2, root);
        assert_eq!(answer.to_vec(), stale.to_vec());
        assert_ne!(
            answer.to_vec(),
            p.eval(&d2, root).to_vec(),
            "the fault visibly corrupts answers — what the mutation fuzzer must catch"
        );
    }

    #[test]
    fn query_traced_matches_untraced_and_names_stages() {
        let d = doc();
        let root = d.tree.root();
        for backend in [
            Backend::Product,
            Backend::Automaton,
            Backend::Logic,
            Backend::Vm,
        ] {
            let engine = Engine::with_backend(backend);
            let plain = engine.query(&d, "down*[c]", root).unwrap();
            let (traced, tree) = engine.query_traced(&d, "down*[c]", root).unwrap();
            assert_eq!(plain, traced, "{backend:?}: tracing perturbed the answer");
            #[cfg(feature = "obs")]
            {
                let tree = tree.expect("trace collected when obs is on");
                assert_ne!(tree.trace_id.0, 0);
                let names: Vec<&str> = tree.root.children.iter().map(|c| c.name.as_str()).collect();
                assert_eq!(names, ["parse", "simplify", "plan_cache", "eval"]);
            }
            #[cfg(not(feature = "obs"))]
            assert!(tree.is_none());
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn query_traced_cleans_up_on_error() {
        let d = doc();
        let root = d.tree.root();
        let engine = Engine::new();
        assert!(engine.query_traced(&d, "down[[", root).is_err());
        assert!(!obs::trace::active(), "failed trace left a collector");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn eval_feeds_the_backend_latency_histogram() {
        let d = doc();
        let engine = Engine::with_backend(Backend::Automaton);
        let p = engine.prepare(&d, "down*[b]").unwrap();
        let before = eval_histogram(Backend::Automaton).load().count();
        p.eval(&d, d.tree.root());
        p.eval(&d, d.tree.root());
        // >=: other tests run in parallel and share the global series
        let after = eval_histogram(Backend::Automaton).load();
        assert!(after.count() >= before + 2);
        assert!(obs::metrics::global()
            .histogram_snapshot("twx_engine_eval_ns", &[("backend", "automaton")])
            .is_some());
    }

    #[test]
    fn query_batch_matches_sequential() {
        let engine = Engine::new();
        let docs: Vec<Document> = (0..8).map(|_| doc()).collect();
        let jobs: Vec<(&Document, NodeId)> = docs.iter().map(|d| (d, d.tree.root())).collect();
        let batch = engine.query_batch(&jobs, "down*[b]").unwrap();
        assert_eq!(batch.len(), jobs.len());
        for (i, (d, ctx)) in jobs.iter().enumerate() {
            assert_eq!(batch[i], engine.query(d, "down*[b]", *ctx).unwrap());
        }
        assert!(engine.query_batch(&[], "down").unwrap().is_empty());
    }
}

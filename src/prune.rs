//! Unsat pruning: an exact, automata-backed pass of the mandatory
//! simplify stage.
//!
//! The syntactic rules in `twx_regxpath::simplify` only recognise `⊥`
//! literally. This pass goes further on the **downward fragment** (axes
//! `↓`, `↓⁺` only), where satisfiability is decidable by the bottom-up
//! type automaton of [`twx_treeauto::xpath_compile`]: every filter and
//! test subexpression of a query that falls in the fragment is checked,
//! and statically-unsatisfiable ones are replaced by `⊥` — which the
//! following simplify fixpoint then propagates, often collapsing whole
//! branches of the plan before any backend sees them. Each replacement
//! ticks the `simplify_unsat_pruned` counter, so the pass is visible in
//! EXPLAIN profiles.
//!
//! Soundness under shared catalogs: a [`Catalog`](twx_xtree::Catalog) is
//! append-only, so a plan compiled today must stay correct for documents
//! that use labels interned tomorrow. The satisfiability check therefore
//! runs over the labels the formula *mentions* plus one fresh
//! representative for "any other label": a downward formula cannot
//! distinguish two labels it does not mention, so unsatisfiability over
//! that alphabet implies unsatisfiability over every larger one. (The
//! converse direction is why the check is conservative: `¬p` alone is
//! never pruned even against a catalog that only knows `p`.)

use std::collections::BTreeMap;
use twx_corexpath::ast::{Axis, NodeExpr, PathExpr, Step};
use twx_obs::{self as obs, Counter};
use twx_regxpath::simplify::{is_false, is_true};
use twx_regxpath::{RNode, RPath};
use twx_treeauto::xpath_compile::{compile_simple, to_simple, AcceptAt, Simple};
use twx_xtree::Label;

/// Cost caps: the decision procedure is EXPTIME in the worst case, so
/// the pass silently skips formulas whose modal normal form or mentioned
/// label set is large. (Skipping is always sound — pruning is an
/// optimisation, never a requirement.)
const MAX_SIMPLE_SIZE: usize = 48;
const MAX_LABELS: u32 = 8;

/// Replaces statically-unsatisfiable downward filter/test subexpressions
/// of `p` with `⊥`, bottom-up. Returns the rewritten path; when nothing
/// is prunable the input is returned structurally unchanged.
///
/// Run [`twx_regxpath::simplify_rpath`] on the result to propagate the
/// introduced `⊥`s (the engine's pipeline does exactly that).
pub fn prune_unsat_rpath(p: &RPath) -> RPath {
    match p {
        RPath::Axis(_) | RPath::Eps => p.clone(),
        RPath::Test(f) => RPath::test(prune_filter(f)),
        RPath::Seq(a, b) => prune_unsat_rpath(a).seq(prune_unsat_rpath(b)),
        RPath::Union(a, b) => prune_unsat_rpath(a).union(prune_unsat_rpath(b)),
        RPath::Star(a) => prune_unsat_rpath(a).star(),
        RPath::Filter(a, f) => prune_unsat_rpath(a).filter(prune_filter(f)),
    }
}

/// Prunes inside a filter formula (nested paths may carry their own
/// filters), then decides the formula itself.
fn prune_filter(f: &RNode) -> RNode {
    let f = prune_inside(f);
    if is_false(&f) || is_true(&f) {
        return f;
    }
    if is_unsat_downward(&f) {
        obs::incr(Counter::SimplifyUnsatPruned);
        return RNode::fals();
    }
    f
}

/// Structural recursion into a node expression: nested path expressions
/// are pruned through [`prune_unsat_rpath`] so deeper filters get their
/// own checks.
fn prune_inside(f: &RNode) -> RNode {
    match f {
        RNode::True | RNode::Label(_) => f.clone(),
        RNode::Some(p) => RNode::some(prune_unsat_rpath(p)),
        RNode::Not(g) => prune_inside(g).not(),
        RNode::And(g, h) => prune_inside(g).and(prune_inside(h)),
        RNode::Or(g, h) => prune_inside(g).or(prune_inside(h)),
        RNode::Within(g) => prune_inside(g).within(),
    }
}

/// Exact unsatisfiability for downward-fragment formulas; `false` for
/// anything outside the fragment or beyond the cost caps.
fn is_unsat_downward(f: &RNode) -> bool {
    let mut labels = BTreeMap::new();
    let Some(converted) = to_downward_node(f, &mut labels) else {
        return false;
    };
    let n_labels = labels.len() as u32 + 1; // + one "any other label"
    if n_labels > MAX_LABELS {
        return false;
    }
    let Ok(simple) = to_simple(&converted) else {
        return false;
    };
    if simple_size(&simple) > MAX_SIMPLE_SIZE {
        return false;
    }
    let auto = compile_simple(&simple, n_labels, AcceptAt::SomeNode);
    auto.tree_emptiness_witness().is_none()
}

fn simple_size(s: &Simple) -> usize {
    match s {
        Simple::True | Simple::Label(_) => 1,
        Simple::SomeChild(g) | Simple::SomeDesc(g) | Simple::Not(g) => 1 + simple_size(g),
        Simple::And(g, h) | Simple::Or(g, h) => 1 + simple_size(g) + simple_size(h),
    }
}

/// Densifies a mentioned label into `0..m` (the automaton alphabet is
/// the mentioned labels plus the representative `m`).
fn dense(l: Label, labels: &mut BTreeMap<Label, u32>) -> Label {
    let next = labels.len() as u32;
    Label(*labels.entry(l).or_insert(next))
}

/// Converts a Regular XPath(W) node expression into the downward
/// fragment of Core XPath, or `None` if it leaves the fragment.
///
/// `W φ` converts to `φ` when `φ` is itself downward: a downward formula
/// is subtree-local, so relativising it to the subtree is the identity.
fn to_downward_node(f: &RNode, labels: &mut BTreeMap<Label, u32>) -> Option<NodeExpr> {
    Some(match f {
        RNode::True => NodeExpr::True,
        RNode::Label(l) => NodeExpr::Label(dense(*l, labels)),
        RNode::Some(p) => NodeExpr::Some(Box::new(to_downward_path(p, labels)?)),
        RNode::Not(g) => NodeExpr::Not(Box::new(to_downward_node(g, labels)?)),
        RNode::And(g, h) => NodeExpr::And(
            Box::new(to_downward_node(g, labels)?),
            Box::new(to_downward_node(h, labels)?),
        ),
        RNode::Or(g, h) => NodeExpr::Or(
            Box::new(to_downward_node(g, labels)?),
            Box::new(to_downward_node(h, labels)?),
        ),
        RNode::Within(g) => to_downward_node(g, labels)?,
    })
}

/// Converts a path expression, keeping only `↓` steps, `ε`, tests,
/// composition, union, filters, and `(↓)*` (which is `. ∪ ↓⁺` in Core
/// XPath). General Kleene stars leave the fragment.
fn to_downward_path(p: &RPath, labels: &mut BTreeMap<Label, u32>) -> Option<PathExpr> {
    Some(match p {
        RPath::Axis(Axis::Down) => PathExpr::Step(Step::axis(Axis::Down)),
        RPath::Axis(_) => return None,
        RPath::Eps => PathExpr::Slf,
        RPath::Test(f) => PathExpr::Filter(
            Box::new(PathExpr::Slf),
            Box::new(to_downward_node(f, labels)?),
        ),
        RPath::Seq(a, b) => PathExpr::Seq(
            Box::new(to_downward_path(a, labels)?),
            Box::new(to_downward_path(b, labels)?),
        ),
        RPath::Union(a, b) => PathExpr::Union(
            Box::new(to_downward_path(a, labels)?),
            Box::new(to_downward_path(b, labels)?),
        ),
        RPath::Star(inner) => match &**inner {
            RPath::Axis(Axis::Down) => PathExpr::star(Axis::Down),
            _ => return None,
        },
        RPath::Filter(a, f) => PathExpr::Filter(
            Box::new(to_downward_path(a, labels)?),
            Box::new(to_downward_node(f, labels)?),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_regxpath::eval::eval_rel;
    use twx_regxpath::generate::{random_rpath, RGenConfig};
    use twx_regxpath::parser::parse_rpath_catalog;
    use twx_regxpath::simplify_rpath;
    use twx_xtree::generate::enumerate_trees_up_to;
    use twx_xtree::rng::SplitMix64;
    use twx_xtree::Catalog;

    fn path(s: &str) -> RPath {
        let catalog = Catalog::from_names(["a", "b", "c"]);
        parse_rpath_catalog(s, &catalog).unwrap()
    }

    #[test]
    fn contradictions_are_pruned_to_false() {
        for q in [
            "down[b and !b]",
            "down*[leaf and <down>]",
            "down[<down[b and !b]>]", // nested inside a filter's path
            "down[W(a and b)]",       // unique labelling: a ∧ b unsat
        ] {
            let pruned = simplify_rpath(&prune_unsat_rpath(&path(q)));
            assert!(
                twx_regxpath::simplify::is_empty_path(&pruned),
                "{q} should prune to the empty path, got {pruned:?}"
            );
        }
    }

    #[test]
    fn satisfiable_and_non_downward_filters_survive() {
        for q in [
            "down[b]",
            "down*[!b]",        // unsat only without label headroom: kept
            "down[<up>]",       // non-downward: skipped
            "down[root]",       // root = ¬⟨↑⟩: non-downward, skipped
            "(down/right)*[b]", // general star: filter still checked, kept
        ] {
            let p = path(q);
            let pruned = prune_unsat_rpath(&p);
            assert_eq!(p, pruned, "{q} should be untouched");
        }
    }

    #[test]
    fn within_of_downward_collapses_for_the_check() {
        // W(⟨↓[b]⟩ ∧ ¬⟨↓⟩) is unsat: a node with a b-child but no child
        let pruned = simplify_rpath(&prune_unsat_rpath(&path("down[W(<down[b]> and leaf)]")));
        assert!(twx_regxpath::simplify::is_empty_path(&pruned));
    }

    /// Pruning is semantics-preserving on bounded domains, fuzzed over
    /// random Regular XPath(W) expressions (seeded, deterministic).
    #[test]
    fn pruning_is_sound() {
        let trees = enumerate_trees_up_to(4, 2);
        let mut rng = SplitMix64::seed_from_u64(2026);
        let cfg = RGenConfig::default();
        for _ in 0..30 {
            let p = random_rpath(&cfg, 4, &mut rng);
            let pruned = prune_unsat_rpath(&p);
            for t in &trees {
                assert_eq!(
                    eval_rel(t, &p),
                    eval_rel(t, &pruned),
                    "unsound prune {p:?} → {pruned:?}"
                );
            }
        }
    }
}

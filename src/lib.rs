//! # treewalk — XPath, transitive closure logic, and nested tree walking automata
//!
//! Facade crate re-exporting the whole workspace: a from-scratch
//! reproduction of ten Cate & Segoufin (PODS 2008 / JACM 2010).
//!
//! * [`xtree`] — sibling-ordered labelled trees (the XML data model);
//! * [`corexpath`] — Core XPath 1.0 with a linear-time evaluator;
//! * [`regxpath`] — Regular XPath(W): transitive closure + `within`;
//! * [`fotc`] — first-order logic with monadic transitive closure;
//! * [`twa`] — (nested) tree walking automata;
//! * [`treeauto`] — bottom-up tree automata (the MSO/regular yardstick);
//! * [`vm`] — the bytecode VM: plans compiled to a register machine over
//!   dense bitsets, the engine's serving-oriented fourth backend;
//! * [`core`] — the effective equivalence triangle between the three
//!   formalisms, plus deciders and differential-testing harnesses;
//! * [`obs`] — zero-dependency counters, span timers, and the per-query
//!   EXPLAIN profiles surfaced through [`Engine::explain`].
//!
//! The serving layer — sharded corpus store, concurrent query service
//! with admission control, and the `twx-serve` TCP binary — lives in the
//! `twx-corpus` crate, which builds *on top of* this facade.

pub mod engine;
pub mod prune;

pub use engine::{
    Backend, CacheStats, Engine, EngineError, Prepared, ResultCache, ResultCacheStats,
};
pub use prune::prune_unsat_rpath;
pub use twx_core as core;
pub use twx_corexpath as corexpath;
pub use twx_fotc as fotc;
pub use twx_obs as obs;
pub use twx_obs::{Histogram, QueryProfile, SpanTree, TraceId};
pub use twx_regxpath as regxpath;
pub use twx_treeauto as treeauto;
pub use twx_twa as twa;
pub use twx_vm as vm;
pub use twx_xtree as xtree;

//! Tree shape statistics (used by the benchmark harness to report workload
//! characteristics alongside timings).

use crate::tree::Tree;

/// Summary statistics of a tree's shape.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Maximum depth (root = 0).
    pub max_depth: u32,
    /// Average depth over all nodes.
    pub avg_depth: f64,
    /// Maximum number of children of any node.
    pub max_arity: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Number of distinct labels that occur.
    pub distinct_labels: usize,
}

/// Computes [`TreeStats`] in one pass.
pub fn stats(t: &Tree) -> TreeStats {
    let mut max_depth = 0;
    let mut depth_sum = 0u64;
    let mut leaves = 0;
    let mut max_arity = 0;
    let mut labels_seen = std::collections::HashSet::new();
    for v in t.nodes() {
        let d = t.depth(v);
        max_depth = max_depth.max(d);
        depth_sum += d as u64;
        if t.is_leaf(v) {
            leaves += 1;
        } else {
            max_arity = max_arity.max(t.arity(v));
        }
        labels_seen.insert(t.label(v));
    }
    TreeStats {
        nodes: t.len(),
        max_depth,
        avg_depth: depth_sum as f64 / t.len() as f64,
        max_arity,
        leaves,
        distinct_labels: labels_seen.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{chain, star};
    use crate::parse::parse_sexp;
    use crate::Label;

    #[test]
    fn chain_stats() {
        let s = stats(&chain(5, Label(0)));
        assert_eq!(s.nodes, 5);
        assert_eq!(s.max_depth, 4);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.max_arity, 1);
        assert_eq!(s.distinct_labels, 1);
    }

    #[test]
    fn star_stats() {
        let s = stats(&star(6, Label(0)));
        assert_eq!(s.max_depth, 1);
        assert_eq!(s.leaves, 5);
        assert_eq!(s.max_arity, 5);
    }

    #[test]
    fn mixed_stats() {
        let doc = parse_sexp("(a (b d e) c)").unwrap();
        let s = stats(&doc.tree);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.leaves, 3);
        assert_eq!(s.distinct_labels, 5);
        assert!((s.avg_depth - 6.0 / 5.0).abs() < 1e-12);
    }
}

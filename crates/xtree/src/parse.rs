//! Parsers: a well-formed subset of XML, and s-expressions.
//!
//! The XML subset covers what the paper's data model can see: element
//! structure. Text content is skipped ("we are too blind to see actual text
//! content"); attributes are either skipped or, with
//! [`XmlOptions::attributes_as_children`], rendered as extra children
//! labelled `@name=value` — the slide deck's "attribute-value pairs are a
//! special kind of children" convention.

use crate::alphabet::Alphabet;
use crate::builder::TreeBuilder;
use crate::catalog::Catalog;
use crate::tree::{Document, Tree};
use std::fmt;

/// A parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(offset: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        offset,
        message: message.into(),
    })
}

/// Options for the XML parser.
#[derive(Debug, Clone, Copy, Default)]
pub struct XmlOptions {
    /// Render each attribute `name="value"` as a leaf child labelled
    /// `@name=value`, prepended before the element children.
    pub attributes_as_children: bool,
}

/// Parses an XML document into a [`Document`] with a fresh alphabet.
pub fn parse_xml(input: &str) -> Result<Document, ParseError> {
    let mut alphabet = Alphabet::new();
    let tree = parse_xml_with(input, &mut alphabet, XmlOptions::default())?;
    Ok(Document::new(tree, alphabet))
}

/// Parses an XML document, interning labels into a shared [`Catalog`].
///
/// The returned [`Document`] carries a snapshot of the catalog, so its
/// labels agree with every other document and query compiled against the
/// same catalog — the unit of the engine's prepare-once/serve-many
/// pattern.
pub fn parse_xml_catalog(input: &str, catalog: &Catalog) -> Result<Document, ParseError> {
    let tree = catalog.with_write(|ab| parse_xml_with(input, ab, XmlOptions::default()))?;
    Ok(Document::new(tree, catalog.snapshot()))
}

/// Parses an XML document, interning labels into an existing alphabet.
pub fn parse_xml_with(
    input: &str,
    alphabet: &mut Alphabet,
    options: XmlOptions,
) -> Result<Tree, ParseError> {
    XmlParser {
        input: input.as_bytes(),
        pos: 0,
        alphabet,
        options,
    }
    .parse()
}

struct XmlParser<'a> {
    input: &'a [u8],
    pos: usize,
    alphabet: &'a mut Alphabet,
    options: XmlOptions,
}

impl XmlParser<'_> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips text, comments, processing instructions and doctype between
    /// elements.
    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            // text content (skipped)
            while self.peek().is_some_and(|c| c != b'<') {
                self.pos += 1;
            }
            if self.starts_with("<!--") {
                match find(self.input, self.pos + 4, b"-->") {
                    Some(end) => self.pos = end + 3,
                    None => return err(self.pos, "unterminated comment"),
                }
            } else if self.starts_with("<?") {
                match find(self.input, self.pos + 2, b"?>") {
                    Some(end) => self.pos = end + 2,
                    None => return err(self.pos, "unterminated processing instruction"),
                }
            } else if self.starts_with("<!") {
                match find(self.input, self.pos + 2, b">") {
                    Some(end) => self.pos = end + 1,
                    None => return err(self.pos, "unterminated declaration"),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return err(start, "expected a name");
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse(mut self) -> Result<Tree, ParseError> {
        let mut builder = TreeBuilder::new();
        self.skip_misc()?;
        if self.peek() != Some(b'<') {
            return err(self.pos, "expected root element");
        }
        self.element(&mut builder)?;
        self.skip_misc()?;
        if self.pos != self.input.len() {
            return err(self.pos, "trailing content after root element");
        }
        Ok(builder.finish())
    }

    fn element(&mut self, builder: &mut TreeBuilder) -> Result<(), ParseError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.pos += 1;
        let name = self.name()?;
        let label = self.alphabet.intern(&name);
        builder.open(label);

        // attributes
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') => break,
                Some(_) => {
                    let attr = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return err(self.pos, "expected '=' in attribute");
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return err(self.pos, "expected quoted attribute value"),
                    };
                    self.pos += 1;
                    let vstart = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return err(self.pos, "unterminated attribute value");
                    }
                    let value = String::from_utf8_lossy(&self.input[vstart..self.pos]).into_owned();
                    self.pos += 1;
                    if self.options.attributes_as_children {
                        let l = self.alphabet.intern(&format!("@{attr}={value}"));
                        builder.leaf(l);
                    }
                }
                None => return err(self.pos, "unexpected end of input in tag"),
            }
        }

        if self.peek() == Some(b'/') {
            // self-closing
            self.pos += 1;
            if self.peek() != Some(b'>') {
                return err(self.pos, "expected '>' after '/'");
            }
            self.pos += 1;
            builder.close();
            return Ok(());
        }
        debug_assert_eq!(self.peek(), Some(b'>'));
        self.pos += 1;

        // children
        loop {
            self.skip_misc()?;
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != name {
                    return err(
                        self.pos,
                        format!("mismatched closing tag: expected </{name}>, got </{close}>"),
                    );
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return err(self.pos, "expected '>' in closing tag");
                }
                self.pos += 1;
                builder.close();
                return Ok(());
            }
            if self.peek() == Some(b'<') {
                self.element(builder)?;
            } else {
                return err(self.pos, format!("unterminated element <{name}>"));
            }
        }
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from > haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|i| i + from)
}

/// Parses an s-expression tree: `(label child child ...)`, where a bare
/// `label` abbreviates a leaf `(label)`.
pub fn parse_sexp(input: &str) -> Result<Document, ParseError> {
    let mut alphabet = Alphabet::new();
    let tree = parse_sexp_with(input, &mut alphabet)?;
    Ok(Document::new(tree, alphabet))
}

/// Parses an s-expression tree, interning labels into a shared
/// [`Catalog`] (see [`parse_xml_catalog`] for the sharing contract).
pub fn parse_sexp_catalog(input: &str, catalog: &Catalog) -> Result<Document, ParseError> {
    let tree = catalog.with_write(|ab| parse_sexp_with(input, ab))?;
    Ok(Document::new(tree, catalog.snapshot()))
}

/// Parses an s-expression tree, interning labels into an existing alphabet.
pub fn parse_sexp_with(input: &str, alphabet: &mut Alphabet) -> Result<Tree, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut builder = TreeBuilder::new();
    sexp_node(bytes, &mut pos, alphabet, &mut builder)?;
    skip_sexp_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return err(pos, "trailing content after tree");
    }
    Ok(builder.finish())
}

fn skip_sexp_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\r' | b'\n'))
    {
        *pos += 1;
    }
}

fn sexp_atom(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    let start = *pos;
    while bytes
        .get(*pos)
        .is_some_and(|c| !matches!(c, b'(' | b')' | b' ' | b'\t' | b'\r' | b'\n'))
    {
        *pos += 1;
    }
    if *pos == start {
        return err(start, "expected a label");
    }
    Ok(String::from_utf8_lossy(&bytes[start..*pos]).into_owned())
}

fn sexp_node(
    bytes: &[u8],
    pos: &mut usize,
    alphabet: &mut Alphabet,
    builder: &mut TreeBuilder,
) -> Result<(), ParseError> {
    skip_sexp_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'(') => {
            *pos += 1;
            skip_sexp_ws(bytes, pos);
            let name = sexp_atom(bytes, pos)?;
            let label = alphabet.intern(&name);
            builder.open(label);
            loop {
                skip_sexp_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b')') => {
                        *pos += 1;
                        builder.close();
                        return Ok(());
                    }
                    Some(_) => sexp_node(bytes, pos, alphabet, builder)?,
                    None => return err(*pos, "unterminated '('"),
                }
            }
        }
        Some(_) => {
            let name = sexp_atom(bytes, pos)?;
            let label = alphabet.intern(&name);
            builder.leaf(label);
            Ok(())
        }
        None => err(*pos, "expected a tree"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::children;

    #[test]
    fn xml_example_document() {
        // The slide deck's example document.
        let doc = parse_xml(
            r#"<?xml version="1.0" encoding="UTF-8"?>
            <talk date="15-Dec-2010">
              <speaker uni="Leicester">T. Litak</speaker>
              <title><i>XPath</i> from a Logical Point of View</title>
              <location><i>ATT LT3</i><b>Leicester</b></location>
            </talk>"#,
        )
        .unwrap();
        let t = &doc.tree;
        assert_eq!(t.len(), 7);
        assert_eq!(doc.label_name(t.root()), "talk");
        let kids: Vec<_> = children(t, t.root()).map(|v| doc.label_name(v)).collect();
        assert_eq!(kids, ["speaker", "title", "location"]);
    }

    #[test]
    fn xml_attributes_as_children() {
        let mut ab = Alphabet::new();
        let t = parse_xml_with(
            r#"<talk date="now"><speaker uni="X"/></talk>"#,
            &mut ab,
            XmlOptions {
                attributes_as_children: true,
            },
        )
        .unwrap();
        assert_eq!(t.len(), 4);
        let names: Vec<_> = t.nodes().map(|v| ab.name(t.label(v))).collect();
        assert_eq!(names, ["talk", "@date=now", "speaker", "@uni=X"]);
    }

    #[test]
    fn xml_self_closing_and_comments() {
        let doc = parse_xml("<!-- hi --><a><b/><!-- there --><c/></a>").unwrap();
        assert_eq!(doc.tree.len(), 3);
    }

    #[test]
    fn xml_errors() {
        assert!(parse_xml("<a><b></a>").is_err());
        assert!(parse_xml("<a>").is_err());
        assert!(parse_xml("<a></a><b></b>").is_err());
        assert!(parse_xml("").is_err());
        assert!(parse_xml("<a x=></a>").is_err());
        assert!(parse_xml("<!-- unterminated").is_err());
    }

    #[test]
    fn sexp_round() {
        let doc = parse_sexp("(a (b d e) c)").unwrap();
        let t = &doc.tree;
        assert_eq!(t.len(), 5);
        assert_eq!(doc.label_name(t.root()), "a");
        let kids: Vec<_> = children(t, t.root()).map(|v| doc.label_name(v)).collect();
        assert_eq!(kids, ["b", "c"]);
    }

    #[test]
    fn sexp_bare_leaf() {
        let doc = parse_sexp("  x  ").unwrap();
        assert_eq!(doc.tree.len(), 1);
        assert_eq!(doc.label_name(doc.tree.root()), "x");
    }

    #[test]
    fn catalog_parsers_share_one_label_space() {
        let catalog = Catalog::new();
        let d1 = parse_xml_catalog("<a><b/></a>", &catalog).unwrap();
        let d2 = parse_sexp_catalog("(b a)", &catalog).unwrap();
        // same names → same labels across both documents
        assert_eq!(
            d1.tree.label(d1.tree.root()),
            d2.tree.label(d2.tree.first_child(d2.tree.root()).unwrap()),
        );
        assert_eq!(catalog.len(), 2);
        assert_eq!(d1.alphabet.lookup("b"), d2.alphabet.lookup("b"));
    }

    #[test]
    fn sexp_errors() {
        assert!(parse_sexp("(a (b)").is_err());
        assert!(parse_sexp("(a) (b)").is_err());
        assert!(parse_sexp("()").is_err());
        assert!(parse_sexp("").is_err());
    }
}

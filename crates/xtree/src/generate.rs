//! Tree workload generators.
//!
//! Six random families (chosen to stress different axes of evaluators:
//! depth, width, balance, label skew) plus an exhaustive enumerator of all
//! labelled ordered trees of a given size — the bounded domains over which
//! the equivalence theorems are validated.

use crate::alphabet::Label;
use crate::builder::TreeBuilder;
use crate::rng::Rng;
use crate::tree::Tree;

/// A random-tree workload family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// Uniform random recursive tree: each new node attaches to a uniformly
    /// random existing node. Expected depth O(log n); arbitrary arity.
    Recursive,
    /// Each new node attaches to a node chosen among the most recent `w`
    /// nodes, giving depth ~ n / w. `Deep(1)` is a chain.
    Deep(u32),
    /// Arity bounded by `b`; attachment points are nodes with spare arity,
    /// chosen uniformly. `Bounded(2)` gives binary-ish trees.
    Bounded(u32),
    /// Wide: root-heavy, most nodes are shallow (depth ≤ 2).
    Wide,
    /// Document-like: depth bounded around 8, arity geometric, label
    /// distribution Zipf-skewed — mimics real XML.
    DocumentLike,
}

/// Generates a random tree with exactly `n` nodes over `k` labels.
///
/// Labels are uniform except for [`Shape::DocumentLike`], which uses a
/// Zipf(1) skew.
pub fn random_tree<R: Rng>(shape: Shape, n: usize, k: usize, rng: &mut R) -> Tree {
    assert!(n > 0 && k > 0);
    // Choose a parent (index < i) for each node i, per the shape.
    let mut parents = vec![0u32; n];
    match shape {
        Shape::Recursive => {
            for (i, p) in parents.iter_mut().enumerate().skip(1) {
                *p = rng.gen_range(0..i) as u32;
            }
        }
        Shape::Deep(w) => {
            let w = w.max(1) as usize;
            for (i, p) in parents.iter_mut().enumerate().skip(1) {
                let lo = i.saturating_sub(w);
                *p = rng.gen_range(lo..i) as u32;
            }
        }
        Shape::Bounded(b) => {
            let b = b.max(1);
            let mut arity = vec![0u32; n];
            let mut open: Vec<u32> = vec![0];
            for (i, p) in parents.iter_mut().enumerate().skip(1) {
                let idx = rng.gen_range(0..open.len());
                let par = open[idx];
                *p = par;
                arity[par as usize] += 1;
                if arity[par as usize] >= b {
                    open.swap_remove(idx);
                }
                open.push(i as u32);
            }
        }
        Shape::Wide => {
            for (i, p) in parents.iter_mut().enumerate().skip(1) {
                // 70% attach to root, else to a random shallow node
                *p = if rng.gen_bool(0.7) {
                    0
                } else {
                    rng.gen_range(0..i) as u32
                };
            }
        }
        Shape::DocumentLike => {
            let mut depth = vec![0u32; n];
            #[allow(clippy::needless_range_loop)]
            for i in 1..n {
                // geometric walk down from a random recent node, capped depth
                let mut p = rng.gen_range(0..i) as u32;
                while depth[p as usize] >= 8 {
                    p = parents[p as usize];
                }
                parents[i] = p;
                depth[i] = depth[p as usize] + 1;
            }
        }
    }

    // Label distribution.
    let labels: Vec<Label> = if matches!(shape, Shape::DocumentLike) {
        let weights: Vec<f64> = (1..=k).map(|r| 1.0 / r as f64).collect();
        (0..n)
            .map(|_| Label(rng.gen_weighted(&weights) as u32))
            .collect()
    } else {
        (0..n).map(|_| Label(rng.gen_range(0..k) as u32)).collect()
    };

    from_parent_vec(&parents, &labels)
}

/// Generates a random [`Document`](crate::Document) whose labels live in
/// a shared [`Catalog`](crate::Catalog): the tree draws from every label
/// currently interned, and the document carries a catalog snapshot, so
/// query plans compiled against the catalog serve every document
/// generated from it.
///
/// # Panics
/// If the catalog is empty (there would be no labels to draw from).
pub fn random_document_in<R: Rng>(
    shape: Shape,
    n: usize,
    catalog: &crate::Catalog,
    rng: &mut R,
) -> crate::Document {
    let k = catalog.len();
    assert!(k > 0, "cannot generate from an empty catalog");
    let tree = random_tree(shape, n, k, rng);
    crate::Document::new(tree, catalog.snapshot())
}

/// Builds a tree from a parent vector (`parents[0]` ignored; `parents[i] <
/// i`), with children ordered by id.
pub fn from_parent_vec(parents: &[u32], labels: &[Label]) -> Tree {
    let n = parents.len();
    assert_eq!(labels.len(), n);
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, &p) in parents.iter().enumerate().skip(1) {
        let p = p as usize;
        assert!(p < i, "parent vector not topologically ordered");
        children[p].push(i as u32);
    }
    let mut b = TreeBuilder::with_capacity(n);
    // iterative DFS emitting open/close events
    enum Ev {
        Open(u32),
        Close,
    }
    let mut stack = vec![Ev::Open(0)];
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Open(v) => {
                b.open(labels[v as usize]);
                stack.push(Ev::Close);
                for &c in children[v as usize].iter().rev() {
                    stack.push(Ev::Open(c));
                }
            }
            Ev::Close => b.close(),
        }
    }
    b.finish()
}

/// Enumerates **all** ordered trees with exactly `n` nodes, each node
/// labelled from `0..k` — the bounded domain for exhaustive theorem
/// validation. The count is `Catalan(n-1) · k^n`; keep `n ≤ 6`, `k ≤ 2`.
pub fn enumerate_trees(n: usize, k: usize) -> Vec<Tree> {
    assert!(n > 0 && k > 0);
    let shapes = enumerate_shapes(n);
    let mut out = Vec::new();
    for shape in &shapes {
        let mut labels = vec![Label(0); n];
        loop {
            out.push(from_parent_vec(shape, &labels));
            // increment the label vector in base k
            let mut i = 0;
            loop {
                if i == n {
                    break;
                }
                if labels[i].0 as usize + 1 < k {
                    labels[i].0 += 1;
                    break;
                }
                labels[i] = Label(0);
                i += 1;
            }
            if i == n {
                break;
            }
        }
    }
    out
}

/// Enumerates all trees with **at most** `n` nodes over `k` labels.
pub fn enumerate_trees_up_to(n: usize, k: usize) -> Vec<Tree> {
    (1..=n).flat_map(|m| enumerate_trees(m, k)).collect()
}

/// Enumerates the parent vectors of all ordered tree shapes with `n` nodes
/// (preorder numbering; children of equal parents appear in id order, and a
/// parent vector is a valid preorder shape iff each `parents[i]` lies on
/// the rightmost path of the partial tree over `0..i`).
fn enumerate_shapes(n: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut shape = vec![0u32; n];
    // rightmost path as a stack of candidate parents
    fn rec(i: usize, n: usize, shape: &mut Vec<u32>, path: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if i == n {
            out.push(shape.clone());
            return;
        }
        // node i may attach to any node on the current rightmost path
        for pi in 0..path.len() {
            let p = path[pi];
            shape[i] = p;
            let saved: Vec<u32> = path.drain(pi + 1..).collect();
            path.push(i as u32);
            rec(i + 1, n, shape, path, out);
            path.pop();
            path.extend(saved);
        }
    }
    if n == 1 {
        return vec![vec![0]];
    }
    let mut path = vec![0u32];
    rec(1, n, &mut shape, &mut path, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64 as StdRng;

    #[test]
    fn shapes_count_is_catalan() {
        // number of ordered trees with n nodes = Catalan(n-1): 1,1,2,5,14,42
        let catalan = [1usize, 1, 2, 5, 14, 42];
        for (i, &c) in catalan.iter().enumerate() {
            assert_eq!(enumerate_shapes(i + 1).len(), c, "n={}", i + 1);
        }
    }

    #[test]
    fn enumerate_counts() {
        assert_eq!(enumerate_trees(1, 2).len(), 2);
        assert_eq!(enumerate_trees(2, 2).len(), 4);
        assert_eq!(enumerate_trees(3, 2).len(), 16);
        assert_eq!(enumerate_trees(4, 1).len(), 5);
        assert_eq!(enumerate_trees_up_to(3, 1).len(), 1 + 1 + 2);
    }

    #[test]
    fn enumerated_trees_distinct_and_valid() {
        let trees = enumerate_trees(4, 2);
        assert_eq!(trees.len(), 5 * 16);
        for t in &trees {
            assert!(t.validate().is_ok());
            assert_eq!(t.len(), 4);
        }
        for i in 0..trees.len() {
            for j in i + 1..trees.len() {
                assert_ne!(trees[i], trees[j], "duplicate trees at {i},{j}");
            }
        }
    }

    #[test]
    fn random_documents_share_the_catalog_space() {
        let catalog = crate::Catalog::from_names(["p0", "p1", "p2"]);
        let mut rng = StdRng::seed_from_u64(7);
        let d1 = random_document_in(Shape::DocumentLike, 50, &catalog, &mut rng);
        let d2 = random_document_in(Shape::Wide, 50, &catalog, &mut rng);
        for d in [&d1, &d2] {
            assert!(d.tree.validate().is_ok());
            for v in d.tree.nodes() {
                assert!(d.tree.label(v).index() < catalog.len());
            }
        }
        assert_eq!(d1.alphabet.lookup("p1"), d2.alphabet.lookup("p1"));
    }

    #[test]
    fn random_trees_valid() {
        let mut rng = StdRng::seed_from_u64(42);
        for shape in [
            Shape::Recursive,
            Shape::Deep(1),
            Shape::Deep(4),
            Shape::Bounded(2),
            Shape::Wide,
            Shape::DocumentLike,
        ] {
            for &n in &[1usize, 2, 17, 100] {
                let t = random_tree(shape, n, 3, &mut rng);
                assert_eq!(t.len(), n);
                assert!(t.validate().is_ok(), "{shape:?} n={n}");
            }
        }
    }

    #[test]
    fn deep_one_is_chain() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = random_tree(Shape::Deep(1), 50, 2, &mut rng);
        assert_eq!(t.depth(crate::NodeId(49)), 49);
    }

    #[test]
    fn document_like_depth_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = random_tree(Shape::DocumentLike, 500, 5, &mut rng);
        let max_depth = t.nodes().map(|v| t.depth(v)).max().unwrap();
        assert!(max_depth <= 9, "depth {max_depth}");
    }
}

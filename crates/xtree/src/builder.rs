//! SAX-style tree construction.
//!
//! [`TreeBuilder`] assigns node ids in the order nodes are opened, which is
//! exactly preorder — establishing the document-order invariant of
//! [`Tree`] by construction.

use crate::alphabet::Label;
use crate::tree::Tree;

const NONE: u32 = u32::MAX;

/// Incremental builder: `open(label)` starts a node (as the next child of
/// the currently open node), `close()` ends it.
///
/// ```
/// use twx_xtree::{TreeBuilder, Label};
/// let mut b = TreeBuilder::new();
/// b.open(Label(0));       // root
/// b.open(Label(1)); b.close();
/// b.open(Label(2)); b.close();
/// b.close();
/// let t = b.finish();
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.arity(t.root()), 2);
/// ```
#[derive(Debug, Default)]
pub struct TreeBuilder {
    labels: Vec<Label>,
    parent: Vec<u32>,
    first_child: Vec<u32>,
    last_child: Vec<u32>,
    next_sib: Vec<u32>,
    prev_sib: Vec<u32>,
    depth: Vec<u32>,
    stack: Vec<u32>,
    done: bool,
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        TreeBuilder {
            labels: Vec::with_capacity(n),
            parent: Vec::with_capacity(n),
            first_child: Vec::with_capacity(n),
            last_child: Vec::with_capacity(n),
            next_sib: Vec::with_capacity(n),
            prev_sib: Vec::with_capacity(n),
            depth: Vec::with_capacity(n),
            stack: Vec::new(),
            done: false,
        }
    }

    /// Opens a new node labelled `label` as the next child of the innermost
    /// open node (or as the root if none is open).
    ///
    /// # Panics
    /// If the root has already been closed.
    pub fn open(&mut self, label: Label) -> u32 {
        assert!(!self.done, "root already closed");
        let id = self.labels.len() as u32;
        let (par, dep) = match self.stack.last() {
            Some(&p) => (p, self.depth[p as usize] + 1),
            None => {
                assert!(self.labels.is_empty(), "second root opened");
                (NONE, 0)
            }
        };
        self.labels.push(label);
        self.parent.push(par);
        self.first_child.push(NONE);
        self.last_child.push(NONE);
        self.next_sib.push(NONE);
        self.depth.push(dep);
        if par != NONE {
            let prev = self.last_child[par as usize];
            self.prev_sib.push(prev);
            if prev == NONE {
                self.first_child[par as usize] = id;
            } else {
                self.next_sib[prev as usize] = id;
            }
            self.last_child[par as usize] = id;
        } else {
            self.prev_sib.push(NONE);
        }
        self.stack.push(id);
        id
    }

    /// Closes the innermost open node.
    ///
    /// # Panics
    /// If no node is open.
    pub fn close(&mut self) {
        self.stack.pop().expect("close() without open()");
        if self.stack.is_empty() {
            self.done = true;
        }
    }

    /// Convenience: a leaf child (`open` + `close`).
    pub fn leaf(&mut self, label: Label) -> u32 {
        let id = self.open(label);
        self.close();
        id
    }

    /// Number of nodes opened so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether nothing has been opened yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Finishes the build.
    ///
    /// # Panics
    /// If no node was ever opened or some node is still open.
    pub fn finish(self) -> Tree {
        assert!(!self.labels.is_empty(), "finish() on empty builder");
        assert!(
            self.stack.is_empty(),
            "finish() with {} unclosed node(s)",
            self.stack.len()
        );
        Tree::from_parts(
            self.labels,
            self.parent,
            self.first_child,
            self.last_child,
            self.next_sib,
            self.prev_sib,
            self.depth,
        )
    }
}

/// Builds a chain (unary tree) of `n` nodes all labelled `label`.
pub fn chain(n: usize, label: Label) -> Tree {
    assert!(n > 0);
    let mut b = TreeBuilder::with_capacity(n);
    for _ in 0..n {
        b.open(label);
    }
    for _ in 0..n {
        b.close();
    }
    b.finish()
}

/// Builds a star: a root with `n - 1` leaf children, all labelled `label`.
pub fn star(n: usize, label: Label) -> Tree {
    assert!(n > 0);
    let mut b = TreeBuilder::with_capacity(n);
    b.open(label);
    for _ in 1..n {
        b.leaf(label);
    }
    b.close();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preorder_ids() {
        let mut b = TreeBuilder::new();
        let r = b.open(Label(0));
        let x = b.open(Label(1));
        let y = b.open(Label(2));
        b.close();
        b.close();
        let z = b.open(Label(3));
        b.close();
        b.close();
        assert_eq!((r, x, y, z), (0, 1, 2, 3));
        let t = b.finish();
        assert!(t.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "root already closed")]
    fn rejects_forest() {
        let mut b = TreeBuilder::new();
        b.open(Label(0));
        b.close();
        b.open(Label(1));
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn rejects_unclosed() {
        let mut b = TreeBuilder::new();
        b.open(Label(0));
        b.finish();
    }

    #[test]
    fn chain_and_star() {
        let c = chain(5, Label(0));
        assert_eq!(c.len(), 5);
        assert_eq!(c.depth(crate::NodeId(4)), 4);
        assert!(c.validate().is_ok());
        let s = star(5, Label(0));
        assert_eq!(s.arity(s.root()), 4);
        assert!(s.validate().is_ok());
    }
}

//! Typed document edits with affected-span reporting.
//!
//! Three primitive edits cover the mutations a live XML corpus sees:
//! relabel a node, insert a fresh leaf child, remove a whole subtree.
//! Each application returns the new tree **and the half-open preorder
//! span of node ids whose answers may have changed** — the contract the
//! result cache's precise invalidation rests on (see `DESIGN.md`).
//!
//! Span soundness. Node ids are preorder positions, so an edit at
//! preorder position `p` can only change the ids, labels, or structural
//! relations of nodes at positions `>= p` *in the old numbering*, plus
//! the edited node's ancestors' **subtree contents**. A cached answer is
//! keyed by a context node `c` and covers the subtree `[c, end)`; it
//! survives an edit with span `[s, _)` iff `end <= s` — the cached
//! subtree then sits entirely before the edit in preorder, is not an
//! ancestor of the edit point, and keeps both its ids and its answers.
//! To make that test sound each span starts at:
//!
//! * `Relabel v` — `[v, v+1)`: nothing moves, only `v`'s label.
//! * `InsertChild { parent: u, .. }` — `[u, old_len)`: the span is
//!   anchored at the **parent**, not the insertion point, because `u`
//!   itself changes (it gains a child: leaf-ness, arity, `last_child`),
//!   and every node at or after `u` may shift or gain structure.
//! * `RemoveSubtree v` — `[v, old_len)`: ids at and after `v` shift
//!   down; `v`'s ancestors lose a descendant, but any cached subtree
//!   containing the parent of `v` also contains `v`, so anchoring at
//!   `v` is sound.

use crate::alphabet::Label;
use crate::builder::TreeBuilder;
use crate::rng::Rng;
use crate::tree::{Document, NodeId, Tree};
use std::fmt;
use std::sync::Arc;

/// A monotonically increasing per-document version number. Fresh
/// documents start at version 0; every applied edit bumps it by one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DocVersion(pub u64);

impl fmt::Display for DocVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl DocVersion {
    /// The next version.
    pub fn bump(self) -> DocVersion {
        DocVersion(self.0 + 1)
    }
}

/// A half-open preorder id range `[start, end)` in the *pre-edit*
/// numbering: the nodes an edit may have affected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Span {
    /// First affected preorder id.
    pub start: u32,
    /// One past the last affected preorder id.
    pub end: u32,
}

impl Span {
    /// True iff the two half-open ranges share at least one id.
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Number of ids covered.
    pub fn len(&self) -> u32 {
        self.end.saturating_sub(self.start)
    }

    /// True iff the span covers nothing.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// One typed document edit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Edit {
    /// Insert a fresh leaf labelled `label` as the `position`-th child
    /// of `parent` (`position == arity` appends).
    InsertChild {
        /// The node gaining a child.
        parent: NodeId,
        /// Index among `parent`'s children, `0..=arity`.
        position: usize,
        /// Label of the new leaf.
        label: Label,
    },
    /// Remove the whole subtree rooted at `node` (never the root).
    RemoveSubtree {
        /// Root of the doomed subtree.
        node: NodeId,
    },
    /// Replace `node`'s label with `label`.
    Relabel {
        /// The node to relabel.
        node: NodeId,
        /// Its new label.
        label: Label,
    },
}

/// Why an [`Edit`] could not be applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditError {
    /// The named node id is not in the tree.
    NodeOutOfRange {
        /// The offending id.
        node: NodeId,
        /// Tree size at application time.
        len: usize,
    },
    /// `InsertChild` position exceeds the parent's arity.
    PositionOutOfRange {
        /// Requested child index.
        position: usize,
        /// The parent's arity.
        arity: usize,
    },
    /// `RemoveSubtree` targeted the root (a tree cannot be empty).
    CannotRemoveRoot,
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::NodeOutOfRange { node, len } => {
                write!(f, "node {} out of range (tree has {} nodes)", node.0, len)
            }
            EditError::PositionOutOfRange { position, arity } => {
                write!(f, "child position {position} out of range (arity {arity})")
            }
            EditError::CannotRemoveRoot => write!(f, "cannot remove the root subtree"),
        }
    }
}

impl std::error::Error for EditError {}

fn check_node(t: &Tree, v: NodeId) -> Result<(), EditError> {
    if (v.0 as usize) < t.len() {
        Ok(())
    } else {
        Err(EditError::NodeOutOfRange {
            node: v,
            len: t.len(),
        })
    }
}

/// Applies `edit` to `t`, returning the new tree and the affected span
/// (in `t`'s pre-edit preorder numbering; see the module docs for the
/// span contract). `t` is not modified.
pub fn apply_edit(t: &Tree, edit: &Edit) -> Result<(Tree, Span), EditError> {
    let old_len = t.len() as u32;
    match *edit {
        Edit::Relabel { node, label } => {
            check_node(t, node)?;
            let mut out = t.clone();
            out.set_label(node, label);
            Ok((
                out,
                Span {
                    start: node.0,
                    end: node.0 + 1,
                },
            ))
        }
        Edit::RemoveSubtree { node } => {
            check_node(t, node)?;
            if t.is_root(node) {
                return Err(EditError::CannotRemoveRoot);
            }
            let out = rebuild(t, None, Some(node));
            Ok((
                out,
                Span {
                    start: node.0,
                    end: old_len,
                },
            ))
        }
        Edit::InsertChild {
            parent,
            position,
            label,
        } => {
            check_node(t, parent)?;
            let arity = t.arity(parent);
            if position > arity {
                return Err(EditError::PositionOutOfRange { position, arity });
            }
            let out = rebuild(t, Some((parent, position, label)), None);
            Ok((
                out,
                Span {
                    start: parent.0,
                    end: old_len,
                },
            ))
        }
    }
}

/// Rebuilds `t` in one preorder pass, optionally skipping the subtree at
/// `skip` and optionally inserting a leaf under `insert.0` at child
/// index `insert.1` (the two are never both set by callers, but the
/// walk handles either).
fn rebuild(t: &Tree, insert: Option<(NodeId, usize, Label)>, skip: Option<NodeId>) -> Tree {
    let cap = t.len() + usize::from(insert.is_some() && skip.is_none());
    let mut b = TreeBuilder::with_capacity(cap);
    enum Ev {
        Open(NodeId),
        Leaf(Label),
        Close,
    }
    let mut stack = vec![Ev::Open(t.root())];
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Open(u) => {
                if skip == Some(u) {
                    continue;
                }
                b.open(t.label(u));
                stack.push(Ev::Close);
                let mut children = Vec::new();
                let mut c = t.first_child(u);
                while let Some(w) = c {
                    children.push(w);
                    c = t.next_sibling(w);
                }
                // push in reverse so they pop in document order,
                // splicing the inserted leaf at its child index
                let insert_here = match insert {
                    Some((p, pos, l)) if p == u => Some((pos, l)),
                    _ => None,
                };
                if let Some((pos, l)) = insert_here {
                    if pos >= children.len() {
                        stack.push(Ev::Leaf(l));
                    }
                }
                for (i, &w) in children.iter().enumerate().rev() {
                    stack.push(Ev::Open(w));
                    if let Some((pos, l)) = insert_here {
                        if pos == i {
                            stack.push(Ev::Leaf(l));
                        }
                    }
                }
            }
            Ev::Leaf(l) => {
                b.leaf(l);
            }
            Ev::Close => b.close(),
        }
    }
    b.finish()
}

/// A [`Document`] paired with its [`DocVersion`]. Applying an edit
/// produces a **new** `Arc<Document>` (the old one stays valid for any
/// reader still holding it — the MVCC building block) plus a receipt.
#[derive(Clone, Debug)]
pub struct VersionedDocument {
    /// The current document snapshot.
    pub doc: Arc<Document>,
    /// Its version (0 at ingest).
    pub version: DocVersion,
}

/// What [`VersionedDocument::apply`] reports back.
#[derive(Clone, Debug)]
pub struct EditReceipt {
    /// The version the edit produced.
    pub version: DocVersion,
    /// Affected span in the pre-edit numbering.
    pub affected: Span,
    /// Node count after the edit.
    pub new_len: usize,
}

impl VersionedDocument {
    /// Wraps a freshly ingested document at version 0.
    pub fn new(doc: Arc<Document>) -> VersionedDocument {
        VersionedDocument {
            doc,
            version: DocVersion(0),
        }
    }

    /// Applies `edit`, swapping in the new document and bumping the
    /// version. On error nothing changes.
    pub fn apply(&mut self, edit: &Edit) -> Result<EditReceipt, EditError> {
        let (tree, affected) = apply_edit(&self.doc.tree, edit)?;
        let new_len = tree.len();
        self.doc = Arc::new(Document::new(tree, self.doc.alphabet.clone()));
        self.version = self.version.bump();
        Ok(EditReceipt {
            version: self.version,
            affected,
            new_len,
        })
    }
}

/// Draws a random applicable edit for `t` over `labels` (which must be
/// non-empty). Removal is only drawn when the tree has a non-root node;
/// the mix is roughly 40% relabel / 35% insert / 25% remove.
pub fn random_edit<R: Rng>(t: &Tree, labels: &[Label], rng: &mut R) -> Edit {
    assert!(!labels.is_empty(), "random_edit needs at least one label");
    let label = labels[rng.gen_range(0..labels.len())];
    let roll = rng.gen_range(0..100u32);
    if roll < 40 || (t.len() == 1 && roll >= 75) {
        let node = NodeId(rng.gen_range(0..t.len() as u32));
        Edit::Relabel { node, label }
    } else if roll < 75 {
        let parent = NodeId(rng.gen_range(0..t.len() as u32));
        let position = rng.gen_range(0..t.arity(parent) + 1);
        Edit::InsertChild {
            parent,
            position,
            label,
        }
    } else {
        // any non-root node; t.len() > 1 here
        let node = NodeId(rng.gen_range(1..t.len() as u32));
        Edit::RemoveSubtree { node }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sexp;
    use crate::rng::SplitMix64;
    use crate::serialize::to_sexp;

    fn tree(s: &str) -> (Tree, crate::Alphabet) {
        let d = parse_sexp(s).unwrap();
        (d.tree, d.alphabet)
    }

    #[test]
    fn relabel_changes_one_label_and_nothing_else() {
        let (t, al) = tree("(a (b c) b)");
        let l_a = al.lookup("a").unwrap();
        let (t2, span) = apply_edit(
            &t,
            &Edit::Relabel {
                node: NodeId(1),
                label: l_a,
            },
        )
        .unwrap();
        assert_eq!(to_sexp(&t2, &al), "(a (a c) b)");
        assert_eq!(span, Span { start: 1, end: 2 });
        assert_eq!(t2.len(), t.len());
        t2.validate().unwrap();
    }

    #[test]
    fn insert_child_at_every_position() {
        let (t, al) = tree("(a b c)");
        let l = al.lookup("c").unwrap();
        for (pos, want) in [(0, "(a c b c)"), (1, "(a b c c)"), (2, "(a b c c)")] {
            let (t2, span) = apply_edit(
                &t,
                &Edit::InsertChild {
                    parent: NodeId(0),
                    position: pos,
                    label: l,
                },
            )
            .unwrap();
            assert_eq!(to_sexp(&t2, &al), want, "position {pos}");
            assert_eq!(span, Span { start: 0, end: 3 });
            t2.validate().unwrap();
        }
    }

    #[test]
    fn insert_under_leaf_makes_it_internal() {
        let (t, al) = tree("(a b)");
        let l = al.lookup("a").unwrap();
        let (t2, span) = apply_edit(
            &t,
            &Edit::InsertChild {
                parent: NodeId(1),
                position: 0,
                label: l,
            },
        )
        .unwrap();
        assert_eq!(to_sexp(&t2, &al), "(a (b a))");
        assert_eq!(span, Span { start: 1, end: 2 });
        t2.validate().unwrap();
    }

    #[test]
    fn remove_subtree_matches_delete_subtree() {
        let (t, al) = tree("(a (b c c) b)");
        let (t2, span) = apply_edit(&t, &Edit::RemoveSubtree { node: NodeId(1) }).unwrap();
        assert_eq!(to_sexp(&t2, &al), "(a b)");
        assert_eq!(span, Span { start: 1, end: 5 });
        assert_eq!(
            to_sexp(&t2, &al),
            to_sexp(&crate::shrink::delete_subtree(&t, NodeId(1)), &al)
        );
        t2.validate().unwrap();
    }

    #[test]
    fn edit_errors_are_typed() {
        let (t, al) = tree("(a b)");
        let l = al.lookup("a").unwrap();
        assert_eq!(
            apply_edit(
                &t,
                &Edit::Relabel {
                    node: NodeId(9),
                    label: l
                }
            ),
            Err(EditError::NodeOutOfRange {
                node: NodeId(9),
                len: 2
            })
        );
        assert_eq!(
            apply_edit(&t, &Edit::RemoveSubtree { node: NodeId(0) }),
            Err(EditError::CannotRemoveRoot)
        );
        assert_eq!(
            apply_edit(
                &t,
                &Edit::InsertChild {
                    parent: NodeId(0),
                    position: 2,
                    label: l
                }
            ),
            Err(EditError::PositionOutOfRange {
                position: 2,
                arity: 1
            })
        );
    }

    #[test]
    fn versioned_document_bumps_and_keeps_old_snapshot() {
        let d = parse_sexp("(a b)").unwrap();
        let alphabet = d.alphabet.clone();
        let l = alphabet.lookup("a").unwrap();
        let mut vd = VersionedDocument::new(Arc::new(d));
        let old = Arc::clone(&vd.doc);
        assert_eq!(vd.version, DocVersion(0));
        let r = vd
            .apply(&Edit::Relabel {
                node: NodeId(1),
                label: l,
            })
            .unwrap();
        assert_eq!(r.version, DocVersion(1));
        assert_eq!(vd.version, DocVersion(1));
        // the pinned snapshot is untouched
        assert_eq!(to_sexp(&old.tree, &old.alphabet), "(a b)");
        assert_eq!(to_sexp(&vd.doc.tree, &vd.doc.alphabet), "(a a)");
        // a failing edit changes nothing
        assert!(vd.apply(&Edit::RemoveSubtree { node: NodeId(0) }).is_err());
        assert_eq!(vd.version, DocVersion(1));
    }

    #[test]
    fn random_edits_always_apply_and_stay_valid() {
        let mut rng = SplitMix64::seed_from_u64(99);
        let (mut t, al) = tree("(a (b c) (c b (a c)))");
        let labels: Vec<Label> = al.labels().collect();
        for i in 0..500 {
            let e = random_edit(&t, &labels, &mut rng);
            let (t2, span) = apply_edit(&t, &e).unwrap_or_else(|err| {
                panic!("step {i}: edit {e:?} on {} failed: {err}", to_sexp(&t, &al))
            });
            assert!(span.start < t.len() as u32, "span starts in the old tree");
            t2.validate().unwrap();
            t = t2;
        }
    }

    #[test]
    fn span_overlap_is_symmetric_and_respects_boundaries() {
        let a = Span { start: 2, end: 5 };
        assert!(a.overlaps(&Span { start: 4, end: 9 }));
        assert!(!a.overlaps(&Span { start: 5, end: 9 }));
        assert!(!a.overlaps(&Span { start: 0, end: 2 }));
        assert!(Span { start: 0, end: 2 }.overlaps(&a) == a.overlaps(&Span { start: 0, end: 2 }));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span { start: 3, end: 3 }.is_empty());
    }
}

//! Document shrinking for counterexample minimisation.
//!
//! When a differential harness finds a `(query, document)` pair on which
//! two evaluation routes disagree, the document half of the repro is
//! minimised by repeatedly **deleting whole subtrees** and re-checking
//! the oracle. This module provides the deterministic candidate
//! generator that drives that loop: every candidate is a valid tree that
//! is strictly smaller than the input, and candidates are ordered so a
//! greedy first-accept scan deletes the largest subtree it can.

use crate::builder::TreeBuilder;
use crate::tree::{NodeId, Tree};

/// Returns `t` with the subtree rooted at `v` removed.
///
/// Siblings of `v` keep their order; all other structure is untouched
/// (node ids are re-assigned in preorder as always).
///
/// # Panics
/// If `v` is the root (a tree cannot be empty) or out of range.
pub fn delete_subtree(t: &Tree, v: NodeId) -> Tree {
    assert!(!t.is_root(v), "cannot delete the root subtree");
    let span = (t.subtree_end(v) - v.0) as usize;
    let mut b = TreeBuilder::with_capacity(t.len() - span);
    enum Ev {
        Open(NodeId),
        Close,
    }
    let mut stack = vec![Ev::Open(t.root())];
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Open(u) => {
                if u == v {
                    continue; // skip the whole subtree
                }
                b.open(t.label(u));
                stack.push(Ev::Close);
                // push children in reverse so they pop in document order
                let mut children = Vec::new();
                let mut c = t.first_child(u);
                while let Some(w) = c {
                    children.push(w);
                    c = t.next_sibling(w);
                }
                for &w in children.iter().rev() {
                    stack.push(Ev::Open(w));
                }
            }
            Ev::Close => b.close(),
        }
    }
    b.finish()
}

/// All single-step shrink candidates of `t`: one tree per deletable
/// (non-root) subtree, **ordered smallest-result-first** — i.e. the
/// candidate that deleted the largest subtree comes first, so a greedy
/// minimiser makes the biggest cut it can at every step.
///
/// Every candidate is strictly smaller than `t` and valid; a single-node
/// tree has no candidates.
pub fn shrink_tree(t: &Tree) -> Vec<Tree> {
    let mut victims: Vec<NodeId> = t.nodes().filter(|&v| !t.is_root(v)).collect();
    // biggest subtree first; ties broken by id for determinism
    victims.sort_by_key(|&v| (t.len() - (t.subtree_end(v) - v.0) as usize, v.0));
    victims.into_iter().map(|v| delete_subtree(t, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sexp;
    use crate::serialize::to_sexp;

    fn tree(s: &str) -> (Tree, crate::Alphabet) {
        let d = parse_sexp(s).unwrap();
        (d.tree, d.alphabet)
    }

    #[test]
    fn deletes_leaf_and_internal_subtrees() {
        let (t, ab) = tree("(a (b d e) c)");
        // node ids: a=0 b=1 d=2 e=3 c=4
        let no_b = delete_subtree(&t, NodeId(1));
        assert_eq!(to_sexp(&no_b, &ab), "(a c)");
        let no_d = delete_subtree(&t, NodeId(2));
        assert_eq!(to_sexp(&no_d, &ab), "(a (b e) c)");
        let no_c = delete_subtree(&t, NodeId(4));
        assert_eq!(to_sexp(&no_c, &ab), "(a (b d e))");
        for s in [&no_b, &no_d, &no_c] {
            assert!(s.validate().is_ok());
        }
    }

    #[test]
    fn candidates_shrink_and_cover_every_subtree() {
        let (t, _) = tree("(a (b d) c)");
        let cands = shrink_tree(&t);
        assert_eq!(cands.len(), t.len() - 1);
        for c in &cands {
            assert!(c.len() < t.len());
            assert!(c.validate().is_ok());
        }
        // greedy order: the largest deletion (subtree b: 2 nodes) first
        assert_eq!(cands[0].len(), 2);
    }

    #[test]
    fn singleton_has_no_candidates() {
        let (t, _) = tree("x");
        assert!(shrink_tree(&t).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot delete the root")]
    fn deleting_the_root_panics() {
        let (t, _) = tree("(a b)");
        delete_subtree(&t, t.root());
    }
}

//! Arena representation of sibling-ordered labelled trees.
//!
//! Node ids are dense `u32` indices assigned in **document order**
//! (preorder): the root is node 0, and every node's id is smaller than the
//! ids of all nodes in its subtree and of all its following siblings'
//! subtrees. Several evaluators rely on this invariant (documented on
//! [`Tree`]); [`Tree::validate`] checks it.

use crate::alphabet::{Alphabet, Label};
use std::fmt;

/// A node identifier: a dense index into the tree arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

const NONE: u32 = u32::MAX;

#[inline]
fn opt(raw: u32) -> Option<NodeId> {
    if raw == NONE {
        None
    } else {
        Some(NodeId(raw))
    }
}

/// A finite sibling-ordered labelled tree.
///
/// Invariants:
/// * non-empty: there is always a root, node `0`;
/// * node ids are assigned in preorder (document order);
/// * the five link arrays are mutually consistent.
///
/// Links are stored struct-of-arrays for cache locality; all navigation
/// accessors are O(1).
#[derive(Clone, PartialEq, Eq)]
pub struct Tree {
    labels: Vec<Label>,
    parent: Vec<u32>,
    first_child: Vec<u32>,
    last_child: Vec<u32>,
    next_sib: Vec<u32>,
    prev_sib: Vec<u32>,
    /// depth[v] = number of edges from the root (root has depth 0).
    depth: Vec<u32>,
}

impl Tree {
    /// Creates a single-node tree.
    pub fn leaf(label: Label) -> Self {
        Tree {
            labels: vec![label],
            parent: vec![NONE],
            first_child: vec![NONE],
            last_child: vec![NONE],
            next_sib: vec![NONE],
            prev_sib: vec![NONE],
            depth: vec![0],
        }
    }

    pub(crate) fn from_parts(
        labels: Vec<Label>,
        parent: Vec<u32>,
        first_child: Vec<u32>,
        last_child: Vec<u32>,
        next_sib: Vec<u32>,
        prev_sib: Vec<u32>,
        depth: Vec<u32>,
    ) -> Self {
        let t = Tree {
            labels,
            parent,
            first_child,
            last_child,
            next_sib,
            prev_sib,
            depth,
        };
        debug_assert!(t.validate().is_ok(), "inconsistent tree arena");
        t
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Trees are never empty, but the method exists for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root node (always id 0).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// The label of `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v.index()]
    }

    /// Overwrites the label of `v`. Crate-internal: the only structural
    /// mutation a `Tree` admits in place (everything else rebuilds), used
    /// by `edit::apply_edit` for `Relabel`.
    #[inline]
    pub(crate) fn set_label(&mut self, v: NodeId, l: Label) {
        self.labels[v.index()] = l;
    }

    /// The parent of `v`, if any.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        opt(self.parent[v.index()])
    }

    /// The first (leftmost) child of `v`, if any.
    #[inline]
    pub fn first_child(&self, v: NodeId) -> Option<NodeId> {
        opt(self.first_child[v.index()])
    }

    /// The last (rightmost) child of `v`, if any.
    #[inline]
    pub fn last_child(&self, v: NodeId) -> Option<NodeId> {
        opt(self.last_child[v.index()])
    }

    /// The next sibling of `v` (the `→` axis), if any.
    #[inline]
    pub fn next_sibling(&self, v: NodeId) -> Option<NodeId> {
        opt(self.next_sib[v.index()])
    }

    /// The previous sibling of `v` (the `←` axis), if any.
    #[inline]
    pub fn prev_sibling(&self, v: NodeId) -> Option<NodeId> {
        opt(self.prev_sib[v.index()])
    }

    /// Depth of `v` (root has depth 0).
    #[inline]
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.index()]
    }

    /// Whether `v` is the root.
    #[inline]
    pub fn is_root(&self, v: NodeId) -> bool {
        self.parent[v.index()] == NONE
    }

    /// Whether `v` has no children.
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.first_child[v.index()] == NONE
    }

    /// Whether `v` is a first child (or the root).
    #[inline]
    pub fn is_first_sibling(&self, v: NodeId) -> bool {
        self.prev_sib[v.index()] == NONE
    }

    /// Whether `v` is a last child (or the root).
    #[inline]
    pub fn is_last_sibling(&self, v: NodeId) -> bool {
        self.next_sib[v.index()] == NONE
    }

    /// Iterates over all nodes in document order.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId)
    }

    /// Number of children of `v` (O(#children)).
    pub fn arity(&self, v: NodeId) -> usize {
        let mut n = 0;
        let mut c = self.first_child(v);
        while let Some(u) = c {
            n += 1;
            c = self.next_sibling(u);
        }
        n
    }

    /// The maximum id in the subtree rooted at `v` **plus one**; because ids
    /// are preorder, the subtree of `v` is exactly `v.0 .. subtree_end(v)`.
    pub fn subtree_end(&self, v: NodeId) -> u32 {
        // Walk up from v until a node with a next sibling is found; the
        // subtree ends right before that sibling, or at len() at the root.
        let mut u = v;
        loop {
            if let Some(s) = self.next_sibling(u) {
                return s.0;
            }
            match self.parent(u) {
                Some(p) => u = p,
                None => return self.len() as u32,
            }
        }
    }

    /// Whether `anc` is an ancestor of `v` (strict) — O(depth).
    pub fn is_ancestor(&self, anc: NodeId, v: NodeId) -> bool {
        let mut u = self.parent(v);
        while let Some(w) = u {
            if w == anc {
                return true;
            }
            u = self.parent(w);
        }
        false
    }

    /// Extracts the subtree rooted at `v` as a fresh tree (node ids are
    /// renumbered in preorder). Used by the `W` (within) operator.
    pub fn subtree(&self, v: NodeId) -> Tree {
        let start = v.0;
        let end = self.subtree_end(v);
        let n = (end - start) as usize;
        let remap = |raw: u32| -> u32 {
            if raw == NONE || raw < start || raw >= end {
                NONE
            } else {
                raw - start
            }
        };
        let mut labels = Vec::with_capacity(n);
        let mut parent = Vec::with_capacity(n);
        let mut first_child = Vec::with_capacity(n);
        let mut last_child = Vec::with_capacity(n);
        let mut next_sib = Vec::with_capacity(n);
        let mut prev_sib = Vec::with_capacity(n);
        let mut depth = Vec::with_capacity(n);
        let base_depth = self.depth[v.index()];
        for i in start..end {
            let i = i as usize;
            labels.push(self.labels[i]);
            parent.push(remap(self.parent[i]));
            first_child.push(remap(self.first_child[i]));
            last_child.push(remap(self.last_child[i]));
            // Siblings of v itself are outside the subtree; remap handles it.
            next_sib.push(remap(self.next_sib[i]));
            prev_sib.push(remap(self.prev_sib[i]));
            depth.push(self.depth[i] - base_depth);
        }
        Tree::from_parts(
            labels,
            parent,
            first_child,
            last_child,
            next_sib,
            prev_sib,
            depth,
        )
    }

    /// Checks all arena invariants; returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.len();
        if n == 0 {
            return Err("empty tree".into());
        }
        let arrays = [
            ("parent", &self.parent),
            ("first_child", &self.first_child),
            ("last_child", &self.last_child),
            ("next_sib", &self.next_sib),
            ("prev_sib", &self.prev_sib),
        ];
        for (name, arr) in arrays {
            if arr.len() != n {
                return Err(format!("{name} length {} != {n}", arr.len()));
            }
            for (i, &x) in arr.iter().enumerate() {
                if x != NONE && x as usize >= n {
                    return Err(format!("{name}[{i}] = {x} out of range"));
                }
            }
        }
        if self.depth.len() != n {
            return Err("depth length mismatch".into());
        }
        if self.parent[0] != NONE {
            return Err("node 0 is not a root".into());
        }
        for i in 1..n {
            if self.parent[i] == NONE {
                return Err(format!("node {i} has no parent (forest?)"));
            }
        }
        for v in self.nodes() {
            let i = v.index();
            // preorder: parent < child, prev_sib < node < next_sib
            if let Some(p) = self.parent(v) {
                if p.0 >= v.0 {
                    return Err(format!("parent {p:?} >= child {v:?} (not preorder)"));
                }
                if self.depth[i] != self.depth[p.index()] + 1 {
                    return Err(format!("depth[{v:?}] inconsistent"));
                }
            } else if self.depth[i] != 0 {
                return Err("root depth != 0".into());
            }
            if let Some(c) = self.first_child(v) {
                if self.parent(c) != Some(v) {
                    return Err(format!("first_child link broken at {v:?}"));
                }
                if c.0 != v.0 + 1 {
                    return Err(format!("first child of {v:?} is not v+1 (not preorder)"));
                }
                if self.prev_sibling(c).is_some() {
                    return Err(format!("first child {c:?} has a prev sibling"));
                }
            }
            if let Some(c) = self.last_child(v) {
                if self.parent(c) != Some(v) {
                    return Err(format!("last_child link broken at {v:?}"));
                }
                if self.next_sibling(c).is_some() {
                    return Err(format!("last child {c:?} has a next sibling"));
                }
            }
            if self.first_child(v).is_some() != self.last_child(v).is_some() {
                return Err(format!("first/last child mismatch at {v:?}"));
            }
            if let Some(s) = self.next_sibling(v) {
                if self.prev_sibling(s) != Some(v) {
                    return Err(format!("sibling links broken at {v:?}"));
                }
                if self.parent(s) != self.parent(v) {
                    return Err(format!("siblings {v:?},{s:?} have different parents"));
                }
                if s.0 != self.subtree_end(v) {
                    return Err(format!(
                        "next sibling of {v:?} is not subtree_end (not preorder)"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tree({} nodes)", self.len())
    }
}

/// A tree bundled with the alphabet its labels were interned in —
/// the convenient unit for parsing and printing documents.
#[derive(Clone, Debug)]
pub struct Document {
    /// The tree structure.
    pub tree: Tree,
    /// The label space of `tree` (and of queries run against it).
    pub alphabet: Alphabet,
}

impl Document {
    /// Bundles a tree with its alphabet.
    pub fn new(tree: Tree, alphabet: Alphabet) -> Self {
        Document { tree, alphabet }
    }

    /// The name of the label of `v`.
    pub fn label_name(&self, v: NodeId) -> &str {
        self.alphabet.name(self.tree.label(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;

    fn sample() -> Tree {
        // (a (b (d) (e)) (c))
        let mut b = TreeBuilder::new();
        b.open(Label(0));
        b.open(Label(1));
        b.open(Label(3));
        b.close();
        b.open(Label(4));
        b.close();
        b.close();
        b.open(Label(2));
        b.close();
        b.close();
        b.finish()
    }

    #[test]
    fn navigation() {
        let t = sample();
        assert_eq!(t.len(), 5);
        let root = t.root();
        assert!(t.is_root(root));
        let b = t.first_child(root).unwrap();
        assert_eq!(t.label(b), Label(1));
        let c = t.next_sibling(b).unwrap();
        assert_eq!(t.label(c), Label(2));
        assert_eq!(t.last_child(root), Some(c));
        assert_eq!(t.prev_sibling(c), Some(b));
        assert!(t.is_leaf(c));
        assert!(t.is_last_sibling(c));
        assert!(t.is_first_sibling(b));
        let d = t.first_child(b).unwrap();
        assert_eq!(t.depth(d), 2);
        assert!(t.is_ancestor(root, d));
        assert!(t.is_ancestor(b, d));
        assert!(!t.is_ancestor(c, d));
        assert!(!t.is_ancestor(d, d));
    }

    #[test]
    fn subtree_ranges() {
        let t = sample();
        let b = t.first_child(t.root()).unwrap();
        assert_eq!(t.subtree_end(b), 4);
        assert_eq!(t.subtree_end(t.root()), 5);
        let sub = t.subtree(b);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.label(sub.root()), Label(1));
        assert!(sub.validate().is_ok());
        assert_eq!(sub.arity(sub.root()), 2);
    }

    #[test]
    fn arity_counts_children() {
        let t = sample();
        assert_eq!(t.arity(t.root()), 2);
        let b = t.first_child(t.root()).unwrap();
        assert_eq!(t.arity(b), 2);
        let c = t.last_child(t.root()).unwrap();
        assert_eq!(t.arity(c), 0);
    }

    #[test]
    fn validate_accepts_leaf() {
        assert!(Tree::leaf(Label(7)).validate().is_ok());
    }
}

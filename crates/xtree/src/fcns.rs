//! First-child/next-sibling (FCNS) binary encoding.
//!
//! The classical bijection between unranked ordered forests and binary
//! trees: in the encoding, the *left* child of a node is its first child in
//! the unranked tree and the *right* child is its next sibling. Regular
//! (MSO-definable) unranked tree languages are exactly the languages whose
//! FCNS encodings are regular binary tree languages, so the bottom-up
//! automata of `twx-treeauto` run on [`BinTree`]s.

use crate::alphabet::Label;
use crate::builder::TreeBuilder;
use crate::tree::{NodeId, Tree};

const NONE: u32 = u32::MAX;

/// A binary tree: each node has an optional left and right child.
///
/// Node ids coincide with the source [`Tree`]'s ids when produced by
/// [`BinTree::encode`] (the encoding is a relabelling of edges, not of
/// nodes), which lets automata results be read back directly as node sets
/// of the unranked tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinTree {
    labels: Vec<Label>,
    left: Vec<u32>,
    right: Vec<u32>,
    root: u32,
}

impl BinTree {
    /// Encodes an unranked tree: `left = first child`, `right = next
    /// sibling`. Node ids are preserved.
    pub fn encode(t: &Tree) -> BinTree {
        let n = t.len();
        let mut left = vec![NONE; n];
        let mut right = vec![NONE; n];
        let mut labels = Vec::with_capacity(n);
        for v in t.nodes() {
            labels.push(t.label(v));
            if let Some(c) = t.first_child(v) {
                left[v.index()] = c.0;
            }
            if let Some(s) = t.next_sibling(v) {
                right[v.index()] = s.0;
            }
        }
        BinTree {
            labels,
            left,
            right,
            root: 0,
        }
    }

    /// Decodes back to an unranked tree.
    ///
    /// # Panics
    /// If the root has a right child (which would encode a forest, not a
    /// tree).
    pub fn decode(&self) -> Tree {
        assert_eq!(
            self.right[self.root as usize], NONE,
            "root has a next sibling: this encodes a forest"
        );
        let mut b = TreeBuilder::with_capacity(self.labels.len());
        self.decode_rec(self.root, &mut b);
        b.finish()
    }

    fn decode_rec(&self, v: u32, b: &mut TreeBuilder) {
        b.open(self.labels[v as usize]);
        if self.left[v as usize] != NONE {
            let mut c = self.left[v as usize];
            loop {
                self.decode_rec(c, b);
                c = self.right[c as usize];
                if c == NONE {
                    break;
                }
            }
        }
        b.close();
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the tree has no nodes (never true for encodings).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        NodeId(self.root)
    }

    /// The label of `v`.
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v.index()]
    }

    /// Left (first-child) successor.
    pub fn left(&self, v: NodeId) -> Option<NodeId> {
        let r = self.left[v.index()];
        (r != NONE).then_some(NodeId(r))
    }

    /// Right (next-sibling) successor.
    pub fn right(&self, v: NodeId) -> Option<NodeId> {
        let r = self.right[v.index()];
        (r != NONE).then_some(NodeId(r))
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// A postorder traversal of the binary tree (left, right, node) —
    /// the evaluation order of bottom-up automata.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![(self.root, false)];
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                out.push(NodeId(v));
                continue;
            }
            stack.push((v, true));
            if self.right[v as usize] != NONE {
                stack.push((self.right[v as usize], false));
            }
            if self.left[v as usize] != NONE {
                stack.push((self.left[v as usize], false));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sexp;

    #[test]
    fn encode_links() {
        let doc = parse_sexp("(a (b d e) c)").unwrap();
        let bt = BinTree::encode(&doc.tree);
        // a=0 b=1 d=2 e=3 c=4
        assert_eq!(bt.left(NodeId(0)), Some(NodeId(1)));
        assert_eq!(bt.right(NodeId(0)), None);
        assert_eq!(bt.left(NodeId(1)), Some(NodeId(2)));
        assert_eq!(bt.right(NodeId(1)), Some(NodeId(4)));
        assert_eq!(bt.right(NodeId(2)), Some(NodeId(3)));
        assert_eq!(bt.left(NodeId(2)), None);
    }

    #[test]
    fn roundtrip() {
        for s in [
            "x",
            "(a b)",
            "(a (b d e) c)",
            "(a (a (a (a))))",
            "(r a b c d e)",
        ] {
            let doc = parse_sexp(s).unwrap();
            let bt = BinTree::encode(&doc.tree);
            let back = bt.decode();
            assert_eq!(back, doc.tree, "roundtrip failed for {s}");
        }
    }

    #[test]
    fn postorder_visits_all_once() {
        let doc = parse_sexp("(a (b d e) (c f))").unwrap();
        let bt = BinTree::encode(&doc.tree);
        let po = bt.postorder();
        assert_eq!(po.len(), bt.len());
        let mut seen = vec![false; bt.len()];
        for v in &po {
            assert!(!seen[v.index()]);
            seen[v.index()] = true;
        }
        // children (in the binary sense) come before parents
        let pos: Vec<usize> = {
            let mut p = vec![0; bt.len()];
            for (i, v) in po.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for v in bt.nodes() {
            if let Some(l) = bt.left(v) {
                assert!(pos[l.index()] < pos[v.index()]);
            }
            if let Some(r) = bt.right(v) {
                assert!(pos[r.index()] < pos[v.index()]);
            }
        }
    }
}

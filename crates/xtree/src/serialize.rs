//! Serializers: XML, s-expressions, Graphviz DOT.

use crate::alphabet::Alphabet;
use crate::tree::{NodeId, Tree};
use std::fmt::Write;

/// Serializes `t` as XML (no text content; empty elements self-close).
pub fn to_xml(t: &Tree, alphabet: &Alphabet) -> String {
    let mut out = String::new();
    xml_node(t, alphabet, t.root(), &mut out);
    out
}

fn xml_node(t: &Tree, ab: &Alphabet, v: NodeId, out: &mut String) {
    let name = ab.name(t.label(v));
    if t.is_leaf(v) {
        let _ = write!(out, "<{name}/>");
        return;
    }
    let _ = write!(out, "<{name}>");
    let mut c = t.first_child(v);
    while let Some(u) = c {
        xml_node(t, ab, u, out);
        c = t.next_sibling(u);
    }
    let _ = write!(out, "</{name}>");
}

/// Serializes `t` as an s-expression: `(label child ...)`; leaves print bare.
pub fn to_sexp(t: &Tree, alphabet: &Alphabet) -> String {
    let mut out = String::new();
    sexp_node(t, alphabet, t.root(), &mut out, true);
    out
}

fn sexp_node(t: &Tree, ab: &Alphabet, v: NodeId, out: &mut String, is_root: bool) {
    let name = ab.name(t.label(v));
    if t.is_leaf(v) && !is_root {
        out.push_str(name);
        return;
    }
    let _ = write!(out, "({name}");
    let mut c = t.first_child(v);
    while let Some(u) = c {
        out.push(' ');
        sexp_node(t, ab, u, out, false);
        c = t.next_sibling(u);
    }
    out.push(')');
}

/// Serializes `t` as a Graphviz DOT digraph (child edges solid, next-sibling
/// edges dashed), for debugging and documentation figures.
pub fn to_dot(t: &Tree, alphabet: &Alphabet) -> String {
    let mut out = String::from("digraph tree {\n  node [shape=circle];\n");
    for v in t.nodes() {
        let _ = writeln!(out, "  n{} [label=\"{}\"];", v.0, alphabet.name(t.label(v)));
    }
    for v in t.nodes() {
        if let Some(c) = t.first_child(v) {
            let _ = writeln!(out, "  n{} -> n{};", v.0, c.0);
            let mut s = t.next_sibling(c);
            let mut prev = c;
            while let Some(u) = s {
                let _ = writeln!(out, "  n{} -> n{};", v.0, u.0);
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [style=dashed, constraint=false];",
                    prev.0, u.0
                );
                prev = u;
                s = t.next_sibling(u);
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_sexp, parse_xml};

    #[test]
    fn xml_roundtrip() {
        let doc = parse_xml("<a><b><d/><e/></b><c/></a>").unwrap();
        let xml = to_xml(&doc.tree, &doc.alphabet);
        assert_eq!(xml, "<a><b><d/><e/></b><c/></a>");
        let doc2 = parse_xml(&xml).unwrap();
        assert_eq!(doc2.tree, doc.tree);
    }

    #[test]
    fn sexp_roundtrip() {
        let doc = parse_sexp("(a (b d e) c)").unwrap();
        let s = to_sexp(&doc.tree, &doc.alphabet);
        assert_eq!(s, "(a (b d e) c)");
        let doc2 = parse_sexp(&s).unwrap();
        assert_eq!(doc2.tree, doc.tree);
    }

    #[test]
    fn singleton_sexp() {
        let doc = parse_sexp("x").unwrap();
        assert_eq!(to_sexp(&doc.tree, &doc.alphabet), "(x)");
    }

    #[test]
    fn dot_mentions_all_nodes() {
        let doc = parse_sexp("(a b c)").unwrap();
        let dot = to_dot(&doc.tree, &doc.alphabet);
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n0 -> n2"));
        assert!(dot.contains("style=dashed"));
    }
}

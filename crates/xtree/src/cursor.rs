//! An ergonomic navigation cursor.
//!
//! [`Cursor`] wraps a tree position and exposes chainable, fallible moves
//! — the hand-written counterpart of what tree walking automata do, handy
//! in examples and tests, and a readable way to express manual walks.

use crate::alphabet::Label;
use crate::tree::{NodeId, Tree};

/// A position in a tree with chainable navigation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cursor<'a> {
    tree: &'a Tree,
    node: NodeId,
}

impl<'a> Cursor<'a> {
    /// A cursor at the root.
    pub fn root(tree: &'a Tree) -> Cursor<'a> {
        Cursor {
            tree,
            node: tree.root(),
        }
    }

    /// A cursor at a specific node.
    pub fn at(tree: &'a Tree, node: NodeId) -> Cursor<'a> {
        Cursor { tree, node }
    }

    /// The current node.
    pub fn node(self) -> NodeId {
        self.node
    }

    /// The current node's label.
    pub fn label(self) -> Label {
        self.tree.label(self.node)
    }

    /// The underlying tree.
    pub fn tree(self) -> &'a Tree {
        self.tree
    }

    fn go(self, target: Option<NodeId>) -> Option<Cursor<'a>> {
        target.map(|node| Cursor {
            tree: self.tree,
            node,
        })
    }

    /// To the parent.
    pub fn up(self) -> Option<Cursor<'a>> {
        self.go(self.tree.parent(self.node))
    }

    /// To the first child.
    pub fn first_child(self) -> Option<Cursor<'a>> {
        self.go(self.tree.first_child(self.node))
    }

    /// To the last child.
    pub fn last_child(self) -> Option<Cursor<'a>> {
        self.go(self.tree.last_child(self.node))
    }

    /// To the next sibling.
    pub fn next_sibling(self) -> Option<Cursor<'a>> {
        self.go(self.tree.next_sibling(self.node))
    }

    /// To the previous sibling.
    pub fn prev_sibling(self) -> Option<Cursor<'a>> {
        self.go(self.tree.prev_sibling(self.node))
    }

    /// To the `i`-th child (0-based), if it exists.
    pub fn child(self, i: usize) -> Option<Cursor<'a>> {
        let mut c = self.first_child()?;
        for _ in 0..i {
            c = c.next_sibling()?;
        }
        Some(c)
    }

    /// To the next node in document order (preorder successor).
    pub fn next_preorder(self) -> Option<Cursor<'a>> {
        let next = self.node.0 + 1;
        (next < self.tree.len() as u32).then_some(Cursor {
            tree: self.tree,
            node: NodeId(next),
        })
    }

    /// Follows the first child whose label is `l`.
    pub fn child_labelled(self, l: Label) -> Option<Cursor<'a>> {
        let mut c = self.first_child();
        while let Some(cur) = c {
            if cur.label() == l {
                return Some(cur);
            }
            c = cur.next_sibling();
        }
        None
    }

    /// Whether the cursor is at a leaf.
    pub fn is_leaf(self) -> bool {
        self.tree.is_leaf(self.node)
    }

    /// Whether the cursor is at the root.
    pub fn is_root(self) -> bool {
        self.tree.is_root(self.node)
    }

    /// Walks a label path (`child_labelled` repeatedly).
    pub fn descend_path(self, labels: &[Label]) -> Option<Cursor<'a>> {
        labels.iter().try_fold(self, |c, &l| c.child_labelled(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sexp;

    #[test]
    fn chained_navigation() {
        let doc = parse_sexp("(a (b d e) (c f))").unwrap();
        let t = &doc.tree;
        // a=0 b=1 d=2 e=3 c=4 f=5
        let c = Cursor::root(t);
        assert!(c.is_root());
        assert_eq!(c.first_child().unwrap().node(), NodeId(1));
        assert_eq!(
            c.first_child()
                .and_then(Cursor::next_sibling)
                .and_then(Cursor::first_child)
                .unwrap()
                .node(),
            NodeId(5)
        );
        assert_eq!(c.last_child().unwrap().node(), NodeId(4));
        assert_eq!(c.child(1).unwrap().node(), NodeId(4));
        assert!(c.child(2).is_none());
        assert!(c.up().is_none());
        assert_eq!(
            Cursor::at(t, NodeId(5))
                .up()
                .and_then(Cursor::up)
                .unwrap()
                .node(),
            NodeId(0)
        );
    }

    #[test]
    fn labelled_descent() {
        let mut ab = crate::Alphabet::new();
        let t = crate::parse::parse_sexp_with("(lib (shelf (book)) (desk))", &mut ab).unwrap();
        let shelf = ab.lookup("shelf").unwrap();
        let book = ab.lookup("book").unwrap();
        let c = Cursor::root(&t).descend_path(&[shelf, book]).unwrap();
        assert_eq!(ab.name(c.label()), "book");
        assert!(c.is_leaf());
        assert!(Cursor::root(&t).descend_path(&[book]).is_none());
    }

    #[test]
    fn preorder_walk_covers_tree() {
        let doc = parse_sexp("(a (b d e) (c f))").unwrap();
        let mut c = Some(Cursor::root(&doc.tree));
        let mut count = 0;
        while let Some(cur) = c {
            count += 1;
            c = cur.next_preorder();
        }
        assert_eq!(count, doc.tree.len());
    }
}

//! Dense bitsets over node ids and bit-matrix binary relations.
//!
//! Every evaluator in the workspace manipulates node sets and node relations
//! of a fixed, known universe size (the tree); dense bit representations
//! make the set algebra word-parallel and allocation-free in the hot loops.

use crate::tree::NodeId;
use std::fmt;

const WORD: usize = 64;

#[inline]
fn words_for(n: usize) -> usize {
    n.div_ceil(WORD)
}

/// A set of nodes of a tree with `universe` nodes, as a bitset.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct NodeSet {
    bits: Vec<u64>,
    universe: usize,
}

impl NodeSet {
    /// The empty set over a universe of `n` nodes.
    pub fn empty(n: usize) -> Self {
        NodeSet {
            bits: vec![0; words_for(n)],
            universe: n,
        }
    }

    /// The full set over a universe of `n` nodes.
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        for w in &mut s.bits {
            *w = !0;
        }
        s.trim();
        s
    }

    /// A singleton set.
    pub fn singleton(n: usize, v: NodeId) -> Self {
        let mut s = Self::empty(n);
        s.insert(v);
        s
    }

    /// Builds a set from an iterator of nodes.
    pub fn from_iter<I: IntoIterator<Item = NodeId>>(n: usize, it: I) -> Self {
        let mut s = Self::empty(n);
        for v in it {
            s.insert(v);
        }
        s
    }

    /// The universe size this set ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Re-targets this set at a universe of `n` nodes, emptying it while
    /// **keeping the word buffer's allocation**. This is the register
    /// recycling primitive behind the `twx-vm` arena: a pooled register
    /// is `reset` to the current document width instead of reallocated.
    #[inline]
    pub fn reset(&mut self, n: usize) {
        self.universe = n;
        self.bits.clear();
        self.bits.resize(words_for(n), 0);
    }

    /// Overwrites this set with `other`'s contents, word for word, without
    /// allocating. Panics if universes differ.
    #[inline]
    pub fn copy_from(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe);
        self.bits.copy_from_slice(&other.bits);
    }

    /// Read-only view of the backing words (64 ids per word, LSB-first).
    /// The frontier kernels chunk the id space on word boundaries, so
    /// parallel workers can scan disjoint slices of one set.
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.bits
    }

    /// Mutable view of the backing words. Callers must never set a bit at
    /// or beyond the universe; the frontier pull kernels hand each worker
    /// a word-aligned sub-slice so their writes are disjoint.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.bits
    }

    /// Sets every bit of the universe in place (the `⊤` load).
    pub fn set_full(&mut self) {
        for w in &mut self.bits {
            *w = !0;
        }
        self.trim();
    }

    /// Clears excess bits beyond the universe.
    #[inline]
    fn trim(&mut self) {
        let rem = self.universe % WORD;
        if rem != 0 {
            if let Some(last) = self.bits.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Inserts `v`; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        let i = v.index();
        debug_assert!(i < self.universe);
        let w = &mut self.bits[i / WORD];
        let mask = 1u64 << (i % WORD);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `v`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, v: NodeId) -> bool {
        let i = v.index();
        let w = &mut self.bits[i / WORD];
        let mask = 1u64 << (i % WORD);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        let i = v.index();
        i < self.universe && self.bits[i / WORD] & (1u64 << (i % WORD)) != 0
    }

    /// Number of elements: the word-level popcount fast path. One
    /// `count_ones` per 64-bit word — no per-element iteration.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of elements (alias of [`count_ones`](NodeSet::count_ones)).
    #[inline]
    pub fn count(&self) -> usize {
        self.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.bits {
            *w = 0;
        }
    }

    /// In-place union. Panics if universes differ.
    pub fn union_with(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// In-place union that reports whether any bit was **newly** set —
    /// the fixpoint-detection primitive: closure loops terminate on
    /// `!union_with_changed(..)` instead of cloning and comparing whole
    /// sets per iteration. Panics if universes differ.
    pub fn union_with_changed(&mut self, other: &NodeSet) -> bool {
        assert_eq!(self.universe, other.universe);
        let mut grew = 0u64;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            grew |= b & !*a;
            *a |= b;
        }
        grew != 0
    }

    /// In-place intersection. Panics if universes differ.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`). Panics if universes differ.
    pub fn difference_with(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= !b;
        }
    }

    /// In-place complement w.r.t. the universe.
    pub fn complement(&mut self) {
        for w in &mut self.bits {
            *w = !*w;
        }
        self.trim();
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        assert_eq!(self.universe, other.universe);
        self.bits.iter().zip(&other.bits).all(|(a, b)| a & !b == 0)
    }

    /// Whether the sets intersect.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        assert_eq!(self.universe, other.universe);
        self.bits.iter().zip(&other.bits).any(|(a, b)| a & b != 0)
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> SetIter<'_> {
        SetIter {
            bits: &self.bits,
            word_idx: 0,
            current: self.bits.first().copied().unwrap_or(0),
        }
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<NodeId> {
        self.iter().next()
    }

    /// Collects into a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the members of a [`NodeSet`].
pub struct SetIter<'a> {
    bits: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SetIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.bits.len() {
                return None;
            }
            self.current = self.bits[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(NodeId((self.word_idx * WORD + bit) as u32))
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = SetIter<'a>;
    fn into_iter(self) -> SetIter<'a> {
        self.iter()
    }
}

/// A binary relation over the nodes of a tree, as an n×n bit matrix
/// (row-major; row `i` is the image of node `i`).
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    bits: Vec<u64>,
    n: usize,
    row_words: usize,
}

impl BitMatrix {
    /// The empty relation on `n` nodes.
    pub fn empty(n: usize) -> Self {
        let row_words = words_for(n);
        BitMatrix {
            bits: vec![0; row_words * n],
            n,
            row_words,
        }
    }

    /// The identity relation on `n` nodes.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::empty(n);
        for i in 0..n {
            m.set(NodeId(i as u32), NodeId(i as u32));
        }
        m
    }

    /// The full relation on `n` nodes.
    pub fn full(n: usize) -> Self {
        let mut m = Self::empty(n);
        for w in &mut m.bits {
            *w = !0;
        }
        m.trim();
        m
    }

    fn trim(&mut self) {
        let rem = self.n % WORD;
        if rem == 0 {
            return;
        }
        let mask = (1u64 << rem) - 1;
        for i in 0..self.n {
            self.bits[i * self.row_words + self.row_words - 1] &= mask;
        }
    }

    /// Universe size.
    #[inline]
    pub fn size(&self) -> usize {
        self.n
    }

    /// Adds `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: NodeId, y: NodeId) {
        let (i, j) = (x.index(), y.index());
        debug_assert!(i < self.n && j < self.n);
        self.bits[i * self.row_words + j / WORD] |= 1u64 << (j % WORD);
    }

    /// Membership test.
    #[inline]
    pub fn get(&self, x: NodeId, y: NodeId) -> bool {
        let (i, j) = (x.index(), y.index());
        i < self.n
            && j < self.n
            && self.bits[i * self.row_words + j / WORD] & (1u64 << (j % WORD)) != 0
    }

    #[inline]
    fn row(&self, i: usize) -> &[u64] {
        &self.bits[i * self.row_words..(i + 1) * self.row_words]
    }

    /// Number of pairs in the relation.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitMatrix) {
        assert_eq!(self.n, other.n);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// In-place union that reports whether any cell was newly set (see
    /// [`NodeSet::union_with_changed`]).
    pub fn union_with_changed(&mut self, other: &BitMatrix) -> bool {
        assert_eq!(self.n, other.n);
        let mut grew = 0u64;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            grew |= b & !*a;
            *a |= b;
        }
        grew != 0
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitMatrix) {
        assert_eq!(self.n, other.n);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
    }

    /// In-place complement (w.r.t. the full n×n relation).
    pub fn complement(&mut self) {
        for w in &mut self.bits {
            *w = !*w;
        }
        self.trim();
    }

    /// Relational composition `self ; other`: `(x, z)` iff `∃y. self(x,y) ∧
    /// other(y,z)`. O(n³/64) via row-wise unions.
    pub fn compose(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.n, other.n);
        let mut out = BitMatrix::empty(self.n);
        for i in 0..self.n {
            let dst_start = i * self.row_words;
            for j in SetBitsIter::new(self.row(i)) {
                let src = other.row(j);
                let dst = &mut out.bits[dst_start..dst_start + self.row_words];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d |= s;
                }
            }
        }
        out
    }

    /// Reflexive-transitive closure, computed by repeated squaring on top of
    /// `self ∪ id` (O(n³/64 · log n)). The fixpoint test rides on the
    /// change bit of the in-place union — no per-iteration clone/compare
    /// temporaries.
    pub fn star(&self) -> BitMatrix {
        let mut r = self.clone();
        r.union_with(&BitMatrix::identity(self.n));
        loop {
            let r2 = r.compose(&r);
            if !r.union_with_changed(&r2) {
                return r;
            }
        }
    }

    /// Strict transitive closure: `self ; self*`.
    pub fn plus(&self) -> BitMatrix {
        self.compose(&self.star())
    }

    /// Converse relation (transpose).
    pub fn transpose(&self) -> BitMatrix {
        let mut out = BitMatrix::empty(self.n);
        for i in 0..self.n {
            for j in SetBitsIter::new(self.row(i)) {
                out.set(NodeId(j as u32), NodeId(i as u32));
            }
        }
        out
    }

    /// The image of a node set: `{ y | ∃x ∈ s. (x, y) ∈ self }`.
    pub fn image(&self, s: &NodeSet) -> NodeSet {
        assert_eq!(self.n, s.universe());
        let mut out = NodeSet::empty(self.n);
        for x in s.iter() {
            let src = self.row(x.index());
            for (d, s) in out.bits.iter_mut().zip(src) {
                *d |= s;
            }
        }
        out
    }

    /// The domain of the relation: `{ x | ∃y. (x, y) ∈ self }`.
    pub fn domain(&self) -> NodeSet {
        let mut out = NodeSet::empty(self.n);
        for i in 0..self.n {
            if self.row(i).iter().any(|&w| w != 0) {
                out.insert(NodeId(i as u32));
            }
        }
        out
    }

    /// The codomain (range) of the relation.
    pub fn codomain(&self) -> NodeSet {
        let mut out = NodeSet::empty(self.n);
        for i in 0..self.n {
            for (d, s) in out.bits.iter_mut().zip(self.row(i)) {
                *d |= s;
            }
        }
        out
    }

    /// Restricts the codomain: keeps `(x, y)` only when `y ∈ s`
    /// (the semantics of an XPath filter `A[φ]` given `[[φ]] = s`).
    pub fn filter_codomain(&mut self, s: &NodeSet) {
        assert_eq!(self.n, s.universe());
        for i in 0..self.n {
            let row = &mut self.bits[i * self.row_words..(i + 1) * self.row_words];
            for (d, m) in row.iter_mut().zip(&s.bits) {
                *d &= m;
            }
        }
    }

    /// Restricts the domain: keeps `(x, y)` only when `x ∈ s`.
    pub fn filter_domain(&mut self, s: &NodeSet) {
        assert_eq!(self.n, s.universe());
        for i in 0..self.n {
            if !s.contains(NodeId(i as u32)) {
                let row = &mut self.bits[i * self.row_words..(i + 1) * self.row_words];
                for d in row.iter_mut() {
                    *d = 0;
                }
            }
        }
    }

    /// Builds the diagonal relation `{(x, x) | x ∈ s}` (the `?φ` test).
    pub fn diagonal(s: &NodeSet) -> BitMatrix {
        let mut m = BitMatrix::empty(s.universe());
        for x in s.iter() {
            m.set(x, x);
        }
        m
    }

    /// Iterates over all pairs in the relation.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n).flat_map(move |i| {
            SetBitsIter::new(self.row(i)).map(move |j| (NodeId(i as u32), NodeId(j as u32)))
        })
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.pairs()).finish()
    }
}

/// Iterator over set bit positions of a word slice.
struct SetBitsIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> SetBitsIter<'a> {
    fn new(words: &'a [u64]) -> Self {
        SetBitsIter {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for SetBitsIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn set_basics() {
        let mut s = NodeSet::empty(100);
        assert!(s.is_empty());
        assert!(s.insert(nid(3)));
        assert!(!s.insert(nid(3)));
        assert!(s.insert(nid(99)));
        assert!(s.contains(nid(3)));
        assert!(!s.contains(nid(4)));
        assert_eq!(s.count(), 2);
        assert_eq!(s.to_vec(), vec![nid(3), nid(99)]);
        assert!(s.remove(nid(3)));
        assert!(!s.remove(nid(3)));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn set_algebra() {
        let n = 70;
        let a = NodeSet::from_iter(n, [nid(1), nid(2), nid(65)]);
        let b = NodeSet::from_iter(n, [nid(2), nid(3)]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 4);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![nid(2)]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![nid(1), nid(65)]);
        let mut c = a.clone();
        c.complement();
        assert_eq!(c.count(), n - 3);
        assert!(i.is_subset(&a));
        assert!(a.intersects(&b));
        assert!(!i.intersects(&d));
    }

    #[test]
    fn in_place_word_level_api() {
        // union_with_changed reports growth exactly once per new bit-run
        let n = 130; // three words, last partial
        let mut a = NodeSet::from_iter(n, [nid(0), nid(64)]);
        let b = NodeSet::from_iter(n, [nid(64), nid(129)]);
        assert!(a.union_with_changed(&b));
        assert_eq!(a.count_ones(), 3);
        assert!(!a.union_with_changed(&b), "second union is a fixpoint");

        // reset recycles the allocation for a new universe
        let cap_before = a.bits.capacity();
        a.reset(70);
        assert!(a.is_empty());
        assert_eq!(a.universe(), 70);
        a.set_full();
        assert_eq!(a.count_ones(), 70);
        a.reset(130);
        assert!(a.bits.capacity() >= cap_before);

        // copy_from overwrites without reallocating
        a.copy_from(&b);
        assert_eq!(a.to_vec(), vec![nid(64), nid(129)]);
    }

    #[test]
    fn matrix_union_with_changed_fixpoint() {
        let mut m = BitMatrix::empty(4);
        m.set(nid(0), nid(1));
        let mut n2 = BitMatrix::empty(4);
        n2.set(nid(1), nid(2));
        assert!(m.union_with_changed(&n2));
        assert!(!m.union_with_changed(&n2));
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn full_trims_excess_bits() {
        let s = NodeSet::full(65);
        assert_eq!(s.count(), 65);
        let mut e = NodeSet::empty(65);
        e.complement();
        assert_eq!(e, s);
    }

    #[test]
    fn matrix_compose_star() {
        // chain relation 0->1->2->3 on 4 nodes
        let mut m = BitMatrix::empty(4);
        for i in 0..3 {
            m.set(nid(i), nid(i + 1));
        }
        let m2 = m.compose(&m);
        assert!(m2.get(nid(0), nid(2)));
        assert!(!m2.get(nid(0), nid(1)));
        let s = m.star();
        assert!(s.get(nid(0), nid(0)));
        assert!(s.get(nid(0), nid(3)));
        assert!(!s.get(nid(3), nid(0)));
        let p = m.plus();
        assert!(!p.get(nid(0), nid(0)));
        assert!(p.get(nid(0), nid(3)));
        assert_eq!(p.count(), 6);
    }

    #[test]
    fn matrix_image_domain() {
        let mut m = BitMatrix::empty(5);
        m.set(nid(0), nid(2));
        m.set(nid(0), nid(3));
        m.set(nid(1), nid(4));
        let img = m.image(&NodeSet::singleton(5, nid(0)));
        assert_eq!(img.to_vec(), vec![nid(2), nid(3)]);
        assert_eq!(m.domain().to_vec(), vec![nid(0), nid(1)]);
        assert_eq!(m.codomain().to_vec(), vec![nid(2), nid(3), nid(4)]);
        let t = m.transpose();
        assert!(t.get(nid(2), nid(0)));
        assert_eq!(t.count(), 3);
    }

    #[test]
    fn matrix_filters_and_diag() {
        let mut m = BitMatrix::full(4);
        let s = NodeSet::from_iter(4, [nid(1), nid(2)]);
        m.filter_codomain(&s);
        assert_eq!(m.count(), 8);
        m.filter_domain(&s);
        assert_eq!(m.count(), 4);
        let d = BitMatrix::diagonal(&s);
        assert!(d.get(nid(1), nid(1)));
        assert!(!d.get(nid(1), nid(2)));
        assert_eq!(d.count(), 2);
    }

    #[test]
    fn matrix_complement_trims() {
        let mut m = BitMatrix::empty(65);
        m.complement();
        assert_eq!(m.count(), 65 * 65);
    }
}

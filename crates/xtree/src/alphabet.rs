//! Label interning.
//!
//! Queries and trees share a numeric label space so that evaluators never
//! compare strings. An [`Alphabet`] maps label names to dense [`Label`]
//! indices; it is an explicit value (not a global) so tests and tools can
//! keep several independent spaces.

use std::collections::HashMap;
use std::fmt;

/// An interned node label: a dense index into an [`Alphabet`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

impl Label {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A label interner: a bijection between label names and dense indices.
///
/// ```
/// use twx_xtree::Alphabet;
/// let mut ab = Alphabet::new();
/// let a = ab.intern("a");
/// assert_eq!(ab.intern("a"), a);
/// assert_eq!(ab.name(a), "a");
/// assert_eq!(ab.len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, Label>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an alphabet containing `k` generic labels `a0..a{k-1}`
    /// (handy for generators and enumeration).
    pub fn generic(k: usize) -> Self {
        let mut ab = Self::new();
        for i in 0..k {
            ab.intern(&format!("a{i}"));
        }
        ab
    }

    /// Creates an alphabet from a list of names (in order).
    pub fn from_names<I: IntoIterator<Item = S>, S: AsRef<str>>(names: I) -> Self {
        let mut ab = Self::new();
        for n in names {
            ab.intern(n.as_ref());
        }
        ab
    }

    /// Interns `name`, returning its label (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&l) = self.index.get(name) {
            return l;
        }
        let l = Label(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), l);
        l
    }

    /// Looks up a name without interning.
    pub fn lookup(&self, name: &str) -> Option<Label> {
        self.index.get(name).copied()
    }

    /// The name of a label.
    ///
    /// # Panics
    /// If the label was not produced by this alphabet.
    pub fn name(&self, l: Label) -> &str {
        &self.names[l.index()]
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all labels in index order.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        (0..self.names.len() as u32).map(Label)
    }

    /// Iterates over `(label, name)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Label(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut ab = Alphabet::new();
        let a = ab.intern("talk");
        let b = ab.intern("speaker");
        assert_ne!(a, b);
        assert_eq!(ab.intern("talk"), a);
        assert_eq!(ab.len(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut ab = Alphabet::new();
        assert_eq!(ab.lookup("x"), None);
        let x = ab.intern("x");
        assert_eq!(ab.lookup("x"), Some(x));
    }

    #[test]
    fn generic_names() {
        let ab = Alphabet::generic(3);
        assert_eq!(ab.len(), 3);
        assert_eq!(ab.name(Label(0)), "a0");
        assert_eq!(ab.name(Label(2)), "a2");
    }

    #[test]
    fn from_names_keeps_order() {
        let ab = Alphabet::from_names(["p", "q", "r"]);
        assert_eq!(ab.lookup("q"), Some(Label(1)));
        let collected: Vec<_> = ab.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(collected, ["p", "q", "r"]);
    }
}

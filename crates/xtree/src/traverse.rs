//! Traversal iterators covering all XPath axes.
//!
//! Every iterator is allocation-free except [`postorder`], which keeps an
//! explicit stack. Document-order invariants: [`descendants`] and
//! [`preorder`] yield ids in increasing order; [`ancestors`] in decreasing
//! order.

use crate::tree::{NodeId, Tree};

/// Iterates over the children of `v`, left to right (the `↓` axis image).
pub fn children(t: &Tree, v: NodeId) -> ChildIter<'_> {
    ChildIter {
        tree: t,
        next: t.first_child(v),
    }
}

/// Iterator over children, left to right.
pub struct ChildIter<'a> {
    tree: &'a Tree,
    next: Option<NodeId>,
}

impl Iterator for ChildIter<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let v = self.next?;
        self.next = self.tree.next_sibling(v);
        Some(v)
    }
}

/// Iterates over the children of `v`, right to left.
pub fn children_rev(t: &Tree, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
    let mut next = t.last_child(v);
    std::iter::from_fn(move || {
        let v = next?;
        next = t.prev_sibling(v);
        Some(v)
    })
}

/// Iterates over the strict ancestors of `v`, nearest first (`↑⁺`).
pub fn ancestors(t: &Tree, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
    let mut next = t.parent(v);
    std::iter::from_fn(move || {
        let v = next?;
        next = t.parent(v);
        Some(v)
    })
}

/// Iterates over `v` followed by its strict ancestors (`↑*`).
pub fn ancestors_or_self(t: &Tree, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
    std::iter::once(v).chain(ancestors(t, v))
}

/// Iterates over the strict descendants of `v` in document order (`↓⁺`).
///
/// Exploits the preorder-id invariant: the subtree of `v` is the contiguous
/// id range `v+1 .. subtree_end(v)`.
pub fn descendants(t: &Tree, v: NodeId) -> impl Iterator<Item = NodeId> {
    (v.0 + 1..t.subtree_end(v)).map(NodeId)
}

/// Iterates over `v` and its descendants in document order (`↓*`).
pub fn descendants_or_self(t: &Tree, v: NodeId) -> impl Iterator<Item = NodeId> {
    (v.0..t.subtree_end(v)).map(NodeId)
}

/// Iterates over the following siblings of `v`, nearest first (`→⁺`).
pub fn following_siblings(t: &Tree, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
    let mut next = t.next_sibling(v);
    std::iter::from_fn(move || {
        let v = next?;
        next = t.next_sibling(v);
        Some(v)
    })
}

/// Iterates over the preceding siblings of `v`, nearest first (`←⁺`).
pub fn preceding_siblings(t: &Tree, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
    let mut next = t.prev_sibling(v);
    std::iter::from_fn(move || {
        let v = next?;
        next = t.prev_sibling(v);
        Some(v)
    })
}

/// All nodes in document (pre-)order. With preorder ids this is just the
/// id range.
pub fn preorder(t: &Tree) -> impl Iterator<Item = NodeId> {
    t.nodes()
}

/// All nodes in postorder (children before parents, siblings left to right).
pub fn postorder(t: &Tree) -> Postorder<'_> {
    Postorder {
        tree: t,
        stack: vec![(t.root(), false)],
    }
}

/// Iterator produced by [`postorder`].
pub struct Postorder<'a> {
    tree: &'a Tree,
    stack: Vec<(NodeId, bool)>,
}

impl Iterator for Postorder<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        while let Some((v, expanded)) = self.stack.pop() {
            if expanded {
                return Some(v);
            }
            self.stack.push((v, true));
            // push children reversed so the leftmost is processed first
            let mut c = self.tree.last_child(v);
            while let Some(u) = c {
                self.stack.push((u, false));
                c = self.tree.prev_sibling(u);
            }
        }
        None
    }
}

/// The XPath `following` axis: nodes strictly after `v` in document order
/// that are not descendants of `v`.
pub fn following(t: &Tree, v: NodeId) -> impl Iterator<Item = NodeId> {
    (t.subtree_end(v)..t.len() as u32).map(NodeId)
}

/// The XPath `preceding` axis: nodes strictly before `v` in document order
/// that are not ancestors of `v`.
pub fn preceding<'a>(t: &'a Tree, v: NodeId) -> impl Iterator<Item = NodeId> + 'a {
    (0..v.0).map(NodeId).filter(move |&u| !t.is_ancestor(u, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Label;
    use crate::builder::TreeBuilder;

    /// (a (b (d) (e)) (c (f)))  — ids: a=0 b=1 d=2 e=3 c=4 f=5
    fn sample() -> Tree {
        let mut b = TreeBuilder::new();
        b.open(Label(0));
        b.open(Label(1));
        b.leaf(Label(3));
        b.leaf(Label(4));
        b.close();
        b.open(Label(2));
        b.leaf(Label(5));
        b.close();
        b.close();
        b.finish()
    }

    fn ids<I: Iterator<Item = NodeId>>(it: I) -> Vec<u32> {
        it.map(|v| v.0).collect()
    }

    #[test]
    fn children_both_directions() {
        let t = sample();
        assert_eq!(ids(children(&t, NodeId(0))), vec![1, 4]);
        assert_eq!(ids(children_rev(&t, NodeId(0))), vec![4, 1]);
        assert_eq!(ids(children(&t, NodeId(2))), Vec::<u32>::new());
    }

    #[test]
    fn ancestor_axes() {
        let t = sample();
        assert_eq!(ids(ancestors(&t, NodeId(5))), vec![4, 0]);
        assert_eq!(ids(ancestors_or_self(&t, NodeId(5))), vec![5, 4, 0]);
        assert_eq!(ids(ancestors(&t, NodeId(0))), Vec::<u32>::new());
    }

    #[test]
    fn descendant_axes() {
        let t = sample();
        assert_eq!(ids(descendants(&t, NodeId(0))), vec![1, 2, 3, 4, 5]);
        assert_eq!(ids(descendants(&t, NodeId(1))), vec![2, 3]);
        assert_eq!(ids(descendants_or_self(&t, NodeId(4))), vec![4, 5]);
    }

    #[test]
    fn sibling_axes() {
        let t = sample();
        assert_eq!(ids(following_siblings(&t, NodeId(1))), vec![4]);
        assert_eq!(ids(preceding_siblings(&t, NodeId(4))), vec![1]);
        assert_eq!(ids(following_siblings(&t, NodeId(4))), Vec::<u32>::new());
        assert_eq!(ids(following_siblings(&t, NodeId(2))), vec![3]);
    }

    #[test]
    fn orders() {
        let t = sample();
        assert_eq!(ids(preorder(&t)), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(ids(postorder(&t)), vec![2, 3, 1, 5, 4, 0]);
    }

    #[test]
    fn document_axes() {
        let t = sample();
        assert_eq!(ids(following(&t, NodeId(1))), vec![4, 5]);
        assert_eq!(ids(following(&t, NodeId(3))), vec![4, 5]);
        assert_eq!(ids(preceding(&t, NodeId(4))), vec![1, 2, 3]);
        assert_eq!(ids(preceding(&t, NodeId(5))), vec![1, 2, 3]);
        assert_eq!(ids(preceding(&t, NodeId(2))), vec![]);
    }
}

//! Hybrid sparse/dense frontiers over preorder node ids.
//!
//! The paper reduces Regular XPath(W) evaluation to iterated images of
//! the four step relations, and a Kleene-star closure is exactly a
//! breadth-first frontier fixpoint over those images. Following the
//! Ligra push/pull pattern, a [`Frontier`] holds an intermediate node
//! set either as a **sparse** sorted id vector (cheap to iterate when
//! few nodes are live) or as a **dense** word bitmap (cheap set algebra
//! when many are), switching automatically by cardinality with
//! hysteresis so a frontier oscillating around the threshold does not
//! thrash between representations.
//!
//! This module also provides the *sequential, single-chunk* push and
//! pull image primitives over an explicit id range. The parallel
//! drivers that split the preorder id space into chunks and run these
//! primitives under `std::thread::scope` live in the `twx-frontier`
//! crate; keeping the per-chunk kernels here means the property tests
//! in `tests/frontier.rs` can pin their semantics against [`BitMatrix`]
//! reference relations without any threading in the loop.
//!
//! [`BitMatrix`]: crate::nodeset::BitMatrix

use crate::nodeset::NodeSet;
use crate::tree::{NodeId, Tree};
use std::ops::Range;

/// One primitive step relation of the tree. Mirrors the four axes of
/// Regular XPath (`twx_regxpath::ast::Axis`), but lives here so the
/// zero-dependency tree substrate can name them: `Down` = child,
/// `Up` = parent, `Left` = previous sibling, `Right` = next sibling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Step {
    /// To children.
    Down,
    /// To the parent.
    Up,
    /// To the previous sibling.
    Left,
    /// To the next sibling.
    Right,
}

impl Step {
    /// All four steps, in canonical order.
    pub const ALL: [Step; 4] = [Step::Down, Step::Up, Step::Left, Step::Right];

    /// The converse relation: `u -step→ v` iff `v -inverse→ u`.
    pub fn inverse(self) -> Step {
        match self {
            Step::Down => Step::Up,
            Step::Up => Step::Down,
            Step::Left => Step::Right,
            Step::Right => Step::Left,
        }
    }

    /// Stable lower-case name (diagnostics and bench labels).
    pub fn name(self) -> &'static str {
        match self {
            Step::Down => "down",
            Step::Up => "up",
            Step::Left => "left",
            Step::Right => "right",
        }
    }
}

/// Cardinality above which a sparse frontier is promoted to dense.
#[inline]
pub fn dense_threshold(universe: usize) -> usize {
    universe / 16
}

/// Cardinality below which a dense frontier is demoted to sparse. Kept
/// strictly under [`dense_threshold`] so the two switches have a
/// hysteresis band: a frontier whose size wanders inside
/// `[universe/32, universe/16]` keeps whatever representation it has.
#[inline]
pub fn sparse_threshold(universe: usize) -> usize {
    universe / 32
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Repr {
    /// Sorted, deduplicated ids.
    Sparse(Vec<NodeId>),
    Dense(NodeSet),
}

/// A hybrid sparse/dense node set over a fixed universe.
///
/// Semantically identical to a [`NodeSet`] (the property suite checks
/// every operation against one); representationally it is either a
/// sorted id vector or a bitmap, chosen by cardinality.
#[derive(Clone, Debug)]
pub struct Frontier {
    universe: usize,
    repr: Repr,
}

impl PartialEq for Frontier {
    /// Representation-independent set equality.
    fn eq(&self, other: &Frontier) -> bool {
        self.universe == other.universe && self.to_nodeset() == other.to_nodeset()
    }
}
impl Eq for Frontier {}

impl Frontier {
    /// The empty frontier (always sparse).
    pub fn empty(universe: usize) -> Frontier {
        Frontier {
            universe,
            repr: Repr::Sparse(Vec::new()),
        }
    }

    /// A one-node frontier.
    pub fn singleton(universe: usize, v: NodeId) -> Frontier {
        Frontier {
            universe,
            repr: Repr::Sparse(vec![v]),
        }
    }

    /// Builds from a dense set, choosing the representation by
    /// cardinality (dense iff strictly above [`dense_threshold`]).
    pub fn from_nodeset(s: &NodeSet) -> Frontier {
        let universe = s.universe();
        if s.count_ones() > dense_threshold(universe) {
            Frontier {
                universe,
                repr: Repr::Dense(s.clone()),
            }
        } else {
            Frontier {
                universe,
                repr: Repr::Sparse(s.iter().collect()),
            }
        }
    }

    /// Builds from a dense set, but applies the hysteresis rule against
    /// the representation of a *previous* frontier: inside the band
    /// between the two thresholds, the old representation is kept. This
    /// is what the star fixpoint uses between iterations.
    pub fn from_nodeset_with_hysteresis(s: &NodeSet, prev_dense: bool) -> Frontier {
        let universe = s.universe();
        let card = s.count_ones();
        let dense = if card > dense_threshold(universe) {
            true
        } else if card < sparse_threshold(universe) {
            false
        } else {
            prev_dense
        };
        if dense {
            Frontier {
                universe,
                repr: Repr::Dense(s.clone()),
            }
        } else {
            Frontier {
                universe,
                repr: Repr::Sparse(s.iter().collect()),
            }
        }
    }

    /// Builds from a sorted, deduplicated id vector.
    pub fn from_sorted_ids(universe: usize, ids: Vec<NodeId>) -> Frontier {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids sorted + dedup");
        debug_assert!(ids.iter().all(|v| v.index() < universe));
        let mut f = Frontier {
            universe,
            repr: Repr::Sparse(ids),
        };
        f.normalize();
        f
    }

    /// Converts to a plain dense set.
    pub fn to_nodeset(&self) -> NodeSet {
        match &self.repr {
            Repr::Sparse(ids) => NodeSet::from_iter(self.universe, ids.iter().copied()),
            Repr::Dense(s) => s.clone(),
        }
    }

    /// The universe size.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of nodes in the frontier.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sparse(ids) => ids.len(),
            Repr::Dense(s) => s.count_ones(),
        }
    }

    /// Whether the frontier is empty.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Sparse(ids) => ids.is_empty(),
            Repr::Dense(s) => s.is_empty(),
        }
    }

    /// Whether the current representation is the dense bitmap.
    #[inline]
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense(_))
    }

    /// Membership test: binary search when sparse, bit probe when dense.
    pub fn contains(&self, v: NodeId) -> bool {
        match &self.repr {
            Repr::Sparse(ids) => ids.binary_search(&v).is_ok(),
            Repr::Dense(s) => s.contains(v),
        }
    }

    /// The sparse ids, when sparse (the parallel push driver chunks
    /// this slice by node count).
    pub fn sparse_ids(&self) -> Option<&[NodeId]> {
        match &self.repr {
            Repr::Sparse(ids) => Some(ids),
            Repr::Dense(_) => None,
        }
    }

    /// The dense bitmap, when dense.
    pub fn dense_set(&self) -> Option<&NodeSet> {
        match &self.repr {
            Repr::Dense(s) => Some(s),
            Repr::Sparse(_) => None,
        }
    }

    /// Inserts a node; returns whether it was new. May switch the
    /// representation (hysteresis rule).
    pub fn insert(&mut self, v: NodeId) -> bool {
        debug_assert!(v.index() < self.universe);
        let fresh = match &mut self.repr {
            Repr::Sparse(ids) => match ids.binary_search(&v) {
                Ok(_) => false,
                Err(i) => {
                    ids.insert(i, v);
                    true
                }
            },
            Repr::Dense(s) => s.insert(v),
        };
        self.normalize();
        fresh
    }

    /// Removes a node; returns whether it was present.
    pub fn remove(&mut self, v: NodeId) -> bool {
        let had = match &mut self.repr {
            Repr::Sparse(ids) => match ids.binary_search(&v) {
                Ok(i) => {
                    ids.remove(i);
                    true
                }
                Err(_) => false,
            },
            Repr::Dense(s) => s.remove(v),
        };
        self.normalize();
        had
    }

    /// `self ∪= other`.
    pub fn union_with(&mut self, other: &Frontier) {
        assert_eq!(self.universe, other.universe);
        match (&mut self.repr, &other.repr) {
            (Repr::Sparse(a), Repr::Sparse(b)) => {
                *a = merge_sorted(a, b);
            }
            (Repr::Dense(a), Repr::Dense(b)) => a.union_with(b),
            (Repr::Dense(a), Repr::Sparse(b)) => {
                for &v in b {
                    a.insert(v);
                }
            }
            (Repr::Sparse(_), Repr::Dense(b)) => {
                let mut d = b.clone();
                if let Repr::Sparse(a) = &self.repr {
                    for &v in a {
                        d.insert(v);
                    }
                }
                self.repr = Repr::Dense(d);
            }
        }
        self.normalize();
    }

    /// `self ∩= other`.
    pub fn intersect_with(&mut self, other: &Frontier) {
        assert_eq!(self.universe, other.universe);
        match (&mut self.repr, &other.repr) {
            (Repr::Sparse(a), _) => a.retain(|&v| other.contains(v)),
            (Repr::Dense(a), Repr::Dense(b)) => a.intersect_with(b),
            (Repr::Dense(a), Repr::Sparse(b)) => {
                let kept: Vec<NodeId> = b.iter().copied().filter(|&v| a.contains(v)).collect();
                self.repr = Repr::Sparse(kept);
            }
        }
        self.normalize();
    }

    /// `self \= other`.
    pub fn difference_with(&mut self, other: &Frontier) {
        assert_eq!(self.universe, other.universe);
        match (&mut self.repr, &other.repr) {
            (Repr::Sparse(a), _) => a.retain(|&v| !other.contains(v)),
            (Repr::Dense(a), Repr::Dense(b)) => a.difference_with(b),
            (Repr::Dense(a), Repr::Sparse(b)) => {
                for &v in b {
                    a.remove(v);
                }
            }
        }
        self.normalize();
    }

    /// Complements within the universe.
    pub fn complement(&mut self) {
        let mut s = self.to_nodeset();
        s.complement();
        *self = Frontier::from_nodeset_with_hysteresis(&s, self.is_dense());
    }

    /// Sorted id vector of the contents (tests and diagnostics).
    pub fn to_vec(&self) -> Vec<NodeId> {
        match &self.repr {
            Repr::Sparse(ids) => ids.clone(),
            Repr::Dense(s) => s.to_vec(),
        }
    }

    /// Calls `f` for every member in increasing id order.
    pub fn for_each(&self, mut f: impl FnMut(NodeId)) {
        match &self.repr {
            Repr::Sparse(ids) => ids.iter().copied().for_each(&mut f),
            Repr::Dense(s) => s.iter().for_each(&mut f),
        }
    }

    /// Applies the hysteresis switching rule to the *current*
    /// representation; returns whether a switch happened.
    pub fn normalize(&mut self) -> bool {
        let card = self.len();
        match &self.repr {
            Repr::Sparse(_) if card > dense_threshold(self.universe) => {
                self.repr = Repr::Dense(self.to_nodeset());
                true
            }
            Repr::Dense(s) if card < sparse_threshold(self.universe) => {
                self.repr = Repr::Sparse(s.iter().collect());
                true
            }
            _ => false,
        }
    }
}

fn merge_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

// ---------------------------------------------------------------------
// Per-chunk image primitives (sequential; the parallel drivers live in
// `twx-frontier`).
// ---------------------------------------------------------------------

/// **Push** direction, sparse source: for every `v` in `ids`, inserts
/// every `u` with `v -step→ u` into `out`. `out` must already range
/// over the tree's universe; it is *not* cleared (workers accumulate).
pub fn push_image_ids(t: &Tree, step: Step, ids: &[NodeId], out: &mut NodeSet) {
    for &v in ids {
        push_one(t, step, v, out);
    }
}

/// **Push** direction, dense source restricted to an id range: pushes
/// from every member of `src` with id in `ids` (the range lets the
/// parallel driver hand each worker a slice of the bitmap).
pub fn push_image_set_range(
    t: &Tree,
    step: Step,
    src: &NodeSet,
    ids: Range<usize>,
    out: &mut NodeSet,
) {
    let words = src.as_words();
    let (w0, w1) = (ids.start / 64, ids.end.div_ceil(64));
    let end = w1.min(words.len());
    for (wi, &word) in words.iter().enumerate().take(end).skip(w0) {
        let mut w = word;
        // mask off ids outside the range in the boundary words
        if wi == ids.start / 64 {
            let lo = ids.start % 64;
            w &= !0u64 << lo;
        }
        if (wi + 1) * 64 > ids.end {
            let hi = ids.end - wi * 64;
            if hi < 64 {
                w &= (1u64 << hi) - 1;
            }
        }
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            push_one(t, step, NodeId((wi * 64 + bit) as u32), out);
            w &= w - 1;
        }
    }
}

#[inline]
fn push_one(t: &Tree, step: Step, v: NodeId, out: &mut NodeSet) {
    match step {
        Step::Down => {
            let mut c = t.first_child(v);
            while let Some(u) = c {
                out.insert(u);
                c = t.next_sibling(u);
            }
        }
        Step::Up => {
            if let Some(p) = t.parent(v) {
                out.insert(p);
            }
        }
        Step::Left => {
            if let Some(p) = t.prev_sibling(v) {
                out.insert(p);
            }
        }
        Step::Right => {
            if let Some(s) = t.next_sibling(v) {
                out.insert(s);
            }
        }
    }
}

/// **Pull** direction over a word-aligned id range: for every candidate
/// `u` in `ids`, sets `u`'s bit in `words` iff some predecessor of `u`
/// under `step` satisfies `in_src`. `words` is the destination
/// sub-slice covering exactly `ids` (so `words[0]` holds id
/// `ids.start`, which must be word-aligned); parallel workers therefore
/// write disjoint words.
///
/// The pull formulation of each step image: `u` is in the image of
/// `src` under `Down` iff `parent(u) ∈ src`; under `Up` iff some child
/// of `u` is in `src` (early-exits on the first hit); under `Left` iff
/// `next_sibling(u) ∈ src`; under `Right` iff `prev_sibling(u) ∈ src`.
pub fn pull_image_words<F: Fn(NodeId) -> bool>(
    t: &Tree,
    step: Step,
    in_src: F,
    ids: Range<usize>,
    words: &mut [u64],
) {
    debug_assert_eq!(ids.start % 64, 0, "pull chunk must be word-aligned");
    debug_assert!(words.len() >= (ids.end - ids.start).div_ceil(64));
    for u in ids.clone() {
        let u = NodeId(u as u32);
        let hit = match step {
            Step::Down => t.parent(u).is_some_and(&in_src),
            Step::Up => {
                let mut c = t.first_child(u);
                let mut any = false;
                while let Some(v) = c {
                    if in_src(v) {
                        any = true;
                        break;
                    }
                    c = t.next_sibling(v);
                }
                any
            }
            Step::Left => t.next_sibling(u).is_some_and(&in_src),
            Step::Right => t.prev_sibling(u).is_some_and(&in_src),
        };
        if hit {
            let off = u.index() - ids.start;
            words[off / 64] |= 1u64 << (off % 64);
        }
    }
}

/// Sequential pull image over an id range into a full-universe set
/// (reference form used by the property tests; the parallel driver uses
/// [`pull_image_words`] on disjoint sub-slices instead).
pub fn pull_image_range(
    t: &Tree,
    step: Step,
    src: &Frontier,
    ids: Range<usize>,
    out: &mut NodeSet,
) {
    assert_eq!(out.universe(), t.len());
    let aligned = Range {
        start: ids.start,
        end: ids.end,
    };
    assert_eq!(aligned.start % 64, 0, "pull chunk must be word-aligned");
    let w0 = aligned.start / 64;
    let w1 = aligned.end.div_ceil(64);
    let words = &mut out.words_mut()[w0..w1];
    pull_image_words(t, step, |v| src.contains(v), aligned, words);
}

/// Sequential whole-universe reference image (push over everything).
pub fn axis_image_seq(t: &Tree, step: Step, src: &Frontier) -> NodeSet {
    let mut out = NodeSet::empty(t.len());
    match src.sparse_ids() {
        Some(ids) => push_image_ids(t, step, ids, &mut out),
        None => {
            let s = src.dense_set().expect("dense when not sparse");
            push_image_set_range(t, step, s, 0..t.len(), &mut out);
        }
    }
    out
}

/// Splits `0..universe` into at most `chunks` word-aligned id ranges of
/// near-equal length (the pull driver's partition: work is split by
/// node count, so every range covers `⌈universe/chunks⌉` ids rounded up
/// to a word boundary).
pub fn word_chunks(universe: usize, chunks: usize) -> Vec<Range<usize>> {
    if universe == 0 || chunks <= 1 {
        return std::iter::once(0..universe).collect();
    }
    let per = universe.div_ceil(chunks).div_ceil(64) * 64;
    let mut out = Vec::new();
    let mut start = 0;
    while start < universe {
        let end = (start + per).min(universe);
        out.push(start..end);
        start = end;
    }
    out
}

/// Splits a dense source into at most `chunks` id ranges carrying a
/// near-equal number of *set bits* (the push driver's partition for
/// dense frontiers: work is split by frontier node count, not by id
/// span). Ranges are word-aligned and cover the whole universe.
pub fn balanced_cuts(src: &NodeSet, chunks: usize) -> Vec<Range<usize>> {
    let n = src.universe();
    if n == 0 || chunks <= 1 {
        return std::iter::once(0..n).collect();
    }
    let total = src.count_ones();
    if total == 0 {
        return std::iter::once(0..n).collect();
    }
    let quota = total.div_ceil(chunks);
    let words = src.as_words();
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    for (wi, w) in words.iter().enumerate() {
        acc += w.count_ones() as usize;
        let end = ((wi + 1) * 64).min(n);
        if acc >= quota && end < n {
            out.push(start..end);
            start = end;
            acc = 0;
        }
    }
    out.push(start..n);
    while out.len() > chunks {
        let tail = out.pop().expect("nonempty");
        out.last_mut().expect("nonempty").end = tail.end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sexp;

    #[test]
    fn step_inverse_involutive() {
        for s in Step::ALL {
            assert_eq!(s.inverse().inverse(), s);
        }
    }

    #[test]
    fn frontier_roundtrip_and_switching() {
        let n = 1000;
        let mut f = Frontier::empty(n);
        assert!(!f.is_dense());
        // dense_threshold(1000) = 62: inserting 63 ids promotes
        for i in 0..=dense_threshold(n) {
            f.insert(NodeId(i as u32));
        }
        assert!(f.is_dense());
        // hysteresis: removing back below 62 but above 31 keeps dense
        while f.len() >= sparse_threshold(n) {
            let v = f.to_vec()[0];
            f.remove(v);
        }
        assert!(!f.is_dense(), "demoted strictly below sparse_threshold");
        let s = f.to_nodeset();
        assert_eq!(Frontier::from_nodeset(&s).to_vec(), f.to_vec());
    }

    #[test]
    fn push_equals_pull_on_a_small_doc() {
        let doc = parse_sexp("(a (b d e) (c f (g h)))").unwrap();
        let t = &doc.tree;
        let src = Frontier::from_sorted_ids(t.len(), vec![NodeId(0), NodeId(2), NodeId(5)]);
        for step in Step::ALL {
            let push = axis_image_seq(t, step, &src);
            let mut pull = NodeSet::empty(t.len());
            pull_image_range(t, step, &src, 0..t.len(), &mut pull);
            assert_eq!(push, pull, "step {}", step.name());
        }
    }

    #[test]
    fn word_chunks_cover_and_align() {
        for n in [0, 1, 63, 64, 65, 1000, 4096] {
            for k in [1, 2, 3, 8] {
                let ranges = word_chunks(n, k);
                assert_eq!(ranges.first().map(|r| r.start), Some(0));
                assert_eq!(ranges.last().map(|r| r.end), Some(n));
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                    assert_eq!(w[0].end % 64, 0);
                }
            }
        }
    }

    #[test]
    fn balanced_cuts_cover() {
        let mut s = NodeSet::empty(1000);
        for i in (0..1000).step_by(3) {
            s.insert(NodeId(i as u32));
        }
        let cuts = balanced_cuts(&s, 4);
        assert_eq!(cuts.first().unwrap().start, 0);
        assert_eq!(cuts.last().unwrap().end, 1000);
        for w in cuts.windows(2) {
            assert_eq!(w[0].end, w[1].start);
            assert_eq!(w[0].end % 64, 0);
        }
        assert!(cuts.len() <= 4);
    }
}

//! Balanced-parentheses structure encoding.
//!
//! A sibling-ordered tree of `n` nodes is exactly a balanced string of
//! `n` parenthesis pairs: emit `1` when a node opens and `0` when it
//! closes, in document order. Two bits of structure per node — against
//! the 28 bytes per node of the arena [`Tree`] (seven `u32` link/label
//! arrays) this is the ~100× shape compression that lets the on-disk
//! snapshot format of `twx-store` aim at 100M-node corpora, in the
//! succinct-representation tradition (Jacobson bit-vectors with
//! rank/select reconstruction).
//!
//! The codec here is deliberately minimal: [`StructureBits`] is a packed
//! word-level bitvector, [`Tree::structure_bits`] produces it in one
//! preorder pass, and [`Tree::from_structure_bits`] rebuilds the arena by
//! replaying the parentheses through [`TreeBuilder`] — the open/close
//! events *are* the SAX stream, so child/parent links are reconstructed
//! exactly (the builder assigns preorder ids by construction, which is a
//! rank-over-open-bits computation in the succinct literature). Labels
//! travel separately, one per open bit in document order.

use crate::alphabet::Label;
use crate::builder::TreeBuilder;
use crate::tree::{Document, Tree};
use std::fmt;

/// A packed balanced-parentheses bitvector: bit `i` (LSB-first within
/// each `u64` word) is `1` if the `i`-th parenthesis in document order
/// opens a node and `0` if it closes one. A tree of `n` nodes has
/// exactly `2n` bits, `n` of them set.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StructureBits {
    words: Vec<u64>,
    /// Number of meaningful bits (`2 × nodes`).
    len: usize,
}

impl StructureBits {
    /// An empty bitvector to push into.
    fn with_capacity(bits: usize) -> StructureBits {
        StructureBits {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Wraps raw words (e.g. read back from a snapshot section). Bits at
    /// and beyond `len` are ignored by [`Tree::from_structure_bits`], but
    /// `len` must fit inside `words`.
    pub fn from_words(words: Vec<u64>, len: usize) -> Result<StructureBits, BpError> {
        if len > words.len() * 64 {
            return Err(BpError::LengthOutOfRange {
                len,
                capacity: words.len() * 64,
            });
        }
        Ok(StructureBits { words, len })
    }

    /// The packed words, LSB-first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of meaningful bits (always `2 × nodes` for encoder output).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitvector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The number of set (open) bits — the node count of the encoded
    /// tree. Word-level popcount.
    pub fn count_ones(&self) -> usize {
        let mut total = 0usize;
        for (w, &word) in self.words.iter().enumerate() {
            let base = w * 64;
            if base >= self.len {
                break;
            }
            let avail = self.len - base;
            let masked = if avail >= 64 {
                word
            } else {
                word & ((1u64 << avail) - 1)
            };
            total += masked.count_ones() as usize;
        }
        total
    }

    /// Bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    #[inline]
    fn push(&mut self, bit: bool) {
        let slot = self.len / 64;
        if slot == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[slot] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }
}

/// Why a balanced-parentheses decode failed. Decoding never panics: a
/// corrupted snapshot section must surface as a typed error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BpError {
    /// The declared bit length exceeds the backing words.
    LengthOutOfRange {
        /// Declared length in bits.
        len: usize,
        /// Bits actually backed by words.
        capacity: usize,
    },
    /// The bit string has odd length or zero length.
    BadLength {
        /// The offending length.
        len: usize,
    },
    /// A close bit appeared with no node open (unbalanced), at bit `at`.
    Unbalanced {
        /// Offset of the offending bit.
        at: usize,
    },
    /// The string closed the root before its end, or never closed it —
    /// the parentheses do not describe exactly one tree.
    NotOneTree,
    /// Fewer labels than open bits (or more).
    LabelCountMismatch {
        /// Open (node) bits in the structure.
        nodes: usize,
        /// Labels supplied.
        labels: usize,
    },
}

impl fmt::Display for BpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BpError::LengthOutOfRange { len, capacity } => {
                write!(f, "bit length {len} exceeds backing capacity {capacity}")
            }
            BpError::BadLength { len } => {
                write!(f, "structure bit string of length {len} cannot be a tree")
            }
            BpError::Unbalanced { at } => write!(f, "unbalanced close bit at offset {at}"),
            BpError::NotOneTree => write!(f, "parentheses do not describe exactly one tree"),
            BpError::LabelCountMismatch { nodes, labels } => {
                write!(
                    f,
                    "structure has {nodes} nodes but {labels} labels were supplied"
                )
            }
        }
    }
}

impl std::error::Error for BpError {}

impl Tree {
    /// Encodes the tree shape as a balanced-parentheses bitvector: one
    /// open (`1`) and one close (`0`) bit per node, document order,
    /// `2 × len()` bits total.
    pub fn structure_bits(&self) -> StructureBits {
        let mut bits = StructureBits::with_capacity(2 * self.len());
        // Document-order walk emitting opens on the way down and closes
        // on the way back up — iterative, so deep chains cannot overflow
        // the call stack.
        let mut v = Some(self.root());
        let mut open_depth = 0usize;
        while let Some(u) = v {
            bits.push(true);
            open_depth += 1;
            if let Some(c) = self.first_child(u) {
                v = Some(c);
                continue;
            }
            // close u, then walk up until a next sibling exists
            let mut w = u;
            loop {
                bits.push(false);
                open_depth -= 1;
                if let Some(s) = self.next_sibling(w) {
                    v = Some(s);
                    break;
                }
                match self.parent(w) {
                    Some(p) => w = p,
                    None => {
                        v = None;
                        break;
                    }
                }
            }
        }
        debug_assert_eq!(open_depth, 0);
        debug_assert_eq!(bits.len(), 2 * self.len());
        bits
    }

    /// Rebuilds a tree from its balanced-parentheses structure and the
    /// per-node labels in document order — the exact inverse of
    /// [`Tree::structure_bits`] paired with the label column. Returns a
    /// typed [`BpError`] (never panics) on any malformed input, which is
    /// how snapshot decoding rejects corrupted sections.
    pub fn from_structure_bits(bits: &StructureBits, labels: &[Label]) -> Result<Tree, BpError> {
        let len = bits.len();
        if len == 0 || !len.is_multiple_of(2) {
            return Err(BpError::BadLength { len });
        }
        let nodes = len / 2;
        if bits.count_ones() != nodes {
            // more opens than closes (or vice versa) — cannot balance
            return Err(BpError::NotOneTree);
        }
        if labels.len() != nodes {
            return Err(BpError::LabelCountMismatch {
                nodes,
                labels: labels.len(),
            });
        }
        let mut b = TreeBuilder::with_capacity(nodes);
        let mut next_label = 0usize;
        let mut depth = 0usize;
        for i in 0..len {
            if bits.get(i) {
                if depth == 0 && next_label > 0 {
                    // a second root opened after the first closed
                    return Err(BpError::NotOneTree);
                }
                b.open(labels[next_label]);
                next_label += 1;
                depth += 1;
            } else {
                if depth == 0 {
                    return Err(BpError::Unbalanced { at: i });
                }
                b.close();
                depth -= 1;
            }
        }
        if depth != 0 {
            return Err(BpError::NotOneTree);
        }
        Ok(b.finish())
    }

    /// The label column: one label per node in document order, the
    /// companion of [`Tree::structure_bits`].
    pub fn label_column(&self) -> Vec<Label> {
        self.nodes().map(|v| self.label(v)).collect()
    }
}

impl Document {
    /// Balanced-parentheses encoding of the document's tree shape (see
    /// [`Tree::structure_bits`]).
    pub fn structure_bits(&self) -> StructureBits {
        self.tree.structure_bits()
    }

    /// Rebuilds a document from structure bits, a document-order label
    /// column, and the alphabet the labels belong to.
    pub fn from_structure_bits(
        bits: &StructureBits,
        labels: &[Label],
        alphabet: crate::alphabet::Alphabet,
    ) -> Result<Document, BpError> {
        Ok(Document::new(
            Tree::from_structure_bits(bits, labels)?,
            alphabet,
        ))
    }
}

/// Resident bytes per node of the arena [`Tree`] representation: seven
/// `u32` columns (label + five links + depth). The baseline the compact
/// snapshot layout is measured against in E13.
pub const ARENA_BYTES_PER_NODE: usize = 7 * 4;

/// Approximate resident bytes per node of the compact layout for a tree
/// of `n` nodes over a `palette_len`-label palette: 2 structure bits plus
/// `ceil(log2(palette_len))` label bits, rounded up to whole words.
pub fn compact_bytes_per_node(n: usize, palette_len: usize) -> f64 {
    let label_bits = bits_for_palette(palette_len);
    let structure_words = (2 * n).div_ceil(64);
    let label_words = (n * label_bits).div_ceil(64);
    ((structure_words + label_words) * 8) as f64 / n.max(1) as f64
}

/// Bits needed to index a palette of `len` entries (0 for a single-label
/// palette: the column is implicit).
pub fn bits_for_palette(len: usize) -> usize {
    if len <= 1 {
        0
    } else {
        (usize::BITS - (len - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sexp;

    #[test]
    fn leaf_roundtrips() {
        let t = Tree::leaf(Label(3));
        let bits = t.structure_bits();
        assert_eq!(bits.len(), 2);
        assert!(bits.get(0) && !bits.get(1));
        assert_eq!(bits.count_ones(), 1);
        let back = Tree::from_structure_bits(&bits, &t.label_column()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn sample_structure_is_the_paren_string() {
        // (a (b c) d) = 1 1 1 0 0 1 0 0
        let d = parse_sexp("(a (b c) d)").unwrap();
        let bits = d.structure_bits();
        let s: String = (0..bits.len())
            .map(|i| if bits.get(i) { '1' } else { '0' })
            .collect();
        assert_eq!(s, "11100100");
        let back = Document::from_structure_bits(&bits, &d.tree.label_column(), d.alphabet.clone())
            .unwrap();
        assert_eq!(back.tree, d.tree);
    }

    #[test]
    fn malformed_bits_are_typed_errors() {
        let mk = |s: &str| {
            let mut words = vec![0u64];
            for (i, c) in s.chars().enumerate() {
                if c == '1' {
                    words[i / 64] |= 1 << (i % 64);
                }
            }
            StructureBits::from_words(words, s.len()).unwrap()
        };
        let l = [Label(0)];
        let ll = [Label(0), Label(1)];
        assert_eq!(
            Tree::from_structure_bits(&mk("10"), &[]),
            Err(BpError::LabelCountMismatch {
                nodes: 1,
                labels: 0
            })
        );
        assert_eq!(
            Tree::from_structure_bits(&mk("1"), &l),
            Err(BpError::BadLength { len: 1 })
        );
        assert!(matches!(
            Tree::from_structure_bits(&mk("01"), &l),
            Err(BpError::Unbalanced { at: 0 })
        ));
        // two separate roots
        assert_eq!(
            Tree::from_structure_bits(&mk("1010"), &ll),
            Err(BpError::NotOneTree)
        );
        // three opens, one close: cannot balance
        assert_eq!(
            Tree::from_structure_bits(&mk("1110"), &ll),
            Err(BpError::NotOneTree)
        );
        // a valid chain still decodes (the guard rejects only bad input)
        assert!(Tree::from_structure_bits(&mk("1100"), &ll).is_ok());
        assert!(StructureBits::from_words(vec![0], 65).is_err());
    }

    #[test]
    fn palette_width_and_compression_model() {
        assert_eq!(bits_for_palette(0), 0);
        assert_eq!(bits_for_palette(1), 0);
        assert_eq!(bits_for_palette(2), 1);
        assert_eq!(bits_for_palette(4), 2);
        assert_eq!(bits_for_palette(5), 3);
        assert_eq!(bits_for_palette(256), 8);
        // 4-label documents: 2 + 2 bits/node ≈ 0.5 bytes → far beyond 4×
        assert!(ARENA_BYTES_PER_NODE as f64 / compact_bytes_per_node(10_000, 4) > 4.0);
    }
}

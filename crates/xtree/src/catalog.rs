//! Shared, append-only label catalogs.
//!
//! An [`Alphabet`] is an explicit mutable value: interning needs `&mut`,
//! so a document and the queries compiled against it must thread one
//! `&mut Alphabet` around — which welds compilation to a single mutable
//! document and rules out concurrent serving. A [`Catalog`] lifts the
//! same interner behind a `RwLock` so that many documents, parsers and
//! engines can resolve labels against **one shared label space** through
//! `&self` (typically via an `Arc<Catalog>`).
//!
//! The catalog is *append-only*: labels are never removed or renumbered,
//! so a [`Label`] obtained from a catalog is valid forever, and an
//! [`Alphabet`] snapshot taken at any time agrees with the catalog on
//! every label the snapshot contains. This is the property that makes
//! plans compiled against a catalog servable across every document built
//! from it.
//!
//! ```
//! use std::sync::Arc;
//! use twx_xtree::Catalog;
//!
//! let catalog = Arc::new(Catalog::new());
//! let a = catalog.intern("a");
//! let handle = Arc::clone(&catalog);
//! std::thread::spawn(move || assert_eq!(handle.intern("a"), a))
//!     .join()
//!     .unwrap();
//! assert_eq!(catalog.lookup("a"), Some(a));
//! ```

use crate::alphabet::{Alphabet, Label};
use std::fmt;
use std::sync::RwLock;

/// A thread-safe, append-only label interner shared between documents
/// and queries (see the [module docs](self)).
#[derive(Default)]
pub struct Catalog {
    inner: RwLock<Alphabet>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing alphabet (its labels keep their indices).
    pub fn from_alphabet(alphabet: Alphabet) -> Self {
        Catalog {
            inner: RwLock::new(alphabet),
        }
    }

    /// A catalog seeded with names in order (see [`Alphabet::from_names`]).
    pub fn from_names<I: IntoIterator<Item = S>, S: AsRef<str>>(names: I) -> Self {
        Self::from_alphabet(Alphabet::from_names(names))
    }

    /// Interns `name`, returning its label (existing or fresh).
    pub fn intern(&self, name: &str) -> Label {
        self.inner
            .write()
            .expect("catalog lock poisoned")
            .intern(name)
    }

    /// Looks up a name without interning.
    pub fn lookup(&self, name: &str) -> Option<Label> {
        self.inner
            .read()
            .expect("catalog lock poisoned")
            .lookup(name)
    }

    /// The name of a label (owned, because the underlying storage is
    /// behind a lock).
    ///
    /// # Panics
    /// If the label was not produced by this catalog.
    pub fn name(&self, l: Label) -> String {
        self.inner
            .read()
            .expect("catalog lock poisoned")
            .name(l)
            .to_owned()
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.inner.read().expect("catalog lock poisoned").len()
    }

    /// Whether no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time [`Alphabet`] copy. Because the catalog is
    /// append-only, every label in the snapshot stays valid against the
    /// live catalog (the catalog may only know *more* labels).
    pub fn snapshot(&self) -> Alphabet {
        self.inner.read().expect("catalog lock poisoned").clone()
    }

    /// Runs `f` with shared access to the underlying alphabet (no copy).
    pub fn with_read<R>(&self, f: impl FnOnce(&Alphabet) -> R) -> R {
        f(&self.inner.read().expect("catalog lock poisoned"))
    }

    /// Runs `f` with exclusive access to the underlying alphabet — the
    /// bridge to the existing `&mut Alphabet` parser entry points. The
    /// only mutation an [`Alphabet`] offers is interning, so this cannot
    /// violate the append-only contract.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut Alphabet) -> R) -> R {
        f(&mut self.inner.write().expect("catalog lock poisoned"))
    }
}

impl From<Alphabet> for Catalog {
    fn from(alphabet: Alphabet) -> Self {
        Catalog::from_alphabet(alphabet)
    }
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Catalog({} labels)", self.len())
    }
}

impl Clone for Catalog {
    /// Clones the *label space* into an independent catalog (labels keep
    /// their indices). To share one space, clone an `Arc<Catalog>`.
    fn clone(&self) -> Self {
        Catalog::from_alphabet(self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn intern_and_lookup_agree_with_alphabet() {
        let c = Catalog::from_names(["a", "b"]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup("b"), Some(Label(1)));
        assert_eq!(c.intern("c"), Label(2));
        assert_eq!(c.name(Label(2)), "c");
        assert!(!c.is_empty());
    }

    #[test]
    fn snapshot_is_stable_under_later_interning() {
        let c = Catalog::new();
        let a = c.intern("a");
        let snap = c.snapshot();
        let b = c.intern("b");
        assert_eq!(snap.lookup("a"), Some(a));
        assert_eq!(snap.lookup("b"), None);
        assert_eq!(c.lookup("a"), Some(a));
        assert_eq!(c.lookup("b"), Some(b));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let c = Arc::new(Catalog::new());
        let names: Vec<String> = (0..16).map(|i| format!("l{}", i % 4)).collect();
        std::thread::scope(|s| {
            for chunk in names.chunks(4) {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for n in chunk {
                        let l = c.intern(n);
                        assert_eq!(c.lookup(n), Some(l));
                    }
                });
            }
        });
        // 4 distinct names → 4 labels, no duplicates
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn clone_forks_the_space() {
        let c = Catalog::from_names(["x"]);
        let fork = c.clone();
        c.intern("y");
        assert_eq!(fork.len(), 1);
        assert_eq!(c.len(), 2);
    }
}

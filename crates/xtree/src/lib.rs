//! # twx-xtree — sibling-ordered labelled tree substrate
//!
//! The data model of the paper: finite, sibling-ordered, node-labelled,
//! unranked trees — the standard abstraction of an XML document
//! ("we are too blind to see actual text content").
//!
//! A tree is a tuple `T = (N, R_child, R_nextsib, V)` where `N` is a finite
//! set of nodes, `R_child` and `R_nextsib` are the child and next-sibling
//! relations of a finite ordered tree, and `V : N -> Σ` assigns each node a
//! label (we use the unique-labelling convention; multi-label predicates can
//! be simulated with products of alphabets).
//!
//! This crate provides:
//!
//! * [`Tree`]: an arena (struct-of-arrays) representation with `u32` node
//!   ids assigned in **document (preorder) order**;
//! * [`Alphabet`]: a label interner shared between trees and queries, and
//!   [`Catalog`]: its thread-safe, append-only, `Arc`-shareable form — the
//!   label space many documents and compiled query plans share;
//! * [`TreeBuilder`]: SAX-style open/close construction;
//! * parsers for a subset of XML and for s-expressions ([`parse`]);
//! * serializers to XML, s-expressions and Graphviz DOT ([`serialize`]);
//! * traversal iterators covering all XPath axes ([`traverse`]);
//! * the first-child/next-sibling binary encoding ([`fcns`]) used by
//!   bottom-up tree automata;
//! * the balanced-parentheses structure codec ([`bp`]): two bits of tree
//!   shape per node, the compact layout of the `twx-store` snapshots;
//! * random tree generators for six workload families and an exhaustive
//!   enumerator of all trees of a given size ([`generate`]), driven by the
//!   dependency-free deterministic PRNG in [`rng`];
//! * dense [`NodeSet`] bitsets and [`BitMatrix`] binary relations used by
//!   every evaluator in the workspace ([`nodeset`]);
//! * hybrid sparse/dense [`Frontier`] node sets with the per-chunk
//!   push/pull step-image primitives behind the frontier-parallel
//!   evaluator ([`frontier`]).

pub mod alphabet;
pub mod bp;
pub mod builder;
pub mod catalog;
pub mod cursor;
pub mod edit;
pub mod fcns;
pub mod frontier;
pub mod generate;
pub mod nodeset;
pub mod parse;
pub mod rng;
pub mod serialize;
pub mod shrink;
pub mod stats;
pub mod traverse;
pub mod tree;

pub use alphabet::{Alphabet, Label};
pub use bp::{BpError, StructureBits};
pub use builder::TreeBuilder;
pub use catalog::Catalog;
pub use cursor::Cursor;
pub use edit::{apply_edit, DocVersion, Edit, EditError, EditReceipt, Span, VersionedDocument};
pub use fcns::BinTree;
pub use frontier::{Frontier, Step};
pub use nodeset::{BitMatrix, NodeSet};
pub use tree::{Document, NodeId, Tree};

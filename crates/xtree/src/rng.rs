//! A tiny, deterministic, dependency-free PRNG.
//!
//! The build environment is offline, so the workspace cannot depend on the
//! `rand` crate. Everything random in this repository — workload
//! generators, fuzzers, the experiment harness — draws from this module
//! instead. The generator is SplitMix64 (Steele, Lea & Flood 2014): a
//! 64-bit state advanced by a Weyl sequence and finalised with a
//! murmur-style mixer. It is statistically solid for workload generation
//! (passes BigCrush when used as a stream), trivially seedable, and — the
//! property we actually care about — *reproducible across platforms and
//! toolchain versions*, which `rand::StdRng` explicitly does not promise.
//!
//! The [`Rng`] trait mirrors the subset of `rand::Rng` the workspace used
//! (`gen_range` over half-open integer ranges, `gen_bool`), so generator
//! code is written against the same API shape.

use std::ops::Range;

/// SplitMix64: the 64-bit finalising mixer.
#[inline]
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A seedable SplitMix64 generator.
///
/// ```
/// use twx_xtree::rng::{Rng, SplitMix64};
/// let mut a = SplitMix64::seed_from_u64(7);
/// let mut b = SplitMix64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// let x = a.gen_range(0..10usize);
/// assert!(x < 10);
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Every seed is valid and
    /// gives an independent-looking stream.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Derives an independent child generator (for splitting streams
    /// across parallel workers without sharing state).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64 {
            state: self.next_u64() ^ 0x9e3779b97f4a7c15,
        }
    }
}

/// Integer types usable with [`Rng::gen_range`].
///
/// `to_u64`/`from_u64` form an order-preserving bijection into `u64`
/// (identity for unsigned types, a sign-bit flip for signed ones), so
/// range arithmetic can happen in one unsigned domain.
pub trait UniformInt: Copy + PartialOrd {
    /// Order-preserving map into `u64`.
    fn to_u64(self) -> u64;
    /// Inverse of [`UniformInt::to_u64`].
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                (self as i64 as u64) ^ (1 << 63)
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                (v ^ (1 << 63)) as i64 as $t
            }
        }
    )*};
}

impl_uniform_int!(isize, i64, i32, i16, i8);

/// The random-source trait: one required method, everything else derived.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from a half-open range.
    ///
    /// Uses Lemire's multiply-shift rejection method — unbiased, and one
    /// multiplication in the common (non-rejecting) case.
    ///
    /// # Panics
    /// If the range is empty.
    #[inline]
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "gen_range on empty range");
        let span = hi - lo;
        // Lemire rejection: accept unless the low product word falls in the
        // biased zone [0, 2^64 mod span).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                low = m as u64;
            }
        }
        T::from_u64(lo + (m >> 64) as u64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen_f64() < p
    }

    /// A uniform float in `[0, 1)` (53 mantissa bits).
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples an index with probability proportional to `weights[i]`
    /// (replacement for `rand::distributions::WeightedIndex`).
    ///
    /// # Panics
    /// If `weights` is empty or sums to a non-positive/non-finite value.
    fn gen_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "gen_weighted needs a positive finite total weight"
        );
        let mut target = self.gen_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        // float round-off: fall back to the last positive weight
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("some positive weight")
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    /// If `items` is empty.
    fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(0..items.len())]
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        splitmix64_mix(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // SplitMix64 reference outputs for seed 1234567 (from the public
        // domain reference implementation by Sebastiano Vigna).
        let mut r = SplitMix64::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn ranges_are_in_bounds_and_cover() {
        let mut r = SplitMix64::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&b| b), "all values of 3..10 appear");
        // u32 ranges too (automata generators use them)
        let v = r.gen_range(0..4u32);
        assert!(v < 4);
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = SplitMix64::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn weighted_sampling_skews() {
        let mut r = SplitMix64::seed_from_u64(5);
        let w = [8.0, 1.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[r.gen_weighted(&w)] += 1;
        }
        assert!(counts[0] > counts[1] * 4);
        assert!(counts[0] > counts[2] * 4);
        assert!(counts[1] > 0 && counts[2] > 0);
    }

    #[test]
    fn split_streams_diverge() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = a.split();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::seed_from_u64(0).gen_range(5..5usize);
    }
}

//! Seeded algebraic property suite for the set/relation substrate.
//!
//! 500 random instances per law, drawn from the in-tree deterministic
//! PRNG ([`twx_xtree::rng`]) — no external property-testing dependency,
//! and every failure reproduces from the seed literal in the test.
//! Complements `props.rs`, which checks traversal/partition laws; this
//! file pins the Boolean algebra of [`NodeSet`], the relation algebra
//! of [`BitMatrix`] (the naive evaluator's semantic domain), and the
//! first-child/next-sibling encoding on generator-produced documents.

use twx_xtree::fcns::BinTree;
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::nodeset::{BitMatrix, NodeSet};
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::{Catalog, NodeId};

const CASES: usize = 500;

fn rand_set(rng: &mut SplitMix64, n: usize) -> NodeSet {
    let fill = rng.gen_range(0..2 * n + 1);
    NodeSet::from_iter(n, (0..fill).map(|_| NodeId(rng.gen_range(0..n as u32))))
}

fn rand_rel(rng: &mut SplitMix64, n: usize) -> BitMatrix {
    let mut r = BitMatrix::empty(n);
    for _ in 0..rng.gen_range(0..3 * n + 1) {
        r.set(
            NodeId(rng.gen_range(0..n as u32)),
            NodeId(rng.gen_range(0..n as u32)),
        );
    }
    r
}

/// De Morgan, both directions: ¬(a ∪ b) = ¬a ∩ ¬b and ¬(a ∩ b) = ¬a ∪ ¬b.
#[test]
fn nodeset_de_morgan() {
    let mut rng = SplitMix64::seed_from_u64(0xde3049a1);
    for _ in 0..CASES {
        let n = rng.gen_range(1..257usize);
        let a = rand_set(&mut rng, n);
        let b = rand_set(&mut rng, n);
        let mut na = a.clone();
        na.complement();
        let mut nb = b.clone();
        nb.complement();

        let mut not_union = a.clone();
        not_union.union_with(&b);
        not_union.complement();
        let mut meet = na.clone();
        meet.intersect_with(&nb);
        assert_eq!(not_union, meet, "¬(a ∪ b) ≠ ¬a ∩ ¬b at n={n}");

        let mut not_meet = a.clone();
        not_meet.intersect_with(&b);
        not_meet.complement();
        let mut join = na.clone();
        join.union_with(&nb);
        assert_eq!(not_meet, join, "¬(a ∩ b) ≠ ¬a ∪ ¬b at n={n}");
    }
}

/// ¬¬a = a, and the complement actually flips membership (against the
/// trim at the universe boundary).
#[test]
fn nodeset_complement_involution() {
    let mut rng = SplitMix64::seed_from_u64(0xc0417e);
    for _ in 0..CASES {
        let n = rng.gen_range(1..257usize);
        let a = rand_set(&mut rng, n);
        let mut na = a.clone();
        na.complement();
        assert_eq!(a.count() + na.count(), n, "complement miscounts at n={n}");
        for v in a.iter() {
            assert!(!na.contains(v));
        }
        let mut back = na;
        back.complement();
        assert_eq!(back, a, "¬¬a ≠ a at n={n}");
    }
}

/// (rᵀ)ᵀ = r, and transpose is a relation isomorphism: membership flips
/// pairwise and the domain/codomain swap.
#[test]
fn bitmatrix_transpose_involution() {
    let mut rng = SplitMix64::seed_from_u64(0x7a4502);
    for _ in 0..CASES {
        let n = rng.gen_range(1..33usize);
        let r = rand_rel(&mut rng, n);
        let rt = r.transpose();
        assert_eq!(rt.transpose(), r, "(rᵀ)ᵀ ≠ r at n={n}");
        assert_eq!(rt.domain().to_vec(), r.codomain().to_vec());
        assert_eq!(rt.codomain().to_vec(), r.domain().to_vec());
        for x in 0..n as u32 {
            for y in 0..n as u32 {
                assert_eq!(r.get(NodeId(x), NodeId(y)), rt.get(NodeId(y), NodeId(x)));
            }
        }
    }
}

/// The reflexive-transitive closure is a closure operator: idempotent
/// ((r*)* = r*), extensive (r ∪ id ⊆ r*), and monotone
/// (r ⊆ s ⇒ r* ⊆ s*). Subset is tested via union-absorption.
#[test]
fn bitmatrix_star_is_a_closure_operator() {
    let mut rng = SplitMix64::seed_from_u64(0x57a127);
    let subset = |small: &BitMatrix, big: &BitMatrix| {
        let mut u = big.clone();
        u.union_with(small);
        &u == big
    };
    for _ in 0..CASES {
        let n = rng.gen_range(1..25usize);
        let r = rand_rel(&mut rng, n);
        let star = r.star();
        assert_eq!(star.star(), star, "(r*)* ≠ r* at n={n}");
        assert!(subset(&r, &star), "r ⊄ r* at n={n}");
        assert!(subset(&BitMatrix::identity(n), &star), "id ⊄ r* at n={n}");
        // grow r by one random extra pair: closure must not shrink
        let mut s = r.clone();
        s.set(
            NodeId(rng.gen_range(0..n as u32)),
            NodeId(rng.gen_range(0..n as u32)),
        );
        assert!(subset(&star, &s.star()), "star not monotone at n={n}");
    }
}

/// FCNS round-trip on generator-produced documents of every shape: the
/// binary encoding decodes back to the identical tree.
#[test]
fn fcns_roundtrip_on_random_documents() {
    const SHAPES: [Shape; 5] = [
        Shape::Recursive,
        Shape::Deep(2),
        Shape::Bounded(3),
        Shape::Wide,
        Shape::DocumentLike,
    ];
    let catalog = Catalog::from_names(["a", "b", "c"]);
    let mut rng = SplitMix64::seed_from_u64(0xfc2500d0);
    for i in 0..CASES {
        let n = rng.gen_range(1..60usize);
        let shape = SHAPES[i % SHAPES.len()];
        let doc = random_document_in(shape, n, &catalog, &mut rng);
        let bt = BinTree::encode(&doc.tree);
        assert_eq!(bt.len(), doc.tree.len());
        assert_eq!(
            bt.decode(),
            doc.tree,
            "fcns round-trip failed on a {shape:?} document of {} nodes",
            doc.tree.len()
        );
    }
}

/// Balanced-parentheses round-trip: `structure_bits` + the label column
/// reconstruct the exact tree, across all generator shapes and pinned
/// word-boundary sizes (1-node and 63/64/65 nodes → 126/128/130 bits,
/// straddling the 64-bit word edges of the structure bitvector).
#[test]
fn bp_roundtrip_on_random_documents() {
    use twx_xtree::Tree;
    const SHAPES: [Shape; 5] = [
        Shape::Recursive,
        Shape::Deep(2),
        Shape::Bounded(3),
        Shape::Wide,
        Shape::DocumentLike,
    ];
    const PINNED: [usize; 4] = [1, 63, 64, 65];
    let catalog = Catalog::from_names(["a", "b", "c"]);
    let mut rng = SplitMix64::seed_from_u64(0xb9_2b175);
    for i in 0..CASES {
        // The first pass through each shape pins the word-boundary sizes.
        let n = if i < SHAPES.len() * PINNED.len() {
            PINNED[i / SHAPES.len()]
        } else {
            rng.gen_range(1..60usize)
        };
        let shape = SHAPES[i % SHAPES.len()];
        let doc = random_document_in(shape, n, &catalog, &mut rng);
        let bits = doc.tree.structure_bits();
        assert_eq!(bits.len(), 2 * doc.tree.len(), "2 bits of shape per node");
        assert_eq!(bits.count_ones(), doc.tree.len(), "one open paren per node");
        let labels = doc.tree.label_column();
        let back = Tree::from_structure_bits(&bits, &labels).expect("encoder output must decode");
        assert_eq!(
            back,
            doc.tree,
            "bp round-trip failed on a {shape:?} document of {} nodes",
            doc.tree.len()
        );
    }
}

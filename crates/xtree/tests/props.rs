//! Property-based tests for the tree substrate.

use proptest::prelude::*;
use twx_xtree::fcns::BinTree;
use twx_xtree::generate::from_parent_vec;
use twx_xtree::nodeset::{BitMatrix, NodeSet};
use twx_xtree::traverse;
use twx_xtree::{Label, NodeId, Tree};

/// Strategy: a random tree with 1..=max_n nodes over `labels` labels,
/// built from a random parent vector (parents[i] < i guarantees a valid
/// preorder-ish shape after normalisation by `from_parent_vec`).
fn arb_tree(max_n: usize, labels: u32) -> impl Strategy<Value = Tree> {
    (1..=max_n).prop_flat_map(move |n| {
        let parents = (1..n)
            .map(|i| 0..(i as u32).max(1))
            .collect::<Vec<_>>()
            .prop_map(move |mut ps| {
                ps.insert(0, 0);
                ps
            });
        let labels = proptest::collection::vec(0..labels, n);
        (parents, labels).prop_map(|(ps, ls)| {
            let ls: Vec<Label> = ls.into_iter().map(Label).collect();
            from_parent_vec(&ps, &ls)
        })
    })
}

proptest! {
    /// Every generated tree satisfies the full arena invariant.
    #[test]
    fn generated_trees_validate(t in arb_tree(40, 3)) {
        prop_assert!(t.validate().is_ok());
    }

    /// FCNS encode/decode is the identity.
    #[test]
    fn fcns_roundtrip(t in arb_tree(40, 3)) {
        let bt = BinTree::encode(&t);
        prop_assert_eq!(bt.decode(), t);
    }

    /// `subtree_end` delimits exactly the descendants-or-self.
    #[test]
    fn subtree_range_is_descendants(t in arb_tree(30, 2)) {
        for v in t.nodes() {
            let range: Vec<NodeId> = traverse::descendants_or_self(&t, v).collect();
            for u in t.nodes() {
                let inside = u == v || t.is_ancestor(v, u);
                prop_assert_eq!(range.contains(&u), inside);
            }
        }
    }

    /// Extracted subtrees validate and have the right size and labels.
    #[test]
    fn subtree_extraction(t in arb_tree(30, 3)) {
        for v in t.nodes() {
            let sub = t.subtree(v);
            prop_assert!(sub.validate().is_ok());
            prop_assert_eq!(sub.len() as u32, t.subtree_end(v) - v.0);
            prop_assert_eq!(sub.label(sub.root()), t.label(v));
        }
    }

    /// Preorder and postorder are permutations of the node set.
    #[test]
    fn orders_are_permutations(t in arb_tree(40, 2)) {
        let pre: Vec<_> = traverse::preorder(&t).collect();
        let post: Vec<_> = traverse::postorder(&t).collect();
        prop_assert_eq!(pre.len(), t.len());
        prop_assert_eq!(post.len(), t.len());
        let mut seen = vec![false; t.len()];
        for v in &post {
            prop_assert!(!seen[v.index()]);
            seen[v.index()] = true;
        }
        // postorder: every node after all its children
        let mut pos = vec![0usize; t.len()];
        for (i, v) in post.iter().enumerate() {
            pos[v.index()] = i;
        }
        for v in t.nodes() {
            if let Some(p) = t.parent(v) {
                prop_assert!(pos[v.index()] < pos[p.index()]);
            }
        }
    }

    /// following/preceding partition the document order around a node.
    #[test]
    fn following_preceding_partition(t in arb_tree(25, 2)) {
        for v in t.nodes() {
            let following: Vec<_> = traverse::following(&t, v).collect();
            let preceding: Vec<_> = traverse::preceding(&t, v).collect();
            let ancestors: Vec<_> = traverse::ancestors(&t, v).collect();
            let descendants: Vec<_> = traverse::descendants(&t, v).collect();
            let total = 1 + following.len() + preceding.len() + ancestors.len() + descendants.len();
            prop_assert_eq!(total, t.len(), "partition failed at {:?}", v);
        }
    }

    /// Set algebra laws: De Morgan, double complement, absorption.
    #[test]
    fn nodeset_boolean_laws(
        n in 1usize..200,
        xs in proptest::collection::vec(0u32..200, 0..40),
        ys in proptest::collection::vec(0u32..200, 0..40),
    ) {
        let a = NodeSet::from_iter(n, xs.into_iter().filter(|&x| (x as usize) < n).map(NodeId));
        let b = NodeSet::from_iter(n, ys.into_iter().filter(|&y| (y as usize) < n).map(NodeId));
        // ¬(a ∪ b) = ¬a ∩ ¬b
        let mut lhs = a.clone();
        lhs.union_with(&b);
        lhs.complement();
        let mut rhs = a.clone();
        rhs.complement();
        let mut nb = b.clone();
        nb.complement();
        rhs.intersect_with(&nb);
        prop_assert_eq!(&lhs, &rhs);
        // double complement
        let mut dc = a.clone();
        dc.complement();
        dc.complement();
        prop_assert_eq!(&dc, &a);
        // a \ b = a ∩ ¬b
        let mut diff = a.clone();
        diff.difference_with(&b);
        let mut expect = a.clone();
        expect.intersect_with(&nb);
        prop_assert_eq!(diff, expect);
    }

    /// Relation algebra laws: composition associativity, star fixpoint,
    /// transpose anti-homomorphism.
    #[test]
    fn bitmatrix_relation_laws(
        n in 1usize..24,
        edges in proptest::collection::vec((0u32..24, 0u32..24), 0..40),
    ) {
        let mut r = BitMatrix::empty(n);
        let mut s = BitMatrix::empty(n);
        for (i, &(a, b)) in edges.iter().enumerate() {
            if (a as usize) < n && (b as usize) < n {
                if i % 2 == 0 {
                    r.set(NodeId(a), NodeId(b));
                } else {
                    s.set(NodeId(a), NodeId(b));
                }
            }
        }
        // (r;s)ᵀ = sᵀ;rᵀ
        let lhs = r.compose(&s).transpose();
        let rhs = s.transpose().compose(&r.transpose());
        prop_assert_eq!(lhs, rhs);
        // star: r* = id ∪ r;r*
        let star = r.star();
        let mut expect = r.compose(&star);
        expect.union_with(&BitMatrix::identity(n));
        prop_assert_eq!(&star, &expect);
        // star is idempotent
        prop_assert_eq!(star.star(), star);
    }
}

//! Property-based tests for the tree substrate.
//!
//! Seeded randomised properties: each test draws a few hundred instances
//! from the in-tree deterministic PRNG ([`twx_xtree::rng`]) and asserts
//! a law on every one. Deterministic across runs and platforms (the
//! offline build has no `proptest`), so a failure is always reproducible
//! from the seed embedded in the test.

use twx_xtree::fcns::BinTree;
use twx_xtree::generate::from_parent_vec;
use twx_xtree::nodeset::{BitMatrix, NodeSet};
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::traverse;
use twx_xtree::{Label, NodeId, Tree};

/// A random tree with `1..=max_n` nodes over `labels` labels, from a
/// random parent vector (`parents[i] < i` guarantees a valid
/// preorder-ish shape after normalisation by `from_parent_vec`).
fn rand_tree(rng: &mut SplitMix64, max_n: usize, labels: u32) -> Tree {
    let n = rng.gen_range(1..max_n + 1);
    let mut parents = vec![0u32; n];
    for (i, p) in parents.iter_mut().enumerate().skip(1) {
        *p = rng.gen_range(0..i as u32);
    }
    let ls: Vec<Label> = (0..n).map(|_| Label(rng.gen_range(0..labels))).collect();
    from_parent_vec(&parents, &ls)
}

#[test]
fn generated_trees_validate() {
    let mut rng = SplitMix64::seed_from_u64(0xbead);
    for _ in 0..300 {
        let t = rand_tree(&mut rng, 40, 3);
        assert!(t.validate().is_ok());
    }
}

#[test]
fn fcns_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0xfc25);
    for _ in 0..300 {
        let t = rand_tree(&mut rng, 40, 3);
        let bt = BinTree::encode(&t);
        assert_eq!(bt.decode(), t);
    }
}

#[test]
fn subtree_range_is_descendants() {
    let mut rng = SplitMix64::seed_from_u64(0x5b7e);
    for _ in 0..120 {
        let t = rand_tree(&mut rng, 30, 2);
        for v in t.nodes() {
            let range: Vec<NodeId> = traverse::descendants_or_self(&t, v).collect();
            for u in t.nodes() {
                let inside = u == v || t.is_ancestor(v, u);
                assert_eq!(range.contains(&u), inside);
            }
        }
    }
}

#[test]
fn subtree_extraction() {
    let mut rng = SplitMix64::seed_from_u64(0x50b7);
    for _ in 0..120 {
        let t = rand_tree(&mut rng, 30, 3);
        for v in t.nodes() {
            let sub = t.subtree(v);
            assert!(sub.validate().is_ok());
            assert_eq!(sub.len() as u32, t.subtree_end(v) - v.0);
            assert_eq!(sub.label(sub.root()), t.label(v));
        }
    }
}

#[test]
fn orders_are_permutations() {
    let mut rng = SplitMix64::seed_from_u64(0x04d5);
    for _ in 0..200 {
        let t = rand_tree(&mut rng, 40, 2);
        let pre: Vec<_> = traverse::preorder(&t).collect();
        let post: Vec<_> = traverse::postorder(&t).collect();
        assert_eq!(pre.len(), t.len());
        assert_eq!(post.len(), t.len());
        let mut seen = vec![false; t.len()];
        for v in &post {
            assert!(!seen[v.index()]);
            seen[v.index()] = true;
        }
        // postorder: every node after all its children
        let mut pos = vec![0usize; t.len()];
        for (i, v) in post.iter().enumerate() {
            pos[v.index()] = i;
        }
        for v in t.nodes() {
            if let Some(p) = t.parent(v) {
                assert!(pos[v.index()] < pos[p.index()]);
            }
        }
    }
}

#[test]
fn following_preceding_partition() {
    let mut rng = SplitMix64::seed_from_u64(0xf011);
    for _ in 0..120 {
        let t = rand_tree(&mut rng, 25, 2);
        for v in t.nodes() {
            let following: Vec<_> = traverse::following(&t, v).collect();
            let preceding: Vec<_> = traverse::preceding(&t, v).collect();
            let ancestors: Vec<_> = traverse::ancestors(&t, v).collect();
            let descendants: Vec<_> = traverse::descendants(&t, v).collect();
            let total = 1 + following.len() + preceding.len() + ancestors.len() + descendants.len();
            assert_eq!(total, t.len(), "partition failed at {v:?}");
        }
    }
}

/// A random node set over universe `n` with roughly `fill` members.
fn rand_set(rng: &mut SplitMix64, n: usize, fill: usize) -> NodeSet {
    NodeSet::from_iter(n, (0..fill).map(|_| NodeId(rng.gen_range(0..n as u32))))
}

#[test]
fn nodeset_boolean_laws() {
    let mut rng = SplitMix64::seed_from_u64(0xb001);
    for _ in 0..300 {
        let n = rng.gen_range(1..200usize);
        let fill_a = rng.gen_range(0..40usize);
        let a = rand_set(&mut rng, n, fill_a);
        let fill_b = rng.gen_range(0..40usize);
        let b = rand_set(&mut rng, n, fill_b);
        // ¬(a ∪ b) = ¬a ∩ ¬b
        let mut lhs = a.clone();
        lhs.union_with(&b);
        lhs.complement();
        let mut rhs = a.clone();
        rhs.complement();
        let mut nb = b.clone();
        nb.complement();
        rhs.intersect_with(&nb);
        assert_eq!(&lhs, &rhs);
        // double complement
        let mut dc = a.clone();
        dc.complement();
        dc.complement();
        assert_eq!(&dc, &a);
        // a \ b = a ∩ ¬b
        let mut diff = a.clone();
        diff.difference_with(&b);
        let mut expect = a.clone();
        expect.intersect_with(&nb);
        assert_eq!(diff, expect);
    }
}

#[test]
fn bitmatrix_relation_laws() {
    let mut rng = SplitMix64::seed_from_u64(0xb12a);
    for _ in 0..200 {
        let n = rng.gen_range(1..24usize);
        let mut r = BitMatrix::empty(n);
        let mut s = BitMatrix::empty(n);
        for i in 0..rng.gen_range(0..40usize) {
            let a = NodeId(rng.gen_range(0..n as u32));
            let b = NodeId(rng.gen_range(0..n as u32));
            if i % 2 == 0 {
                r.set(a, b);
            } else {
                s.set(a, b);
            }
        }
        // (r;s)ᵀ = sᵀ;rᵀ
        let lhs = r.compose(&s).transpose();
        let rhs = s.transpose().compose(&r.transpose());
        assert_eq!(lhs, rhs);
        // star: r* = id ∪ r;r*
        let star = r.star();
        let mut expect = r.compose(&star);
        expect.union_with(&BitMatrix::identity(n));
        assert_eq!(&star, &expect);
        // star is idempotent
        assert_eq!(star.star(), star);
    }
}

//! Seeded property suite for the hybrid [`Frontier`] representation and
//! the push/pull step-image primitives (500 cases).
//!
//! Three families of properties, each pinned against an independent
//! reference implementation:
//!
//! 1. **Conversion round-trips** — `NodeSet → Frontier → NodeSet` is the
//!    identity at every cardinality, with universes placed at the
//!    63/64/65-word boundaries and exactly at the sparse↔dense switching
//!    thresholds.
//! 2. **Set algebra** — every `Frontier` operation (union, intersect,
//!    difference, complement, insert, remove, contains) agrees with the
//!    same operation on plain [`NodeSet`]s, across mixed
//!    representations.
//! 3. **Image equivalence** — on random trees, `push-image ≡ pull-image
//!    ≡ transpose-image` for all four steps: the push and pull kernels
//!    and the [`BitMatrix`] step relation give identical images, and the
//!    matrix of a step transposed equals the matrix of its inverse.

use twx_xtree::frontier::{self, dense_threshold, sparse_threshold, Frontier, Step};
use twx_xtree::generate::{random_tree, Shape};
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::{BitMatrix, NodeId, NodeSet, Tree};

const CASES: usize = 500;

/// A random subset of `0..n` where each id is kept with probability
/// `keep_num / 64` — drives cardinalities from near-empty to near-full.
fn random_set(n: usize, keep_num: u64, rng: &mut SplitMix64) -> NodeSet {
    NodeSet::from_iter(
        n,
        (0..n as u32)
            .filter(|_| rng.next_u64() % 64 < keep_num)
            .map(NodeId),
    )
}

/// Universe sizes covering the word boundaries (63/64/65 ids and the
/// 63/64/65-**word** marks) plus irregular sizes.
fn universes(case: usize) -> usize {
    const U: [usize; 12] = [
        1,
        63,
        64,
        65,
        100,
        63 * 64, // exactly 63 words
        64 * 64, // exactly 64 words
        64 * 64 + 1,
        65 * 64, // exactly 65 words
        1000,
        2048,
        4097,
    ];
    U[case % U.len()]
}

#[test]
fn conversion_roundtrips_500_cases() {
    let mut rng = SplitMix64::seed_from_u64(0xF00D);
    for case in 0..CASES {
        let n = universes(case);
        let keep = rng.next_u64() % 65; // 0..=64 → densities 0..=1
        let set = random_set(n, keep, &mut rng);
        let f = Frontier::from_nodeset(&set);
        assert_eq!(f.to_nodeset(), set, "case {case}: roundtrip n={n}");
        assert_eq!(f.len(), set.count_ones());
        // representation matches the threshold rule
        assert_eq!(
            f.is_dense(),
            set.count_ones() > dense_threshold(n),
            "case {case}: repr at card {} of {n}",
            set.count_ones()
        );
        // sorted-id construction agrees
        let ids: Vec<NodeId> = set.iter().collect();
        assert_eq!(Frontier::from_sorted_ids(n, ids).to_nodeset(), set);
    }
}

#[test]
fn switching_thresholds_exact() {
    // Exactly at the boundaries: card == dense_threshold stays sparse,
    // card == dense_threshold + 1 promotes; inside the hysteresis band
    // an existing representation is kept.
    for n in [64, 640, 64 * 64, 1000] {
        let dt = dense_threshold(n);
        let st = sparse_threshold(n);
        assert!(st < dt, "hysteresis band must be nonempty at n={n}");

        let at = NodeSet::from_iter(n, (0..dt as u32).map(NodeId));
        assert!(
            !Frontier::from_nodeset(&at).is_dense(),
            "at threshold, n={n}"
        );
        let above = NodeSet::from_iter(n, (0..dt as u32 + 1).map(NodeId));
        assert!(
            Frontier::from_nodeset(&above).is_dense(),
            "above threshold, n={n}"
        );

        // hysteresis: a band-sized set keeps whichever repr it had
        let band = NodeSet::from_iter(n, (0..st as u32).map(NodeId));
        assert!(Frontier::from_nodeset_with_hysteresis(&band, true).is_dense());
        assert!(!Frontier::from_nodeset_with_hysteresis(&band, false).is_dense());
        // below the band, even a dense history demotes
        if st > 0 {
            let below = NodeSet::from_iter(n, (0..st as u32 - 1).map(NodeId));
            assert!(!Frontier::from_nodeset_with_hysteresis(&below, true).is_dense());
        }
        // above the band, even a sparse history promotes
        let over = NodeSet::from_iter(n, (0..dt as u32 + 1).map(NodeId));
        assert!(Frontier::from_nodeset_with_hysteresis(&over, false).is_dense());
    }
}

#[test]
fn set_algebra_matches_nodeset_500_cases() {
    let mut rng = SplitMix64::seed_from_u64(0xA11A);
    for case in 0..CASES {
        let n = universes(case);
        let a_set = random_set(n, rng.next_u64() % 65, &mut rng);
        let b_set = random_set(n, rng.next_u64() % 65, &mut rng);
        let mut a = Frontier::from_nodeset(&a_set);
        let b = Frontier::from_nodeset(&b_set);

        match case % 4 {
            0 => {
                let mut expect = a_set.clone();
                expect.union_with(&b_set);
                a.union_with(&b);
                assert_eq!(a.to_nodeset(), expect, "case {case}: union n={n}");
            }
            1 => {
                let mut expect = a_set.clone();
                expect.intersect_with(&b_set);
                a.intersect_with(&b);
                assert_eq!(a.to_nodeset(), expect, "case {case}: intersect n={n}");
            }
            2 => {
                let mut expect = a_set.clone();
                expect.difference_with(&b_set);
                a.difference_with(&b);
                assert_eq!(a.to_nodeset(), expect, "case {case}: difference n={n}");
            }
            _ => {
                let mut expect = a_set.clone();
                expect.complement();
                a.complement();
                assert_eq!(a.to_nodeset(), expect, "case {case}: complement n={n}");
            }
        }

        // point operations agree on a fresh copy
        let mut f = Frontier::from_nodeset(&a_set);
        let mut s = a_set.clone();
        let v = NodeId((rng.next_u64() % n as u64) as u32);
        assert_eq!(f.contains(v), s.contains(v), "case {case}: contains");
        assert_eq!(f.insert(v), s.insert(v), "case {case}: insert");
        assert_eq!(f.remove(v), s.remove(v), "case {case}: remove");
        assert_eq!(f.to_nodeset(), s, "case {case}: after point ops");
    }
}

/// The step relation as an explicit `BitMatrix` (the reference the
/// evaluators are pinned to).
fn step_matrix(t: &Tree, step: Step) -> BitMatrix {
    let mut m = BitMatrix::empty(t.len());
    for v in t.nodes() {
        match step {
            Step::Down => {
                let mut c = t.first_child(v);
                while let Some(u) = c {
                    m.set(v, u);
                    c = t.next_sibling(u);
                }
            }
            Step::Up => {
                if let Some(p) = t.parent(v) {
                    m.set(v, p);
                }
            }
            Step::Left => {
                if let Some(p) = t.prev_sibling(v) {
                    m.set(v, p);
                }
            }
            Step::Right => {
                if let Some(s) = t.next_sibling(v) {
                    m.set(v, s);
                }
            }
        }
    }
    m
}

#[test]
fn push_pull_transpose_images_agree_500_cases() {
    let mut rng = SplitMix64::seed_from_u64(0xBEEF);
    const SHAPES: [Shape; 5] = [
        Shape::Recursive,
        Shape::Deep(2),
        Shape::Bounded(3),
        Shape::Wide,
        Shape::DocumentLike,
    ];
    for case in 0..CASES {
        let n = 1 + (case % 97) * 3; // 1..=289 nodes, word boundaries included
        let shape = SHAPES[case % SHAPES.len()];
        let t = random_tree(shape, n, 2, &mut rng);
        let step = Step::ALL[case % 4];
        let src_set = random_set(t.len(), rng.next_u64() % 65, &mut rng);
        let src = Frontier::from_nodeset(&src_set);

        let push = frontier::axis_image_seq(&t, step, &src);

        let mut pull = NodeSet::empty(t.len());
        frontier::pull_image_range(&t, step, &src, 0..t.len(), &mut pull);

        let matrix = step_matrix(&t, step);
        let via_matrix = matrix.image(&src_set);

        assert_eq!(push, pull, "case {case}: push ≡ pull ({})", step.name());
        assert_eq!(
            push,
            via_matrix,
            "case {case}: push ≡ matrix image ({})",
            step.name()
        );
        // transpose-image: R(step)ᵀ = R(step⁻¹), so the transposed
        // matrix image equals the inverse step's image
        let transposed = matrix.transpose().image(&src_set);
        let inverse = frontier::axis_image_seq(&t, step.inverse(), &src);
        assert_eq!(
            transposed,
            inverse,
            "case {case}: transpose ≡ inverse step ({})",
            step.name()
        );

        // chunked pull over word-aligned ranges composes to the whole
        let mut chunked = NodeSet::empty(t.len());
        for r in frontier::word_chunks(t.len(), 1 + case % 5) {
            frontier::pull_image_range(&t, step, &src, r, &mut chunked);
        }
        assert_eq!(push, chunked, "case {case}: chunked pull");
    }
}

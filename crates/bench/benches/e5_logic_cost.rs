//! Criterion bench for E5: FO(MTC) model checking vs direct evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use twx_core::rpath_to_formula;
use twx_fotc::eval::eval_binary;
use twx_regxpath::parser::parse_rpath;
use twx_xtree::generate::{random_tree, Shape};
use twx_xtree::Alphabet;

fn bench_e5(c: &mut Criterion) {
    let mut ab = Alphabet::from_names(["p0", "p1"]);
    let p = parse_rpath("(down[p0])*", &mut ab).unwrap();
    let f = rpath_to_formula(&p, 0, 1, 2);
    let mut rng = StdRng::seed_from_u64(55);

    let mut group = c.benchmark_group("e5");
    group.sample_size(10);
    for n in [16usize, 48] {
        let t = random_tree(Shape::Recursive, n, 2, &mut rng);
        group.bench_with_input(BenchmarkId::new("xpath-full-rel", n), &n, |b, _| {
            b.iter(|| twx_regxpath::eval_rel(&t, &p))
        });
        group.bench_with_input(BenchmarkId::new("fotc-model-check", n), &n, |b, _| {
            b.iter(|| eval_binary(&t, &f, 0, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);

//! Criterion bench for E1: Core XPath GKP evaluator vs naive relational
//! evaluator across tree sizes and workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use twx_bench::experiments::e1_core_eval::queries;
use twx_bench::Workload;
use twx_corexpath::{eval_path_image, eval_path_rel};
use twx_xtree::generate::random_tree;
use twx_xtree::{Alphabet, NodeSet};

fn bench_e1(c: &mut Criterion) {
    let mut ab = Alphabet::from_names(["p0", "p1", "p2"]);
    let qs = queries(&mut ab);
    let mut rng = StdRng::seed_from_u64(11);

    let mut group = c.benchmark_group("e1/gkp");
    group.sample_size(20);
    for wl in Workload::ALL {
        for n in [1_000usize, 10_000] {
            let t = random_tree(wl.shape(), n, 3, &mut rng);
            let ctx = NodeSet::singleton(t.len(), t.root());
            let (name, q) = &qs[2]; // the filtered query is the richest
            group.bench_with_input(
                BenchmarkId::new(format!("{}/{}", wl.name(), name), n),
                &n,
                |b, _| b.iter(|| eval_path_image(&t, q, &ctx)),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("e1/naive");
    group.sample_size(10);
    for n in [100usize, 300] {
        let t = random_tree(Workload::Document.shape(), n, 3, &mut rng);
        let (name, q) = &qs[2];
        group.bench_with_input(BenchmarkId::new(*name, n), &n, |b, _| {
            b.iter(|| eval_path_rel(&t, q))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);

//! Criterion bench for E7: determinization and complementation costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twx_treeauto::examples::{even_a, true_circuits};

fn bench_e7(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7");
    group.sample_size(10);
    for (name, auto) in [("even-a", even_a()), ("true-circuits", true_circuits())] {
        group.bench_function(BenchmarkId::new("determinize", name), |b| {
            b.iter(|| auto.determinize())
        });
        group.bench_function(BenchmarkId::new("complement", name), |b| {
            b.iter(|| auto.complement())
        });
        group.bench_function(BenchmarkId::new("self-product", name), |b| {
            b.iter(|| auto.intersect(&auto))
        });
        group.bench_function(BenchmarkId::new("emptiness", name), |b| {
            b.iter(|| auto.is_empty())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);

//! Criterion bench for E2: Regular XPath(W) product evaluator vs matrix
//! baseline, plus the query-size sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use twx_bench::experiments::e2_regxpath_eval::{queries, sized_query};
use twx_bench::Workload;
use twx_regxpath::eval::Compiled;
use twx_regxpath::eval_naive::eval_rel_naive;
use twx_xtree::generate::random_tree;
use twx_xtree::{Alphabet, NodeSet};

fn bench_e2(c: &mut Criterion) {
    let mut ab = Alphabet::from_names(["p0", "p1"]);
    let qs = queries(&mut ab);
    let mut rng = StdRng::seed_from_u64(22);

    let mut group = c.benchmark_group("e2/product");
    group.sample_size(20);
    for (name, q) in &qs {
        let compiled = Compiled::new(q);
        let t = random_tree(Workload::Document.shape(), 10_000, 2, &mut rng);
        let ctx = NodeSet::singleton(t.len(), t.root());
        group.bench_function(BenchmarkId::new(*name, 10_000), |b| {
            b.iter(|| compiled.image(&t, &ctx))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e2/naive");
    group.sample_size(10);
    let t = random_tree(Workload::Document.shape(), 200, 2, &mut rng);
    let (name, q) = &qs[0];
    group.bench_function(BenchmarkId::new(*name, 200), |b| {
        b.iter(|| eval_rel_naive(&t, q))
    });
    group.finish();

    let mut group = c.benchmark_group("e2/query-size-sweep");
    group.sample_size(15);
    let t = random_tree(Workload::Document.shape(), 5_000, 2, &mut rng);
    let ctx = NodeSet::singleton(t.len(), t.root());
    for k in [1usize, 8, 32] {
        let q = sized_query(k);
        let compiled = Compiled::new(&q);
        group.bench_with_input(BenchmarkId::new("size", q.size()), &k, |b, _| {
            b.iter(|| compiled.image(&t, &ctx))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);

//! Criterion bench for E6: exact automata-based satisfiability vs
//! bounded-model search, over the fixed formula set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twx_bench::experiments::e6_satisfiability::formulas;
use twx_core::decide::node_sat_bounded;
use twx_core::from_core::core_node_to_regular;
use twx_corexpath::parser::parse_node_expr;
use twx_treeauto::xpath_compile::satisfiable;
use twx_xtree::Alphabet;

fn bench_e6(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6");
    group.sample_size(15);
    for (name, src, _) in formulas() {
        if name.starts_with("deep") {
            continue; // the 2.9s exact instance belongs to the harness, not the bench loop
        }
        let mut ab = Alphabet::from_names(["p0", "p1"]);
        let f = parse_node_expr(src, &mut ab).unwrap();
        let rf = core_node_to_regular(&f);
        group.bench_function(BenchmarkId::new("exact", name), |b| {
            b.iter(|| satisfiable(&f, 2).unwrap())
        });
        group.bench_function(BenchmarkId::new("bounded", name), |b| {
            b.iter(|| node_sat_bounded(&rf, 4, 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);

//! Criterion bench for E3: translation times across the triangle
//! (Thompson, Kleene raw + simplification, logic direction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use twx_core::{ntwa_to_rpath, rpath_to_formula, rpath_to_ntwa};
use twx_regxpath::generate::{random_rpath, RGenConfig};
use twx_twa::generate::{random_ntwa, TGenConfig};

fn bench_e3(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(33);
    let cfg = RGenConfig::default();

    let mut group = c.benchmark_group("e3/thompson");
    group.sample_size(30);
    for depth in [3usize, 5] {
        let exprs: Vec<_> = (0..10).map(|_| random_rpath(&cfg, depth, &mut rng)).collect();
        group.bench_with_input(BenchmarkId::new("depth", depth), &depth, |b, _| {
            b.iter(|| {
                for e in &exprs {
                    std::hint::black_box(rpath_to_ntwa(e));
                }
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e3/kleene");
    group.sample_size(10);
    for states in [3u32, 5] {
        let tcfg = TGenConfig {
            states,
            transitions: (states * 2) as usize,
            depth: 0,
            ..TGenConfig::default()
        };
        let autos: Vec<_> = (0..5).map(|_| random_ntwa(&tcfg, &mut rng)).collect();
        group.bench_with_input(BenchmarkId::new("states", states), &states, |b, _| {
            b.iter(|| {
                for a in &autos {
                    std::hint::black_box(ntwa_to_rpath(a));
                }
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e3/to-logic");
    group.sample_size(30);
    let exprs: Vec<_> = (0..20).map(|_| random_rpath(&cfg, 4, &mut rng)).collect();
    group.bench_function("depth-4", |b| {
        b.iter(|| {
            for e in &exprs {
                std::hint::black_box(rpath_to_formula(e, 0, 1, 2));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);

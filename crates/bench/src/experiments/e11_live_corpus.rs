//! E11 — the live corpus: versioned edits, the result cache, and
//! precise invalidation, measured against the recompute world.
//!
//! Two measurements:
//!
//! * **90/10 mix** — the same deterministic stream of operations (90%
//!   queries over a small hot query pool, 10% random typed edits) runs
//!   through two regimes. *Live*: documents are [`VersionedDocument`]s,
//!   one hot engine keeps its plan cache, answers come through a
//!   [`ResultCache`] whose entries are invalidated precisely by each
//!   edit's affected span. *Baseline*: every edit re-ingests the whole
//!   corpus (the cost a version-less store pays) and every query runs
//!   on a plan-cache-cold engine with no result cache. Same answers,
//!   measured wall-clock apart — the acceptance bar is live ≥ 5×.
//! * **Invalidation precision probe** — a deterministic script caches a
//!   subtree-local query, edits a *disjoint* subtree (the entry must be
//!   carried and the next lookup must hit), then edits *inside* the
//!   cached span (the entry must be invalidated and the next lookup
//!   must miss). The counts land in the summary so CI can assert the
//!   cache is precise, not merely correct.
//!
//! [`run_full`] also returns the structured summary that the harness
//! exports as the top-level `e11` field of `BENCH_HARNESS.json`.

use crate::table::Table;
use crate::RunCfg;
use std::sync::Arc;
use treewalk::{Backend, Engine, ResultCache};
use twx_corpus::Corpus;
use twx_obs::json::Json;
use twx_obs::Histogram;
use twx_xtree::edit::random_edit;
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::{Catalog, Document, NodeId, VersionedDocument};

/// The hot query pool: a subtree-local scan (cache entries survive
/// disjoint edits), a sideways closure (whole-document span), and a
/// filter-heavy walk.
const QUERIES: [&str; 3] = [
    "down*[a]",
    "(down | right)*[b]",
    "down*[<down[c]> or <down[d]>]",
];

/// One operation of the 90/10 mix, pre-generated so both regimes replay
/// the identical stream.
enum MixOp {
    /// Evaluate `QUERIES[query]` on every document from context `ctx`
    /// (clamped to the document's current length — mostly the root,
    /// sometimes an early subtree so downward answers can *survive*
    /// later-subtree edits).
    Query { query: usize, ctx: u32 },
    /// Apply a random (but deterministic) edit to document `doc`;
    /// `pick` seeds the edit draw.
    Edit { doc: usize, pick: u64 },
}

struct MixCfg {
    n_docs: usize,
    doc_size: usize,
    ops: usize,
}

fn mix_cfg(cfg: &RunCfg) -> MixCfg {
    if cfg.quick {
        MixCfg {
            n_docs: 8,
            doc_size: 40,
            ops: 200,
        }
    } else {
        MixCfg {
            n_docs: 24,
            doc_size: 200,
            ops: 1000,
        }
    }
}

fn build_docs(cfg: &RunCfg, mc: &MixCfg, catalog: &Catalog) -> Vec<Document> {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed_for(11));
    (0..mc.n_docs)
        .map(|_| random_document_in(Shape::DocumentLike, mc.doc_size, catalog, &mut rng))
        .collect()
}

fn build_ops(cfg: &RunCfg, mc: &MixCfg) -> Vec<MixOp> {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed_for(11) ^ 0x9e37);
    (0..mc.ops)
        .map(|_| {
            if rng.gen_range(0..100u32) < 90 {
                MixOp::Query {
                    query: rng.gen_range(0..QUERIES.len()),
                    ctx: if rng.gen_range(0..100u32) < 70 { 0 } else { 1 },
                }
            } else {
                MixOp::Edit {
                    doc: rng.gen_range(0..mc.n_docs),
                    pick: rng.next_u64(),
                }
            }
        })
        .collect()
}

struct LiveRun {
    elapsed_ms: f64,
    matches: u64,
    hits: u64,
    misses: u64,
    carried: u64,
    invalidated: u64,
    /// Latency distribution of each *query op* (one pool query swept
    /// across the whole corpus), log-bucketed.
    query_hist: Histogram,
}

/// The live regime: versioned documents + hot engine + result cache,
/// each edit invalidating exactly its affected span.
fn run_live(catalog: &Arc<Catalog>, docs: &[Document], ops: &[MixOp]) -> LiveRun {
    let labels: Vec<_> = ["a", "b", "c", "d"]
        .iter()
        .map(|n| catalog.intern(n))
        .collect();
    let mut live: Vec<VersionedDocument> = docs
        .iter()
        .map(|d| VersionedDocument::new(Arc::new(d.clone())))
        .collect();
    let engine = Engine::with_backend(Backend::Product);
    let cache = ResultCache::default();
    let mut matches = 0u64;
    let mut query_hist = Histogram::default();
    let t0 = std::time::Instant::now();
    // one compile per pool query, inside the timed region — the serving
    // posture (QueryService compiles once and fans the plan out)
    let pool: Vec<_> = QUERIES
        .iter()
        .map(|q| engine.prepare_in(catalog, q).expect("pool query compiles"))
        .collect();
    for op in ops {
        match op {
            MixOp::Query { query, ctx } => {
                let prepared = &pool[*query];
                let q0 = std::time::Instant::now();
                for (i, vdoc) in live.iter().enumerate() {
                    let ctx = NodeId((*ctx).min(vdoc.doc.tree.len() as u32 - 1));
                    let answer =
                        prepared.eval_cached(&cache, i as u64, vdoc.version, &vdoc.doc, ctx);
                    matches += answer.count() as u64;
                }
                query_hist.record(q0.elapsed().as_nanos() as u64);
            }
            MixOp::Edit { doc, pick } => {
                let vdoc = &mut live[*doc];
                let mut rng = SplitMix64::seed_from_u64(*pick);
                let edit = random_edit(&vdoc.doc.tree, &labels, &mut rng);
                let receipt = vdoc.apply(&edit).expect("random_edit is always valid");
                cache.invalidate(*doc as u64, receipt.affected, receipt.version);
            }
        }
    }
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = cache.stats();
    LiveRun {
        elapsed_ms,
        matches,
        hits: stats.hits,
        misses: stats.misses,
        carried: stats.carried,
        invalidated: stats.invalidated,
        query_hist,
    }
}

/// The baseline regime: the same op stream, but every edit pays a full
/// corpus re-ingest and every query a plan-cache-cold engine with no
/// result cache.
fn run_baseline(catalog: &Arc<Catalog>, docs: &[Document], ops: &[MixOp]) -> (f64, u64) {
    let labels: Vec<_> = ["a", "b", "c", "d"]
        .iter()
        .map(|n| catalog.intern(n))
        .collect();
    let mut current: Vec<Document> = docs.to_vec();
    let mut matches = 0u64;
    let t0 = std::time::Instant::now();
    for op in ops {
        match op {
            MixOp::Query { query, ctx } => {
                let engine = Engine::with_backend(Backend::Product);
                let prepared = engine
                    .prepare_in(catalog, QUERIES[*query])
                    .expect("pool query compiles");
                for doc in &current {
                    let ctx = NodeId((*ctx).min(doc.tree.len() as u32 - 1));
                    matches += prepared.eval(doc, ctx).count() as u64;
                }
            }
            MixOp::Edit { doc, pick } => {
                let mut rng = SplitMix64::seed_from_u64(*pick);
                let edit = random_edit(&current[*doc].tree, &labels, &mut rng);
                let (tree, _) = twx_xtree::apply_edit(&current[*doc].tree, &edit)
                    .expect("random_edit is always valid");
                current[*doc] = Document::new(tree, current[*doc].alphabet.clone());
                // the version-less world: every edit re-ingests the corpus
                let mut b = Corpus::builder(Arc::clone(catalog), 4);
                for d in &current {
                    b.add_document(d.clone());
                }
                let _reingested = b.build();
            }
        }
    }
    (t0.elapsed().as_secs_f64() * 1e3, matches)
}

struct Precision {
    carried: u64,
    invalidated: u64,
    hit_after_disjoint_edit: bool,
    miss_after_overlapping_edit: bool,
}

/// The deterministic precision probe (see the module docs).
fn precision_probe(catalog: &Arc<Catalog>) -> Precision {
    let doc = twx_xtree::parse::parse_sexp_catalog("(a (b (c a) b) (c (d b) a))", catalog)
        .expect("probe doc");
    let mut vdoc = VersionedDocument::new(Arc::new(doc));
    let engine = Engine::with_backend(Backend::Product);
    let cache = ResultCache::default();
    let prepared = engine.prepare_in(catalog, "down*[a]").expect("probe query");
    let late = catalog.intern("d");

    // cache a subtree-local answer at the first child (span [1, 5))
    prepared.eval_cached(&cache, 0, vdoc.version, &vdoc.doc, NodeId(1));
    // edit the disjoint second subtree: the entry must be carried
    let receipt = vdoc
        .apply(&twx_xtree::Edit::Relabel {
            node: NodeId(6),
            label: late,
        })
        .expect("probe relabel");
    let (carried, _) = cache.invalidate(0, receipt.affected, receipt.version);
    let before = cache.stats();
    prepared.eval_cached(&cache, 0, vdoc.version, &vdoc.doc, NodeId(1));
    let hit_after_disjoint_edit = cache.stats().hits == before.hits + 1;

    // edit *inside* the cached span: the entry must be invalidated
    let receipt = vdoc
        .apply(&twx_xtree::Edit::Relabel {
            node: NodeId(2),
            label: late,
        })
        .expect("probe relabel");
    let (_, invalidated) = cache.invalidate(0, receipt.affected, receipt.version);
    let before = cache.stats();
    prepared.eval_cached(&cache, 0, vdoc.version, &vdoc.doc, NodeId(1));
    let miss_after_overlapping_edit = cache.stats().misses == before.misses + 1;

    Precision {
        carried,
        invalidated,
        hit_after_disjoint_edit,
        miss_after_overlapping_edit,
    }
}

/// Runs E11, returning the rendered table and the structured summary
/// exported as the `e11` field of `BENCH_HARNESS.json`.
pub fn run_full(cfg: &RunCfg) -> (Table, Json) {
    let mc = mix_cfg(cfg);
    let catalog = Arc::new(Catalog::from_names(["a", "b", "c", "d"]));
    let docs = build_docs(cfg, &mc, &catalog);
    let ops = build_ops(cfg, &mc);
    let n_queries = ops
        .iter()
        .filter(|o| matches!(o, MixOp::Query { .. }))
        .count();
    let n_edits = ops.len() - n_queries;

    let live = run_live(&catalog, &docs, &ops);
    let (baseline_ms, baseline_matches) = run_baseline(&catalog, &docs, &ops);
    assert_eq!(
        live.matches, baseline_matches,
        "live and baseline regimes must agree on every answer"
    );
    let speedup = baseline_ms / live.elapsed_ms.max(1e-9);
    let lookups = live.hits + live.misses;
    let hit_rate = live.hits as f64 / (lookups.max(1)) as f64;
    let precision = precision_probe(&catalog);

    let mut table = Table::new(
        "E11: live corpus — 90/10 edit/query mix, result cache vs re-ingest + cold query",
        &[
            "regime",
            "docs",
            "ops",
            "queries",
            "edits",
            "wall",
            "hit rate",
            "carried",
            "invalidated",
        ],
    );
    table.row(vec![
        "live".into(),
        mc.n_docs.to_string(),
        ops.len().to_string(),
        n_queries.to_string(),
        n_edits.to_string(),
        format!("{:.1}ms", live.elapsed_ms),
        format!("{:.0}%", hit_rate * 100.0),
        live.carried.to_string(),
        live.invalidated.to_string(),
    ]);
    table.row(vec![
        "re-ingest".into(),
        mc.n_docs.to_string(),
        ops.len().to_string(),
        n_queries.to_string(),
        n_edits.to_string(),
        format!("{:.1}ms", baseline_ms),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    table.row(vec![
        "speedup".into(),
        "".into(),
        "".into(),
        "".into(),
        "".into(),
        format!("{speedup:.1}x"),
        "".into(),
        "".into(),
        "".into(),
    ]);
    table.note(
        "live: versioned documents, hot Product engine, result cache invalidated by each edit's \
         affected span; re-ingest: every edit rebuilds the corpus, every query compiles cold \
         with no result cache — identical op streams, identical answers",
    );
    table.note(
        "precision probe: a subtree-local cached answer survives a disjoint edit (hit) and dies \
         to an overlapping one (miss) — counts in the JSON summary",
    );
    let q = live.query_hist.quantiles();
    table.note(format!(
        "live query-op latency (one pool query over the whole corpus, log-bucketed): {}",
        q.iter()
            .map(|(name, ns)| format!("{name}={:.0}us", *ns as f64 / 1_000.0))
            .collect::<Vec<_>>()
            .join(" ")
    ));

    let summary = Json::obj()
        .field(
            "mix",
            Json::obj()
                .field("docs", mc.n_docs)
                .field("doc_size", mc.doc_size)
                .field("ops", ops.len())
                .field("queries", n_queries)
                .field("edits", n_edits),
        )
        .field("live_ms", live.elapsed_ms)
        .field("baseline_ms", baseline_ms)
        .field("speedup", speedup)
        .field("query_op_ns", live.query_hist.to_json())
        .field(
            "result_cache",
            Json::obj()
                .field("hits", live.hits)
                .field("misses", live.misses)
                .field("hit_rate", hit_rate)
                .field("carried", live.carried)
                .field("invalidated", live.invalidated),
        )
        .field(
            "precision",
            Json::obj()
                .field("carried", precision.carried)
                .field("invalidated", precision.invalidated)
                .field("hit_after_disjoint_edit", precision.hit_after_disjoint_edit)
                .field(
                    "miss_after_overlapping_edit",
                    precision.miss_after_overlapping_edit,
                ),
        );
    (table, summary)
}

/// Table-only entry point (`run_all` and the experiment registry).
pub fn run(cfg: &RunCfg) -> Table {
    run_full(cfg).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field<'a>(obj: &'a Json, key: &str) -> &'a Json {
        match obj {
            Json::Obj(fields) => &fields.iter().find(|(k, _)| k == key).unwrap().1,
            _ => panic!("not an object"),
        }
    }

    #[test]
    fn quick_run_agrees_and_caches() {
        let (t, summary) = run_full(&RunCfg::quick());
        assert_eq!(t.rows.len(), 3, "live + baseline + speedup rows");
        let cache = field(&summary, "result_cache");
        match field(cache, "hit_rate") {
            Json::Num(r) => assert!(*r > 0.5, "hit rate {r} too low for a 3-query pool"),
            other => panic!("hit_rate is {other:?}"),
        }
        let precision = field(&summary, "precision");
        assert_eq!(
            field(precision, "hit_after_disjoint_edit"),
            &Json::Bool(true)
        );
        assert_eq!(
            field(precision, "miss_after_overlapping_edit"),
            &Json::Bool(true)
        );
        match field(precision, "carried") {
            Json::Int(n) => assert!(*n >= 1, "disjoint edit carried nothing"),
            other => panic!("carried is {other:?}"),
        }
    }
}

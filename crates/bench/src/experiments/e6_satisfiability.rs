//! E6 — satisfiability decision procedures.
//!
//! The **exact** automata-based procedure for the downward fragment
//! (compile to a deterministic bottom-up automaton, decide emptiness,
//! extract a witness) against **bounded-model search** (enumerate all
//! trees up to a size bound). Expected shape: the exact procedure pays an
//! automaton-construction cost that grows with formula size (EXPTIME
//! worst case) but then decides instantly and definitively; bounded search
//! is cheap per tree but its cost explodes with the bound and it cannot
//! certify unsatisfiability.

use crate::experiments::time_us;
use crate::table::{fmt_micros, Table};
use crate::RunCfg;
use twx_core::decide::node_sat_bounded;
use twx_core::from_core::core_node_to_regular;
use twx_corexpath::parser::parse_node_expr;
use twx_treeauto::xpath_compile::{compile_node_expr, satisfiable, AcceptAt};
use twx_xtree::Alphabet;

/// The benchmark formula set: increasing size, mixed sat/unsat.
pub fn formulas() -> Vec<(&'static str, &'static str, bool)> {
    vec![
        ("tiny-sat", "<down[p1]>", true),
        ("tiny-unsat", "p0 and p1", false),
        ("leaf-unsat", "leaf and <down>", false),
        ("mid-sat", "<down+[p0 and <down[p1]>]> and !p1", true),
        ("mid-unsat", "<down[p0]> and !<down+[p0]>", false),
        (
            "deep-sat",
            "<down[<down[<down[p0 and leaf]>]>]> and p1",
            true,
        ),
        (
            "deep-unsat",
            "<down+[p0 and !p0]> or (p0 and p1 and true)",
            false,
        ),
    ]
}

/// Runs E6 and renders its table.
pub fn run(cfg: &RunCfg) -> Table {
    let mut table = Table::new(
        "E6: satisfiability — exact automata procedure vs bounded-model search",
        &[
            "formula",
            "sat?",
            "exact",
            "automaton states",
            "bounded search",
            "agree",
        ],
    );
    let bound = if cfg.quick { 4 } else { 5 };
    for (name, src, expect_sat) in formulas() {
        let mut ab = Alphabet::from_names(["p0", "p1"]);
        let f = parse_node_expr(src, &mut ab).unwrap();
        let (exact, exact_us) = time_us(|| satisfiable(&f, 2).unwrap());
        let auto = compile_node_expr(&f, 2, AcceptAt::SomeNode).unwrap();
        let rf = core_node_to_regular(&f);
        let (bounded, bounded_us) = time_us(|| node_sat_bounded(&rf, bound, 2));
        assert_eq!(
            exact.is_some(),
            expect_sat,
            "exact verdict wrong for {name}"
        );
        // bounded search may miss models larger than the bound, but must
        // never find one when the exact procedure says unsat
        let agree = if exact.is_some() {
            bounded.is_some()
        } else {
            bounded.is_none()
        };
        table.row(vec![
            name.into(),
            if expect_sat { "sat" } else { "unsat" }.into(),
            fmt_micros(exact_us),
            auto.n_states.to_string(),
            fmt_micros(bounded_us),
            if agree { "yes" } else { "BOUND TOO SMALL" }.into(),
        ]);
    }
    table.note(format!(
        "bounded search enumerates all trees with ≤ {bound} nodes over 2 labels"
    ));
    table.note("exact procedure also certifies unsatisfiability; bounded search cannot");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_match_expectations() {
        let t = run(&RunCfg::quick());
        assert_eq!(t.rows.len(), formulas().len());
        for row in &t.rows {
            assert_eq!(row[5], "yes", "disagreement in {}", row[0]);
        }
    }
}

//! E10 — the serving layer: concurrent corpus queries through
//! `twx-corpus::QueryService`, measured as a service would be.
//!
//! Four measurements:
//!
//! * **Throughput/latency sweep** — a fixed load-generator pool fires a
//!   query mix at services over the same corpus sharded 1/2/4/8 ways,
//!   recording sustained throughput and the p50/p95/p99 of the
//!   submit-to-answer latency. More shards = more parallelism per
//!   request but more queue traffic; the sweep shows where that trades
//!   off for this corpus size.
//! * **Saturation** — a deliberately under-provisioned service (one
//!   worker, tiny admission queue) takes a burst of submissions; the
//!   point is that overload shows up as *typed, counted rejections*
//!   (`ServiceError::Overloaded`) while every admitted request still
//!   completes exactly.
//! * **Connection sweep** — the full TCP path through the event-loop
//!   server: 1 / 1k / 10k concurrent clients (quick: 1 / 100 / 1k) per
//!   wire framing (NDJSON and binary frames), measuring connect (≈
//!   accept) latency, request throughput, and request percentiles. The
//!   server is the sibling `twx-serve` binary when one is built (its
//!   own process, its own descriptor budget); otherwise an in-process
//!   event loop over the same `ProtoHandler`.
//! * **Admission probe** — 128 connection attempts against
//!   `--max-conns 64`: every refusal must be a *typed* `overloaded`
//!   reply, and admitted + rejected must account for every attempt.
//!
//! [`run_full`] also returns the structured summary that the harness
//! exports as the top-level `e10` field of `BENCH_HARNESS.json`
//! (`shards`, `saturation`, `conn_sweep`, `admission`).

use crate::table::Table;
use crate::RunCfg;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use treewalk::{Backend, Engine};
use twx_corpus::proto::ProtoHandler;
use twx_corpus::{Corpus, QueryService, ServiceConfig, ServiceError};
use twx_netio::frame::{encode_frame, HEADER_BYTES, MAGIC};
use twx_netio::{NetStats, ServerConfig};
use twx_obs::json::Json;
use twx_obs::Histogram;
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::rng::SplitMix64;
use twx_xtree::Catalog;

/// The serve mix: a cheap scan, a transitive-closure walk, and a
/// filter-heavy query (all cached after their first compile).
const QUERIES: [&str; 3] = [
    "down*[a]",
    "(down | right)*[b]",
    "down*[<down[c]> or <down[d]>]",
];

fn ns_to_us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

fn build_corpus(cfg: &RunCfg, n_shards: usize) -> Arc<Corpus> {
    let (n_docs, doc_size) = if cfg.quick { (12, 60) } else { (48, 400) };
    let catalog = Arc::new(Catalog::from_names(["a", "b", "c", "d"]));
    let mut rng = SplitMix64::seed_from_u64(cfg.seed_for(10));
    let mut b = Corpus::builder(Arc::clone(&catalog), n_shards);
    for _ in 0..n_docs {
        b.add_document(random_document_in(
            Shape::DocumentLike,
            doc_size,
            &catalog,
            &mut rng,
        ));
    }
    Arc::new(b.build())
}

struct SweepPoint {
    n_shards: usize,
    workers: usize,
    requests: u64,
    throughput_qps: f64,
    p50_us: f64,
    p90_us: f64,
    p95_us: f64,
    p99_us: f64,
    p999_us: f64,
    timeouts: u64,
}

/// Fires `gen_threads × per_thread` queries at a service and collects
/// the latency distribution.
fn sweep(cfg: &RunCfg, n_shards: usize) -> SweepPoint {
    let corpus = build_corpus(cfg, n_shards);
    let workers = 4;
    let service = QueryService::new(
        corpus,
        Engine::with_backend(Backend::Product),
        ServiceConfig {
            workers,
            queue_capacity: 512,
            default_timeout: None,
            slowlog_capacity: 16,
        },
    );
    // warm the plan cache so the sweep measures serving, not compiling
    for q in QUERIES {
        service.query(q).expect("warmup");
    }
    let gen_threads = 4usize;
    let per_thread = if cfg.quick { 12usize } else { 64 };
    let t0 = std::time::Instant::now();
    // each generator records into its own histogram; the per-thread
    // histograms merge into one distribution at the end (the same
    // drain-and-merge shape the service uses for its counters)
    let hist: Histogram = std::thread::scope(|s| {
        let handles: Vec<_> = (0..gen_threads)
            .map(|g| {
                let service = &service;
                s.spawn(move || {
                    let mut h = Histogram::default();
                    for i in 0..per_thread {
                        let q = QUERIES[(g + i) % QUERIES.len()];
                        let answer = service.query(q).expect("sweep query");
                        h.record(answer.latency.as_nanos() as u64);
                    }
                    h
                })
            })
            .collect();
        handles
            .into_iter()
            .fold(Histogram::default(), |mut acc, h| {
                acc.merge(&h.join().unwrap());
                acc
            })
    });
    let wall = t0.elapsed().as_secs_f64();
    let stats = service.shutdown();
    SweepPoint {
        n_shards,
        workers,
        requests: hist.count(),
        throughput_qps: hist.count() as f64 / wall.max(1e-9),
        p50_us: ns_to_us(hist.percentile(0.50)),
        p90_us: ns_to_us(hist.percentile(0.90)),
        p95_us: ns_to_us(hist.percentile(0.95)),
        p99_us: ns_to_us(hist.percentile(0.99)),
        p999_us: ns_to_us(hist.percentile(0.999)),
        timeouts: stats.timeouts,
    }
}

struct Saturation {
    submitted: u64,
    admitted: u64,
    rejected: u64,
    queue_capacity: usize,
}

/// Bursts submissions at a one-worker service with a tiny queue; counts
/// the typed rejections and verifies every admitted request completes.
///
/// The work items must be much heavier than a (plan-cached) submission
/// for the queue to fill: the corpus is full-sized regardless of
/// `--quick` and the query is the transitive-closure zigzag, whose
/// per-shard evaluation dwarfs the submit-side parse.
fn saturate(cfg: &RunCfg) -> Saturation {
    let heavy = RunCfg {
        quick: false,
        ..*cfg
    };
    let corpus = build_corpus(&heavy, 2);
    let n_docs = corpus.n_docs();
    let service = QueryService::new(
        corpus,
        Engine::with_backend(Backend::Product),
        ServiceConfig {
            workers: 1,
            queue_capacity: 6,
            default_timeout: None,
            slowlog_capacity: 16,
        },
    );
    let zigzag = "(down/right | up)*[a]";
    // warm the plan cache so every burst submission is a cheap cache hit
    service.query(zigzag).expect("warmup");
    let burst = if cfg.quick { 80u64 } else { 300 };
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..burst {
        match service.submit(zigzag) {
            Ok(t) => tickets.push(t),
            Err(ServiceError::Overloaded { .. }) => rejected += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    let admitted = tickets.len() as u64;
    let stats = service.shutdown();
    for t in tickets {
        let answer = t.wait();
        assert_eq!(
            answer.per_doc.len(),
            n_docs,
            "admitted requests complete exactly"
        );
    }
    assert_eq!(stats.rejected, rejected);
    Saturation {
        submitted: burst,
        admitted,
        rejected,
        queue_capacity: 6,
    }
}

// ---- connection-scale sweep over the event-loop server ----

/// Wire framing a bench client speaks (the serving tier negotiates per
/// connection on the first byte).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Wire {
    Ndjson,
    Binary,
}

impl Wire {
    fn name(self) -> &'static str {
        match self {
            Wire::Ndjson => "ndjson",
            Wire::Binary => "binary",
        }
    }
}

/// Writes one request through a shared borrow (`&TcpStream` is `Write`),
/// so the client holds exactly one descriptor per connection — at the
/// 10k point a cloned read half would double the budget past the fd
/// hard cap.
fn send_request(mut stream: &TcpStream, wire: Wire, payload: &str) -> std::io::Result<()> {
    // one write per request either way: a separate write for the NDJSON
    // newline would sit in Nagle's buffer waiting out a delayed ACK
    match wire {
        Wire::Ndjson => {
            let mut buf = Vec::with_capacity(payload.len() + 1);
            buf.extend_from_slice(payload.as_bytes());
            buf.push(b'\n');
            stream.write_all(&buf)
        }
        Wire::Binary => stream.write_all(&encode_frame(payload.as_bytes())),
    }
}

fn read_reply(reader: &mut BufReader<TcpStream>, wire: Wire) -> std::io::Result<String> {
    match wire {
        Wire::Ndjson => {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            Ok(line)
        }
        Wire::Binary => {
            let mut header = [0u8; HEADER_BYTES];
            reader.read_exact(&mut header)?;
            if header[..4] != MAGIC {
                return Err(std::io::Error::other("bad reply frame magic"));
            }
            let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
            let mut payload = vec![0u8; len];
            reader.read_exact(&mut payload)?;
            String::from_utf8(payload).map_err(|_| std::io::Error::other("non-utf8 reply"))
        }
    }
}

/// The sibling `twx-serve` binary, if the workspace has built one (next
/// to the running executable, or one directory up when running from a
/// `deps/` test binary).
fn serve_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    let found = [Some(dir), dir.parent()]
        .into_iter()
        .flatten()
        .map(|d| d.join("twx-serve"))
        .find(|c| c.is_file());
    found
}

/// A server for one sweep point: the real `twx-serve` binary in its own
/// process (own descriptor budget — required for the 10k point), or an
/// in-process event loop over the same `ProtoHandler` when no binary is
/// around (plain `cargo test`).
enum BenchServer {
    Proc(std::process::Child),
    InProc {
        thread: std::thread::JoinHandle<std::io::Result<()>>,
        handler: Arc<ProtoHandler>,
    },
}

impl BenchServer {
    fn start(cfg: &RunCfg, max_conns: usize) -> (BenchServer, String) {
        if let Some(bin) = serve_binary() {
            let mut child = std::process::Command::new(bin)
                .args([
                    "--port",
                    "0",
                    "--shards",
                    "2",
                    "--workers",
                    "4",
                    "--queue",
                    "1024",
                    "--synthetic",
                    "8x60",
                    "--seed",
                    &cfg.seed_for(10).to_string(),
                    "--max-conns",
                    &max_conns.to_string(),
                ])
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::null())
                .spawn()
                .expect("spawn twx-serve");
            let stdout = child.stdout.take().expect("child stdout");
            let mut banner = String::new();
            BufReader::new(stdout)
                .read_line(&mut banner)
                .expect("read banner");
            let addr = banner
                .trim()
                .strip_prefix("twx-serve listening on ")
                .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
                .to_string();
            return (BenchServer::Proc(child), addr);
        }
        // in-process fallback: same handler, same event loop, shared
        // descriptor budget (the quick counts fit comfortably)
        let catalog = Arc::new(Catalog::from_names(["a", "b", "c", "d"]));
        let mut rng = SplitMix64::seed_from_u64(cfg.seed_for(10));
        let mut b = Corpus::builder(Arc::clone(&catalog), 2);
        for _ in 0..8 {
            b.add_document(random_document_in(Shape::Recursive, 60, &catalog, &mut rng));
        }
        let service = QueryService::new(
            Arc::new(b.build()),
            Engine::with_backend(Backend::Product),
            ServiceConfig {
                workers: 4,
                queue_capacity: 1024,
                default_timeout: None,
                slowlog_capacity: 16,
            },
        );
        let net = Arc::new(NetStats::default());
        let handler = Arc::new(ProtoHandler::new(service, Arc::clone(&net), max_conns));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        let server_cfg = ServerConfig {
            max_conns,
            dispatchers: 4,
            ..ServerConfig::default()
        };
        let loop_handler = Arc::clone(&handler);
        let thread = std::thread::Builder::new()
            .name("e10-inproc-serve".into())
            .spawn(move || twx_netio::serve(listener, loop_handler, server_cfg, net))
            .expect("spawn server thread");
        (BenchServer::InProc { thread, handler }, addr)
    }

    /// Asks the server to shut down over the wire, then reaps it.
    fn stop(self, addr: &str) {
        if let Ok(mut s) = TcpStream::connect(addr) {
            if writeln!(s, r#"{{"op":"shutdown"}}"#).is_ok() {
                let mut reply = String::new();
                let _ = BufReader::new(&s).read_line(&mut reply);
            }
        }
        match self {
            BenchServer::Proc(mut child) => {
                // bounded wait, then the hammer
                for _ in 0..100 {
                    if child.try_wait().expect("try_wait").is_some() {
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                let _ = child.kill();
                let _ = child.wait();
            }
            BenchServer::InProc { thread, handler } => {
                let _ = thread.join().expect("server thread");
                // the loop and its dispatchers are gone: this is the
                // last handler reference — drain the service workers
                Arc::try_unwrap(handler)
                    .unwrap_or_else(|_| unreachable!("loop dropped its handler refs"))
                    .finish();
            }
        }
    }
}

struct ConnPoint {
    framing: &'static str,
    conns: usize,
    requests: u64,
    throughput_qps: f64,
    connect_p50_us: f64,
    connect_p99_us: f64,
    p50_us: f64,
    p99_us: f64,
    accept_failures: u64,
    io_errors: u64,
    overloaded_replies: u64,
}

/// One sweep point: open `conns` concurrent connections (≤16 client
/// threads), then fire queries over every connection and read each
/// reply. Connect latency approximates accept latency; closes are
/// abortive (RST) so tens of thousands of sockets leave no TIME_WAIT
/// corpses to exhaust the ephemeral-port range.
fn measure_conn_point(addr: &str, wire: Wire, conns: usize) -> ConnPoint {
    let reqs_per_conn = if conns == 1 { 256u64 } else { 1 };
    let threads = conns.min(16);
    let barrier = Barrier::new(threads + 1);
    let (t0, t1, per_thread) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let barrier = &barrier;
                s.spawn(move || {
                    let mut connect_h = Histogram::default();
                    let mut req_h = Histogram::default();
                    let mut accept_failures = 0u64;
                    let mut io_errors = 0u64;
                    let mut overloaded = 0u64;
                    let mut socks: Vec<BufReader<TcpStream>> = Vec::new();
                    // connections t, t+threads, t+2·threads, …
                    for _ in (t..conns).step_by(threads) {
                        let c0 = std::time::Instant::now();
                        match TcpStream::connect(addr) {
                            Ok(stream) => {
                                connect_h.record(c0.elapsed().as_nanos() as u64);
                                let _ = stream.set_nodelay(true);
                                let _ = twx_netio::set_linger_abort(&stream);
                                socks.push(BufReader::new(stream));
                            }
                            Err(_) => accept_failures += 1,
                        }
                    }
                    barrier.wait(); // all connections up: hold them open
                    for sock in &mut socks {
                        for _ in 0..reqs_per_conn {
                            let r0 = std::time::Instant::now();
                            let sent = send_request(
                                sock.get_ref(),
                                wire,
                                r#"{"op":"query","query":"down*[a]"}"#,
                            )
                            .and_then(|_| read_reply(sock, wire));
                            match sent {
                                Ok(reply) => {
                                    req_h.record(r0.elapsed().as_nanos() as u64);
                                    if reply.contains(r#""error":"overloaded""#) {
                                        overloaded += 1;
                                    }
                                }
                                Err(_) => io_errors += 1,
                            }
                        }
                    }
                    barrier.wait(); // full-concurrency window ends here
                    (connect_h, req_h, accept_failures, io_errors, overloaded)
                })
            })
            .collect();
        barrier.wait();
        let t0 = std::time::Instant::now();
        barrier.wait();
        let t1 = std::time::Instant::now();
        let per_thread: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (t0, t1, per_thread)
    });
    let mut connect_h = Histogram::default();
    let mut req_h = Histogram::default();
    let mut accept_failures = 0;
    let mut io_errors = 0;
    let mut overloaded = 0;
    for (c, r, af, io, ov) in per_thread {
        connect_h.merge(&c);
        req_h.merge(&r);
        accept_failures += af;
        io_errors += io;
        overloaded += ov;
    }
    let wall = t1.duration_since(t0).as_secs_f64();
    ConnPoint {
        framing: wire.name(),
        conns,
        requests: req_h.count(),
        throughput_qps: req_h.count() as f64 / wall.max(1e-9),
        connect_p50_us: ns_to_us(connect_h.percentile(0.50)),
        connect_p99_us: ns_to_us(connect_h.percentile(0.99)),
        p50_us: ns_to_us(req_h.percentile(0.50)),
        p99_us: ns_to_us(req_h.percentile(0.99)),
        accept_failures,
        io_errors,
        overloaded_replies: overloaded,
    }
}

/// The connection sweep: for each framing, one fresh server per
/// connection count.
fn conn_sweep(cfg: &RunCfg) -> Vec<ConnPoint> {
    let counts: &[usize] = if cfg.quick {
        &[1, 100, 1000]
    } else {
        &[1, 1000, 10_000]
    };
    // client-side descriptors: one per held connection, tripled for the
    // in-process fallback (server sockets share this process's budget)
    twx_netio::raise_nofile_limit(3 * *counts.last().unwrap() as u64 + 512);
    let mut points = Vec::new();
    for wire in [Wire::Ndjson, Wire::Binary] {
        for &c in counts {
            // headroom over the cap so the sweep itself is never refused
            let (server, addr) = BenchServer::start(cfg, c + 16);
            points.push(measure_conn_point(&addr, wire, c));
            server.stop(&addr);
        }
    }
    points
}

struct Admission {
    max_conns: usize,
    attempted: u64,
    admitted: u64,
    rejected: u64,
    server_rejected: u64,
}

/// Pulls one integer counter out of a rendered stats line.
fn stats_counter(stats: &str, key: &str) -> u64 {
    let tagged = format!("\"{key}\":");
    let at = stats
        .find(&tagged)
        .unwrap_or_else(|| panic!("stats line missing {key}: {stats}"))
        + tagged.len();
    stats[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse::<u64>()
        .expect("counter")
}

/// 128 connection attempts against a 64-connection cap: refusals must be
/// *typed* `overloaded` replies (read-only probe — the rejected socket
/// gets one line and a clean close), and the server's own `conns_rejected`
/// counter must agree with what the clients saw.
///
/// Classification is deterministic, not timing-based: the probe polls
/// `stats` over the control connection until every accept has been
/// decided, then shuts the server down — a rejected socket reads its
/// typed line, an admitted one reads clean EOF, and neither read waits
/// on a guessed timeout (which misclassifies under CPU contention).
fn admission_probe(cfg: &RunCfg) -> Admission {
    const CAP: usize = 64;
    const ATTEMPTS: usize = 128;
    let (server, addr) = BenchServer::start(cfg, CAP);
    // the control connection occupies one admission slot — open it first
    // so it is deterministically admitted
    let control = TcpStream::connect(&addr).expect("control connect");
    control
        .set_read_timeout(Some(std::time::Duration::from_secs(60)))
        .expect("control timeout");
    let mut control_reader = BufReader::new(control.try_clone().expect("clone"));
    let probes: Vec<TcpStream> = (0..ATTEMPTS)
        .map(|_| TcpStream::connect(&addr).expect("probe connect"))
        .collect();
    // wait until the server has admitted or rejected every probe
    let mut server_rejected;
    loop {
        send_request(&control, Wire::Ndjson, r#"{"op":"stats"}"#).expect("control stats");
        let stats = read_reply(&mut control_reader, Wire::Ndjson).expect("control reply");
        server_rejected = stats_counter(&stats, "conns_rejected");
        let open = stats_counter(&stats, "conns_open");
        // control + probes all accounted for (control is 1 open conn)
        if open + server_rejected > ATTEMPTS as u64 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    // every rejected socket now has its line (and FIN) in flight; closing
    // the server turns every admitted socket into clean EOF
    send_request(&control, Wire::Ndjson, r#"{"op":"shutdown"}"#).expect("control shutdown");
    let _ = read_reply(&mut control_reader, Wire::Ndjson);
    let mut rejected = 0u64;
    let mut admitted = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = probes
            .chunks(ATTEMPTS / 16)
            .map(|chunk| {
                s.spawn(move || {
                    let mut rej = 0u64;
                    let mut adm = 0u64;
                    for sock in chunk {
                        sock.set_read_timeout(Some(std::time::Duration::from_secs(60)))
                            .expect("timeout");
                        let mut line = String::new();
                        match BufReader::new(sock).read_line(&mut line) {
                            Ok(n) if n > 0 => {
                                assert!(
                                    line.contains(r#""error":"overloaded""#),
                                    "untyped refusal: {line}"
                                );
                                rej += 1;
                            }
                            _ => adm += 1, // clean EOF: the connection was in
                        }
                    }
                    (rej, adm)
                })
            })
            .collect();
        for h in handles {
            let (r, a) = h.join().unwrap();
            rejected += r;
            admitted += a;
        }
    });
    drop(control);
    drop(probes);
    server.stop(&addr);
    Admission {
        max_conns: CAP,
        attempted: ATTEMPTS as u64,
        admitted,
        rejected,
        server_rejected,
    }
}

/// Runs E10, returning the rendered table and the structured summary
/// exported as the `e10` field of `BENCH_HARNESS.json`.
pub fn run_full(cfg: &RunCfg) -> (Table, Json) {
    let mut table = Table::new(
        "E10: corpus serving — shard sweep, saturation, connection-scale event loop, admission",
        &[
            "shards", "workers", "requests", "qps", "p50", "p90", "p95", "p99", "p999", "timeouts",
        ],
    );
    let shard_counts: &[usize] = if cfg.quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let mut shard_rows = Vec::new();
    for &n in shard_counts {
        let p = sweep(cfg, n);
        table.row(vec![
            p.n_shards.to_string(),
            p.workers.to_string(),
            p.requests.to_string(),
            format!("{:.0}", p.throughput_qps),
            format!("{:.0}us", p.p50_us),
            format!("{:.0}us", p.p90_us),
            format!("{:.0}us", p.p95_us),
            format!("{:.0}us", p.p99_us),
            format!("{:.0}us", p.p999_us),
            p.timeouts.to_string(),
        ]);
        shard_rows.push(
            Json::obj()
                .field("n_shards", p.n_shards)
                .field("workers", p.workers)
                .field("requests", p.requests)
                .field("throughput_qps", p.throughput_qps)
                .field("p50_us", p.p50_us)
                .field("p90_us", p.p90_us)
                .field("p95_us", p.p95_us)
                .field("p99_us", p.p99_us)
                .field("p999_us", p.p999_us)
                .field("timeouts", p.timeouts),
        );
    }
    let sat = saturate(cfg);
    table.row(vec![
        "2".into(),
        "1".into(),
        sat.submitted.to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{} rejected", sat.rejected),
    ]);
    table.note(
        "sweep rows: 4 generator threads over a shared-catalog corpus, Product backend, warm plan \
         cache; log-bucketed histogram percentiles of submit-to-answer latency (per-thread \
         histograms merged)",
    );
    table.note(
        "saturation row: burst at a 1-worker service with a 6-slot admission queue — overload is \
         a typed Overloaded rejection, never silent queueing",
    );
    let mut conn_rows = Vec::new();
    for p in conn_sweep(cfg) {
        table.row(vec![
            format!("conns={}", p.conns),
            p.framing.to_string(),
            p.requests.to_string(),
            format!("{:.0}", p.throughput_qps),
            format!("{:.0}us", p.p50_us),
            "-".into(),
            "-".into(),
            format!("{:.0}us", p.p99_us),
            "-".into(),
            format!("{} acceptfail", p.accept_failures),
        ]);
        conn_rows.push(
            Json::obj()
                .field("framing", p.framing)
                .field("conns", p.conns)
                .field("requests", p.requests)
                .field("throughput_qps", p.throughput_qps)
                .field("connect_p50_us", p.connect_p50_us)
                .field("connect_p99_us", p.connect_p99_us)
                .field("p50_us", p.p50_us)
                .field("p99_us", p.p99_us)
                .field("accept_failures", p.accept_failures)
                .field("io_errors", p.io_errors)
                .field("overloaded_replies", p.overloaded_replies),
        );
    }
    let adm = admission_probe(cfg);
    table.row(vec![
        "admission".into(),
        format!("cap={}", adm.max_conns),
        adm.attempted.to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{} rejected", adm.rejected),
    ]);
    table.note(
        "conns=N rows: N concurrent TCP clients (≤16 client threads) against the event-loop \
         server per wire framing; p50/p99 are per-request round-trip latency, connect \
         percentiles are in the JSON summary",
    );
    table.note(
        "admission row: 128 connection attempts against --max-conns 64 — every refusal is a \
         typed overloaded reply, counted by the server's conns_rejected",
    );
    let summary = Json::obj()
        .field("shards", Json::Arr(shard_rows))
        .field(
            "saturation",
            Json::obj()
                .field("submitted", sat.submitted)
                .field("admitted", sat.admitted)
                .field("rejected", sat.rejected)
                .field("queue_capacity", sat.queue_capacity),
        )
        .field("conn_sweep", Json::Arr(conn_rows))
        .field(
            "admission",
            Json::obj()
                .field("max_conns", adm.max_conns)
                .field("attempted", adm.attempted)
                .field("admitted", adm.admitted)
                .field("rejected", adm.rejected)
                .field("server_rejected", adm.server_rejected),
        );
    (table, summary)
}

/// Table-only entry point (`run_all` and the experiment registry).
pub fn run(cfg: &RunCfg) -> Table {
    run_full(cfg).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(j: &'a Json, key: &str) -> &'a Json {
        match j {
            Json::Obj(fields) => &fields.iter().find(|(k, _)| k == key).unwrap().1,
            _ => panic!("{key}: not an object"),
        }
    }

    fn int(j: &Json) -> u64 {
        match j {
            Json::Int(n) => *n,
            _ => panic!("not an int: {j:?}"),
        }
    }

    #[test]
    fn quick_run_produces_table_and_summary() {
        let (t, summary) = run_full(&RunCfg::quick());
        assert_eq!(
            t.rows.len(),
            3 + 1 + 6 + 1,
            "3 sweep rows + saturation + 6 conn points + admission"
        );
        let rendered = summary.render();
        assert!(rendered.contains("p99_us"));
        assert!(rendered.contains("saturation"));
        assert!(rendered.contains("conn_sweep"));
        // the burst against a 6-slot queue must actually overload it
        assert!(
            int(get(get(&summary, "saturation"), "rejected")) > 0,
            "saturation produced no rejections"
        );
        // every conn point: both framings, no accept failures, no
        // mid-stream I/O errors, every request answered
        match get(&summary, "conn_sweep") {
            Json::Arr(points) => {
                assert_eq!(points.len(), 6);
                for p in points {
                    assert_eq!(int(get(p, "accept_failures")), 0);
                    assert_eq!(int(get(p, "io_errors")), 0);
                    assert!(int(get(p, "requests")) > 0);
                }
            }
            _ => panic!("conn_sweep is an array"),
        }
        // admission accounting: every attempt classified, refusals typed
        // and agreeing with the server's own counter
        let adm = get(&summary, "admission");
        let attempted = int(get(adm, "attempted"));
        let admitted = int(get(adm, "admitted"));
        let rejected = int(get(adm, "rejected"));
        assert_eq!(admitted + rejected, attempted);
        assert!(rejected > 0, "cap of 64 never refused 128 attempts");
        assert_eq!(rejected, int(get(adm, "server_rejected")));
    }
}

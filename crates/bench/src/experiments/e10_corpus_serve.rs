//! E10 — the serving layer: concurrent corpus queries through
//! `twx-corpus::QueryService`, measured as a service would be.
//!
//! Two measurements:
//!
//! * **Throughput/latency sweep** — a fixed load-generator pool fires a
//!   query mix at services over the same corpus sharded 1/2/4/8 ways,
//!   recording sustained throughput and the p50/p95/p99 of the
//!   submit-to-answer latency. More shards = more parallelism per
//!   request but more queue traffic; the sweep shows where that trades
//!   off for this corpus size.
//! * **Saturation** — a deliberately under-provisioned service (one
//!   worker, tiny admission queue) takes a burst of submissions; the
//!   point is that overload shows up as *typed, counted rejections*
//!   (`ServiceError::Overloaded`) while every admitted request still
//!   completes exactly.
//!
//! [`run_full`] also returns the structured summary that the harness
//! exports as the top-level `e10` field of `BENCH_HARNESS.json`.

use crate::table::Table;
use crate::RunCfg;
use std::sync::Arc;
use treewalk::{Backend, Engine};
use twx_corpus::{Corpus, QueryService, ServiceConfig, ServiceError};
use twx_obs::json::Json;
use twx_obs::Histogram;
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::rng::SplitMix64;
use twx_xtree::Catalog;

/// The serve mix: a cheap scan, a transitive-closure walk, and a
/// filter-heavy query (all cached after their first compile).
const QUERIES: [&str; 3] = [
    "down*[a]",
    "(down | right)*[b]",
    "down*[<down[c]> or <down[d]>]",
];

fn ns_to_us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

fn build_corpus(cfg: &RunCfg, n_shards: usize) -> Arc<Corpus> {
    let (n_docs, doc_size) = if cfg.quick { (12, 60) } else { (48, 400) };
    let catalog = Arc::new(Catalog::from_names(["a", "b", "c", "d"]));
    let mut rng = SplitMix64::seed_from_u64(cfg.seed_for(10));
    let mut b = Corpus::builder(Arc::clone(&catalog), n_shards);
    for _ in 0..n_docs {
        b.add_document(random_document_in(
            Shape::DocumentLike,
            doc_size,
            &catalog,
            &mut rng,
        ));
    }
    Arc::new(b.build())
}

struct SweepPoint {
    n_shards: usize,
    workers: usize,
    requests: u64,
    throughput_qps: f64,
    p50_us: f64,
    p90_us: f64,
    p95_us: f64,
    p99_us: f64,
    p999_us: f64,
    timeouts: u64,
}

/// Fires `gen_threads × per_thread` queries at a service and collects
/// the latency distribution.
fn sweep(cfg: &RunCfg, n_shards: usize) -> SweepPoint {
    let corpus = build_corpus(cfg, n_shards);
    let workers = 4;
    let service = QueryService::new(
        corpus,
        Engine::with_backend(Backend::Product),
        ServiceConfig {
            workers,
            queue_capacity: 512,
            default_timeout: None,
            slowlog_capacity: 16,
        },
    );
    // warm the plan cache so the sweep measures serving, not compiling
    for q in QUERIES {
        service.query(q).expect("warmup");
    }
    let gen_threads = 4usize;
    let per_thread = if cfg.quick { 12usize } else { 64 };
    let t0 = std::time::Instant::now();
    // each generator records into its own histogram; the per-thread
    // histograms merge into one distribution at the end (the same
    // drain-and-merge shape the service uses for its counters)
    let hist: Histogram = std::thread::scope(|s| {
        let handles: Vec<_> = (0..gen_threads)
            .map(|g| {
                let service = &service;
                s.spawn(move || {
                    let mut h = Histogram::default();
                    for i in 0..per_thread {
                        let q = QUERIES[(g + i) % QUERIES.len()];
                        let answer = service.query(q).expect("sweep query");
                        h.record(answer.latency.as_nanos() as u64);
                    }
                    h
                })
            })
            .collect();
        handles
            .into_iter()
            .fold(Histogram::default(), |mut acc, h| {
                acc.merge(&h.join().unwrap());
                acc
            })
    });
    let wall = t0.elapsed().as_secs_f64();
    let stats = service.shutdown();
    SweepPoint {
        n_shards,
        workers,
        requests: hist.count(),
        throughput_qps: hist.count() as f64 / wall.max(1e-9),
        p50_us: ns_to_us(hist.percentile(0.50)),
        p90_us: ns_to_us(hist.percentile(0.90)),
        p95_us: ns_to_us(hist.percentile(0.95)),
        p99_us: ns_to_us(hist.percentile(0.99)),
        p999_us: ns_to_us(hist.percentile(0.999)),
        timeouts: stats.timeouts,
    }
}

struct Saturation {
    submitted: u64,
    admitted: u64,
    rejected: u64,
    queue_capacity: usize,
}

/// Bursts submissions at a one-worker service with a tiny queue; counts
/// the typed rejections and verifies every admitted request completes.
///
/// The work items must be much heavier than a (plan-cached) submission
/// for the queue to fill: the corpus is full-sized regardless of
/// `--quick` and the query is the transitive-closure zigzag, whose
/// per-shard evaluation dwarfs the submit-side parse.
fn saturate(cfg: &RunCfg) -> Saturation {
    let heavy = RunCfg {
        quick: false,
        ..*cfg
    };
    let corpus = build_corpus(&heavy, 2);
    let n_docs = corpus.n_docs();
    let service = QueryService::new(
        corpus,
        Engine::with_backend(Backend::Product),
        ServiceConfig {
            workers: 1,
            queue_capacity: 6,
            default_timeout: None,
            slowlog_capacity: 16,
        },
    );
    let zigzag = "(down/right | up)*[a]";
    // warm the plan cache so every burst submission is a cheap cache hit
    service.query(zigzag).expect("warmup");
    let burst = if cfg.quick { 80u64 } else { 300 };
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..burst {
        match service.submit(zigzag) {
            Ok(t) => tickets.push(t),
            Err(ServiceError::Overloaded { .. }) => rejected += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    let admitted = tickets.len() as u64;
    let stats = service.shutdown();
    for t in tickets {
        let answer = t.wait();
        assert_eq!(
            answer.per_doc.len(),
            n_docs,
            "admitted requests complete exactly"
        );
    }
    assert_eq!(stats.rejected, rejected);
    Saturation {
        submitted: burst,
        admitted,
        rejected,
        queue_capacity: 6,
    }
}

/// Runs E10, returning the rendered table and the structured summary
/// exported as the `e10` field of `BENCH_HARNESS.json`.
pub fn run_full(cfg: &RunCfg) -> (Table, Json) {
    let mut table = Table::new(
        "E10: corpus serving — throughput/latency by shard count, plus admission control",
        &[
            "shards", "workers", "requests", "qps", "p50", "p90", "p95", "p99", "p999", "timeouts",
        ],
    );
    let shard_counts: &[usize] = if cfg.quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let mut shard_rows = Vec::new();
    for &n in shard_counts {
        let p = sweep(cfg, n);
        table.row(vec![
            p.n_shards.to_string(),
            p.workers.to_string(),
            p.requests.to_string(),
            format!("{:.0}", p.throughput_qps),
            format!("{:.0}us", p.p50_us),
            format!("{:.0}us", p.p90_us),
            format!("{:.0}us", p.p95_us),
            format!("{:.0}us", p.p99_us),
            format!("{:.0}us", p.p999_us),
            p.timeouts.to_string(),
        ]);
        shard_rows.push(
            Json::obj()
                .field("n_shards", p.n_shards)
                .field("workers", p.workers)
                .field("requests", p.requests)
                .field("throughput_qps", p.throughput_qps)
                .field("p50_us", p.p50_us)
                .field("p90_us", p.p90_us)
                .field("p95_us", p.p95_us)
                .field("p99_us", p.p99_us)
                .field("p999_us", p.p999_us)
                .field("timeouts", p.timeouts),
        );
    }
    let sat = saturate(cfg);
    table.row(vec![
        "2".into(),
        "1".into(),
        sat.submitted.to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{} rejected", sat.rejected),
    ]);
    table.note(
        "sweep rows: 4 generator threads over a shared-catalog corpus, Product backend, warm plan \
         cache; log-bucketed histogram percentiles of submit-to-answer latency (per-thread \
         histograms merged)",
    );
    table.note(
        "last row: saturation burst at a 1-worker service with a 6-slot admission queue — \
         overload is a typed Overloaded rejection, never silent queueing",
    );
    let summary = Json::obj().field("shards", Json::Arr(shard_rows)).field(
        "saturation",
        Json::obj()
            .field("submitted", sat.submitted)
            .field("admitted", sat.admitted)
            .field("rejected", sat.rejected)
            .field("queue_capacity", sat.queue_capacity),
    );
    (table, summary)
}

/// Table-only entry point (`run_all` and the experiment registry).
pub fn run(cfg: &RunCfg) -> Table {
    run_full(cfg).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table_and_summary() {
        let (t, summary) = run_full(&RunCfg::quick());
        assert_eq!(t.rows.len(), 3 + 1, "3 sweep rows + saturation row");
        let rendered = summary.render();
        assert!(rendered.contains("p99_us"));
        assert!(rendered.contains("saturation"));
        // the burst against a 6-slot queue must actually overload it
        match &summary {
            Json::Obj(fields) => {
                let sat = &fields.iter().find(|(k, _)| k == "saturation").unwrap().1;
                match sat {
                    Json::Obj(sf) => {
                        let rejected = match &sf.iter().find(|(k, _)| k == "rejected").unwrap().1 {
                            Json::Int(n) => *n,
                            _ => panic!("rejected is an int"),
                        };
                        assert!(rejected > 0, "saturation produced no rejections");
                    }
                    _ => panic!("saturation is an object"),
                }
            }
            _ => panic!("summary is an object"),
        }
    }
}

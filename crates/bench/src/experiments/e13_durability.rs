//! E13 — durable storage: snapshot throughput, recovery time vs journal
//! length, and the compact on-disk encoding vs the in-memory arena.
//!
//! Three measurements over one store-backed corpus in a scratch
//! directory:
//!
//! * **Recovery vs journal length** — after an initial full snapshot,
//!   the corpus is churned with random edits in steps; after each step
//!   the corpus is dropped and recovered from disk, so every point is a
//!   cold boot replaying a longer journal tail over the same snapshot
//!   generation. Recovery time should grow linearly in the tail, from a
//!   snapshot-only floor at zero records.
//! * **Snapshot write/load throughput** — one full `persist` (every
//!   shard snapshotted, journal compacted away) timed as nodes/s, then
//!   one more cold recovery against the now-empty journal timed as the
//!   pure snapshot-load rate.
//! * **Compression** — the balanced-parentheses + label-palette
//!   encoding's actual on-disk bytes per node (total snapshot bytes over
//!   total nodes, headers and checksums included) against the 28-byte
//!   arena node ([`ARENA_BYTES_PER_NODE`]). The acceptance bar is ≥ 4×;
//!   with a 4-label alphabet the encoding lands near the
//!   [`compact_bytes_per_node`] ideal of ~0.5 B/node, so the measured
//!   ratio is comfortably above it.
//!
//! [`run_full`] also returns the structured summary the harness exports
//! as the top-level `e13` field of `BENCH_HARNESS.json`; CI asserts
//! `compression_ratio >= 4`.

use crate::table::Table;
use crate::RunCfg;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use twx_corpus::{Corpus, DocId, Placement, StoreConfig};
use twx_obs::json::Json;
use twx_xtree::bp::{compact_bytes_per_node, ARENA_BYTES_PER_NODE};
use twx_xtree::edit::random_edit;
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::Catalog;

struct E13Cfg {
    n_docs: usize,
    doc_size: usize,
    n_shards: usize,
    /// Cumulative journal lengths (edit counts) to recover at; the
    /// leading 0 is the snapshot-only floor.
    journal_points: [usize; 4],
}

fn e13_cfg(cfg: &RunCfg) -> E13Cfg {
    if cfg.quick {
        E13Cfg {
            n_docs: 12,
            doc_size: 60,
            n_shards: 4,
            journal_points: [0, 40, 120, 240],
        }
    } else {
        E13Cfg {
            n_docs: 32,
            doc_size: 400,
            n_shards: 4,
            journal_points: [0, 200, 800, 2000],
        }
    }
}

/// A process-unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Scratch {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("twx-bench-e13-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct RecoveryPoint {
    journal_records: u64,
    recover_ms: f64,
}

/// Runs E13, returning the rendered table and the structured summary
/// exported as the `e13` field of `BENCH_HARNESS.json`.
pub fn run_full(cfg: &RunCfg) -> (Table, Json) {
    let ec = e13_cfg(cfg);
    let scratch = Scratch::new();
    let catalog = Arc::new(Catalog::from_names(["a", "b", "c", "d"]));
    let labels: Vec<_> = ["a", "b", "c", "d"]
        .iter()
        .map(|n| catalog.intern(n))
        .collect();
    let mut rng = SplitMix64::seed_from_u64(cfg.seed_for(13));

    let mut b =
        Corpus::builder(Arc::clone(&catalog), ec.n_shards).placement(Placement::SizeBalanced);
    for _ in 0..ec.n_docs {
        b.add_document(random_document_in(
            Shape::DocumentLike,
            ec.doc_size,
            &catalog,
            &mut rng,
        ));
    }
    // try_build takes the initial full snapshot the recovery points boot
    // from; fsync_every=1 keeps every churned edit durable
    let mut corpus = b
        .with_store(scratch.0.clone())
        .store_config(StoreConfig::default())
        .try_build()
        .expect("initial store persist");
    let total_nodes = corpus.total_nodes();

    // recovery time vs journal length: churn to each cumulative edit
    // count, drop, and time the cold boot
    let mut points = Vec::with_capacity(ec.journal_points.len());
    let mut churned = 0usize;
    for &target in &ec.journal_points {
        while churned < target {
            let id = DocId(rng.gen_range(0..ec.n_docs as u32));
            let doc = corpus.doc(id).expect("doc exists");
            let edit = random_edit(&doc.tree, &labels, &mut rng);
            corpus.update(id, &edit).expect("random_edit applies");
            churned += 1;
        }
        drop(corpus);
        let t0 = Instant::now();
        let (recovered, report) =
            Corpus::recover(&scratch.0, StoreConfig::default()).expect("recovery succeeds");
        let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            report.records_replayed, target,
            "every churned edit is in the journal tail"
        );
        points.push(RecoveryPoint {
            journal_records: target as u64,
            recover_ms,
        });
        corpus = recovered;
    }

    // snapshot write throughput: one full persist of the churned corpus
    let nodes_now = corpus.total_nodes();
    let t0 = Instant::now();
    let receipt = corpus
        .persist()
        .expect("persist succeeds")
        .expect("corpus has a store");
    let write_ms = t0.elapsed().as_secs_f64() * 1e3;
    let write_nodes_per_s = nodes_now as f64 / (write_ms / 1e3).max(1e-9);

    // snapshot load throughput: cold boot with the journal compacted away
    drop(corpus);
    let t0 = Instant::now();
    let (recovered, report) =
        Corpus::recover(&scratch.0, StoreConfig::default()).expect("recovery succeeds");
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.records_replayed, 0, "journal was compacted away");
    let load_nodes_per_s = nodes_now as f64 / (load_ms / 1e3).max(1e-9);

    // compression: actual on-disk snapshot bytes per node vs the arena
    let snapshot_bytes = recovered
        .store()
        .expect("recovered corpus has a store")
        .snapshot_bytes();
    let disk_bytes_per_node = snapshot_bytes as f64 / nodes_now as f64;
    let ratio = ARENA_BYTES_PER_NODE as f64 / disk_bytes_per_node;
    let ideal = compact_bytes_per_node(nodes_now, labels.len());
    drop(recovered);

    let mut table = Table::new(
        "E13: durable storage — snapshot throughput, recovery vs journal length, compression",
        &["measurement", "journal", "wall", "rate / ratio"],
    );
    for p in &points {
        table.row(vec![
            "cold recovery".into(),
            format!("{} records", p.journal_records),
            format!("{:.2}ms", p.recover_ms),
            format!(
                "{:.1}us/record",
                if p.journal_records == 0 {
                    0.0
                } else {
                    p.recover_ms * 1e3 / p.journal_records as f64
                }
            ),
        ]);
    }
    table.row(vec![
        "snapshot write".into(),
        "-".into(),
        format!("{write_ms:.2}ms"),
        format!("{:.1}M nodes/s", write_nodes_per_s / 1e6),
    ]);
    table.row(vec![
        "snapshot load".into(),
        "0 records".into(),
        format!("{load_ms:.2}ms"),
        format!("{:.1}M nodes/s", load_nodes_per_s / 1e6),
    ]);
    table.row(vec![
        "bytes/node".into(),
        "-".into(),
        format!("{disk_bytes_per_node:.2}B vs {ARENA_BYTES_PER_NODE}B arena"),
        format!("{ratio:.1}x"),
    ]);
    table.note(format!(
        "{} docs x ~{} nodes in {} shards; every recovery point is a cold boot over the same \
         snapshot generation with a longer journal tail",
        ec.n_docs, ec.doc_size, ec.n_shards
    ));
    table.note(format!(
        "on-disk encoding: balanced-parentheses structure (2 bits/node) + palette label ids \
         ({} labels => ideal {:.2}B/node); measured {:.2}B/node includes headers, palettes, \
         versions, and checksums",
        labels.len(),
        ideal,
        disk_bytes_per_node
    ));

    let summary = Json::obj()
        .field(
            "corpus",
            Json::obj()
                .field("docs", ec.n_docs)
                .field("doc_size", ec.doc_size)
                .field("shards", ec.n_shards)
                .field("nodes", total_nodes)
                .field("nodes_after_churn", nodes_now),
        )
        .field(
            "recovery",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj()
                            .field("journal_records", p.journal_records)
                            .field("recover_ms", p.recover_ms)
                    })
                    .collect(),
            ),
        )
        .field(
            "snapshot",
            Json::obj()
                .field("write_ms", write_ms)
                .field("write_nodes_per_s", write_nodes_per_s)
                .field("load_ms", load_ms)
                .field("load_nodes_per_s", load_nodes_per_s)
                .field("bytes", receipt.snapshot_bytes)
                .field("journal_reclaimed", receipt.journal_reclaimed),
        )
        .field("arena_bytes_per_node", ARENA_BYTES_PER_NODE as u64)
        .field("disk_bytes_per_node", disk_bytes_per_node)
        .field("ideal_bytes_per_node", ideal)
        .field("compression_ratio", ratio);
    (table, summary)
}

/// Table-only entry point (`run_all` and the experiment registry).
pub fn run(cfg: &RunCfg) -> Table {
    run_full(cfg).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field<'a>(obj: &'a Json, key: &str) -> &'a Json {
        match obj {
            Json::Obj(fields) => &fields.iter().find(|(k, _)| k == key).unwrap().1,
            _ => panic!("not an object"),
        }
    }

    /// The acceptance bar in miniature: the compact snapshot encoding
    /// beats the resident arena by at least 4x even on quick-sized
    /// documents, and every recovery point boots.
    #[test]
    fn quick_run_recovers_and_compresses() {
        let (t, summary) = run_full(&RunCfg::quick());
        assert!(t.rows.len() >= 6, "4 recovery points + 3 summary rows");
        match field(&summary, "compression_ratio") {
            Json::Num(r) => assert!(
                *r >= 4.0,
                "compression ratio {r:.2} below the 4x acceptance bar"
            ),
            other => panic!("compression_ratio is {other:?}"),
        }
        match field(&summary, "recovery") {
            Json::Arr(points) => {
                assert_eq!(points.len(), 4);
                for p in points {
                    match field(p, "recover_ms") {
                        Json::Num(ms) => assert!(*ms > 0.0),
                        other => panic!("recover_ms is {other:?}"),
                    }
                }
            }
            other => panic!("recovery is {other:?}"),
        }
    }
}

//! E4 — exhaustive validation of the equivalence triangle (the main
//! theorem of the paper, checked empirically).
//!
//! For a fuzzed population of Regular XPath(W) queries, every rendition
//! (FO(MTC), NTWA, Kleene round trip, guarded-FO round trip where
//! applicable) is evaluated on the standard corpus (all trees up to a size
//! bound plus random trees of all workload families). The table reports
//! check counts per query class; the expected mismatch column is all
//! zeros — a non-zero entry is a refutation of an implementation (or
//! of the theorem).

use crate::table::Table;
use crate::RunCfg;
use twx_core::diff::{check_tri, standard_corpus, TriQuery};
use twx_obs::{self as obs, Counter};
use twx_regxpath::generate::{random_rpath, RGenConfig};
use twx_xtree::rng::SplitMix64 as StdRng;

/// Runs E4 and renders its table.
///
/// The last two columns report, per query class, the total compiled
/// artifact volume the validation built (from the `compiled_ntwa_states`
/// and `compiled_formula_size` counters) — a measure of how much
/// translation machinery each class exercises.
pub fn run(cfg: &RunCfg) -> Table {
    let mut table = Table::new(
        "E4: equivalence-triangle validation (differential testing)",
        &[
            "query class",
            "queries",
            "trees",
            "checks",
            "mismatches",
            "ntwa states",
            "formula size",
        ],
    );
    let corpus = standard_corpus(
        if cfg.quick { 3 } else { 4 },
        2,
        if cfg.quick { 2 } else { 5 },
        4,
    );
    let n_queries = if cfg.quick { 6 } else { 25 };
    let mut rng = StdRng::seed_from_u64(cfg.seed_for(4));

    let classes: [(&str, RGenConfig); 3] = [
        (
            "star-free",
            RGenConfig {
                stars: false,
                within: false,
                ..RGenConfig::default()
            },
        ),
        (
            "regular (no W)",
            RGenConfig {
                within: false,
                ..RGenConfig::default()
            },
        ),
        ("regular + W", RGenConfig::default()),
    ];

    for (name, gen_cfg) in classes {
        let mut mismatches = 0usize;
        let mut checks = 0usize;
        let before = obs::snapshot();
        for _ in 0..n_queries {
            let p = random_rpath(&gen_cfg, 3, &mut rng);
            let q = TriQuery::from_xpath(&p);
            let renditions = 3 + usize::from(q.xpath_from_logic.is_some());
            checks += corpus.len() * renditions;
            if check_tri(&q, &corpus).is_some() {
                mismatches += 1;
            }
        }
        let built = obs::delta_since(&before);
        table.row(vec![
            name.into(),
            n_queries.to_string(),
            corpus.len().to_string(),
            checks.to_string(),
            mismatches.to_string(),
            built.get(Counter::CompiledNtwaStates).to_string(),
            built.get(Counter::CompiledFormulaSize).to_string(),
        ]);
    }
    table.note("expected: zero mismatches in every class");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_mismatches_in_quick_run() {
        let t = run(&RunCfg::quick());
        for row in &t.rows {
            assert_eq!(row[4], "0", "mismatches in class {}", row[0]);
        }
    }
}

//! E1 — Core XPath evaluation scaling.
//!
//! The Gottlob–Koch–Pichler linear-time evaluator against the naive
//! `n × n` relational evaluator, across tree sizes and workload families.
//! Expected shape: GKP grows linearly with `n` and wins by orders of
//! magnitude as soon as trees leave cache scale; the naive evaluator is
//! cubic (matrix closure) and only feasible on small trees.

use crate::experiments::time_us;
use crate::table::{fmt_micros, Table};
use crate::{RunCfg, Workload};
use twx_corexpath::ast::PathExpr;
use twx_corexpath::parser::parse_path_expr;
use twx_corexpath::{eval_path_image, eval_path_rel};
use twx_xtree::generate::random_tree;
use twx_xtree::rng::SplitMix64 as StdRng;
use twx_xtree::{Alphabet, NodeSet};

/// The fixed query mix (one per structural feature).
pub fn queries(ab: &mut Alphabet) -> Vec<(&'static str, PathExpr)> {
    [
        ("child-chain", "down/down/down"),
        ("descendants", "down+[p0]"),
        ("filtered", "down[<down[p1]>]/down+"),
        ("siblings", "down+/right+[p0]"),
        ("updown", "down+[<up/up>]/up"),
    ]
    .into_iter()
    .map(|(name, src)| (name, parse_path_expr(src, ab).expect("query parses")))
    .collect()
}

/// Runs E1 and renders its table.
pub fn run(cfg: &RunCfg) -> Table {
    let sizes: &[usize] = if cfg.quick {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000, 100_000]
    };
    let naive_cap = if cfg.quick { 300 } else { 1_000 };
    let mut ab = Alphabet::from_names(["p0", "p1", "p2"]);
    let qs = queries(&mut ab);
    let mut rng = StdRng::seed_from_u64(cfg.seed_for(1));

    let mut table = Table::new(
        "E1: Core XPath evaluation — GKP linear vs naive relational",
        &["workload", "nodes", "query", "gkp", "naive", "speedup"],
    );
    for wl in Workload::ALL {
        for &n in sizes {
            let t = random_tree(wl.shape(), n, 3, &mut rng);
            let ctx = NodeSet::singleton(t.len(), t.root());
            for (name, q) in &qs {
                let (ans, gkp_us) = time_us(|| eval_path_image(&t, q, &ctx));
                let (naive_us, speedup) = if n <= naive_cap {
                    let (rel, us) = time_us(|| eval_path_rel(&t, q));
                    // same answers, as a safety net
                    assert_eq!(rel.image(&ctx), ans, "evaluators disagree on {name}");
                    (fmt_micros(us), format!("{:.0}x", us / gkp_us.max(0.01)))
                } else {
                    ("-".into(), "-".into())
                };
                table.row(vec![
                    wl.name().into(),
                    n.to_string(),
                    (*name).into(),
                    fmt_micros(gkp_us),
                    naive_us,
                    speedup,
                ]);
            }
        }
    }
    table.note(format!(
        "naive evaluator capped at {naive_cap} nodes (cubic matrix closure)"
    ));
    table.note("expected shape: GKP linear in n; naive wins never");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_full_table() {
        let t = run(&RunCfg::quick());
        // 3 workloads × 2 sizes × 5 queries
        assert_eq!(t.rows.len(), 30);
        // all naive-checked rows agreed (the run would have panicked)
        assert!(t.render().contains("E1"));
    }
}

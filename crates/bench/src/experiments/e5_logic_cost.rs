//! E5 — the cost of the logic encoding.
//!
//! FO(MTC) model checking (PSPACE combined complexity; our evaluator
//! enumerates assignments) against direct Regular XPath(W) evaluation of
//! the *same* query, as tree size grows. Expected shape: the direct
//! evaluator is polynomial with small exponent (near-linear), the logic
//! evaluator degrades polynomially with quantifier rank — quantifying the
//! price of the declarative encoding that the effective translations let
//! one avoid.

use crate::experiments::time_us;
use crate::table::{fmt_micros, Table};
use crate::RunCfg;
use twx_core::rpath_to_formula;
use twx_fotc::eval::eval_binary;
use twx_regxpath::parser::parse_rpath;
use twx_xtree::generate::{random_tree, Shape};
use twx_xtree::rng::SplitMix64 as StdRng;
use twx_xtree::Alphabet;

/// Runs E5 and renders its table.
pub fn run(cfg: &RunCfg) -> Table {
    let mut table = Table::new(
        "E5: FO(MTC) model checking vs direct Regular XPath evaluation",
        &["query", "nodes", "xpath (full rel)", "FO(MTC)", "ratio"],
    );
    let sizes: &[usize] = if cfg.quick {
        &[8, 16]
    } else {
        &[8, 16, 32, 64]
    };
    let mut ab = Alphabet::from_names(["p0", "p1"]);
    let queries = [
        ("child", "down"),
        ("desc-star", "down*"),
        ("guarded", "(down[p0])*"),
        ("zigzag", "(down | right)*[p1]"),
    ];
    let mut rng = StdRng::seed_from_u64(cfg.seed_for(5));
    for (name, src) in queries {
        let p = parse_rpath(src, &mut ab).unwrap();
        let f = rpath_to_formula(&p, 0, 1, 2);
        for &n in sizes {
            let t = random_tree(Shape::Recursive, n, 2, &mut rng);
            let (rel_x, x_us) = time_us(|| twx_regxpath::eval_rel(&t, &p));
            let (rel_f, f_us) = time_us(|| eval_binary(&t, &f, 0, 1));
            assert_eq!(rel_x, rel_f, "logic and xpath disagree on {name}");
            table.row(vec![
                name.into(),
                n.to_string(),
                fmt_micros(x_us),
                fmt_micros(f_us),
                format!("{:.0}x", f_us / x_us.max(0.01)),
            ]);
        }
    }
    table.note("both sides compute the full binary relation; answers checked equal");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let t = run(&RunCfg::quick());
        assert_eq!(t.rows.len(), 4 * 2);
    }
}

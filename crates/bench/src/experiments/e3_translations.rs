//! E3 — translation blow-ups across the equivalence triangle.
//!
//! * Thompson direction (Regular XPath(W) → NTWA): state count is linear
//!   in expression size (the paper's construction);
//! * Kleene direction (NTWA → Regular XPath(W)): expression size grows
//!   exponentially with the number of automaton states in the worst case
//!   (we report raw and post-simplification sizes);
//! * logic direction (Regular XPath(W) → FO(MTC)): formula size is linear
//!   except under `W`-nesting.

use crate::table::Table;
use crate::RunCfg;
use twx_core::{ntwa_to_rpath, ntwa_to_rpath_raw, rpath_to_formula, rpath_to_ntwa};
use twx_obs::{self as obs, Counter};
use twx_regxpath::generate::{random_rpath, RGenConfig};
use twx_regxpath::simplify::simplify_rpath;
use twx_twa::generate::{random_ntwa, TGenConfig};
use twx_xtree::rng::SplitMix64 as StdRng;

/// Runs E3 and renders its table.
///
/// The `obs avg` column is the same size average derived from the
/// translation counters (`compiled_ntwa_states` / `compiled_formula_size`)
/// rather than from the returned artifact — a cross-check that the
/// instrumentation in `twx-core` accounts for every state it builds.
pub fn run(run_cfg: &RunCfg) -> Table {
    let mut table = Table::new(
        "E3: translation blow-ups (sizes, averaged over random instances)",
        &[
            "direction",
            "input size",
            "samples",
            "avg output",
            "max output",
            "obs avg",
        ],
    );
    let mut rng = StdRng::seed_from_u64(run_cfg.seed_for(3));
    let samples = if run_cfg.quick { 10 } else { 40 };

    // Thompson: expression size → automaton states
    let cfg = RGenConfig::default();
    for depth in [2usize, 3, 4, 5] {
        let mut tot_in = 0usize;
        let mut tot_out = 0usize;
        let mut max_out = 0usize;
        let before = obs::snapshot();
        for _ in 0..samples {
            let p = random_rpath(&cfg, depth, &mut rng);
            let a = rpath_to_ntwa(&p);
            tot_in += p.size();
            tot_out += a.total_states();
            max_out = max_out.max(a.total_states());
        }
        let counted = obs::delta_since(&before).get(Counter::CompiledNtwaStates);
        table.row(vec![
            "xpath→NTWA (states)".into(),
            format!("~{}", tot_in / samples),
            samples.to_string(),
            format!("{:.1}", tot_out as f64 / samples as f64),
            max_out.to_string(),
            format!("{:.1}", counted as f64 / samples as f64),
        ]);
    }

    // Kleene: automaton states → expression size (raw and simplified)
    for states in [2u32, 3, 4, 5, 6] {
        let cfg = TGenConfig {
            states,
            transitions: (states * 2) as usize,
            depth: if run_cfg.quick { 0 } else { 1 },
            ..TGenConfig::default()
        };
        let mut tot_raw = 0usize;
        let mut tot_simpl = 0usize;
        let mut max_raw = 0usize;
        for _ in 0..samples {
            let a = random_ntwa(&cfg, &mut rng);
            let raw = ntwa_to_rpath_raw(&a);
            let simpl = simplify_rpath(&raw);
            tot_raw += raw.size();
            tot_simpl += simpl.size();
            max_raw = max_raw.max(raw.size());
        }
        table.row(vec![
            "NTWA→xpath raw (size)".into(),
            format!("{states} states"),
            samples.to_string(),
            format!("{:.0}", tot_raw as f64 / samples as f64),
            max_raw.to_string(),
            "-".into(),
        ]);
        table.row(vec![
            "NTWA→xpath simplified".into(),
            format!("{states} states"),
            samples.to_string(),
            format!("{:.0}", tot_simpl as f64 / samples as f64),
            "-".into(),
            "-".into(),
        ]);
    }

    // logic: expression size → formula size
    for depth in [2usize, 3, 4] {
        let mut tot_in = 0usize;
        let mut tot_out = 0usize;
        let mut max_out = 0usize;
        let before = obs::snapshot();
        for _ in 0..samples {
            let p = random_rpath(&cfg, depth, &mut rng);
            let f = rpath_to_formula(&p, 0, 1, 2);
            tot_in += p.size();
            tot_out += f.size();
            max_out = max_out.max(f.size());
        }
        let counted = obs::delta_since(&before).get(Counter::CompiledFormulaSize);
        table.row(vec![
            "xpath→FO(MTC) (size)".into(),
            format!("~{}", tot_in / samples),
            samples.to_string(),
            format!("{:.1}", tot_out as f64 / samples as f64),
            max_out.to_string(),
            format!("{:.1}", counted as f64 / samples as f64),
        ]);
    }

    // the roundtrip sanity note
    let _ = ntwa_to_rpath(&rpath_to_ntwa(&random_rpath(&cfg, 3, &mut rng)));
    table.note(
        "Thompson stays within 2·|expr| states; Kleene raw output grows exponentially in states",
    );
    table.note("simplification recovers 1-2 orders of magnitude on Kleene output");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let t = run(&RunCfg::quick());
        assert_eq!(t.rows.len(), 4 + 10 + 3);
    }
}

//! The experiment programme (one module per experiment; see
//! `EXPERIMENTS.md` for the index).

pub mod e10_corpus_serve;
pub mod e11_live_corpus;
pub mod e12_vm;
pub mod e13_durability;
pub mod e14_scaling;
pub mod e1_core_eval;
pub mod e2_regxpath_eval;
pub mod e3_translations;
pub mod e4_triangle;
pub mod e5_logic_cost;
pub mod e6_satisfiability;
pub mod e7_closure;
pub mod e8_separation;
pub mod e9_plan_cache;

use crate::{RunCfg, Table};

/// Runs every experiment and returns the tables in order.
pub fn run_all(cfg: &RunCfg) -> Vec<Table> {
    vec![
        e1_core_eval::run(cfg),
        e2_regxpath_eval::run(cfg),
        e3_translations::run(cfg),
        e4_triangle::run(cfg),
        e5_logic_cost::run(cfg),
        e6_satisfiability::run(cfg),
        e7_closure::run(cfg),
        e8_separation::run(cfg),
        e9_plan_cache::run(cfg),
        e10_corpus_serve::run(cfg),
        e11_live_corpus::run(cfg),
        e12_vm::run(cfg),
        e13_durability::run(cfg),
        e14_scaling::run(cfg),
    ]
}

/// Times a closure, returning (result, microseconds).
pub(crate) fn time_us<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e6)
}

//! E2 — Regular XPath(W) evaluation: the product-construction evaluator
//! (`O(|T|·|A|)` per context set, the paper's polynomial bound) against
//! the naive relational evaluator with matrix star (`O(|A|·n³ log n)`).
//!
//! Also measures scaling in *query* size at fixed tree size.

use crate::experiments::time_us;
use crate::table::{fmt_micros, Table};
use crate::{RunCfg, Workload};
use twx_regxpath::ast::{Axis, RPath};
use twx_regxpath::eval::Compiled;
use twx_regxpath::eval_naive::eval_rel_naive;
use twx_regxpath::parser::parse_rpath;
use twx_regxpath::RNode;
use twx_xtree::generate::random_tree;
use twx_xtree::rng::SplitMix64 as StdRng;
use twx_xtree::{Alphabet, NodeSet};

/// The fixed query mix exercising star, mixed axes, tests and W.
pub fn queries(ab: &mut Alphabet) -> Vec<(&'static str, RPath)> {
    [
        ("desc-star", "down*[p0]"),
        ("guarded-star", "(down[!p1])*"),
        ("zigzag", "(down/right | up)*[p0]"),
        ("test-heavy", "(down/?(<right>))*"),
        ("within", "down*[W(<down*[p1]>)]"),
    ]
    .into_iter()
    .map(|(name, src)| (name, parse_rpath(src, ab).expect("query parses")))
    .collect()
}

/// Builds a query of size ~`k` by chaining guarded stars (for the
/// query-size sweep).
pub fn sized_query(k: usize) -> RPath {
    let mut p = RPath::Axis(Axis::Down).star();
    for i in 0..k {
        let axis = match i % 4 {
            0 => Axis::Down,
            1 => Axis::Right,
            2 => Axis::Up,
            _ => Axis::Left,
        };
        p = p.seq(
            RPath::Axis(axis)
                .filter(RNode::Label(twx_xtree::Label((i % 2) as u32)).not())
                .star(),
        );
    }
    p
}

/// Runs E2 and renders its table.
pub fn run(cfg: &RunCfg) -> Table {
    let sizes: &[usize] = if cfg.quick {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000]
    };
    let naive_cap = if cfg.quick { 150 } else { 400 };
    let mut ab = Alphabet::from_names(["p0", "p1"]);
    let qs = queries(&mut ab);
    let mut rng = StdRng::seed_from_u64(cfg.seed_for(2));

    let mut table = Table::new(
        "E2: Regular XPath(W) evaluation — product evaluator vs matrix-star baseline",
        &["workload", "nodes", "query", "product", "naive", "speedup"],
    );
    for wl in Workload::ALL {
        for &n in sizes {
            let t = random_tree(wl.shape(), n, 2, &mut rng);
            let ctx = NodeSet::singleton(t.len(), t.root());
            for (name, q) in &qs {
                let compiled = Compiled::new(q);
                let (ans, fast_us) = time_us(|| compiled.image(&t, &ctx));
                let (naive_us, speedup) = if n <= naive_cap {
                    let (rel, us) = time_us(|| eval_rel_naive(&t, q));
                    assert_eq!(rel.image(&ctx), ans, "evaluators disagree on {name}");
                    (fmt_micros(us), format!("{:.0}x", us / fast_us.max(0.01)))
                } else {
                    ("-".into(), "-".into())
                };
                table.row(vec![
                    wl.name().into(),
                    n.to_string(),
                    (*name).into(),
                    fmt_micros(fast_us),
                    naive_us,
                    speedup,
                ]);
            }
        }
    }

    // query-size sweep at fixed tree size
    let t = random_tree(
        Workload::Document.shape(),
        if cfg.quick { 2_000 } else { 20_000 },
        2,
        &mut rng,
    );
    let ctx = NodeSet::singleton(t.len(), t.root());
    for k in [1usize, 4, 16, 64] {
        let q = sized_query(k);
        let compiled = Compiled::new(&q);
        let (_, us) = time_us(|| compiled.image(&t, &ctx));
        table.row(vec![
            "sweep".into(),
            t.len().to_string(),
            format!("size-{}", q.size()),
            fmt_micros(us),
            "-".into(),
            "-".into(),
        ]);
    }
    table.note("product evaluator scales linearly in |T|·|A| (sweep rows)");
    table.note("W filters add an O(n·depth) subtree pass");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let t = run(&RunCfg::quick());
        assert_eq!(t.rows.len(), 3 * 2 * 5 + 4);
    }

    #[test]
    fn sized_query_grows() {
        assert!(sized_query(8).size() > sized_query(2).size());
    }
}

//! E14 — strong scaling of frontier-parallel evaluation: the VM backend
//! at 1/2/4/8 eval threads on one large document.
//!
//! The frontier kernels in `twx-frontier` split every axis image and
//! star fixpoint over the preorder id space (push by source-node count,
//! pull by candidate-id count), so on a document large enough to produce
//! many chunks the same plan should evaluate faster as threads are
//! added — without changing a single answer bit. This experiment
//! measures that curve: per star-heavy pool query, hot-serve latency at
//! each thread count and the speedup over the 1-thread baseline, with
//! every multi-threaded answer cross-checked bit-for-bit against the
//! sequential one before any timing is trusted.
//!
//! Strong scaling only exists when the host has cores to scale onto:
//! the structured summary carries `host_threads` (the value of
//! `std::thread::available_parallelism()`), and CI asserts the ≥ 2×
//! speedup at 4 threads only when `host_threads ≥ 4`. On a 1-core
//! runner the experiment still runs — it then checks determinism and
//! graceful oversubscription rather than speedup.

use crate::experiments::time_us;
use crate::table::{fmt_micros, Table};
use crate::RunCfg;
use treewalk::{Backend, Engine};
use twx_obs::json::Json;
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::rng::SplitMix64;
use twx_xtree::{Catalog, Document};

/// Star-heavy pool: every query is dominated by closure fixpoints whose
/// per-iteration axis images are the parallel kernels' unit of work.
const QUERIES: [(&str, &str); 4] = [
    ("desc-star", "down*[p0]"),
    ("updown-star", "(up | down)*[p1]"),
    ("star-chain", "down*/right*/down*[p2]"),
    ("zigzag-star", "(down/right | up)*[p0]"),
];

/// The thread counts on the scaling curve; the first is the baseline.
const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Sizes {
    doc_size: usize,
    serves: usize,
}

fn sizes(cfg: &RunCfg) -> Sizes {
    if cfg.quick {
        Sizes {
            doc_size: 20_000,
            serves: 3,
        }
    } else {
        Sizes {
            // the acceptance gate demands a ≥ 1M-node document: big
            // enough that push/pull chunking dominates thread overhead
            doc_size: 1_000_000,
            serves: 4,
        }
    }
}

struct QueryScaling {
    name: &'static str,
    query: &'static str,
    /// Hot-serve microseconds per thread count, aligned with [`THREADS`].
    us: [f64; THREADS.len()],
}

impl QueryScaling {
    fn speedup_at(&self, i: usize) -> f64 {
        self.us[0] / self.us[i].max(0.01)
    }
}

/// Hot posture at a fixed thread count: prepare once, serve evals only.
fn serve_hot(engine: &Engine, catalog: &Catalog, doc: &Document, q: &str, serves: usize) -> f64 {
    let p = engine.prepare_in(catalog, q).expect("pool query compiles");
    let (_, us) = time_us(|| {
        for _ in 0..serves {
            std::hint::black_box(p.eval(doc, doc.tree.root()));
        }
    });
    us / serves as f64
}

/// Runs E14, returning the rendered table and the structured summary
/// exported as the `e14` field of `BENCH_HARNESS.json`.
pub fn run_full(cfg: &RunCfg) -> (Table, Json) {
    let sz = sizes(cfg);
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let catalog = Catalog::from_names(["p0", "p1", "p2"]);
    let mut rng = SplitMix64::seed_from_u64(cfg.seed_for(14));
    let doc = random_document_in(Shape::DocumentLike, sz.doc_size, &catalog, &mut rng);

    let engines: Vec<Engine> = THREADS
        .iter()
        .map(|&t| Engine::with_backend(Backend::Vm).with_parallelism(t))
        .collect();

    // determinism gate before any timing: every thread count must
    // produce the 1-thread answer bit-for-bit
    for (_, q) in QUERIES {
        let reference = engines[0]
            .prepare_in(&catalog, q)
            .expect("pool query compiles")
            .eval(&doc, doc.tree.root());
        for (e, &t) in engines.iter().zip(&THREADS).skip(1) {
            let answer = e
                .prepare_in(&catalog, q)
                .expect("pool query compiles")
                .eval(&doc, doc.tree.root());
            assert_eq!(
                answer.as_words(),
                reference.as_words(),
                "{q}: {t}-thread answer differs from sequential"
            );
        }
    }

    // the determinism pass doubles as warm-up (plans cached, arenas
    // grown, pages touched); now measure
    let results: Vec<QueryScaling> = QUERIES
        .iter()
        .map(|&(name, q)| QueryScaling {
            name,
            query: q,
            us: std::array::from_fn(|i| serve_hot(&engines[i], &catalog, &doc, q, sz.serves)),
        })
        .collect();

    let geomean_at = |i: usize| {
        let (sum, n) = results
            .iter()
            .map(|r| r.speedup_at(i))
            .fold((0.0f64, 0usize), |(s, n), x| (s + x.max(1e-9).ln(), n + 1));
        (sum / n.max(1) as f64).exp()
    };
    let geo: [f64; THREADS.len()] = std::array::from_fn(geomean_at);

    let mut table = Table::new(
        "E14: frontier-parallel strong scaling — VM backend at 1/2/4/8 eval threads",
        &[
            "query",
            "1T",
            "2T",
            "4T",
            "8T",
            "2T speedup",
            "4T speedup",
            "8T speedup",
        ],
    );
    for r in &results {
        table.row(vec![
            r.name.into(),
            fmt_micros(r.us[0]),
            fmt_micros(r.us[1]),
            fmt_micros(r.us[2]),
            fmt_micros(r.us[3]),
            format!("{:.1}x", r.speedup_at(1)),
            format!("{:.1}x", r.speedup_at(2)),
            format!("{:.1}x", r.speedup_at(3)),
        ]);
    }
    table.row(vec![
        "geomean".into(),
        "".into(),
        "".into(),
        "".into(),
        "".into(),
        format!("{:.1}x", geo[1]),
        format!("{:.1}x", geo[2]),
        format!("{:.1}x", geo[3]),
    ]);
    table.note(format!(
        "1 doc x {} nodes (DocumentLike); hot serve (prepared once), {} evals per cell, \
         per-eval microseconds shown",
        sz.doc_size, sz.serves
    ));
    table.note(format!(
        "host has {host_threads} hardware thread(s) — speedups above that count measure \
         oversubscription overhead, not scaling"
    ));
    table.note(
        "all multi-threaded answers cross-checked bit-for-bit against 1 thread before timing",
    );

    let queries: Vec<Json> = results
        .iter()
        .map(|r| {
            let mut o = Json::obj().field("name", r.name).field("query", r.query);
            for (i, &t) in THREADS.iter().enumerate() {
                o = o.field(&format!("us_{t}t"), r.us[i]);
            }
            o.field("speedup_2t", r.speedup_at(1))
                .field("speedup_4t", r.speedup_at(2))
                .field("speedup_8t", r.speedup_at(3))
        })
        .collect();
    let summary = Json::obj()
        .field("pool", QUERIES.len())
        .field("doc_size", sz.doc_size)
        .field("serves", sz.serves)
        .field("host_threads", host_threads)
        .field("queries", Json::Arr(queries))
        .field("geomean_speedup_2t", geo[1])
        .field("geomean_speedup_4t", geo[2])
        .field("geomean_speedup_8t", geo[3]);
    (table, summary)
}

/// Table-only entry point (`run_all` and the experiment registry).
pub fn run(cfg: &RunCfg) -> Table {
    run_full(cfg).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field<'a>(obj: &'a Json, key: &str) -> &'a Json {
        match obj {
            Json::Obj(fields) => &fields.iter().find(|(k, _)| k == key).unwrap().1,
            _ => panic!("not an object"),
        }
    }

    #[test]
    fn quick_run_produces_table_and_summary() {
        let (t, summary) = run_full(&RunCfg::quick());
        assert_eq!(t.rows.len(), QUERIES.len() + 1, "pool rows + geomean row");
        match field(&summary, "host_threads") {
            Json::Int(n) => assert!(*n >= 1, "host_threads must be ≥ 1, got {n}"),
            other => panic!("host_threads is {other:?}"),
        }
        match field(&summary, "geomean_speedup_4t") {
            Json::Num(s) => assert!(*s > 0.0, "speedup must be positive, got {s}"),
            other => panic!("geomean_speedup_4t is {other:?}"),
        }
    }
}

//! E12 — the bytecode VM vs the product evaluator on a deep/starred
//! query pool, plan-cache-cold and plan-cache-hot.
//!
//! The VM compiles a plan once into a register program over dense
//! word-level bitsets and then serves every evaluation from a recycled
//! arena: no per-eval `n × m` visited maps, no per-eval test-set
//! allocations, and 64-way word parallelism on every union/intersect.
//! The product evaluator — the workspace's historical default — pays all
//! of those per evaluation. This experiment quantifies the gap on the
//! query shapes the VM was built for (deep sequences and starred
//! closures over document-like trees), in both the cold posture (fresh
//! engine per serve, compile included) and the hot serving posture
//! (plan-cache hit, eval only).
//!
//! [`run_full`] also returns the structured summary that the harness
//! exports as the top-level `e12` field of `BENCH_HARNESS.json`; CI
//! asserts the hot geometric-mean speedup stays ≥ 2×.

use crate::experiments::time_us;
use crate::table::{fmt_micros, Table};
use crate::RunCfg;
use treewalk::{Backend, Engine};
use twx_obs::json::Json;
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::rng::SplitMix64;
use twx_xtree::{Catalog, Document};

/// The deep/starred pool: descendant closures, zigzags, long sequences,
/// chained stars, filtered closures, and a nested `Some` filter.
const QUERIES: [(&str, &str); 6] = [
    ("desc-star", "down*[p0]"),
    ("zigzag", "(down/right | up)*[p0]"),
    ("deep-seq", "down/down/down/down/down[p1]"),
    ("star-chain", "down*/right*/down*[p2]"),
    ("filtered-closure", "(down[p0] | right)*[p1 or p2]"),
    ("nested-some", "down*[<down*[p2]>]"),
];

struct Sizes {
    n_docs: usize,
    doc_size: usize,
    serves: usize,
}

fn sizes(cfg: &RunCfg) -> Sizes {
    if cfg.quick {
        Sizes {
            n_docs: 6,
            doc_size: 300,
            serves: 16,
        }
    } else {
        Sizes {
            n_docs: 16,
            doc_size: 900,
            serves: 64,
        }
    }
}

struct QueryResult {
    name: &'static str,
    query: &'static str,
    product_cold_us: f64,
    vm_cold_us: f64,
    product_hot_us: f64,
    vm_hot_us: f64,
}

impl QueryResult {
    fn speedup_cold(&self) -> f64 {
        self.product_cold_us / self.vm_cold_us.max(0.01)
    }

    fn speedup_hot(&self) -> f64 {
        self.product_hot_us / self.vm_hot_us.max(0.01)
    }
}

/// Cold posture: a fresh engine per serve — every serve compiles.
fn serve_cold(
    backend: Backend,
    catalog: &Catalog,
    docs: &[Document],
    q: &str,
    serves: usize,
) -> f64 {
    let (_, us) = time_us(|| {
        for i in 0..serves {
            let engine = Engine::with_backend(backend);
            let p = engine.prepare_in(catalog, q).expect("pool query compiles");
            let d = &docs[i % docs.len()];
            std::hint::black_box(p.eval(d, d.tree.root()));
        }
    });
    us
}

/// Hot posture: prepare once, then serve evals only (the plan-cache-hit
/// configuration a warmed `QueryService` runs in).
fn serve_hot(engine: &Engine, catalog: &Catalog, docs: &[Document], q: &str, serves: usize) -> f64 {
    let p = engine.prepare_in(catalog, q).expect("pool query compiles");
    let (_, us) = time_us(|| {
        for i in 0..serves {
            let d = &docs[i % docs.len()];
            std::hint::black_box(p.eval(d, d.tree.root()));
        }
    });
    us
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = xs.fold((0.0f64, 0usize), |(s, n), x| (s + x.max(1e-9).ln(), n + 1));
    (sum / n.max(1) as f64).exp()
}

/// Runs E12, returning the rendered table and the structured summary
/// exported as the `e12` field of `BENCH_HARNESS.json`.
pub fn run_full(cfg: &RunCfg) -> (Table, Json) {
    let sz = sizes(cfg);
    let catalog = Catalog::from_names(["p0", "p1", "p2"]);
    let mut rng = SplitMix64::seed_from_u64(cfg.seed_for(12));
    let docs: Vec<Document> = (0..sz.n_docs)
        .map(|_| random_document_in(Shape::DocumentLike, sz.doc_size, &catalog, &mut rng))
        .collect();

    // both backends must agree on every (query, doc) pair before any
    // timing is trusted — E12 doubles as a correctness check
    let product = Engine::with_backend(Backend::Product);
    let vm = Engine::with_backend(Backend::Vm);
    for (_, q) in QUERIES {
        let pp = product
            .prepare_in(&catalog, q)
            .expect("pool query compiles");
        let pv = vm.prepare_in(&catalog, q).expect("pool query compiles");
        for (i, d) in docs.iter().enumerate() {
            assert_eq!(
                pp.eval(d, d.tree.root()),
                pv.eval(d, d.tree.root()),
                "{q}: product and vm disagree on doc {i}"
            );
        }
    }

    // warm-up pass so first-touch page faults and lazy arena growth land
    // outside the timed region, then measure
    let results: Vec<QueryResult> = QUERIES
        .iter()
        .map(|&(name, q)| {
            let _ = serve_hot(&product, &catalog, &docs, q, sz.serves.min(4));
            let _ = serve_hot(&vm, &catalog, &docs, q, sz.serves.min(4));
            QueryResult {
                name,
                query: q,
                product_cold_us: serve_cold(Backend::Product, &catalog, &docs, q, sz.serves),
                vm_cold_us: serve_cold(Backend::Vm, &catalog, &docs, q, sz.serves),
                product_hot_us: serve_hot(&product, &catalog, &docs, q, sz.serves),
                vm_hot_us: serve_hot(&vm, &catalog, &docs, q, sz.serves),
            }
        })
        .collect();

    let geo_cold = geomean(results.iter().map(QueryResult::speedup_cold));
    let geo_hot = geomean(results.iter().map(QueryResult::speedup_hot));

    let mut table = Table::new(
        "E12: bytecode VM vs product evaluator — deep/starred pool, cold and plan-cache-hot",
        &[
            "query",
            "serves",
            "product cold",
            "vm cold",
            "cold speedup",
            "product hot",
            "vm hot",
            "hot speedup",
        ],
    );
    for r in &results {
        table.row(vec![
            r.name.into(),
            sz.serves.to_string(),
            fmt_micros(r.product_cold_us),
            fmt_micros(r.vm_cold_us),
            format!("{:.1}x", r.speedup_cold()),
            fmt_micros(r.product_hot_us),
            fmt_micros(r.vm_hot_us),
            format!("{:.1}x", r.speedup_hot()),
        ]);
    }
    table.row(vec![
        "geomean".into(),
        "".into(),
        "".into(),
        "".into(),
        format!("{geo_cold:.1}x"),
        "".into(),
        "".into(),
        format!("{geo_hot:.1}x"),
    ]);
    let vm_stats = vm.cache_stats();
    table.note(format!(
        "{} docs x {} nodes (DocumentLike); cold = fresh engine per serve (compile included); \
         hot = prepared once, evals only",
        sz.n_docs, sz.doc_size
    ));
    table.note(format!(
        "vm plan cache after run: {} hits / {} misses / {} entries — one compile per pool query, \
         every re-prepare a hit",
        vm_stats.hits, vm_stats.misses, vm_stats.entries
    ));
    table.note("answers cross-checked product vs vm on every (query, doc) pair before timing");

    let queries: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::obj()
                .field("name", r.name)
                .field("query", r.query)
                .field("product_cold_us", r.product_cold_us)
                .field("vm_cold_us", r.vm_cold_us)
                .field("speedup_cold", r.speedup_cold())
                .field("product_hot_us", r.product_hot_us)
                .field("vm_hot_us", r.vm_hot_us)
                .field("speedup_hot", r.speedup_hot())
        })
        .collect();
    let summary = Json::obj()
        .field("pool", QUERIES.len())
        .field("docs", sz.n_docs)
        .field("doc_size", sz.doc_size)
        .field("serves", sz.serves)
        .field("queries", Json::Arr(queries))
        .field("geomean_speedup_cold", geo_cold)
        .field("geomean_speedup_hot", geo_hot)
        .field(
            "vm_plan_cache",
            Json::obj()
                .field("hits", vm_stats.hits)
                .field("misses", vm_stats.misses)
                .field("entries", vm_stats.entries),
        );
    (table, summary)
}

/// Table-only entry point (`run_all` and the experiment registry).
pub fn run(cfg: &RunCfg) -> Table {
    run_full(cfg).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field<'a>(obj: &'a Json, key: &str) -> &'a Json {
        match obj {
            Json::Obj(fields) => &fields.iter().find(|(k, _)| k == key).unwrap().1,
            _ => panic!("not an object"),
        }
    }

    #[test]
    fn quick_run_produces_table_and_summary() {
        let (t, summary) = run_full(&RunCfg::quick());
        assert_eq!(t.rows.len(), QUERIES.len() + 1, "pool rows + geomean row");
        match field(&summary, "geomean_speedup_hot") {
            Json::Num(s) => assert!(*s > 0.0, "geomean must be positive, got {s}"),
            other => panic!("geomean_speedup_hot is {other:?}"),
        }
        match field(field(&summary, "vm_plan_cache"), "misses") {
            Json::Int(m) => assert_eq!(*m as usize, QUERIES.len(), "one compile per pool query"),
            other => panic!("misses is {other:?}"),
        }
    }

    #[test]
    fn geomean_of_constants_is_the_constant() {
        let g = geomean([4.0, 4.0, 4.0].into_iter());
        assert!((g - 4.0).abs() < 1e-9, "got {g}");
    }
}

//! E9 — the staged compile pipeline: cold compiles vs cached serves over
//! a corpus of catalog-shared documents, plus `query_batch` fan-out.
//!
//! Documents are generated from one shared [`Catalog`], so a single
//! compiled plan (keyed on the simplified AST + backend) is exact for the
//! whole corpus; the experiment measures what the plan cache buys when a
//! query is served many times, and what `std::thread::scope` fan-out buys
//! over a sequential loop.

use crate::experiments::time_us;
use crate::table::{fmt_micros, Table};
use crate::RunCfg;
use treewalk::{Backend, Engine};
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::rng::SplitMix64 as StdRng;
use twx_xtree::{Catalog, Document, NodeId};

/// The query mix: compile cost dominated (`within`), eval dominated
/// (`zigzag`), and a cheap common case.
const QUERIES: [(&str, &str); 3] = [
    ("desc-star", "down*[p0]"),
    ("zigzag", "(down/right | up)*[p0]"),
    ("within", "down*[W(<down*[p1]>)]"),
];

/// Runs E9 and renders its table.
pub fn run(cfg: &RunCfg) -> Table {
    let catalog = Catalog::from_names(["p0", "p1", "p2"]);
    let mut rng = StdRng::seed_from_u64(cfg.seed_for(9));

    let mut table = Table::new(
        "E9: plan cache — cold compile vs cached serve over catalog-shared documents",
        &[
            "backend",
            "query",
            "serves",
            "cold",
            "cached",
            "speedup",
            "cache h/m",
        ],
    );

    for backend in [Backend::Product, Backend::Automaton, Backend::Logic] {
        // The logic backend model-checks an n×n relation per serve, so it
        // gets the E5-scale corpus; the other backends run linear-time
        // evaluators and get documents an order of magnitude larger.
        let (n_docs, doc_size, serves) = match (backend, cfg.quick) {
            (Backend::Logic, true) => (4, 16, 4),
            (Backend::Logic, false) => (8, 48, 16),
            (_, true) => (8, 150, 16),
            (_, false) => (32, 600, 128),
        };
        let docs: Vec<Document> = (0..n_docs)
            .map(|_| random_document_in(Shape::DocumentLike, doc_size, &catalog, &mut rng))
            .collect();
        for (name, q) in QUERIES {
            // cold: a fresh engine (empty cache) for every serve
            let (_, cold_us) = time_us(|| {
                for i in 0..serves {
                    let engine = Engine::with_backend(backend);
                    let p = engine.prepare_in(&catalog, q).expect("query compiles");
                    let d = &docs[i % docs.len()];
                    std::hint::black_box(p.eval(d, d.tree.root()));
                }
            });
            // cached: one engine, every re-prepare after the first hits
            let engine = Engine::with_backend(backend);
            let (_, cached_us) = time_us(|| {
                for i in 0..serves {
                    let p = engine.prepare_in(&catalog, q).expect("query compiles");
                    let d = &docs[i % docs.len()];
                    std::hint::black_box(p.eval(d, d.tree.root()));
                }
            });
            let stats = engine.cache_stats();
            table.row(vec![
                backend.name().into(),
                name.into(),
                serves.to_string(),
                fmt_micros(cold_us),
                fmt_micros(cached_us),
                format!("{:.1}x", cold_us / cached_us.max(0.01)),
                format!("{}/{}", stats.hits, stats.misses),
            ]);
        }

        // fan-out: query_batch across all documents vs a sequential loop
        let engine = Engine::with_backend(backend);
        let jobs: Vec<(&Document, NodeId)> = docs.iter().map(|d| (d, d.tree.root())).collect();
        let q = "(down | right)*[p1]";
        let (seq, seq_us) = time_us(|| {
            jobs.iter()
                .map(|(d, ctx)| engine.query(d, q, *ctx).unwrap())
                .collect::<Vec<_>>()
        });
        let (par, par_us) = time_us(|| engine.query_batch(&jobs, q).unwrap());
        assert_eq!(seq, par, "batch disagrees with sequential");
        table.row(vec![
            backend.name().into(),
            "batch".into(),
            jobs.len().to_string(),
            fmt_micros(seq_us),
            fmt_micros(par_us),
            format!("{:.1}x", seq_us / par_us.max(0.01)),
            "-".into(),
        ]);
    }

    table.note("cold = fresh engine per serve (compile every time); cached = shared plan cache");
    table
        .note("batch rows compare a sequential serve loop to Engine::query_batch (scoped threads)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let t = run(&RunCfg::quick());
        assert_eq!(t.rows.len(), 3 * (QUERIES.len() + 1));
    }
}

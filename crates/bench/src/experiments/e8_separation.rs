//! E8 — the MSO separation direction, with a definability control.
//!
//! The paper proves FO(MTC) ⊊ MSO on trees: some regular tree languages
//! are not definable by any nested tree walking automaton. A lower-bound
//! proof is out of reach of an implementation, but the *landscape* is
//! reproducible, with a built-in control for what search evidence can and
//! cannot show:
//!
//! * **separation target**: the boolean-circuit evaluation language (the
//!   kind powering the Bojańczyk–Colcombet walking lower bounds) — tiny
//!   as a bottom-up automaton, conjectured hard for walkers; random
//!   Regular XPath(W) candidates are tested against it;
//! * **control language**: subtree parity (`even-a`) — *provably*
//!   NTWA-definable via the DFS tour (`twx-twa::dfs::dfs_parity`, whose
//!   Kleene translation gives an explicit Regular XPath(W) definition),
//!   yet random search fails on it just as badly. The control row
//!   demonstrates that "random search found nothing" is evidence of
//!   *search hardness*, not of undefinability — the separation itself is
//!   the paper's theorem;
//! * **constructive row**: the Kleene-translated parity walker is checked
//!   against the bottom-up automaton on the exhaustive corpus, exhibiting
//!   a genuine walking definition of a counting language.

use crate::table::Table;
use crate::RunCfg;
use twx_core::ntwa_to_rpath;
use twx_regxpath::generate::{random_rnode, RGenConfig};
use twx_treeauto::examples::{even_a, true_circuits, CIRCUIT_LABELS};
use twx_treeauto::Nfta;
use twx_twa::dfs::dfs_parity;
use twx_twa::eval::accepts_from;
use twx_xtree::generate::enumerate_trees_up_to;
use twx_xtree::rng::SplitMix64 as StdRng;
use twx_xtree::{Label, Tree};

/// How many corpus trees a candidate root-query classifies correctly.
fn agreement(lang: &Nfta, candidate: &twx_regxpath::RNode, corpus: &[Tree]) -> usize {
    corpus
        .iter()
        .filter(|t| lang.accepts(t) == twx_regxpath::eval_node(t, candidate).contains(t.root()))
        .count()
}

/// Runs E8 and renders its table.
pub fn run(cfg: &RunCfg) -> Table {
    let mut table = Table::new(
        "E8: MSO separation — random search vs the known constructions",
        &[
            "row",
            "corpus trees",
            "candidates",
            "best agreement",
            "exact",
        ],
    );
    let n_candidates = if cfg.quick { 200 } else { 2_000 };
    let mut rng = StdRng::seed_from_u64(cfg.seed_for(8));

    // separation target: circuits
    {
        let lang = true_circuits();
        let corpus = enumerate_trees_up_to(if cfg.quick { 3 } else { 4 }, CIRCUIT_LABELS as usize);
        let cfg = RGenConfig {
            labels: CIRCUIT_LABELS as usize,
            ..RGenConfig::default()
        };
        let mut best = 0usize;
        let mut exact = 0usize;
        for _ in 0..n_candidates {
            let cand = random_rnode(&cfg, 3, &mut rng);
            let agree = agreement(&lang, &cand, &corpus);
            best = best.max(agree);
            if agree == corpus.len() {
                exact += 1;
            }
        }
        table.row(vec![
            "target: true-circuits (search)".into(),
            corpus.len().to_string(),
            n_candidates.to_string(),
            format!("{best}/{}", corpus.len()),
            exact.to_string(),
        ]);
    }

    // control: parity, by search (expected to fail too)...
    let parity_corpus = enumerate_trees_up_to(if cfg.quick { 4 } else { 5 }, 2);
    {
        let lang = even_a();
        let cfg = RGenConfig {
            labels: 2,
            ..RGenConfig::default()
        };
        let mut best = 0usize;
        let mut exact = 0usize;
        for _ in 0..n_candidates {
            let cand = random_rnode(&cfg, 3, &mut rng);
            let agree = agreement(&lang, &cand, &parity_corpus);
            best = best.max(agree);
            if agree == parity_corpus.len() {
                exact += 1;
            }
        }
        table.row(vec![
            "control: even-a (search)".into(),
            parity_corpus.len().to_string(),
            n_candidates.to_string(),
            format!("{best}/{}", parity_corpus.len()),
            exact.to_string(),
        ]);
    }

    // ...and constructively, via the DFS walker + Kleene translation
    {
        let lang = even_a();
        let walker = dfs_parity(Label(0));
        let walker_hits = parity_corpus
            .iter()
            .filter(|t| accepts_from(t, &walker).contains(t.root()) == lang.accepts(t))
            .count();
        table.row(vec![
            "control: even-a (DFS walker)".into(),
            parity_corpus.len().to_string(),
            "1 (constructed)".into(),
            format!("{walker_hits}/{}", parity_corpus.len()),
            if walker_hits == parity_corpus.len() {
                "1"
            } else {
                "0"
            }
            .into(),
        ]);
        let expr = ntwa_to_rpath(&walker);
        // evaluate the Kleene-translated expression as a root query: the
        // relation contains (root, ·) iff the walker accepts from the root
        let expr_hits = parity_corpus
            .iter()
            .filter(|t| {
                let dom = twx_regxpath::eval_rel(t, &expr);
                let accepted = t.nodes().any(|u| dom.get(t.root(), u));
                accepted == lang.accepts(t)
            })
            .count();
        table.row(vec![
            "control: even-a (Kleene expr)".into(),
            parity_corpus.len().to_string(),
            format!("size {}", expr.size()),
            format!("{expr_hits}/{}", parity_corpus.len()),
            if expr_hits == parity_corpus.len() {
                "1"
            } else {
                "0"
            }
            .into(),
        ]);
    }

    table.note("search rows: zero exact matches — search evidence only; the separation is the paper's theorem");
    table.note(
        "control rows: parity IS walking-definable (DFS tour), so search failure ≠ undefinability",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_fails_but_construction_succeeds() {
        let t = run(&RunCfg::quick());
        // search rows find nothing
        assert_eq!(t.rows[0][4], "0");
        assert_eq!(t.rows[1][4], "0");
        // constructive rows are exact
        assert_eq!(t.rows[2][4], "1");
        assert_eq!(t.rows[3][4], "1");
    }
}

//! E7 — closure operations on the automata side.
//!
//! The paper's closure results (Regular XPath(W) closed under path
//! intersection and complementation) rest on automata constructions whose
//! cost is dominated by determinization. This experiment measures that
//! cost concretely on the bottom-up (MSO) side: state counts through
//! determinize / complement / product for a family of languages, plus a
//! correctness sweep of the boolean query algebra on marked automata
//! against the Regular XPath evaluation of the same queries.

use crate::experiments::time_us;
use crate::table::{fmt_micros, Table};
use crate::RunCfg;
use twx_treeauto::examples::{even_a, true_circuits};
use twx_treeauto::marked::MarkedQuery;
use twx_treeauto::xpath_compile::{compile_node_expr, AcceptAt};
use twx_treeauto::Nfta;
use twx_xtree::generate::enumerate_trees_up_to;
use twx_xtree::{Alphabet, Label};

fn measure(table: &mut Table, name: &str, a: &Nfta) {
    let (d, det_us) = time_us(|| a.determinize());
    let (c, comp_us) = time_us(|| a.complement());
    let prod = a.intersect(a);
    table.row(vec![
        name.into(),
        a.n_states.to_string(),
        format!("{} ({})", d.n_states, fmt_micros(det_us)),
        format!("{} ({})", c.n_states, fmt_micros(comp_us)),
        prod.n_states.to_string(),
    ]);
}

/// Runs E7 and renders its table.
pub fn run(cfg: &RunCfg) -> Table {
    let mut table = Table::new(
        "E7: automata closure — state counts through determinize/complement/product",
        &[
            "language",
            "NFTA states",
            "DFTA states (time)",
            "complement states (time)",
            "self-product",
        ],
    );

    measure(&mut table, "some-b", &some_b());
    measure(&mut table, "even-a (parity)", &even_a());
    measure(&mut table, "true-circuits", &true_circuits());
    let mut ab = Alphabet::from_names(["p0", "p1"]);
    let f = twx_corexpath::parser::parse_node_expr("<down+[p0 and <down[p1]>]>", &mut ab).unwrap();
    let xp = compile_node_expr(&f, 2, AcceptAt::SomeNode).unwrap();
    measure(&mut table, "xpath-compiled", &xp);

    // boolean query algebra correctness sweep
    let bound = if cfg.quick { 3 } else { 4 };
    let qa = MarkedQuery::label_query(2, Label(0));
    let qb = MarkedQuery::label_query(2, Label(1));
    let not_a = qa.negate();
    let a_and_b = qa.intersect(&qb);
    let a_or_b = qa.union(&qb);
    let mut checks = 0usize;
    let mut failures = 0usize;
    for t in enumerate_trees_up_to(bound, 2) {
        let sa = qa.select(&t);
        let sb = qb.select(&t);
        // ¬a
        let mut ca = sa.clone();
        ca.complement();
        checks += 1;
        if not_a.select(&t) != ca {
            failures += 1;
        }
        // a ∧ b, a ∨ b
        let mut iab = sa.clone();
        iab.intersect_with(&sb);
        checks += 1;
        if a_and_b.select(&t) != iab {
            failures += 1;
        }
        let mut uab = sa.clone();
        uab.union_with(&sb);
        checks += 1;
        if a_or_b.select(&t) != uab {
            failures += 1;
        }
    }
    table.row(vec![
        "marked-query algebra".into(),
        format!("{checks} checks"),
        format!("{failures} failures"),
        "-".into(),
        "-".into(),
    ]);
    table.note("determinization is the exponential step; complement = determinize + flip");
    table.note("expected: zero failures in the boolean query algebra sweep");
    table
}

/// The "some node is labelled b" NFTA over a two-letter alphabet.
fn some_b() -> Nfta {
    use twx_treeauto::Rule;
    let mut rules = Vec::new();
    for (lab, self_has) in [(0u32, false), (1u32, true)] {
        for left in [None, Some(0), Some(1)] {
            for right in [None, Some(0), Some(1)] {
                let has = self_has || left == Some(1) || right == Some(1);
                rules.push(Rule {
                    left,
                    right,
                    label: Label(lab),
                    state: u32::from(has),
                });
            }
        }
    }
    Nfta {
        n_states: 2,
        n_labels: 2,
        rules,
        finals: vec![1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algebra_sweep_is_clean() {
        let t = run(&RunCfg::quick());
        let algebra_row = t.rows.last().unwrap();
        assert_eq!(algebra_row[2], "0 failures");
    }
}

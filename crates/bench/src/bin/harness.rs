//! The experiment harness: regenerates every table of `EXPERIMENTS.md`
//! and writes a machine-readable `BENCH_HARNESS.json`.
//!
//! ```sh
//! cargo run --release -p twx-bench --bin harness              # full run
//! cargo run --release -p twx-bench --bin harness -- --quick   # smaller sizes
//! cargo run --release -p twx-bench --bin harness -- e3 e9     # selected
//! cargo run --release -p twx-bench --bin harness -- --seed 7  # reseed
//! cargo run --release -p twx-bench --bin harness -- --json out.json
//! ```
//!
//! The JSON export carries every table (title/headers/rows/notes), the
//! run configuration, and the EXPLAIN profiles of the quickstart query
//! on all four engine backends.

use treewalk::{Backend, Engine};
use twx_bench::{experiments, RunCfg, Table};
use twx_obs::json::Json;
use twx_xtree::parse::parse_xml;

type Runner = fn(&RunCfg) -> Table;

struct Args {
    cfg: RunCfg,
    json_path: String,
    selected: Vec<String>,
}

fn parse_args() -> Args {
    let mut cfg = RunCfg::default();
    let mut json_path = "BENCH_HARNESS.json".to_string();
    let mut selected = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => cfg.quick = true,
            "--seed" => {
                let v = it.next().unwrap_or_else(|| die("--seed needs a value"));
                cfg.seed = v.parse().unwrap_or_else(|_| die("--seed must be a u64"));
            }
            "--json" => {
                json_path = it.next().unwrap_or_else(|| die("--json needs a path"));
            }
            other if other.starts_with("--") => die(&format!("unknown flag {other}")),
            other => selected.push(other.to_string()),
        }
    }
    Args {
        cfg,
        json_path,
        selected,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("harness: {msg}");
    eprintln!("usage: harness [--quick] [--seed <u64>] [--json <path>] [e1 .. e14]");
    std::process::exit(2)
}

/// EXPLAIN the quickstart query on each backend; the four profiles land
/// in the JSON export so runs can be compared structurally. The document
/// is immutable — queries resolve against its alphabet without interning.
/// The second return value is the serve-side plan-cache statistics
/// (explain twice per backend: one miss, one hit).
fn quickstart_profiles() -> (Vec<Json>, Json) {
    const QUERY: &str = "down*[c]";
    let doc = parse_xml("<a><b><c/></b><c><b/></c></a>").expect("quickstart doc");
    let root = doc.tree.root();
    let mut out = Vec::new();
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut evictions = 0u64;
    for backend in [
        Backend::Product,
        Backend::Automaton,
        Backend::Logic,
        Backend::Vm,
    ] {
        let engine = Engine::with_backend(backend);
        let profile = engine.explain(&doc, QUERY, root).expect("quickstart query");
        let _served_again = engine.explain(&doc, QUERY, root).expect("quickstart query");
        println!("{profile}");
        out.push(profile.to_json());
        let stats = engine.cache_stats();
        hits += stats.hits;
        misses += stats.misses;
        evictions += stats.evictions;
    }
    let cache = Json::obj()
        .field("hits", hits)
        .field("misses", misses)
        .field("evictions", evictions);
    (out, cache)
}

fn main() {
    let args = parse_args();
    let runners: [(&str, Runner); 9] = [
        ("e1", experiments::e1_core_eval::run),
        ("e2", experiments::e2_regxpath_eval::run),
        ("e3", experiments::e3_translations::run),
        ("e4", experiments::e4_triangle::run),
        ("e5", experiments::e5_logic_cost::run),
        ("e6", experiments::e6_satisfiability::run),
        ("e7", experiments::e7_closure::run),
        ("e8", experiments::e8_separation::run),
        ("e9", experiments::e9_plan_cache::run),
    ];

    // experiments with a structured summary exported as a top-level
    // field (per-shard serving stats for e10, live-corpus cache stats
    // for e11, durability throughput for e13, strong-scaling curve for
    // e14) run outside the plain-table registry
    type FullRunner = fn(&RunCfg) -> (Table, Json);
    let full_runners: [(&str, FullRunner); 5] = [
        ("e10", experiments::e10_corpus_serve::run_full),
        ("e11", experiments::e11_live_corpus::run_full),
        ("e12", experiments::e12_vm::run_full),
        ("e13", experiments::e13_durability::run_full),
        ("e14", experiments::e14_scaling::run_full),
    ];

    for sel in &args.selected {
        if !runners.iter().any(|(id, _)| id == sel) && !full_runners.iter().any(|(id, _)| id == sel)
        {
            die(&format!("unknown experiment id {sel}"));
        }
    }

    println!(
        "treewalk experiment harness ({} mode, seed {})\n",
        if args.cfg.quick { "quick" } else { "full" },
        args.cfg.seed,
    );

    let mut exported = Vec::new();
    for (id, run) in runners {
        if !args.selected.is_empty() && !args.selected.iter().any(|s| s == id) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let table = run(&args.cfg);
        let elapsed_us = t0.elapsed().as_secs_f64() * 1e6;
        println!("{}", table.render());
        println!("  [{id} completed in {:.2?}]\n", t0.elapsed());
        exported.push(
            Json::obj()
                .field("id", id)
                .field("elapsed_us", elapsed_us)
                .field("table", table.to_json()),
        );
    }

    let mut summaries: Vec<(&str, Json)> = Vec::new();
    for (id, run_full) in full_runners {
        let mut summary = Json::Null;
        if args.selected.is_empty() || args.selected.iter().any(|s| s == id) {
            let t0 = std::time::Instant::now();
            let (table, s) = run_full(&args.cfg);
            let elapsed_us = t0.elapsed().as_secs_f64() * 1e6;
            println!("{}", table.render());
            println!("  [{id} completed in {:.2?}]\n", t0.elapsed());
            exported.push(
                Json::obj()
                    .field("id", id)
                    .field("elapsed_us", elapsed_us)
                    .field("table", table.to_json()),
            );
            summary = s;
        }
        summaries.push((id, summary));
    }

    let (profiles, plan_cache) = quickstart_profiles();
    let mut doc = Json::obj()
        .field("schema", "twx-bench/1")
        .field("mode", if args.cfg.quick { "quick" } else { "full" })
        .field("seed", args.cfg.seed)
        .field("obs_enabled", twx_obs::ENABLED)
        .field("experiments", Json::Arr(exported));
    for (id, summary) in summaries {
        doc = doc.field(id, summary);
    }
    let doc = doc
        .field("quickstart_profiles", Json::Arr(profiles))
        .field("plan_cache", plan_cache)
        // every histogram the run registered process-wide (engine
        // per-backend eval series, service latency series, …)
        .field(
            "histograms",
            twx_obs::metrics::global().histograms_to_json(),
        );
    let rendered = doc.render();
    // the export must always be machine-readable: re-parse before writing
    twx_obs::json::parse(&rendered).expect("harness JSON round-trips");
    std::fs::write(&args.json_path, &rendered)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", args.json_path)));
    println!("wrote {}", args.json_path);
}

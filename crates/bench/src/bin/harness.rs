//! The experiment harness: regenerates every table of `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p twx-bench --bin harness            # full run
//! cargo run --release -p twx-bench --bin harness -- --quick # smaller sizes
//! cargo run --release -p twx-bench --bin harness -- e3 e4   # selected
//! ```

use twx_bench::experiments;
use twx_bench::Table;

type Runner = fn(bool) -> Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    let runners: [(&str, Runner); 8] = [
        ("e1", experiments::e1_core_eval::run),
        ("e2", experiments::e2_regxpath_eval::run),
        ("e3", experiments::e3_translations::run),
        ("e4", experiments::e4_triangle::run),
        ("e5", experiments::e5_logic_cost::run),
        ("e6", experiments::e6_satisfiability::run),
        ("e7", experiments::e7_closure::run),
        ("e8", experiments::e8_separation::run),
    ];

    println!(
        "treewalk experiment harness ({} mode)\n",
        if quick { "quick" } else { "full" }
    );
    for (id, run) in runners {
        if !selected.is_empty() && !selected.contains(&id) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let table = run(quick);
        println!("{}", table.render());
        println!("  [{id} completed in {:.2?}]\n", t0.elapsed());
    }
}

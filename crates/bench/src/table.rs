//! Minimal fixed-width table rendering for the experiment harness.

use std::fmt::Write;

/// A printable experiment table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (experiment id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// Free-text notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders the table as a JSON object (title, headers, rows, notes).
    pub fn to_json(&self) -> twx_obs::json::Json {
        use twx_obs::json::Json;
        let headers: Vec<Json> = self
            .headers
            .iter()
            .map(|h| Json::from(h.as_str()))
            .collect();
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| Json::Arr(r.iter().map(|c| Json::from(c.as_str())).collect()))
            .collect();
        let notes: Vec<Json> = self.notes.iter().map(|n| Json::from(n.as_str())).collect();
        Json::obj()
            .field("title", self.title.as_str())
            .field("headers", Json::Arr(headers))
            .field("rows", Json::Arr(rows))
            .field("notes", Json::Arr(notes))
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "── {} ", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("  ");
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:<w$}  ", c, w = widths[i]);
            }
            let _ = writeln!(out, "{}", s.trim_end());
        };
        line(&mut out, &self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut out, &sep);
        for row in &self.rows {
            line(&mut out, row);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_micros(us: f64) -> String {
    if us >= 1_000_000.0 {
        format!("{:.2}s", us / 1_000_000.0)
    } else if us >= 1_000.0 {
        format!("{:.1}ms", us / 1_000.0)
    } else {
        format!("{us:.1}µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["a", "bbbb"]);
        t.row(vec!["xx".into(), "y".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("── T"));
        assert!(s.contains("a   bbbb"));
        assert!(s.contains("xx  y"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn duration_units() {
        assert_eq!(fmt_micros(12.34), "12.3µs");
        assert_eq!(fmt_micros(12345.0), "12.3ms");
        assert_eq!(fmt_micros(2_500_000.0), "2.50s");
    }
}

//! # twx-bench — the experiment harness
//!
//! The paper is pure theory — it has no tables or figures — so, per the
//! substitution recorded in `DESIGN.md`, this crate defines and runs the
//! synthetic experimental programme E1–E12 of `EXPERIMENTS.md`:
//!
//! * E1/E2 — evaluation-complexity measurements (linear/product evaluators
//!   vs naive relational baselines);
//! * E3 — translation blow-ups across the equivalence triangle;
//! * E4 — exhaustive validation of the triangle (the main theorem);
//! * E5 — cost of the logic encoding vs direct query evaluation;
//! * E6 — exact vs bounded satisfiability decision procedures;
//! * E7 — automata closure operations (determinization/complement blowup);
//! * E8 — the MSO separation targets (regular languages vs bounded search
//!   over Regular XPath(W) candidates);
//! * E9 — the staged compile pipeline: cold compiles vs plan-cache serves
//!   over catalog-shared documents, and `query_batch` thread fan-out;
//! * E10 — the serving layer: corpus-query throughput and p50/p95/p99
//!   latency by shard count, plus admission-control saturation;
//! * E11 — the live corpus: a mixed query/edit workload through the
//!   result cache vs re-evaluation from scratch, plus an
//!   invalidation-precision probe;
//! * E12 — the bytecode VM backend vs the product backend on
//!   deep/starred queries, cold and plan-cache-hot.
//!
//! Each experiment is a function `fn(&RunCfg) -> Table`; the `harness`
//! binary prints them all and exports every table plus per-backend
//! EXPLAIN profiles to `BENCH_HARNESS.json`. Runs are fully seeded
//! (`--seed`), so any table is reproducible bit-for-bit.

pub mod experiments;
pub mod table;

pub use table::Table;

/// Run configuration shared by every experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunCfg {
    /// Shrink instance sizes for CI-speed runs.
    pub quick: bool,
    /// Base seed; each experiment derives its own stream from it, so the
    /// default (`0`) reproduces the historical per-experiment seeds 1–8.
    pub seed: u64,
}

impl RunCfg {
    /// The quick (CI) configuration with the default seed.
    pub fn quick() -> Self {
        RunCfg {
            quick: true,
            seed: 0,
        }
    }

    /// The PRNG seed for experiment number `k` under this base seed.
    pub fn seed_for(&self, k: u64) -> u64 {
        self.seed.wrapping_add(k)
    }
}

/// Workload description shared by several experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Document-like XML trees (bounded depth, Zipf labels).
    Document,
    /// Deep, narrow trees.
    Deep,
    /// Shallow, wide trees.
    Wide,
}

impl Workload {
    /// All workloads.
    pub const ALL: [Workload; 3] = [Workload::Document, Workload::Deep, Workload::Wide];

    /// The generator shape for this workload.
    pub fn shape(self) -> twx_xtree::generate::Shape {
        use twx_xtree::generate::Shape;
        match self {
            Workload::Document => Shape::DocumentLike,
            Workload::Deep => Shape::Deep(2),
            Workload::Wide => Shape::Wide,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Document => "document",
            Workload::Deep => "deep",
            Workload::Wide => "wide",
        }
    }
}

//! # twx-bench — the experiment harness
//!
//! The paper is pure theory — it has no tables or figures — so, per the
//! substitution recorded in `DESIGN.md`, this crate defines and runs the
//! synthetic experimental programme E1–E8 of `EXPERIMENTS.md`:
//!
//! * E1/E2 — evaluation-complexity measurements (linear/product evaluators
//!   vs naive relational baselines);
//! * E3 — translation blow-ups across the equivalence triangle;
//! * E4 — exhaustive validation of the triangle (the main theorem);
//! * E5 — cost of the logic encoding vs direct query evaluation;
//! * E6 — exact vs bounded satisfiability decision procedures;
//! * E7 — automata closure operations (determinization/complement blowup);
//! * E8 — the MSO separation targets (regular languages vs bounded search
//!   over Regular XPath(W) candidates).
//!
//! Each experiment is a function returning a [`Table`]; the `harness`
//! binary prints them all, and the criterion benches under `benches/`
//! re-measure the timing-sensitive ones with statistical rigour.

pub mod experiments;
pub mod table;

pub use table::Table;

/// Workload description shared by several experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Document-like XML trees (bounded depth, Zipf labels).
    Document,
    /// Deep, narrow trees.
    Deep,
    /// Shallow, wide trees.
    Wide,
}

impl Workload {
    /// All workloads.
    pub const ALL: [Workload; 3] = [Workload::Document, Workload::Deep, Workload::Wide];

    /// The generator shape for this workload.
    pub fn shape(self) -> twx_xtree::generate::Shape {
        use twx_xtree::generate::Shape;
        match self {
            Workload::Document => Shape::DocumentLike,
            Workload::Deep => Shape::Deep(2),
            Workload::Wide => Shape::Wide,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Document => "document",
            Workload::Deep => "deep",
            Workload::Wide => "wide",
        }
    }
}

//! The automaton data model.

use twx_xtree::{Label, NodeId, Tree};

/// A walking move.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Move {
    /// Stay at the current node (an ε-move when the guard is empty).
    Stay,
    /// Move to the parent.
    Up,
    /// Move to some child (nondeterministic over all children).
    AnyChild,
    /// Move to the first (leftmost) child.
    FirstChild,
    /// Move to the last (rightmost) child.
    LastChild,
    /// Move to the next sibling.
    NextSib,
    /// Move to the previous sibling.
    PrevSib,
}

impl Move {
    /// All seven moves.
    pub const ALL: [Move; 7] = [
        Move::Stay,
        Move::Up,
        Move::AnyChild,
        Move::FirstChild,
        Move::LastChild,
        Move::NextSib,
        Move::PrevSib,
    ];

    /// Applies the move at `v`, yielding each possible destination.
    pub fn apply<F: FnMut(NodeId)>(self, t: &Tree, v: NodeId, mut f: F) {
        match self {
            Move::Stay => f(v),
            Move::Up => {
                if let Some(p) = t.parent(v) {
                    f(p);
                }
            }
            Move::AnyChild => {
                let mut c = t.first_child(v);
                while let Some(u) = c {
                    f(u);
                    c = t.next_sibling(u);
                }
            }
            Move::FirstChild => {
                if let Some(c) = t.first_child(v) {
                    f(c);
                }
            }
            Move::LastChild => {
                if let Some(c) = t.last_child(v) {
                    f(c);
                }
            }
            Move::NextSib => {
                if let Some(s) = t.next_sibling(v) {
                    f(s);
                }
            }
            Move::PrevSib => {
                if let Some(s) = t.prev_sibling(v) {
                    f(s);
                }
            }
        }
    }

    /// Applies the move backwards: yields each `u` such that the move taken
    /// at `u` can land on `v`.
    pub fn apply_reverse<F: FnMut(NodeId)>(self, t: &Tree, v: NodeId, mut f: F) {
        match self {
            Move::Stay => f(v),
            Move::Up => {
                // u is any child of v
                let mut c = t.first_child(v);
                while let Some(u) = c {
                    f(u);
                    c = t.next_sibling(u);
                }
            }
            Move::AnyChild => {
                if let Some(p) = t.parent(v) {
                    f(p);
                }
            }
            Move::FirstChild => {
                if t.is_first_sibling(v) {
                    if let Some(p) = t.parent(v) {
                        f(p);
                    }
                }
            }
            Move::LastChild => {
                if t.is_last_sibling(v) {
                    if let Some(p) = t.parent(v) {
                        f(p);
                    }
                }
            }
            Move::NextSib => {
                if let Some(s) = t.prev_sibling(v) {
                    f(s);
                }
            }
            Move::PrevSib => {
                if let Some(s) = t.next_sibling(v) {
                    f(s);
                }
            }
        }
    }
}

/// The scope of a nested invocation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scope {
    /// The sub-automaton walks the whole tree (implements XPath `⟨A⟩`
    /// guards with arbitrary axes).
    Global,
    /// The sub-automaton walks only the subtree rooted at the current node
    /// (the paper's subtree test; implements the `W` operator).
    Subtree,
}

/// An atom of a transition guard. A guard is a conjunction of atoms.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TestAtom {
    /// The node carries this label.
    Label(Label),
    /// The node does not carry this label.
    NotLabel(Label),
    /// The node is the root / is not the root.
    Root(bool),
    /// The node is a leaf / is not a leaf.
    Leaf(bool),
    /// The node is a first sibling / is not.
    First(bool),
    /// The node is a last sibling / is not.
    Last(bool),
    /// Invocation of a nested sub-automaton (index into [`Ntwa::subs`]):
    /// holds iff the sub-automaton, started here, has an accepting run
    /// (negated if `negated`). `scope` selects whether the run may roam
    /// the whole tree or is confined to the current node's subtree.
    Nested {
        /// Index of the sub-automaton.
        automaton: u32,
        /// Whether the invocation is negated.
        negated: bool,
        /// Whether the invoked run walks the whole tree or only the
        /// current subtree.
        scope: Scope,
    },
}

impl TestAtom {
    /// Evaluates a *local* atom at `v`.
    ///
    /// # Panics
    /// On a `Nested` atom — those are resolved by the evaluator against
    /// precomputed acceptance sets.
    pub fn eval_local(&self, t: &Tree, v: NodeId) -> bool {
        match self {
            TestAtom::Label(l) => t.label(v) == *l,
            TestAtom::NotLabel(l) => t.label(v) != *l,
            TestAtom::Root(b) => t.is_root(v) == *b,
            TestAtom::Leaf(b) => t.is_leaf(v) == *b,
            TestAtom::First(b) => t.is_first_sibling(v) == *b,
            TestAtom::Last(b) => t.is_last_sibling(v) == *b,
            TestAtom::Nested { .. } => panic!("nested atom evaluated locally"),
        }
    }
}

/// A guarded transition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transition {
    /// Source state.
    pub from: u32,
    /// Conjunction of guard atoms (empty = unconditionally enabled).
    pub guard: Vec<TestAtom>,
    /// The move performed.
    pub mv: Move,
    /// Target state.
    pub to: u32,
}

/// A (flat) tree walking automaton.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Twa {
    /// Number of states.
    pub n_states: u32,
    /// Initial state.
    pub initial: u32,
    /// Accepting states.
    pub accepting: Vec<u32>,
    /// The transition table.
    pub transitions: Vec<Transition>,
}

impl Twa {
    /// A two-state automaton performing a single guarded move.
    pub fn single_move(guard: Vec<TestAtom>, mv: Move) -> Twa {
        Twa {
            n_states: 2,
            initial: 0,
            accepting: vec![1],
            transitions: vec![Transition {
                from: 0,
                guard,
                mv,
                to: 1,
            }],
        }
    }

    /// Whether `q` is accepting.
    pub fn is_accepting(&self, q: u32) -> bool {
        self.accepting.contains(&q)
    }

    /// Checks internal consistency (state indices in range).
    pub fn validate(&self) -> Result<(), String> {
        if self.initial >= self.n_states {
            return Err("initial state out of range".into());
        }
        for &q in &self.accepting {
            if q >= self.n_states {
                return Err(format!("accepting state {q} out of range"));
            }
        }
        for (i, tr) in self.transitions.iter().enumerate() {
            if tr.from >= self.n_states || tr.to >= self.n_states {
                return Err(format!("transition {i} has out-of-range state"));
            }
        }
        Ok(())
    }
}

/// A nested tree walking automaton: a top-level TWA plus the sub-automata
/// its `Nested` guard atoms refer to (each itself an NTWA of strictly
/// smaller nesting depth).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ntwa {
    /// The top-level walking automaton.
    pub top: Twa,
    /// Sub-automata referenced by `TestAtom::Nested { automaton, .. }`.
    pub subs: Vec<Ntwa>,
}

impl Ntwa {
    /// Wraps a flat TWA (no nesting).
    pub fn flat(top: Twa) -> Ntwa {
        Ntwa {
            top,
            subs: Vec::new(),
        }
    }

    /// Nesting depth (a flat automaton has depth 0).
    pub fn depth(&self) -> usize {
        self.subs.iter().map(|s| 1 + s.depth()).max().unwrap_or(0)
    }

    /// Total number of states including all sub-automata (the size measure
    /// used in the translation-blow-up experiment E3).
    pub fn total_states(&self) -> usize {
        self.top.n_states as usize + self.subs.iter().map(Ntwa::total_states).sum::<usize>()
    }

    /// Total number of transitions including sub-automata.
    pub fn total_transitions(&self) -> usize {
        self.top.transitions.len() + self.subs.iter().map(Ntwa::total_transitions).sum::<usize>()
    }

    /// Checks consistency, including that nested references are in range.
    pub fn validate(&self) -> Result<(), String> {
        self.top.validate()?;
        for tr in &self.top.transitions {
            for atom in &tr.guard {
                if let TestAtom::Nested { automaton, .. } = atom {
                    if *automaton as usize >= self.subs.len() {
                        return Err(format!("nested reference {automaton} out of range"));
                    }
                }
            }
        }
        for s in &self.subs {
            s.validate()?;
        }
        Ok(())
    }

    /// Whether the automaton is syntactically deterministic: no state has
    /// two transitions whose guards can be satisfied simultaneously
    /// (conservative check: guards are deemed compatible unless they
    /// contain directly contradicting local atoms).
    pub fn is_deterministic(&self) -> bool {
        for q in 0..self.top.n_states {
            let outs: Vec<&Transition> = self
                .top
                .transitions
                .iter()
                .filter(|t| t.from == q)
                .collect();
            for i in 0..outs.len() {
                for j in i + 1..outs.len() {
                    if guards_compatible(&outs[i].guard, &outs[j].guard) {
                        return false;
                    }
                }
            }
        }
        self.subs.iter().all(Ntwa::is_deterministic)
    }
}

/// Conservative guard-compatibility: `false` only when the two guards
/// contain directly contradicting atoms.
fn guards_compatible(a: &[TestAtom], b: &[TestAtom]) -> bool {
    for x in a {
        for y in b {
            let contradicts = match (x, y) {
                (TestAtom::Label(l), TestAtom::NotLabel(m)) if l == m => true,
                (TestAtom::NotLabel(l), TestAtom::Label(m)) if l == m => true,
                (TestAtom::Label(l), TestAtom::Label(m)) if l != m => true,
                (TestAtom::Root(p), TestAtom::Root(q)) if p != q => true,
                (TestAtom::Leaf(p), TestAtom::Leaf(q)) if p != q => true,
                (TestAtom::First(p), TestAtom::First(q)) if p != q => true,
                (TestAtom::Last(p), TestAtom::Last(q)) if p != q => true,
                (
                    TestAtom::Nested {
                        automaton: i,
                        negated: p,
                        scope: si,
                    },
                    TestAtom::Nested {
                        automaton: j,
                        negated: q,
                        scope: sj,
                    },
                ) if i == j && si == sj && p != q => true,
                _ => false,
            };
            if contradicts {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::parse::parse_sexp;

    #[test]
    fn moves_and_reverses_are_converse() {
        let t = parse_sexp("(a (b d e) (c f))").unwrap().tree;
        for mv in Move::ALL {
            for v in t.nodes() {
                let mut forward = Vec::new();
                mv.apply(&t, v, |u| forward.push(u));
                for u in forward {
                    let mut back = Vec::new();
                    mv.apply_reverse(&t, u, |w| back.push(w));
                    assert!(back.contains(&v), "{mv:?}: {v:?}->{u:?} not reversed");
                }
                // and conversely
                let mut back = Vec::new();
                mv.apply_reverse(&t, v, |w| back.push(w));
                for w in back {
                    let mut fwd = Vec::new();
                    mv.apply(&t, w, |u| fwd.push(u));
                    assert!(fwd.contains(&v), "{mv:?}: reverse {v:?}->{w:?} bogus");
                }
            }
        }
    }

    #[test]
    fn local_atoms() {
        let t = parse_sexp("(a (b d e) (c f))").unwrap().tree;
        let b = NodeId(1);
        assert!(TestAtom::Label(Label(1)).eval_local(&t, b));
        assert!(TestAtom::NotLabel(Label(0)).eval_local(&t, b));
        assert!(TestAtom::Root(false).eval_local(&t, b));
        assert!(TestAtom::Root(true).eval_local(&t, NodeId(0)));
        assert!(TestAtom::Leaf(true).eval_local(&t, NodeId(2)));
        assert!(TestAtom::First(true).eval_local(&t, NodeId(2)));
        assert!(TestAtom::Last(false).eval_local(&t, NodeId(2)));
        assert!(TestAtom::Last(true).eval_local(&t, NodeId(3)));
    }

    #[test]
    fn validation() {
        let mut a = Twa::single_move(vec![], Move::Up);
        assert!(a.validate().is_ok());
        a.accepting = vec![7];
        assert!(a.validate().is_err());
        let n = Ntwa {
            top: Twa::single_move(
                vec![TestAtom::Nested {
                    automaton: 0,
                    negated: false,
                    scope: Scope::Global,
                }],
                Move::Stay,
            ),
            subs: vec![],
        };
        assert!(n.validate().is_err());
    }

    #[test]
    fn determinism_check() {
        let det = Ntwa::flat(Twa {
            n_states: 2,
            initial: 0,
            accepting: vec![1],
            transitions: vec![
                Transition {
                    from: 0,
                    guard: vec![TestAtom::Leaf(true)],
                    mv: Move::Stay,
                    to: 1,
                },
                Transition {
                    from: 0,
                    guard: vec![TestAtom::Leaf(false)],
                    mv: Move::FirstChild,
                    to: 0,
                },
            ],
        });
        assert!(det.is_deterministic());
        let nondet = Ntwa::flat(Twa {
            n_states: 2,
            initial: 0,
            accepting: vec![1],
            transitions: vec![
                Transition {
                    from: 0,
                    guard: vec![],
                    mv: Move::Stay,
                    to: 1,
                },
                Transition {
                    from: 0,
                    guard: vec![],
                    mv: Move::Up,
                    to: 1,
                },
            ],
        });
        assert!(!nondet.is_deterministic());
    }

    #[test]
    fn depth_and_sizes() {
        let leafy = Ntwa::flat(Twa::single_move(vec![TestAtom::Leaf(true)], Move::Stay));
        let outer = Ntwa {
            top: Twa::single_move(
                vec![TestAtom::Nested {
                    automaton: 0,
                    negated: true,
                    scope: Scope::Global,
                }],
                Move::AnyChild,
            ),
            subs: vec![leafy.clone()],
        };
        assert_eq!(leafy.depth(), 0);
        assert_eq!(outer.depth(), 1);
        assert_eq!(outer.total_states(), 4);
        assert_eq!(outer.total_transitions(), 2);
        assert!(outer.validate().is_ok());
    }
}

//! The depth-first tour: the fundamental *deterministic* tree walking
//! construction.
//!
//! A TWA can traverse the whole tree deterministically — descend to first
//! children, then next siblings, climbing when exhausted. The tour is the
//! engine behind many expressiveness results for walking automata: any
//! regular property of the *sequence* of visited nodes becomes
//! TWA-recognisable by running a word automaton over the tour. The classic
//! example implemented here: **subtree parity** ("the number of
//! `a`-labelled nodes is even") is recognised by a four-state walker — a
//! property that looks like it needs counting, yet needs only a DFS with
//! one bit. (This is why parity is *not* a witness for the paper's
//! FO(MTC) ⊊ MSO separation; the boolean-circuit languages are.)

use crate::machine::{Move, Ntwa, TestAtom, Transition, Twa};
use twx_xtree::Label;

/// The plain depth-first tour: starting anywhere, visits the entire
/// subtree of the start node in preorder and returns to it.
///
/// States: 0 = descending (about to visit the current node's subtree),
/// 1 = ascending (subtree done), 2 = done (accepting; the halt is
/// permitted anywhere on the ascent — [`dfs_parity`] shows the guarded
/// variant that halts exactly at the start).
pub fn dfs_tour() -> Ntwa {
    let t = |from: u32, guard: Vec<TestAtom>, mv: Move, to: u32| Transition {
        from,
        guard,
        mv,
        to,
    };
    Ntwa::flat(Twa {
        n_states: 3,
        initial: 0,
        accepting: vec![2],
        transitions: vec![
            // descend into the first child if any
            t(0, vec![TestAtom::Leaf(false)], Move::FirstChild, 0),
            // at a leaf the subtree is done
            t(0, vec![TestAtom::Leaf(true)], Move::Stay, 1),
            // siblings next (but never leave the start's subtree: the
            // ascent stops when we are back where we began — encoded by
            // accepting in state 1 via the ε-move below; the sibling and
            // up moves model the *interior* of the walk)
            t(1, vec![TestAtom::Last(false)], Move::NextSib, 0),
            t(
                1,
                vec![TestAtom::Last(true), TestAtom::Root(false)],
                Move::Up,
                1,
            ),
            t(1, vec![], Move::Stay, 2),
        ],
    })
}

/// The DFS **parity** walker over a binary alphabet: accepts (from the
/// root) exactly the trees with an even number of `counted`-labelled
/// nodes. Four working states = (phase ∈ {descend, ascend}) × (parity
/// bit), plus an accepting halt state; the bit toggles when *leaving* a
/// counted node downward or sideways (each node is left in descend-phase
/// exactly once).
pub fn dfs_parity(counted: Label) -> Ntwa {
    // states: D0=0, D1=1, U0=2, U1=3, ACC=4
    let t = |from: u32, guard: Vec<TestAtom>, mv: Move, to: u32| Transition {
        from,
        guard,
        mv,
        to,
    };
    let mut transitions = Vec::new();
    for b in 0..2u32 {
        let d = b; // D_b
        let u = 2 + b; // U_b
        let flip_d = 1 - b;
        let flip_u = 2 + (1 - b);
        // leaving a node downward: toggle if it carries the counted label
        transitions.push(t(
            d,
            vec![TestAtom::Leaf(false), TestAtom::Label(counted)],
            Move::FirstChild,
            flip_d,
        ));
        transitions.push(t(
            d,
            vec![TestAtom::Leaf(false), TestAtom::NotLabel(counted)],
            Move::FirstChild,
            d,
        ));
        // leaf: account for it and switch to ascend
        transitions.push(t(
            d,
            vec![TestAtom::Leaf(true), TestAtom::Label(counted)],
            Move::Stay,
            flip_u,
        ));
        transitions.push(t(
            d,
            vec![TestAtom::Leaf(true), TestAtom::NotLabel(counted)],
            Move::Stay,
            u,
        ));
        // ascend: next sibling restarts a descent, else climb
        transitions.push(t(u, vec![TestAtom::Last(false)], Move::NextSib, d));
        transitions.push(t(
            u,
            vec![TestAtom::Last(true), TestAtom::Root(false)],
            Move::Up,
            u,
        ));
    }
    // done: back at the root in ascend phase with even parity
    transitions.push(t(2, vec![TestAtom::Root(true)], Move::Stay, 4));
    Ntwa::flat(Twa {
        n_states: 5,
        initial: 0,
        accepting: vec![4],
        transitions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{accepts_from, eval_image};
    use twx_xtree::generate::{enumerate_trees_up_to, random_tree, Shape};
    use twx_xtree::parse::parse_sexp_with;
    use twx_xtree::{Alphabet, NodeSet};

    #[test]
    fn tour_visits_whole_subtree_in_preorder() {
        let mut ab = Alphabet::from_names(["x"]);
        let t = parse_sexp_with("(x (x x (x x)) (x x))", &mut ab).unwrap();
        let tour = dfs_tour();
        assert!(tour.validate().is_ok());
        // (state 1 deliberately branches on the ε halt, so the walker is
        // not syntactically deterministic — no assertion on that here)
        // image from the root passes through every node: check via the
        // intermediate relation (any state) — the accepting halt can
        // happen anywhere on the ascent path, so instead check the walk
        // reaches every node in *some* state by making all states accept.
        let mut all_accept = tour.clone();
        all_accept.top.accepting = vec![0, 1, 2];
        let img = eval_image(&t, &all_accept, &NodeSet::singleton(t.len(), t.root()));
        assert_eq!(img.count(), t.len(), "tour missed nodes: {img:?}");
    }

    #[test]
    fn parity_on_handpicked_trees() {
        let mut ab = Alphabet::from_names(["a", "b"]);
        let walker = dfs_parity(twx_xtree::Label(0));
        let cases = [
            ("(b)", true),
            ("(a)", false),
            ("(a a)", true),
            ("(a b)", false),
            ("(b (a b) a)", true),
            ("(a (a b) a)", false),
            ("(b (a (a (a))) a)", true),
        ];
        for (s, expect) in cases {
            let t = parse_sexp_with(s, &mut ab).unwrap();
            let accepted = accepts_from(&t, &walker).contains(t.root());
            assert_eq!(accepted, expect, "{s}");
        }
    }

    /// The walker recognises exactly the regular language `even-a` — a
    /// walking automaton matching a bottom-up automaton, exhaustively.
    #[test]
    fn parity_matches_bottom_up_automaton() {
        let walker = dfs_parity(twx_xtree::Label(0));
        for t in enumerate_trees_up_to(6, 2) {
            let walked = accepts_from(&t, &walker).contains(t.root());
            // reference: count directly
            let count = t
                .nodes()
                .filter(|&v| t.label(v) == twx_xtree::Label(0))
                .count();
            assert_eq!(walked, count % 2 == 0, "{t:?}");
        }
        // and on bigger random trees
        use twx_xtree::rng::SplitMix64 as StdRng;
        let mut rng = StdRng::seed_from_u64(60);
        for _ in 0..20 {
            let t = random_tree(Shape::Recursive, 60, 2, &mut rng);
            let walked = accepts_from(&t, &walker).contains(t.root());
            let count = t
                .nodes()
                .filter(|&v| t.label(v) == twx_xtree::Label(0))
                .count();
            assert_eq!(walked, count % 2 == 0);
        }
    }

    #[test]
    fn parity_walker_is_deterministic_in_working_states() {
        let walker = dfs_parity(twx_xtree::Label(0));
        // The only branching is the halt transition at the root in U0 —
        // working transitions partition on (leaf?, label, last?, root?).
        // The conservative syntactic check cannot see that U0's halt
        // overlaps the climb guard, so check per-state out-degree bounds.
        for q in 0..4 {
            let outs = walker
                .top
                .transitions
                .iter()
                .filter(|tr| tr.from == q)
                .count();
            assert!(outs <= 7, "state {q} has {outs} transitions");
        }
        assert!(walker.validate().is_ok());
    }
}

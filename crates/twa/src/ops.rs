//! Closure constructions on nested tree walking automata.
//!
//! NTWAs (as binary-relation recognisers) are closed under union,
//! composition and iteration by direct product-free constructions — the
//! automata-side counterparts of `∪`, `/` and `*` used by the Kleene and
//! Thompson translations in `twx-core`.

use crate::machine::{Move, Ntwa, TestAtom, Transition, Twa};

/// Relabels states of `b` by `offset` and remaps its nested references by
/// `sub_offset`.
fn shift(b: &Twa, offset: u32, sub_offset: u32) -> Vec<Transition> {
    b.transitions
        .iter()
        .map(|tr| Transition {
            from: tr.from + offset,
            to: tr.to + offset,
            mv: tr.mv,
            guard: tr
                .guard
                .iter()
                .map(|a| match a {
                    TestAtom::Nested {
                        automaton,
                        negated,
                        scope,
                    } => TestAtom::Nested {
                        automaton: automaton + sub_offset,
                        negated: *negated,
                        scope: *scope,
                    },
                    other => other.clone(),
                })
                .collect(),
        })
        .collect()
}

/// `[[union(a, b)]] = [[a]] ∪ [[b]]`.
pub fn union(a: &Ntwa, b: &Ntwa) -> Ntwa {
    // states: 0 = new initial, then a's states, then b's states, then final
    let oa = 1;
    let ob = 1 + a.top.n_states;
    let fin = 1 + a.top.n_states + b.top.n_states;
    let sub_ob = a.subs.len() as u32;
    let mut transitions = vec![
        Transition {
            from: 0,
            guard: vec![],
            mv: Move::Stay,
            to: a.top.initial + oa,
        },
        Transition {
            from: 0,
            guard: vec![],
            mv: Move::Stay,
            to: b.top.initial + ob,
        },
    ];
    transitions.extend(shift(&a.top, oa, 0));
    transitions.extend(shift(&b.top, ob, sub_ob));
    for &q in &a.top.accepting {
        transitions.push(Transition {
            from: q + oa,
            guard: vec![],
            mv: Move::Stay,
            to: fin,
        });
    }
    for &q in &b.top.accepting {
        transitions.push(Transition {
            from: q + ob,
            guard: vec![],
            mv: Move::Stay,
            to: fin,
        });
    }
    let mut subs = a.subs.clone();
    subs.extend(b.subs.iter().cloned());
    Ntwa {
        top: Twa {
            n_states: fin + 1,
            initial: 0,
            accepting: vec![fin],
            transitions,
        },
        subs,
    }
}

/// `[[concat(a, b)]] = [[a]] ; [[b]]` (relational composition: run `a`,
/// then from its halt node run `b`).
pub fn concat(a: &Ntwa, b: &Ntwa) -> Ntwa {
    let oa = 0;
    let ob = a.top.n_states;
    let sub_ob = a.subs.len() as u32;
    let mut transitions = shift(&a.top, oa, 0);
    transitions.extend(shift(&b.top, ob, sub_ob));
    for &q in &a.top.accepting {
        transitions.push(Transition {
            from: q + oa,
            guard: vec![],
            mv: Move::Stay,
            to: b.top.initial + ob,
        });
    }
    let mut subs = a.subs.clone();
    subs.extend(b.subs.iter().cloned());
    Ntwa {
        top: Twa {
            n_states: a.top.n_states + b.top.n_states,
            initial: a.top.initial,
            accepting: b.top.accepting.iter().map(|&q| q + ob).collect(),
            transitions,
        },
        subs,
    }
}

/// `[[star(a)]] = [[a]]*` (reflexive-transitive closure).
pub fn star(a: &Ntwa) -> Ntwa {
    // fresh initial-and-accepting state s; s →ε init; accepting →ε s
    let s = a.top.n_states;
    let mut transitions = shift(&a.top, 0, 0);
    transitions.push(Transition {
        from: s,
        guard: vec![],
        mv: Move::Stay,
        to: a.top.initial,
    });
    for &q in &a.top.accepting {
        transitions.push(Transition {
            from: q,
            guard: vec![],
            mv: Move::Stay,
            to: s,
        });
    }
    Ntwa {
        top: Twa {
            n_states: s + 1,
            initial: s,
            accepting: vec![s],
            transitions,
        },
        subs: a.subs.clone(),
    }
}

/// The automaton of the identity relation guarded by a conjunction of
/// atoms (the `?φ` diagonal for local φ).
pub fn test(guard: Vec<TestAtom>) -> Ntwa {
    Ntwa::flat(Twa::single_move(guard, Move::Stay))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_rel;
    use crate::machine::Scope;
    use twx_xtree::parse::parse_sexp;
    use twx_xtree::Label;

    fn step(mv: Move) -> Ntwa {
        Ntwa::flat(Twa::single_move(vec![], mv))
    }

    #[test]
    fn union_is_relation_union() {
        let t = parse_sexp("(a (b d e) (c f))").unwrap().tree;
        let u = union(&step(Move::AnyChild), &step(Move::Up));
        let rel = eval_rel(&t, &u);
        let mut expect = eval_rel(&t, &step(Move::AnyChild));
        expect.union_with(&eval_rel(&t, &step(Move::Up)));
        assert_eq!(rel, expect);
        assert!(u.validate().is_ok());
    }

    #[test]
    fn concat_is_composition() {
        let t = parse_sexp("(a (b d e) (c f))").unwrap().tree;
        let c = concat(&step(Move::AnyChild), &step(Move::NextSib));
        let rel = eval_rel(&t, &c);
        let expect =
            eval_rel(&t, &step(Move::AnyChild)).compose(&eval_rel(&t, &step(Move::NextSib)));
        assert_eq!(rel, expect);
    }

    #[test]
    fn star_is_closure() {
        let t = parse_sexp("(a (b d e) (c f))").unwrap().tree;
        let s = star(&step(Move::AnyChild));
        let rel = eval_rel(&t, &s);
        let expect = eval_rel(&t, &step(Move::AnyChild)).star();
        assert_eq!(rel, expect);
    }

    #[test]
    fn nested_subs_survive_combination() {
        let leafy = test(vec![TestAtom::Leaf(true)]);
        let nested = Ntwa {
            top: Twa::single_move(
                vec![TestAtom::Nested {
                    automaton: 0,
                    negated: false,
                    scope: Scope::Global,
                }],
                Move::AnyChild,
            ),
            subs: vec![leafy.clone()],
        };
        let u = union(&nested, &nested);
        assert!(u.validate().is_ok());
        assert_eq!(u.subs.len(), 2);
        let c = concat(&nested, &nested);
        assert!(c.validate().is_ok());
        let t = parse_sexp("(a (b d) c)").unwrap().tree;
        // nested guard "a leafy run exists from here" is trivially true
        // (Stay on a leaf test... only at leaves) — just exercise evaluation
        let _ = eval_rel(&t, &u);
        let _ = eval_rel(&t, &c);
        let _ = eval_rel(&t, &star(&nested));
    }

    #[test]
    fn test_construction_is_diagonal() {
        let t = parse_sexp("(a b c)").unwrap().tree;
        let d = test(vec![TestAtom::Label(Label(0))]);
        let rel = eval_rel(&t, &d);
        assert_eq!(rel.count(), 1);
        assert!(rel.get(twx_xtree::NodeId(0), twx_xtree::NodeId(0)));
    }
}

//! Graphviz DOT export of nested tree walking automata (debugging and
//! documentation figures; sub-automata render as clustered subgraphs).

use crate::machine::{Move, Ntwa, Scope, TestAtom};
use std::fmt::Write;
use twx_xtree::Alphabet;

fn move_name(mv: Move) -> &'static str {
    match mv {
        Move::Stay => "stay",
        Move::Up => "up",
        Move::AnyChild => "child",
        Move::FirstChild => "first-child",
        Move::LastChild => "last-child",
        Move::NextSib => "next-sib",
        Move::PrevSib => "prev-sib",
    }
}

fn atom_text(atom: &TestAtom, ab: &Alphabet) -> String {
    match atom {
        TestAtom::Label(l) => ab.name(*l).to_string(),
        TestAtom::NotLabel(l) => format!("!{}", ab.name(*l)),
        TestAtom::Root(b) => format!("{}root", if *b { "" } else { "!" }),
        TestAtom::Leaf(b) => format!("{}leaf", if *b { "" } else { "!" }),
        TestAtom::First(b) => format!("{}first", if *b { "" } else { "!" }),
        TestAtom::Last(b) => format!("{}last", if *b { "" } else { "!" }),
        TestAtom::Nested {
            automaton,
            negated,
            scope,
        } => format!(
            "{}{}[{}]",
            if *negated { "!" } else { "" },
            match scope {
                Scope::Global => "call",
                Scope::Subtree => "callW",
            },
            automaton
        ),
    }
}

/// Renders the automaton (and its sub-automata, recursively) as DOT.
pub fn to_dot(a: &Ntwa, alphabet: &Alphabet) -> String {
    let mut out = String::from("digraph ntwa {\n  rankdir=LR;\n");
    render(a, alphabet, "t", &mut out);
    out.push_str("}\n");
    out
}

fn render(a: &Ntwa, ab: &Alphabet, prefix: &str, out: &mut String) {
    for q in 0..a.top.n_states {
        let shape = if a.top.is_accepting(q) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  {prefix}_{q} [label=\"{q}\", shape={shape}];");
    }
    let _ = writeln!(
        out,
        "  {prefix}_start [shape=point]; {prefix}_start -> {prefix}_{};",
        a.top.initial
    );
    for tr in &a.top.transitions {
        let guard = tr
            .guard
            .iter()
            .map(|g| atom_text(g, ab))
            .collect::<Vec<_>>()
            .join(" & ");
        let label = if guard.is_empty() {
            move_name(tr.mv).to_string()
        } else {
            format!("{guard} / {}", move_name(tr.mv))
        };
        let _ = writeln!(
            out,
            "  {prefix}_{} -> {prefix}_{} [label=\"{label}\"];",
            tr.from, tr.to
        );
    }
    for (i, sub) in a.subs.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{prefix}_{i} {{ label=\"sub {i}\";");
        render(sub, ab, &format!("{prefix}s{i}"), out);
        let _ = writeln!(out, "  }}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::dfs_parity;
    use crate::machine::{Ntwa, Twa};

    #[test]
    fn renders_parity_walker() {
        let ab = Alphabet::from_names(["a", "b"]);
        let dot = to_dot(&dfs_parity(twx_xtree::Label(0)), &ab);
        assert!(dot.starts_with("digraph ntwa"));
        assert!(dot.contains("doublecircle")); // accepting state
        assert!(dot.contains("first-child"));
        assert!(dot.contains("a & !leaf") || dot.contains("!leaf & a"));
    }

    #[test]
    fn renders_nested_clusters() {
        let ab = Alphabet::from_names(["a"]);
        let sub = Ntwa::flat(Twa::single_move(vec![], crate::machine::Move::Up));
        let a = Ntwa {
            top: Twa::single_move(
                vec![TestAtom::Nested {
                    automaton: 0,
                    negated: true,
                    scope: Scope::Subtree,
                }],
                crate::machine::Move::Stay,
            ),
            subs: vec![sub],
        };
        let dot = to_dot(&a, &ab);
        assert!(dot.contains("subgraph cluster_t_0"));
        assert!(dot.contains("!callW[0]"));
    }
}

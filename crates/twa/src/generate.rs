//! Random NTWA generation (fuzzing the Kleene translation and the
//! evaluators).

use crate::machine::{Move, Ntwa, Scope, TestAtom, Transition, Twa};
use twx_xtree::rng::Rng;
use twx_xtree::Label;

/// Configuration for random automaton generation.
#[derive(Clone, Debug)]
pub struct TGenConfig {
    /// Number of states of the top-level automaton.
    pub states: u32,
    /// Number of transitions.
    pub transitions: usize,
    /// Number of labels for guard atoms.
    pub labels: usize,
    /// Maximum nesting depth (0 = flat).
    pub depth: usize,
    /// Probability that a transition carries a nested invocation (when
    /// depth permits).
    pub nested_prob: f64,
}

impl Default for TGenConfig {
    fn default() -> Self {
        TGenConfig {
            states: 4,
            transitions: 8,
            labels: 2,
            depth: 1,
            nested_prob: 0.3,
        }
    }
}

fn random_move<R: Rng>(rng: &mut R) -> Move {
    Move::ALL[rng.gen_range(0..Move::ALL.len())]
}

fn random_local_atom<R: Rng>(cfg: &TGenConfig, rng: &mut R) -> TestAtom {
    match rng.gen_range(0..6) {
        0 => TestAtom::Label(Label(rng.gen_range(0..cfg.labels) as u32)),
        1 => TestAtom::NotLabel(Label(rng.gen_range(0..cfg.labels) as u32)),
        2 => TestAtom::Root(rng.gen_bool(0.5)),
        3 => TestAtom::Leaf(rng.gen_bool(0.5)),
        4 => TestAtom::First(rng.gen_bool(0.5)),
        _ => TestAtom::Last(rng.gen_bool(0.5)),
    }
}

/// Generates a random NTWA with nesting depth at most `cfg.depth`.
pub fn random_ntwa<R: Rng>(cfg: &TGenConfig, rng: &mut R) -> Ntwa {
    let mut subs: Vec<Ntwa> = Vec::new();
    let mut transitions = Vec::with_capacity(cfg.transitions);
    for _ in 0..cfg.transitions {
        let mut guard = Vec::new();
        if rng.gen_bool(0.6) {
            guard.push(random_local_atom(cfg, rng));
        }
        if cfg.depth > 0 && rng.gen_bool(cfg.nested_prob) {
            // create or reuse a sub-automaton
            let idx = if !subs.is_empty() && rng.gen_bool(0.5) {
                rng.gen_range(0..subs.len())
            } else {
                let sub_cfg = TGenConfig {
                    states: (cfg.states / 2).max(2),
                    transitions: (cfg.transitions / 2).max(2),
                    depth: cfg.depth - 1,
                    ..cfg.clone()
                };
                subs.push(random_ntwa(&sub_cfg, rng));
                subs.len() - 1
            };
            guard.push(TestAtom::Nested {
                automaton: idx as u32,
                negated: rng.gen_bool(0.5),
                scope: if rng.gen_bool(0.5) {
                    Scope::Global
                } else {
                    Scope::Subtree
                },
            });
        }
        transitions.push(Transition {
            from: rng.gen_range(0..cfg.states),
            guard,
            mv: random_move(rng),
            to: rng.gen_range(0..cfg.states),
        });
    }
    let initial = rng.gen_range(0..cfg.states);
    let mut accepting = vec![rng.gen_range(0..cfg.states)];
    if rng.gen_bool(0.3) {
        accepting.push(rng.gen_range(0..cfg.states));
        accepting.sort_unstable();
        accepting.dedup();
    }
    Ntwa {
        top: Twa {
            n_states: cfg.states,
            initial,
            accepting,
            transitions,
        },
        subs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_rel;
    use twx_xtree::generate::{random_tree, Shape};
    use twx_xtree::rng::SplitMix64 as StdRng;

    #[test]
    fn generated_automata_are_valid_and_run() {
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = TGenConfig::default();
        for round in 0..40 {
            let a = random_ntwa(&cfg, &mut rng);
            a.validate().expect("generated automaton invalid");
            assert!(a.depth() <= cfg.depth);
            let t = random_tree(Shape::Recursive, 1 + round % 8, cfg.labels, &mut rng);
            let _ = eval_rel(&t, &a);
        }
    }

    #[test]
    fn depth_zero_is_flat() {
        let mut rng = StdRng::seed_from_u64(22);
        let cfg = TGenConfig {
            depth: 0,
            ..TGenConfig::default()
        };
        for _ in 0..20 {
            let a = random_ntwa(&cfg, &mut rng);
            assert_eq!(a.depth(), 0);
            assert!(a.subs.is_empty());
        }
    }
}

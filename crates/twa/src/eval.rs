//! Evaluating nested tree walking automata.
//!
//! Reachability in the configuration graph `(node, state)`, with nested
//! invocations resolved bottom-up: before running the top-level automaton,
//! the acceptance set of each sub-automaton (the nodes from which it has an
//! accepting run) is computed recursively and guards become per-node
//! predicates. Cost `O(|T| · |A| · depth)` overall.

use crate::machine::{Ntwa, Scope, TestAtom, Transition};
use twx_obs::{self as obs, Counter};
use twx_xtree::{BitMatrix, NodeId, NodeSet, Tree};

/// Precomputed per-transition guard sets for one tree.
struct GuardSets {
    /// For each transition, the set of nodes at which its guard holds.
    sets: Vec<NodeSet>,
}

fn guard_sets(t: &Tree, a: &Ntwa) -> GuardSets {
    let n = t.len();
    // evaluate sub-automata acceptance sets bottom-up; global scope walks
    // the whole tree, subtree scope runs on each extracted subtree
    let needs_global: Vec<bool> = (0..a.subs.len())
        .map(|i| uses_scope(a, i as u32, Scope::Global))
        .collect();
    let needs_subtree: Vec<bool> = (0..a.subs.len())
        .map(|i| uses_scope(a, i as u32, Scope::Subtree))
        .collect();
    let sub_accepts: Vec<NodeSet> = a
        .subs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if needs_global[i] {
                obs::incr(Counter::TwaSubtestInvocations);
                accepts_from(t, s)
            } else {
                NodeSet::empty(n)
            }
        })
        .collect();
    let sub_accepts_subtree: Vec<NodeSet> = a
        .subs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut out = NodeSet::empty(n);
            if needs_subtree[i] {
                for v in t.nodes() {
                    obs::incr(Counter::TwaSubtestInvocations);
                    obs::incr(Counter::SubtreeExtractions);
                    let sub = t.subtree(v);
                    if accepts_from(&sub, s).contains(sub.root()) {
                        out.insert(v);
                    }
                }
            }
            out
        })
        .collect();
    let sets = a
        .top
        .transitions
        .iter()
        .map(|tr| {
            let mut s = NodeSet::full(n);
            for atom in &tr.guard {
                match atom {
                    TestAtom::Nested {
                        automaton,
                        negated,
                        scope,
                    } => {
                        let mut acc = match scope {
                            Scope::Global => sub_accepts[*automaton as usize].clone(),
                            Scope::Subtree => sub_accepts_subtree[*automaton as usize].clone(),
                        };
                        if *negated {
                            acc.complement();
                        }
                        s.intersect_with(&acc);
                    }
                    local => {
                        let mut loc = NodeSet::empty(n);
                        for v in t.nodes() {
                            if local.eval_local(t, v) {
                                loc.insert(v);
                            }
                        }
                        s.intersect_with(&loc);
                    }
                }
            }
            s
        })
        .collect();
    GuardSets { sets }
}

/// Whether sub-automaton `idx` is invoked with the given scope anywhere in
/// the top-level transition table.
fn uses_scope(a: &Ntwa, idx: u32, scope: Scope) -> bool {
    a.top.transitions.iter().any(|tr| {
        tr.guard.iter().any(|atom| {
            matches!(atom, TestAtom::Nested { automaton, scope: s, .. }
                if *automaton == idx && *s == scope)
        })
    })
}

/// Pushes `(v, q)` if unseen, counting expansions in `steps` — a plain
/// register increment, flushed to [`Counter::TwaSteps`] once per search
/// so the walking inner loop never touches the thread-local slots.
#[inline]
fn push(
    visited: &mut [bool],
    work: &mut Vec<(u32, u32)>,
    steps: &mut u64,
    m: usize,
    v: u32,
    q: u32,
) {
    let idx = v as usize * m + q as usize;
    if !visited[idx] {
        visited[idx] = true;
        *steps += 1;
        work.push((v, q));
    }
}

fn forward_adj(a: &Ntwa) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); a.top.n_states as usize];
    for (i, tr) in a.top.transitions.iter().enumerate() {
        adj[tr.from as usize].push(i);
    }
    adj
}

fn backward_adj(a: &Ntwa) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); a.top.n_states as usize];
    for (i, tr) in a.top.transitions.iter().enumerate() {
        adj[tr.to as usize].push(i);
    }
    adj
}

/// The forward image of `ctx`: all nodes where an accepting state can be
/// reached by a run started (in the initial state) at some node of `ctx`.
pub fn eval_image(t: &Tree, a: &Ntwa, ctx: &NodeSet) -> NodeSet {
    let n = t.len();
    let m = a.top.n_states as usize;
    let guards = guard_sets(t, a);
    let adj = forward_adj(a);
    let mut visited = vec![false; n * m];
    let mut work = Vec::new();
    let mut steps = 0u64;
    for v in ctx.iter() {
        push(&mut visited, &mut work, &mut steps, m, v.0, a.top.initial);
    }
    let mut out = NodeSet::empty(n);
    while let Some((v, q)) = work.pop() {
        if a.top.is_accepting(q) {
            out.insert(NodeId(v));
        }
        for &ti in &adj[q as usize] {
            let tr: &Transition = &a.top.transitions[ti];
            if guards.sets[ti].contains(NodeId(v)) {
                tr.mv.apply(t, NodeId(v), |u| {
                    push(&mut visited, &mut work, &mut steps, m, u.0, tr.to)
                });
            }
        }
    }
    obs::add(Counter::TwaSteps, steps);
    out
}

/// The backward image of `targets`: all nodes from which a run can reach an
/// accepting state at some node of `targets`.
pub fn eval_preimage(t: &Tree, a: &Ntwa, targets: &NodeSet) -> NodeSet {
    let n = t.len();
    let m = a.top.n_states as usize;
    let guards = guard_sets(t, a);
    let adj = backward_adj(a);
    let mut visited = vec![false; n * m];
    let mut work = Vec::new();
    let mut steps = 0u64;
    for v in targets.iter() {
        for &q in &a.top.accepting {
            push(&mut visited, &mut work, &mut steps, m, v.0, q);
        }
    }
    let mut out = NodeSet::empty(n);
    while let Some((v, q)) = work.pop() {
        if q == a.top.initial {
            out.insert(NodeId(v));
        }
        for &ti in &adj[q as usize] {
            let tr: &Transition = &a.top.transitions[ti];
            // the run was at (u, tr.from) with guard holding at u and
            // mv(u) ∋ v
            tr.mv.apply_reverse(t, NodeId(v), |u| {
                if guards.sets[ti].contains(u) {
                    push(&mut visited, &mut work, &mut steps, m, u.0, tr.from);
                }
            });
        }
    }
    obs::add(Counter::TwaSteps, steps);
    out
}

/// The acceptance set: the nodes from which the automaton has an accepting
/// run (the semantics of a nested invocation, and of `⟨A⟩`).
pub fn accepts_from(t: &Tree, a: &Ntwa) -> NodeSet {
    eval_preimage(t, a, &NodeSet::full(t.len()))
}

/// Materialises the binary relation `{(x, y) | run from (x, init) halts
/// accepting at (y, acc)}`.
pub fn eval_rel(t: &Tree, a: &Ntwa) -> BitMatrix {
    let n = t.len();
    let mut out = BitMatrix::empty(n);
    // share guard computation across all start nodes
    let m = a.top.n_states as usize;
    let guards = guard_sets(t, a);
    let adj = forward_adj(a);
    let mut visited = vec![false; n * m];
    let mut work: Vec<(u32, u32)> = Vec::new();
    let mut steps = 0u64;
    let mut cells = 0u64;
    for start in t.nodes() {
        visited.iter_mut().for_each(|b| *b = false);
        work.clear();
        push(
            &mut visited,
            &mut work,
            &mut steps,
            m,
            start.0,
            a.top.initial,
        );
        while let Some((v, q)) = work.pop() {
            if a.top.is_accepting(q) {
                cells += 1;
                out.set(start, NodeId(v));
            }
            for &ti in &adj[q as usize] {
                let tr = &a.top.transitions[ti];
                if guards.sets[ti].contains(NodeId(v)) {
                    tr.mv.apply(t, NodeId(v), |u| {
                        push(&mut visited, &mut work, &mut steps, m, u.0, tr.to)
                    });
                }
            }
        }
    }
    obs::add(Counter::TwaSteps, steps);
    obs::add(Counter::BitMatrixCells, cells);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Move, Scope, Transition, Twa};
    use twx_xtree::parse::parse_sexp;
    use twx_xtree::Label;

    fn ids(s: &NodeSet) -> Vec<u32> {
        s.iter().map(|v| v.0).collect()
    }

    /// (a (b d e) (c f))  — ids: a=0 b=1 d=2 e=3 c=4 f=5
    fn sample() -> Tree {
        parse_sexp("(a (b d e) (c f))").unwrap().tree
    }

    /// A depth-first "walk to every descendant" automaton: loop on AnyChild.
    fn descend() -> Ntwa {
        Ntwa::flat(Twa {
            n_states: 1,
            initial: 0,
            accepting: vec![0],
            transitions: vec![Transition {
                from: 0,
                guard: vec![],
                mv: Move::AnyChild,
                to: 0,
            }],
        })
    }

    #[test]
    fn descend_reaches_subtree() {
        let t = sample();
        let rel = eval_rel(&t, &descend());
        assert!(rel.get(NodeId(0), NodeId(5)));
        assert!(rel.get(NodeId(1), NodeId(3)));
        assert!(!rel.get(NodeId(1), NodeId(4)));
        assert!(rel.get(NodeId(2), NodeId(2))); // reflexive: initial accepting
        let img = eval_image(&t, &descend(), &NodeSet::singleton(6, NodeId(1)));
        assert_eq!(ids(&img), [1, 2, 3]);
        let pre = eval_preimage(&t, &descend(), &NodeSet::singleton(6, NodeId(3)));
        assert_eq!(ids(&pre), [0, 1, 3]);
    }

    #[test]
    fn guarded_walk() {
        let t = sample();
        // walk down but never onto label c (Label(4) in this interning)
        let a = Ntwa::flat(Twa {
            n_states: 1,
            initial: 0,
            accepting: vec![0],
            transitions: vec![Transition {
                from: 0,
                guard: vec![TestAtom::NotLabel(Label(4))],
                mv: Move::AnyChild,
                to: 0,
            }],
        });
        let img = eval_image(&t, &a, &NodeSet::singleton(6, NodeId(0)));
        // guard is tested at the *source* node; from a we can still step to
        // c, but from c (labelled c) we cannot move on to f... the guard on
        // the source blocks nothing here except walking onward from c.
        assert_eq!(ids(&img), [0, 1, 2, 3, 4]);
    }

    #[test]
    fn first_child_chain() {
        let t = sample();
        // repeatedly take first children
        let a = Ntwa::flat(Twa {
            n_states: 1,
            initial: 0,
            accepting: vec![0],
            transitions: vec![Transition {
                from: 0,
                guard: vec![],
                mv: Move::FirstChild,
                to: 0,
            }],
        });
        let img = eval_image(&t, &a, &NodeSet::singleton(6, NodeId(0)));
        assert_eq!(ids(&img), [0, 1, 2]);
    }

    #[test]
    fn nested_negated_invocation() {
        let t = sample();
        // sub-automaton: "some descendant is labelled d" (= Label(2))
        let has_d = Ntwa::flat(Twa {
            n_states: 2,
            initial: 0,
            accepting: vec![1],
            transitions: vec![
                Transition {
                    from: 0,
                    guard: vec![],
                    mv: Move::AnyChild,
                    to: 0,
                },
                Transition {
                    from: 0,
                    guard: vec![TestAtom::Label(Label(2))],
                    mv: Move::Stay,
                    to: 1,
                },
            ],
        });
        assert_eq!(ids(&accepts_from(&t, &has_d)), [0, 1, 2]);
        // top: move to any child, then accept only where the subtree does
        // NOT contain a d (nested invocation, negated, tested on arrival)
        let top = Ntwa {
            top: Twa {
                n_states: 3,
                initial: 0,
                accepting: vec![2],
                transitions: vec![
                    Transition {
                        from: 0,
                        guard: vec![],
                        mv: Move::AnyChild,
                        to: 1,
                    },
                    Transition {
                        from: 1,
                        guard: vec![TestAtom::Nested {
                            automaton: 0,
                            negated: true,
                            scope: Scope::Global,
                        }],
                        mv: Move::Stay,
                        to: 2,
                    },
                ],
            },
            subs: vec![has_d],
        };
        assert_eq!(top.depth(), 1);
        let img = eval_image(&t, &top, &NodeSet::singleton(6, NodeId(0)));
        // children of a: b (subtree contains d) and c (does not)
        assert_eq!(ids(&img), [4]);
    }

    #[test]
    fn rel_matches_image_per_row() {
        let t = sample();
        let a = descend();
        let rel = eval_rel(&t, &a);
        for v in t.nodes() {
            let img = eval_image(&t, &a, &NodeSet::singleton(6, v));
            let row: Vec<u32> = t.nodes().filter(|&u| rel.get(v, u)).map(|u| u.0).collect();
            assert_eq!(ids(&img), row);
        }
    }
}

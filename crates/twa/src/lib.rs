//! # twx-twa — (nested) tree walking automata
//!
//! The machine model of the paper. A **tree walking automaton** (TWA) is a
//! finite automaton that walks a tree one node at a time: a configuration
//! is a pair `(node, state)`, and transitions are guarded by local node
//! tests (label, root?, leaf?, first-/last-sibling?) and move along one of
//! the primitive directions (stay, up, to a child, to a sibling).
//!
//! A **nested** TWA (NTWA) may additionally guard transitions with
//! *invocations of sub-automata*: the atom `Nested { automaton, negated }`
//! holds at node `v` iff the named sub-automaton has (resp. has no)
//! accepting run started at `v`. Nesting is well-founded (sub-automata of
//! depth `k` invoke only automata of depth `< k`), which is what makes
//! negated invocation well-defined.
//!
//! **Formalisation note** (recorded in `DESIGN.md`): the paper's nested
//! tests serve to evaluate XPath filters `[φ]` and `⟨A⟩`-guards; we
//! formalise an invocation as "the sub-automaton, started at the current
//! node, reaches an accepting state somewhere in the tree", which is the
//! exact semantics of `⟨A⟩` and makes both directions of the
//! XPath ↔ NTWA equivalence effective (Thompson one way, Kleene state
//! elimination the other — both in `twx-core`).
//!
//! An NTWA denotes a binary relation (start node, halt node) like an XPath
//! path expression; [`eval`] computes images, preimages, acceptance sets
//! and full relations by reachability in the configuration graph, with
//! sub-automata evaluated bottom-up.

pub mod dfs;
pub mod dot;
pub mod eval;
pub mod generate;
pub mod machine;
pub mod ops;

pub use eval::{accepts_from, eval_image, eval_preimage, eval_rel};
pub use machine::{Move, Ntwa, Scope, TestAtom, Transition, Twa};

//! Regression guard: tracing must never perturb answers.
//!
//! The whole observability subsystem rides the promise that
//! instrumentation is *passive* — a traced evaluation walks exactly the
//! nodes an untraced one walks. This guard checks the promise
//! differentially with the conformance fuzzer's own generators: random
//! documents × random printed `Regular XPath` queries, evaluated traced
//! and untraced on every backend and through the sharded service, with
//! answers compared node-for-node.

use std::sync::Arc;
use treewalk::{Backend, Engine};
use twx_corpus::{Corpus, QueryService, ServiceConfig};
use twx_regxpath::generate::{random_rpath, RGenConfig};
use twx_regxpath::print::rpath_to_string;
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::{Catalog, NodeId};

const SHAPES: [Shape; 4] = [
    Shape::Recursive,
    Shape::Deep(1),
    Shape::Wide,
    Shape::DocumentLike,
];

#[test]
fn traced_engine_queries_answer_identically_on_every_backend() {
    let catalog = Arc::new(Catalog::from_names(["a", "b", "c", "d"]));
    let gen_cfg = RGenConfig {
        labels: 4,
        ..RGenConfig::default()
    };
    let mut rng = SplitMix64::seed_from_u64(0x7ace_6a5d);
    let engines = [
        Engine::with_backend(Backend::Product),
        Engine::with_backend(Backend::Automaton),
        Engine::with_backend(Backend::Logic),
    ];
    let mut compared = 0u32;
    for trial in 0..40 {
        let depth = rng.gen_range(1..4u32) as usize;
        let n = rng.gen_range(2..24u32) as usize;
        let shape = SHAPES[rng.gen_range(0..SHAPES.len() as u32) as usize];
        let doc = random_document_in(shape, n, &catalog, &mut rng);
        let query = rpath_to_string(
            &random_rpath(&gen_cfg, depth, &mut rng),
            &catalog.snapshot(),
        );
        let ctx = NodeId(rng.gen_range(0..doc.tree.len() as u32));
        for engine in &engines {
            let plain = match engine.query(&doc, &query, ctx) {
                Ok(set) => set,
                Err(_) => continue, // generator can exceed backend limits
            };
            let (traced, tree) = engine
                .query_traced(&doc, &query, ctx)
                .expect("untraced accepted the query");
            assert_eq!(
                plain.iter().collect::<Vec<_>>(),
                traced.iter().collect::<Vec<_>>(),
                "trial {trial}: traced answer diverged on {:?} for {query:?}",
                engine.backend()
            );
            if twx_obs::ENABLED {
                let tree = tree.expect("obs enabled: trace collected");
                assert!(!tree.root.children.is_empty(), "trace has no stages");
            } else {
                assert!(tree.is_none(), "obs disabled: no trace");
            }
            compared += 1;
        }
    }
    assert!(compared >= 60, "only {compared} comparisons ran");
}

#[test]
fn traced_service_replies_are_identical_to_untraced() {
    let catalog = Arc::new(Catalog::from_names(["a", "b", "c", "d"]));
    let gen_cfg = RGenConfig {
        labels: 4,
        ..RGenConfig::default()
    };
    let mut rng = SplitMix64::seed_from_u64(0x7ace_c04e);
    let mut b = Corpus::builder(Arc::clone(&catalog), 3);
    for _ in 0..6 {
        let n = rng.gen_range(4..40u32) as usize;
        let shape = SHAPES[rng.gen_range(0..SHAPES.len() as u32) as usize];
        b.add_document(random_document_in(shape, n, &catalog, &mut rng));
    }
    let service = QueryService::new(
        Arc::new(b.build()),
        Engine::with_backend(Backend::Product),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let mut compared = 0u32;
    for trial in 0..30 {
        let depth = rng.gen_range(1..4u32) as usize;
        let query = rpath_to_string(
            &random_rpath(&gen_cfg, depth, &mut rng),
            &catalog.snapshot(),
        );
        let plain = match service.query(&query) {
            Ok(a) => a,
            Err(_) => continue, // e.g. backend limits; same both ways
        };
        let traced = service
            .query_traced(&query)
            .expect("untraced accepted the query");
        assert_eq!(
            plain.total_matches, traced.total_matches,
            "trial {trial}: totals diverged for {query:?}"
        );
        assert_eq!(
            plain.per_doc.len(),
            traced.per_doc.len(),
            "trial {trial}: doc coverage diverged for {query:?}"
        );
        for ((id_p, v_p, set_p), (id_t, v_t, set_t)) in plain.per_doc.iter().zip(&traced.per_doc) {
            assert_eq!(
                (id_p, v_p),
                (id_t, v_t),
                "trial {trial}: doc order diverged"
            );
            assert_eq!(
                set_p.iter().collect::<Vec<_>>(),
                set_t.iter().collect::<Vec<_>>(),
                "trial {trial}: answer diverged on doc {id_p:?} for {query:?}"
            );
        }
        if twx_obs::ENABLED {
            assert!(traced.trace.is_some(), "obs enabled: reply carries a trace");
        }
        compared += 1;
    }
    service.shutdown();
    assert!(compared >= 20, "only {compared} comparisons ran");
}

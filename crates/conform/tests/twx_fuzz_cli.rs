//! End-to-end tests of the `twx-fuzz` binary: flag parsing, the JSON
//! summary contract, corpus replay, and exit codes (0 = agree,
//! 1 = divergence, 2 = usage error).

use std::path::PathBuf;
use std::process::{Command, Output};

fn twx_fuzz(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_twx-fuzz"))
        .args(args)
        .output()
        .expect("spawn twx-fuzz")
}

fn stdout_json(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

#[test]
fn clean_run_exits_zero_with_summary() {
    let out = twx_fuzz(&["--seed", "42", "--iters", "60", "--max-doc-nodes", "8"]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let json = stdout_json(&out);
    assert!(json.contains("\"schema\":\"twx-fuzz/1\""), "{json}");
    assert!(json.contains("\"iterations\":60"), "{json}");
    assert!(json.contains("\"divergences\":0"), "{json}");
    assert!(json.contains("\"route\":\"hot:logic\""), "{json}");
    assert!(json.contains("\"replayed\":0"), "{json}");
}

#[test]
fn fault_run_exits_one_and_reports_minimal_repro() {
    let out = twx_fuzz(&[
        "--seed",
        "42",
        "--iters",
        "40",
        "--fault",
        "cold:product=insert-root",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let json = stdout_json(&out);
    assert!(json.contains("\"routes\":[\"cold:product\"]"), "{json}");
}

#[test]
fn replay_catches_a_planted_regression() {
    let dir = std::env::temp_dir().join(format!("twx-fuzz-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join("regressions.jsonl");
    // a healthy line and a structurally-broken one
    std::fs::write(
        &path,
        "# golden corpus\n{\"query\":\"down*[b]\",\"doc\":\"(a (b a) b)\",\"seed\":1,\"note\":\"healthy\"}\n",
    )
    .unwrap();
    let ok = twx_fuzz(&["--iters", "1", "--replay", path.to_str().unwrap()]);
    assert!(ok.status.success());
    assert!(stdout_json(&ok).contains("\"replayed\":1"));

    std::fs::write(&path, "{\"query\":\"down[\",\"doc\":\"(a)\",\"seed\":1}\n").unwrap();
    let bad = twx_fuzz(&["--iters", "1", "--replay", path.to_str().unwrap()]);
    assert_eq!(bad.status.code(), Some(1), "unparseable repro must fail");
    assert!(stdout_json(&bad).contains("\"replay_divergences\":1"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(twx_fuzz(&["--bogus"]).status.code(), Some(2));
    assert_eq!(twx_fuzz(&["--seed"]).status.code(), Some(2));
    assert_eq!(twx_fuzz(&["--fault", "nope"]).status.code(), Some(2));
}

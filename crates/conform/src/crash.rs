//! Crash-recovery fuzzing: kill a store-backed corpus at an arbitrary
//! point and demand that recovery reproduces it node-for-node.
//!
//! Where [`crate::mutate`] checks the result cache against a recompute
//! oracle while a document changes, this module checks the **durability
//! contract** of `twx-store`: with `fsync_every = 1`, every edit the
//! corpus acknowledged must survive a crash. Each trial builds a
//! store-backed [`Corpus`] in a scratch directory, drives it with a
//! script of typed edits and explicit `snapshot` (compaction) ops,
//! simulates a crash — the journal is truncated to its fsync'd prefix
//! plus a random partial tail, modelling a torn final write — and
//! recovers from disk with [`Corpus::recover`]. The recovered corpus is
//! diffed against the pre-crash in-memory state: document trees,
//! versions, shard placement, and the global sequence number must all
//! match exactly, and recovery itself must never fail.
//!
//! The test-only [`StoreFault::SkipFsync`] hook acknowledges journal
//! appends without ever syncing them — the precise lie a broken
//! group-commit would tell — so the harness can prove a durability bug
//! would be caught and shrunk to a minimal script.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use twx_corpus::{Corpus, DocId, Placement, StoreConfig, StoreFault};
use twx_obs::json::Json;
use twx_xtree::edit::{apply_edit, random_edit, Edit};
use twx_xtree::generate::random_document_in;
use twx_xtree::parse::parse_sexp_catalog;
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::serialize::to_sexp;
use twx_xtree::shrink::shrink_tree;
use twx_xtree::{Catalog, NodeId, Tree};

use crate::fuzz::{label_names, FuzzConfig, SHAPES};

/// One step of a crash script. Labels are carried by *name* and node ids
/// are pre-edit preorder ids, so a script is self-contained text — see
/// [`CrashOp::to_line`] / [`CrashOp::from_line`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrashOp {
    /// Relabel `node` of document `doc` to `label`.
    Relabel { doc: u32, node: u32, label: String },
    /// Insert a fresh `label` leaf as child `position` of `parent` in
    /// document `doc`.
    Insert {
        doc: u32,
        parent: u32,
        position: u32,
        label: String,
    },
    /// Remove the subtree rooted at `node` of document `doc`.
    Remove { doc: u32, node: u32 },
    /// Take a full snapshot and compact the journal (the `snapshot`
    /// serve op) — this durably captures everything acknowledged so
    /// far, even under [`StoreFault::SkipFsync`].
    Snapshot,
}

impl CrashOp {
    /// Renders one op as a line of the script language:
    /// `relabel <doc> <node> <label>` | `insert <doc> <parent>
    /// <position> <label>` | `remove <doc> <node>` | `snapshot`.
    pub fn to_line(&self) -> String {
        match self {
            CrashOp::Relabel { doc, node, label } => format!("relabel {doc} {node} {label}"),
            CrashOp::Insert {
                doc,
                parent,
                position,
                label,
            } => format!("insert {doc} {parent} {position} {label}"),
            CrashOp::Remove { doc, node } => format!("remove {doc} {node}"),
            CrashOp::Snapshot => "snapshot".to_string(),
        }
    }

    /// Inverse of [`CrashOp::to_line`].
    pub fn from_line(line: &str) -> Result<CrashOp, String> {
        let line = line.trim();
        if line == "snapshot" {
            return Ok(CrashOp::Snapshot);
        }
        let (head, rest) = line
            .split_once(' ')
            .ok_or_else(|| format!("crash op '{line}' has no operands"))?;
        let num = |s: &str| -> Result<u32, String> {
            s.parse()
                .map_err(|e| format!("crash op '{line}': bad number '{s}': {e}"))
        };
        let mut it = rest.split_whitespace();
        match head {
            "relabel" => {
                let (Some(doc), Some(node), Some(label), None) =
                    (it.next(), it.next(), it.next(), it.next())
                else {
                    return Err(format!(
                        "crash op '{line}' needs a doc, a node, and a label"
                    ));
                };
                Ok(CrashOp::Relabel {
                    doc: num(doc)?,
                    node: num(node)?,
                    label: label.to_string(),
                })
            }
            "insert" => {
                let (Some(doc), Some(parent), Some(position), Some(label), None) =
                    (it.next(), it.next(), it.next(), it.next(), it.next())
                else {
                    return Err(format!(
                        "crash op '{line}' needs a doc, a parent, a position, and a label"
                    ));
                };
                Ok(CrashOp::Insert {
                    doc: num(doc)?,
                    parent: num(parent)?,
                    position: num(position)?,
                    label: label.to_string(),
                })
            }
            "remove" => {
                let (Some(doc), Some(node), None) = (it.next(), it.next(), it.next()) else {
                    return Err(format!("crash op '{line}' needs a doc and a node"));
                };
                Ok(CrashOp::Remove {
                    doc: num(doc)?,
                    node: num(node)?,
                })
            }
            other => Err(format!(
                "unknown crash op '{other}' (one of: relabel, insert, remove, snapshot)"
            )),
        }
    }
}

/// A recovered corpus that did not match the acknowledged pre-crash
/// state (or failed to recover at all).
#[derive(Clone, Debug)]
pub struct CrashDivergence {
    /// The base documents, as s-expressions, in [`DocId`] order.
    pub docs: Vec<String>,
    /// The (possibly shrunk) script executed before the crash.
    pub ops: Vec<CrashOp>,
    /// The trial seed that produced the script (0 for replays).
    pub seed: u64,
    /// Unsynced journal bytes the simulated crash let survive — a torn
    /// final write when it cuts a record in half.
    pub keep_unsynced: u64,
    /// What recovery got wrong, human-readable.
    pub detail: String,
}

impl CrashDivergence {
    /// One-line human summary.
    pub fn describe(&self) -> String {
        format!(
            "script [{}] on docs [{}] (keep_unsynced={}) : {}",
            self.ops
                .iter()
                .map(CrashOp::to_line)
                .collect::<Vec<_>>()
                .join("; "),
            self.docs.join(", "),
            self.keep_unsynced,
            self.detail,
        )
    }
}

/// A process-unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Scratch {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("twx-crash-fuzz-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Builds a store-backed corpus from `docs`, executes `ops`, simulates a
/// crash keeping `keep_unsynced` unsynced journal bytes, recovers, and
/// diffs the recovered corpus against the acknowledged pre-crash state.
/// Returns the first mismatch, `Ok(None)` on a faithful recovery, and
/// `Err` only if the setup itself is broken (unparseable document,
/// store creation failure). Ops that no longer apply (e.g. after the
/// document was shrunk) are skipped — they were never acknowledged, so
/// the oracle ignores them too.
pub fn run_crash_script(
    docs: &[String],
    ops: &[CrashOp],
    fault: StoreFault,
    keep_unsynced: u64,
) -> Result<Option<CrashDivergence>, String> {
    let scratch = Scratch::new();
    let catalog = Arc::new(Catalog::new());
    let mut b = Corpus::builder(Arc::clone(&catalog), 2.min(docs.len().max(1)))
        .placement(Placement::SizeBalanced);
    for sexp in docs {
        let doc = parse_sexp_catalog(sexp, &catalog).map_err(|e| format!("doc `{sexp}`: {e}"))?;
        b.add_document(doc);
    }
    let corpus = b
        .with_store(scratch.0.clone())
        .store_config(StoreConfig {
            fsync_every: 1,
            fault,
        })
        .try_build()
        .map_err(|e| format!("store build: {e}"))?;

    let divergence = |detail: String| CrashDivergence {
        docs: docs.to_vec(),
        ops: ops.to_vec(),
        seed: 0,
        keep_unsynced,
        detail,
    };

    for op in ops {
        match op {
            CrashOp::Snapshot => {
                corpus.persist().map_err(|e| format!("persist: {e}"))?;
            }
            edit_op => {
                let (doc, edit) = match edit_op {
                    CrashOp::Relabel { doc, node, label } => (
                        *doc,
                        Edit::Relabel {
                            node: NodeId(*node),
                            label: catalog.intern(label),
                        },
                    ),
                    CrashOp::Insert {
                        doc,
                        parent,
                        position,
                        label,
                    } => (
                        *doc,
                        Edit::InsertChild {
                            parent: NodeId(*parent),
                            position: *position as usize,
                            label: catalog.intern(label),
                        },
                    ),
                    CrashOp::Remove { doc, node } => (
                        *doc,
                        Edit::RemoveSubtree {
                            node: NodeId(*node),
                        },
                    ),
                    CrashOp::Snapshot => unreachable!(),
                };
                // an unacknowledged edit (stale after shrinking) commits
                // nothing, so the oracle — the corpus's own pre-crash
                // state — ignores it with us
                let _ = corpus.update(DocId(doc), &edit);
            }
        }
    }

    // the acknowledged state: everything `update` returned a receipt for
    let expected_seq = corpus.seq();
    let expected: Vec<_> = (0..corpus.n_docs() as u32)
        .map(|i| {
            let id = DocId(i);
            let e = corpus.entry(id).expect("doc exists");
            (e.version, e.doc.tree.clone(), corpus.placement(id))
        })
        .collect();

    corpus
        .store()
        .expect("corpus has a store")
        .simulate_crash(keep_unsynced)
        .map_err(|e| format!("simulate_crash: {e}"))?;
    drop(corpus);

    let recovered = match Corpus::recover(&scratch.0, StoreConfig::default()) {
        Ok((r, _report)) => r,
        Err(e) => return Ok(Some(divergence(format!("recovery failed: {e}")))),
    };

    if recovered.n_docs() != expected.len() {
        return Ok(Some(divergence(format!(
            "recovered {} docs, expected {}",
            recovered.n_docs(),
            expected.len()
        ))));
    }
    if recovered.seq() != expected_seq {
        return Ok(Some(divergence(format!(
            "recovered seq {}, acknowledged seq {}",
            recovered.seq(),
            expected_seq
        ))));
    }
    for (i, (version, tree, placement)) in expected.iter().enumerate() {
        let id = DocId(i as u32);
        let got = recovered.entry(id).expect("doc count already checked");
        if got.version != *version {
            return Ok(Some(divergence(format!(
                "doc {i}: recovered version {:?}, acknowledged {:?}",
                got.version, version
            ))));
        }
        if got.doc.tree != *tree {
            return Ok(Some(divergence(format!(
                "doc {i}: recovered tree differs from acknowledged tree at version {:?}",
                version
            ))));
        }
        if recovered.placement(id) != *placement {
            return Ok(Some(divergence(format!(
                "doc {i}: recovered placement {:?}, original {:?}",
                recovered.placement(id),
                placement
            ))));
        }
    }
    Ok(None)
}

/// The outcome of a crash-fuzzing run.
#[derive(Clone, Debug)]
pub struct CrashReport {
    /// The master seed.
    pub seed: u64,
    /// Trials actually executed (≤ `iters` under a time budget).
    pub iterations: u64,
    /// Every divergence found, post-shrink, in discovery order.
    pub divergences: Vec<CrashDivergence>,
    /// Total accepted shrink steps.
    pub shrink_steps: u64,
    /// The injected fault ([`StoreFault::None`] in CI's clean gate).
    pub fault: StoreFault,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl CrashReport {
    /// The machine-readable summary printed by `twx-fuzz --crash`.
    pub fn to_json(&self) -> Json {
        let found: Vec<Json> = self
            .divergences
            .iter()
            .map(|d| {
                Json::obj()
                    .field(
                        "docs",
                        d.docs
                            .iter()
                            .map(|s| Json::from(s.as_str()))
                            .collect::<Vec<Json>>(),
                    )
                    .field(
                        "ops",
                        d.ops
                            .iter()
                            .map(|o| Json::from(o.to_line()))
                            .collect::<Vec<Json>>(),
                    )
                    .field("seed", d.seed)
                    .field("keep_unsynced", d.keep_unsynced)
                    .field("detail", d.detail.as_str())
            })
            .collect();
        let mut j = Json::obj()
            .field("schema", "twx-fuzz-crash/1")
            .field("seed", self.seed)
            .field("iterations", self.iterations)
            .field("divergences", self.divergences.len())
            .field("shrink_steps", self.shrink_steps)
            .field("elapsed_ms", self.elapsed.as_millis() as u64)
            .field("found", Json::Arr(found));
        if self.fault != StoreFault::None {
            j = j.field("fault", self.fault.name());
        }
        j
    }
}

/// Runs the crash fuzzer: `cfg.iters` deterministic trials, each a fresh
/// batch of random documents plus a random edit/snapshot script executed
/// and crashed by [`run_crash_script`]. Divergences are shrunk before
/// reporting when `cfg.shrink` is set.
pub fn run_crash_fuzz(cfg: &FuzzConfig, fault: StoreFault) -> CrashReport {
    let started = Instant::now();
    let names = label_names(cfg.labels.max(1));
    let catalog = Arc::new(Catalog::from_names(names.iter().map(String::as_str)));
    let labels: Vec<_> = names.iter().map(|n| catalog.intern(n)).collect();
    let alphabet = catalog.snapshot();
    let mut master = SplitMix64::seed_from_u64(cfg.seed);
    let mut report = CrashReport {
        seed: cfg.seed,
        iterations: 0,
        divergences: Vec::new(),
        shrink_steps: 0,
        fault,
        elapsed: Duration::ZERO,
    };

    for _ in 0..cfg.iters {
        if let Some(budget) = cfg.time_budget {
            if started.elapsed() >= budget {
                break;
            }
        }
        let trial_seed = master.next_u64();
        let mut rng = SplitMix64::seed_from_u64(trial_seed);

        let n_docs = rng.gen_range(1..4usize);
        let mut docs = Vec::with_capacity(n_docs);
        let mut mirror: Vec<Tree> = Vec::with_capacity(n_docs);
        for _ in 0..n_docs {
            let n = rng.gen_range(1..cfg.max_doc_nodes.max(1) + 1);
            let shape = SHAPES[rng.gen_range(0..SHAPES.len())];
            let doc = random_document_in(shape, n, &catalog, &mut rng);
            docs.push(to_sexp(&doc.tree, &alphabet));
            mirror.push(doc.tree);
        }

        // generate against an evolving mirror so every edit is valid (and
        // therefore acknowledged) at generation time
        let script_len = rng.gen_range(1..14);
        let mut ops = Vec::with_capacity(script_len);
        for _ in 0..script_len {
            if rng.gen_range(0..100u32) < 12 {
                ops.push(CrashOp::Snapshot);
                continue;
            }
            let d = rng.gen_range(0..n_docs);
            let edit = random_edit(&mirror[d], &labels, &mut rng);
            ops.push(match &edit {
                Edit::Relabel { node, label } => CrashOp::Relabel {
                    doc: d as u32,
                    node: node.0,
                    label: catalog.name(*label),
                },
                Edit::InsertChild {
                    parent,
                    position,
                    label,
                } => CrashOp::Insert {
                    doc: d as u32,
                    parent: parent.0,
                    position: *position as u32,
                    label: catalog.name(*label),
                },
                Edit::RemoveSubtree { node } => CrashOp::Remove {
                    doc: d as u32,
                    node: node.0,
                },
            });
            let (next, _) = apply_edit(&mirror[d], &edit).expect("random_edit is always valid");
            mirror[d] = next;
        }
        let keep_unsynced = rng.gen_range(0..48) as u64;

        report.iterations += 1;
        let div = run_crash_script(&docs, &ops, fault, keep_unsynced)
            .expect("generated crash script must run");
        let Some(mut div) = div else { continue };
        div.seed = trial_seed;
        if cfg.shrink {
            report.shrink_steps += shrink_crash(&mut div, fault);
        }
        report.divergences.push(div);
    }

    report.elapsed = started.elapsed();
    report
}

/// Upper bound on script re-executions per shrink: each run touches the
/// filesystem (store create + fsyncs + recovery), so the cap is tighter
/// than the in-memory shrinkers'.
const SHRINK_RUN_CAP: u32 = 300;

/// Greedily minimises a crash divergence in place: drop script ops
/// (trailing first), zero the surviving unsynced tail, then shrink each
/// base document over subtree deletions — re-running the whole
/// crash/recover cycle after every candidate and keeping it only if *a*
/// divergence persists. Returns the number of accepted steps.
pub fn shrink_crash(div: &mut CrashDivergence, fault: StoreFault) -> u64 {
    let mut steps = 0u64;
    let runs = std::cell::Cell::new(0u32);
    let try_candidate = |docs: &[String], ops: &[CrashOp], keep: u64| -> Option<CrashDivergence> {
        if runs.get() >= SHRINK_RUN_CAP {
            return None;
        }
        runs.set(runs.get() + 1);
        match run_crash_script(docs, ops, fault, keep) {
            Ok(Some(mut d)) => {
                d.seed = 0;
                Some(d)
            }
            _ => None,
        }
    };
    let seed = div.seed;

    loop {
        let mut improved = false;

        // Pass 1: drop ops, trailing first.
        let mut i = div.ops.len();
        while i > 0 {
            i -= 1;
            if div.ops.is_empty() {
                break;
            }
            let mut candidate = div.ops.clone();
            candidate.remove(i);
            if let Some(d) = try_candidate(&div.docs, &candidate, div.keep_unsynced) {
                *div = d;
                improved = true;
                steps += 1;
                i = i.min(div.ops.len());
            }
        }

        // Pass 2: a torn tail that isn't needed obscures the repro.
        if div.keep_unsynced > 0 {
            if let Some(d) = try_candidate(&div.docs, &div.ops, 0) {
                *div = d;
                improved = true;
                steps += 1;
            }
        }

        // Pass 3: shrink each base document by subtree deletion.
        for doc_idx in 0..div.docs.len() {
            'doc: loop {
                let catalog = Arc::new(Catalog::new());
                let Ok(base) = parse_sexp_catalog(&div.docs[doc_idx], &catalog) else {
                    break;
                };
                for smaller in shrink_tree(&base.tree) {
                    let sexp = to_sexp(&smaller, &catalog.snapshot());
                    let mut candidate = div.docs.clone();
                    candidate[doc_idx] = sexp;
                    if let Some(d) = try_candidate(&candidate, &div.ops, div.keep_unsynced) {
                        *div = d;
                        improved = true;
                        steps += 1;
                        continue 'doc;
                    }
                }
                break;
            }
        }

        if !improved || runs.get() >= SHRINK_RUN_CAP {
            break;
        }
    }
    div.seed = seed;
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CI gate in miniature: with honest per-edit fsync, recovery
    /// after a crash at any point reproduces every acknowledged edit.
    #[test]
    fn clean_crash_run_has_no_divergences() {
        let report = run_crash_fuzz(
            &FuzzConfig {
                seed: 42,
                iters: 25,
                ..FuzzConfig::default()
            },
            StoreFault::None,
        );
        assert_eq!(report.iterations, 25);
        assert!(
            report.divergences.is_empty(),
            "divergence: {}",
            report.divergences[0].describe()
        );
        let json = report.to_json().render();
        assert!(json.contains("\"schema\":\"twx-fuzz-crash/1\""));
        assert!(json.contains("\"divergences\":0"));
        assert!(!json.contains("\"fault\""));
    }

    /// Acceptance criterion: skipping fsync loses acknowledged edits,
    /// the harness catches it, and the repro shrinks to ≤ 3 ops.
    #[test]
    fn skip_fsync_fault_is_caught_and_shrunk() {
        let report = run_crash_fuzz(
            &FuzzConfig {
                seed: 42,
                iters: 30,
                ..FuzzConfig::default()
            },
            StoreFault::SkipFsync,
        );
        assert!(
            !report.divergences.is_empty(),
            "skip-fsync never diverged in {} iterations",
            report.iterations
        );
        let d = &report.divergences[0];
        assert!(
            d.ops.len() <= 3,
            "shrunk script has {} ops (> 3): {}",
            d.ops.len(),
            d.describe()
        );
        // the shrunk script still reproduces, and is clean without the fault
        assert!(
            run_crash_script(&d.docs, &d.ops, StoreFault::SkipFsync, d.keep_unsynced)
                .unwrap()
                .is_some()
        );
        assert!(
            run_crash_script(&d.docs, &d.ops, StoreFault::None, d.keep_unsynced)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn same_seed_same_run() {
        let cfg = FuzzConfig {
            seed: 9,
            iters: 8,
            ..FuzzConfig::default()
        };
        let a = run_crash_fuzz(&cfg, StoreFault::None);
        let b = run_crash_fuzz(&cfg, StoreFault::None);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.divergences.len(), b.divergences.len());
    }

    #[test]
    fn crash_op_lines_roundtrip() {
        let ops = [
            CrashOp::Relabel {
                doc: 1,
                node: 2,
                label: "b".to_string(),
            },
            CrashOp::Insert {
                doc: 0,
                parent: 3,
                position: 1,
                label: "a".to_string(),
            },
            CrashOp::Remove { doc: 2, node: 4 },
            CrashOp::Snapshot,
        ];
        for op in &ops {
            assert_eq!(&CrashOp::from_line(&op.to_line()).unwrap(), op);
        }
        assert!(CrashOp::from_line("relabel 0 1").is_err());
        assert!(CrashOp::from_line("insert 0 1 2").is_err());
        assert!(CrashOp::from_line("remove 0").is_err());
        assert!(CrashOp::from_line("teleport 1 2").is_err());
    }

    /// A handcrafted script through the full stack: edit, durably
    /// snapshot, edit again, crash with a torn tail — all recovered.
    #[test]
    fn handcrafted_script_recovers_exactly() {
        let docs = ["(a (b) (c))".to_string(), "(b (b b))".to_string()];
        let ops = [
            CrashOp::from_line("relabel 0 1 c").unwrap(),
            CrashOp::from_line("insert 1 0 0 a").unwrap(),
            CrashOp::from_line("snapshot").unwrap(),
            CrashOp::from_line("remove 0 2").unwrap(),
        ];
        assert!(run_crash_script(&docs, &ops, StoreFault::None, 7)
            .unwrap()
            .is_none());
    }
}

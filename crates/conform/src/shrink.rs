//! Greedy counterexample minimisation.
//!
//! Given a [`Divergence`], alternate a **query pass** (try every
//! single-step AST shrink from [`twx_regxpath::shrink`]) and a
//! **document pass** (try every subtree deletion from
//! [`twx_xtree::shrink`]), re-running the full cross-route check at each
//! candidate and accepting the first that still reproduces the
//! divergence *on at least one of the originally-disagreeing routes*
//! (so shrinking cannot wander to an unrelated failure). Every candidate
//! is strictly smaller than its parent, so the loop terminates; both
//! candidate generators order aggressive cuts first, so greedy
//! first-accept descent converges in few steps.

use std::collections::HashSet;
use std::sync::Arc;

use twx_obs::{self as obs, Counter};
use twx_regxpath::parser::parse_rpath_catalog;
use twx_regxpath::print::rpath_to_string;
use twx_regxpath::shrink::shrink_rpath;
use twx_regxpath::RPath;
use twx_xtree::parse::parse_sexp_catalog;
use twx_xtree::shrink::shrink_tree;
use twx_xtree::{Catalog, Document, Tree};

use crate::{Conformer, Divergence, RouteId};

/// The result of [`minimize`]: the smallest still-diverging repro found.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The minimised divergence (query and document re-rendered).
    pub divergence: Divergence,
    /// Accepted shrink steps (query + document).
    pub steps: u64,
    /// AST size of the minimised query.
    pub query_size: usize,
    /// Node count of the minimised document.
    pub doc_nodes: usize,
}

/// Greedily minimises `d` using `conf` as the oracle. Returns the
/// smallest `(query, document)` pair on which at least one of the
/// originally-disagreeing routes still disagrees.
pub fn minimize(conf: &mut Conformer, d: &Divergence) -> Result<ShrinkOutcome, String> {
    let catalog = Arc::clone(conf.catalog());
    let mut q = parse_rpath_catalog(&d.query, &catalog)
        .map_err(|e| format!("repro query does not parse: {e}"))?;
    let mut t = parse_sexp_catalog(&d.doc_sexp, &catalog)
        .map_err(|e| format!("repro document does not parse: {e}"))?
        .tree;
    let targets: HashSet<RouteId> = d.disagreeing.iter().map(|(r, _)| *r).collect();

    let mut best = d.clone();
    let mut steps = 0u64;
    let mut changed = true;
    while changed {
        changed = false;
        // query pass: restart after every acceptance (new candidate list)
        'query: loop {
            for c in shrink_rpath(&q) {
                if let Some(div) = recheck(conf, &catalog, &c, &t, d.seed, &targets) {
                    q = c;
                    best = div;
                    steps += 1;
                    changed = true;
                    obs::incr(Counter::ConformShrinkSteps);
                    continue 'query;
                }
            }
            break;
        }
        // document pass
        'doc: loop {
            for c in shrink_tree(&t) {
                if let Some(div) = recheck(conf, &catalog, &q, &c, d.seed, &targets) {
                    t = c;
                    best = div;
                    steps += 1;
                    changed = true;
                    obs::incr(Counter::ConformShrinkSteps);
                    continue 'doc;
                }
            }
            break;
        }
    }
    Ok(ShrinkOutcome {
        divergence: best,
        steps,
        query_size: q.size(),
        doc_nodes: t.len(),
    })
}

/// Re-runs the cross-route check on a candidate pair; `Some` iff it still
/// diverges on one of the target routes.
fn recheck(
    conf: &mut Conformer,
    catalog: &Catalog,
    q: &RPath,
    t: &Tree,
    seed: u64,
    targets: &HashSet<RouteId>,
) -> Option<Divergence> {
    let text = rpath_to_string(q, &catalog.snapshot());
    let doc = Document::new(t.clone(), catalog.snapshot());
    match conf.check(&text, &doc, seed) {
        Ok(Some(div)) if div.disagreeing.iter().any(|(r, _)| targets.contains(r)) => Some(div),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fault, FaultKind};
    use treewalk::Backend;

    /// A faulty backend's divergence shrinks to a tiny repro: the issue's
    /// acceptance bound is ≤ 6 query AST nodes and ≤ 8 document nodes.
    #[test]
    fn faulty_route_shrinks_to_tiny_repro() {
        let catalog = Arc::new(Catalog::from_names(["a", "b"]));
        let fault = Fault {
            route: RouteId::Cold(Backend::Logic),
            kind: FaultKind::DropMax,
        };
        let mut conf = Conformer::with_fault(Arc::clone(&catalog), Some(fault));
        let doc = parse_sexp_catalog("(a (b a b) (a b) b)", &catalog).unwrap();
        let div = conf
            .check("down*[b or a]/down | .", &doc, 3)
            .unwrap()
            .expect("drop-max on a nonempty answer must diverge");
        let out = minimize(&mut conf, &div).unwrap();
        assert!(out.steps > 0, "shrinker accepted no step");
        assert!(
            out.query_size <= 6,
            "query not minimal: {} ({})",
            out.divergence.query,
            out.query_size
        );
        assert!(
            out.doc_nodes <= 8,
            "document not minimal: {} ({} nodes)",
            out.divergence.doc_sexp,
            out.doc_nodes
        );
        assert_eq!(out.divergence.route_names(), vec!["cold:logic"]);
    }
}

//! The golden regression corpus: one JSON line per minimal repro.
//!
//! Format (`tests/corpus/regressions.jsonl` at the workspace root):
//!
//! ```text
//! {"query":"down*[b]","doc":"(a (b a) b)","seed":42,"note":"why this line exists"}
//! ```
//!
//! Blank lines and lines starting with `#` are ignored, so the file can
//! carry commentary. Every line is replayed through the full cross-route
//! check by `tests/conformance.rs` on every test run, and by
//! `twx-fuzz --replay` in CI; once a bug's minimal repro lands here it is
//! guarded forever.

use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

use twx_obs::json::{self, Json};
use twx_regxpath::parser::parse_rpath_catalog;
use twx_xtree::parse::parse_sexp_catalog;
use twx_xtree::Catalog;

use crate::mutate::{run_script, MutDivergence, ScriptOp};
use crate::{Conformer, Divergence};

/// One regression-corpus entry.
///
/// When `ops` is non-empty the entry is a **mutation** repro: `doc` is
/// the base document and `ops` a [`ScriptOp`]
/// script (edits interleaved with queries) replayed through the engine +
/// result cache against the naive oracle; `query` then records the
/// failing query for human readers. Plain entries leave `ops` empty and
/// replay through the cross-route [`Conformer`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Repro {
    /// The query in surface syntax.
    pub query: String,
    /// The document as an s-expression.
    pub doc: String,
    /// The fuzzer seed that found it (0 for handcrafted entries).
    pub seed: u64,
    /// Why the line exists — shown when the replay fails.
    pub note: String,
    /// Mutation script lines (empty for plain cross-route repros).
    pub ops: Vec<String>,
}

impl Repro {
    /// Serialises to one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut j = Json::obj()
            .field("query", self.query.as_str())
            .field("doc", self.doc.as_str())
            .field("seed", self.seed)
            .field("note", self.note.as_str());
        if !self.ops.is_empty() {
            j = j.field(
                "ops",
                self.ops
                    .iter()
                    .map(|o| Json::from(o.as_str()))
                    .collect::<Vec<Json>>(),
            );
        }
        j.render()
    }

    /// Parses one JSON line. `note` is optional; `query` and `doc` are
    /// required strings, `seed` a required integer.
    pub fn from_line(line: &str) -> Result<Repro, String> {
        let v = json::parse(line).map_err(|e| format!("bad repro line: {e}"))?;
        let Json::Obj(fields) = v else {
            return Err("repro line is not a JSON object".to_string());
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let str_field = |key: &str| match get(key) {
            Some(Json::Str(s)) => Ok(s.clone()),
            Some(_) => Err(format!("repro field '{key}' is not a string")),
            None => Err(format!("repro line missing '{key}'")),
        };
        let seed = match get("seed") {
            Some(Json::Int(n)) => *n,
            Some(_) => return Err("repro field 'seed' is not an integer".to_string()),
            None => return Err("repro line missing 'seed'".to_string()),
        };
        let ops = match get("ops") {
            Some(Json::Arr(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        Json::Str(s) => out.push(s.clone()),
                        _ => return Err("repro field 'ops' holds a non-string".to_string()),
                    }
                }
                out
            }
            Some(_) => return Err("repro field 'ops' is not an array".to_string()),
            None => Vec::new(),
        };
        Ok(Repro {
            query: str_field("query")?,
            doc: str_field("doc")?,
            seed,
            note: match get("note") {
                Some(Json::Str(s)) => s.clone(),
                _ => String::new(),
            },
            ops,
        })
    }

    /// Builds the repro recorded for a (usually minimised) divergence.
    pub fn from_divergence(d: &Divergence, note: &str) -> Repro {
        Repro {
            query: d.query.clone(),
            doc: d.doc_sexp.clone(),
            seed: d.seed,
            note: note.to_string(),
            ops: Vec::new(),
        }
    }

    /// Builds the mutation repro recorded for a (usually shrunk) cache
    /// divergence: base document + full op script + failing query.
    pub fn from_mutation(d: &MutDivergence, note: &str) -> Repro {
        Repro {
            query: d.query().to_string(),
            doc: d.doc_sexp.clone(),
            seed: d.seed,
            note: note.to_string(),
            ops: d.ops.iter().map(ScriptOp::to_line).collect(),
        }
    }

    /// Replays this repro. Plain entries go through a fresh cross-route
    /// [`Conformer`] over their own catalog (query labels interned first,
    /// then document labels — the same order the fuzzer saw them);
    /// mutation entries re-execute their op script through the engine +
    /// result cache via [`run_script`] with no fault. Returns the
    /// divergence if the repro still reproduces, `Ok(None)` if the
    /// routes (or the cache and the oracle) now agree.
    pub fn replay(&self) -> Result<Option<Divergence>, String> {
        if !self.ops.is_empty() {
            let ops = self
                .ops
                .iter()
                .map(|l| ScriptOp::from_line(l))
                .collect::<Result<Vec<_>, _>>()?;
            let mut div = run_script(&self.doc, &ops, None)?;
            if let Some(d) = &mut div {
                d.seed = self.seed;
            }
            return Ok(div.map(|d| d.to_divergence()));
        }
        let catalog = Arc::new(Catalog::new());
        parse_rpath_catalog(&self.query, &catalog)
            .map_err(|e| format!("repro query `{}`: {e}", self.query))?;
        let doc = parse_sexp_catalog(&self.doc, &catalog)
            .map_err(|e| format!("repro doc `{}`: {e}", self.doc))?;
        let mut conf = Conformer::new(catalog);
        conf.check(&self.query, &doc, self.seed)
    }
}

/// Loads every repro from a `.jsonl` file, skipping blank and `#` lines.
/// A missing file is an empty corpus, not an error.
pub fn load(path: &Path) -> Result<Vec<Repro>, String> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(Repro::from_line(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?);
    }
    Ok(out)
}

/// Appends one repro line to a `.jsonl` file, creating it (and its
/// parent directory) if needed.
pub fn append(path: &Path, repro: &Repro) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", repro.to_line())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_roundtrip() {
        let r = Repro {
            query: "down*[b and !a]".to_string(),
            doc: "(a (b \"x y\") b)".to_string(),
            seed: 99,
            note: "quotes survive".to_string(),
            ops: Vec::new(),
        };
        assert_eq!(Repro::from_line(&r.to_line()).unwrap(), r);
        // ops extension survives the roundtrip, and stays off plain lines
        assert!(!r.to_line().contains("\"ops\""));
        let m = Repro {
            ops: vec!["query 0 down".to_string(), "relabel 1 a".to_string()],
            ..r
        };
        assert_eq!(Repro::from_line(&m.to_line()).unwrap(), m);
    }

    #[test]
    fn mutation_repro_replays_through_the_cache() {
        let clean = Repro {
            query: "down*[b]".to_string(),
            doc: "(a (b c) b)".to_string(),
            seed: 5,
            note: String::new(),
            ops: vec![
                "query 0 down*[b]".to_string(),
                "relabel 1 a".to_string(),
                "query 0 down*[b]".to_string(),
            ],
        };
        assert!(clean.replay().unwrap().is_none());
        let broken = Repro {
            ops: vec!["query 0 bogus[".to_string()],
            ..clean
        };
        assert!(broken.replay().is_err());
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(Repro::from_line("not json").is_err());
        assert!(Repro::from_line("[1,2]").is_err());
        assert!(Repro::from_line(r#"{"query":"down"}"#).is_err());
        assert!(Repro::from_line(r#"{"query":"down","doc":"(a)","seed":"x"}"#).is_err());
    }

    #[test]
    fn replay_of_agreeing_repro_is_clean() {
        let r = Repro {
            query: "down*[b]".to_string(),
            doc: "(a (b a) b)".to_string(),
            seed: 0,
            note: String::new(),
            ops: Vec::new(),
        };
        assert!(r.replay().unwrap().is_none());
    }

    #[test]
    fn load_skips_comments_and_blanks() {
        let dir = std::env::temp_dir().join("twx-conform-corpus-test");
        let path = dir.join("r.jsonl");
        let _ = fs::remove_file(&path);
        let r = Repro {
            query: ".".to_string(),
            doc: "(a)".to_string(),
            seed: 1,
            note: String::new(),
            ops: Vec::new(),
        };
        append(&path, &r).unwrap();
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, "# a comment\n").unwrap();
        append(&path, &r).unwrap();
        assert_eq!(load(&path).unwrap(), vec![r.clone(), r]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_empty_corpus() {
        assert!(load(Path::new("/nonexistent/definitely/absent.jsonl"))
            .unwrap()
            .is_empty());
    }
}

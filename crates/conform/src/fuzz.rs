//! The seeded fuzzing driver behind `twx-fuzz`.
//!
//! Deterministic end to end: a master [`SplitMix64`] seeded with
//! `FuzzConfig::seed` hands each trial its own sub-seed, so any failing
//! trial can be regenerated from `(seed, trial index)` alone — and the
//! repro line records the sub-seed.

use std::sync::Arc;
use std::time::{Duration, Instant};

use twx_obs::json::Json;
use twx_regxpath::generate::{random_rpath, RGenConfig};
use twx_regxpath::print::rpath_to_string;
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::Catalog;

use crate::shrink::minimize;
use crate::{Conformer, Divergence, Fault, FrontierFault, RouteId};

/// Knobs for [`run_fuzz`].
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Master seed: same seed, same trials, same verdict.
    pub seed: u64,
    /// Trials to run (may be cut short by `time_budget`).
    pub iters: u64,
    /// Optional wall-clock cap on the whole run.
    pub time_budget: Option<Duration>,
    /// Maximum query AST generation depth (each trial draws a depth in
    /// `1..=max_depth`).
    pub max_depth: usize,
    /// Maximum document size in nodes (each trial draws `1..=max`).
    pub max_doc_nodes: usize,
    /// Labels in the shared catalog (`a`, `b`, …).
    pub labels: usize,
    /// Test-only answer corruption (see [`Fault`]).
    pub fault: Option<Fault>,
    /// Test-only corruption of the parallel frontier kernels, applied
    /// to the [`RouteId::Parallel`] route (see [`FrontierFault`]).
    pub frontier_fault: Option<FrontierFault>,
    /// Whether to minimise divergences before reporting them.
    pub shrink: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0,
            iters: 100,
            time_budget: None,
            max_depth: 4,
            max_doc_nodes: 12,
            labels: 2,
            fault: None,
            frontier_fault: None,
            shrink: true,
        }
    }
}

/// One reported (and possibly minimised) failure.
#[derive(Clone, Debug)]
pub struct FoundDivergence {
    /// The divergence as generated.
    pub original: Divergence,
    /// The minimised divergence (equals `original` when shrinking is
    /// off or no shrink step was accepted).
    pub minimized: Divergence,
    /// AST size of the minimised query.
    pub query_size: usize,
    /// Node count of the minimised document.
    pub doc_nodes: usize,
    /// Accepted shrink steps.
    pub shrink_steps: u64,
}

/// The outcome of a fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// The master seed.
    pub seed: u64,
    /// Trials actually executed (≤ `iters` under a time budget).
    pub iterations: u64,
    /// Every divergence found, in discovery order.
    pub divergences: Vec<FoundDivergence>,
    /// Total accepted shrink steps.
    pub shrink_steps: u64,
    /// Accumulated `eval_nanos` per route.
    pub route_nanos: Vec<(RouteId, u64)>,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl FuzzReport {
    /// The machine-readable summary printed by `twx-fuzz`.
    pub fn to_json(&self) -> Json {
        let routes: Vec<Json> = self
            .route_nanos
            .iter()
            .map(|(r, n)| Json::obj().field("route", r.name()).field("eval_nanos", *n))
            .collect();
        let divergences: Vec<Json> = self
            .divergences
            .iter()
            .map(|d| {
                Json::obj()
                    .field("query", d.minimized.query.as_str())
                    .field("doc", d.minimized.doc_sexp.as_str())
                    .field("seed", d.minimized.seed)
                    .field(
                        "routes",
                        d.minimized
                            .route_names()
                            .into_iter()
                            .map(Json::from)
                            .collect::<Vec<Json>>(),
                    )
                    .field("query_size", d.query_size)
                    .field("doc_nodes", d.doc_nodes)
                    .field("shrink_steps", d.shrink_steps)
            })
            .collect();
        Json::obj()
            .field("schema", "twx-fuzz/1")
            .field("seed", self.seed)
            .field("iterations", self.iterations)
            .field("divergences", self.divergences.len())
            .field("shrink_steps", self.shrink_steps)
            .field("elapsed_ms", self.elapsed.as_millis() as u64)
            .field("routes", Json::Arr(routes))
            .field("found", Json::Arr(divergences))
    }
}

/// Label names `a`, `b`, …, `z`, `l26`, `l27`, … for the shared catalog.
pub(crate) fn label_names(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            if i < 26 {
                ((b'a' + i as u8) as char).to_string()
            } else {
                format!("l{i}")
            }
        })
        .collect()
}

pub(crate) const SHAPES: [Shape; 5] = [
    Shape::Recursive,
    Shape::Deep(2),
    Shape::Bounded(3),
    Shape::Wide,
    Shape::DocumentLike,
];

/// Runs the differential fuzzer. Deterministic in `cfg` (modulo the
/// wall-clock `time_budget`, which only decides how many of the
/// deterministic trials execute).
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let started = Instant::now();
    let catalog = Arc::new(Catalog::from_names(label_names(cfg.labels.max(1))));
    let mut conf = Conformer::with_faults(Arc::clone(&catalog), cfg.fault, cfg.frontier_fault);
    let gen_cfg = RGenConfig {
        labels: cfg.labels.max(1),
        ..RGenConfig::default()
    };
    let mut master = SplitMix64::seed_from_u64(cfg.seed);
    let mut report = FuzzReport {
        seed: cfg.seed,
        iterations: 0,
        divergences: Vec::new(),
        shrink_steps: 0,
        route_nanos: Vec::new(),
        elapsed: Duration::ZERO,
    };

    for _ in 0..cfg.iters {
        if let Some(budget) = cfg.time_budget {
            if started.elapsed() >= budget {
                break;
            }
        }
        let trial_seed = master.next_u64();
        let mut rng = SplitMix64::seed_from_u64(trial_seed);
        let depth = rng.gen_range(1..cfg.max_depth.max(1) + 1);
        let n = rng.gen_range(1..cfg.max_doc_nodes.max(1) + 1);
        let shape = SHAPES[rng.gen_range(0..SHAPES.len())];
        let doc = random_document_in(shape, n, &catalog, &mut rng);
        let path = random_rpath(&gen_cfg, depth, &mut rng);
        let query = rpath_to_string(&path, &catalog.snapshot());

        report.iterations += 1;
        let div = conf
            .check(&query, &doc, trial_seed)
            .expect("printed query must re-parse");
        let Some(div) = div else { continue };
        let (minimized, query_size, doc_nodes, steps) = if cfg.shrink {
            match minimize(&mut conf, &div) {
                Ok(out) => (out.divergence, out.query_size, out.doc_nodes, out.steps),
                Err(_) => (div.clone(), path.size(), doc.tree.len(), 0),
            }
        } else {
            (div.clone(), path.size(), doc.tree.len(), 0)
        };
        report.shrink_steps += steps;
        report.divergences.push(FoundDivergence {
            original: div,
            minimized,
            query_size,
            doc_nodes,
            shrink_steps: steps,
        });
    }

    report.route_nanos = conf.route_nanos();
    report.elapsed = started.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;
    use treewalk::Backend;

    /// The CI gate in miniature: a short clean run finds nothing.
    #[test]
    fn clean_run_has_no_divergences() {
        let report = run_fuzz(&FuzzConfig {
            seed: 42,
            iters: 40,
            max_doc_nodes: 8,
            ..FuzzConfig::default()
        });
        assert_eq!(report.iterations, 40);
        assert!(
            report.divergences.is_empty(),
            "divergence: {}",
            report.divergences[0].original.describe()
        );
        let json = report.to_json().render();
        assert!(json.contains("\"schema\":\"twx-fuzz/1\""));
        assert!(json.contains("\"divergences\":0"));
    }

    #[test]
    fn same_seed_same_run() {
        let cfg = FuzzConfig {
            seed: 7,
            iters: 15,
            ..FuzzConfig::default()
        };
        let a = run_fuzz(&cfg);
        let b = run_fuzz(&cfg);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.divergences.len(), b.divergences.len());
    }

    /// Acceptance criterion: an intentionally-broken backend is caught
    /// and shrunk to ≤ 6 query AST nodes and ≤ 8 document nodes.
    #[test]
    fn fault_injection_is_caught_and_shrunk() {
        let report = run_fuzz(&FuzzConfig {
            seed: 42,
            iters: 60,
            fault: Some(Fault {
                route: RouteId::Hot(Backend::Product),
                kind: FaultKind::InsertRoot,
            }),
            ..FuzzConfig::default()
        });
        assert!(
            !report.divergences.is_empty(),
            "fault never diverged in {} iterations",
            report.iterations
        );
        let d = &report.divergences[0];
        assert_eq!(d.minimized.route_names(), vec!["hot:product"]);
        assert!(d.query_size <= 6, "query_size {} > 6", d.query_size);
        assert!(d.doc_nodes <= 8, "doc_nodes {} > 8", d.doc_nodes);
    }

    /// The `--fault vm=drop-max` self-test: a seeded bug in the VM route
    /// is caught by the differential check and shrunk to a tiny repro —
    /// proof the 10th route is actually guarded, not just present.
    #[test]
    fn vm_fault_is_caught_and_shrunk() {
        let report = run_fuzz(&FuzzConfig {
            seed: 42,
            iters: 60,
            fault: Some(Fault {
                route: RouteId::Vm,
                kind: FaultKind::DropMax,
            }),
            ..FuzzConfig::default()
        });
        assert!(
            !report.divergences.is_empty(),
            "vm fault never diverged in {} iterations",
            report.iterations
        );
        let d = &report.divergences[0];
        assert_eq!(d.minimized.route_names(), vec!["vm"]);
        assert!(d.query_size <= 6, "query_size {} > 6", d.query_size);
        assert!(d.doc_nodes <= 8, "doc_nodes {} > 8", d.doc_nodes);
    }

    /// The `--fault frontier=drop-chunk` self-test: a parallel kernel
    /// that silently loses a chunk of the id space is caught by the
    /// 11th route's differential check and shrunk to a tiny repro.
    #[test]
    fn frontier_fault_is_caught_and_shrunk() {
        let report = run_fuzz(&FuzzConfig {
            seed: 42,
            iters: 60,
            frontier_fault: Some(FrontierFault::DropChunk),
            ..FuzzConfig::default()
        });
        assert!(
            !report.divergences.is_empty(),
            "frontier fault never diverged in {} iterations",
            report.iterations
        );
        let d = &report.divergences[0];
        assert_eq!(d.minimized.route_names(), vec!["parallel"]);
        assert!(d.query_size <= 6, "query_size {} > 6", d.query_size);
        assert!(d.doc_nodes <= 8, "doc_nodes {} > 8", d.doc_nodes);
    }

    #[test]
    fn time_budget_cuts_the_run_short() {
        let report = run_fuzz(&FuzzConfig {
            seed: 1,
            iters: u64::MAX,
            time_budget: Some(Duration::from_millis(200)),
            ..FuzzConfig::default()
        });
        assert!(report.iterations > 0);
        assert!(report.elapsed >= Duration::from_millis(200));
    }
}

//! `twx-fuzz` — the differential conformance fuzzer.
//!
//! ```text
//! twx-fuzz [--seed N] [--iters N] [--time-budget SECS] [--max-depth N]
//!          [--max-doc-nodes N] [--labels N] [--replay PATH]
//!          [--corpus PATH]
//!          [--fault ROUTE=KIND|frontier=KIND|cache=KIND|store=KIND]
//!          [--no-shrink] [--mutate] [--crash]
//! ```
//!
//! Replays the regression corpus (if `--replay` is given), then runs the
//! seeded fuzz loop, and prints one JSON summary line to stdout
//! (`"schema":"twx-fuzz/1"`). Newly-found divergences are minimised and,
//! with `--corpus`, appended to the golden `.jsonl` file. Exit status:
//! `0` all routes agreed everywhere, `1` any divergence (fuzzed or
//! replayed), `2` usage error.
//!
//! With `--mutate` the loop instead interleaves random typed edits with
//! queries on a live versioned document, checking the engine's result
//! cache against a recompute-from-scratch oracle on every answer
//! (`"schema":"twx-fuzz-mutate/1"`). In this mode `--fault` takes the
//! `cache=skip-invalidate` form, which commits edits without telling the
//! cache which span they touched — the self-test that proves a broken
//! invalidation pass would be caught and shrunk.
//!
//! With `--crash` the loop drives a store-backed corpus with random
//! edit/snapshot scripts, simulates a crash with a torn journal tail,
//! recovers from disk, and diffs the recovered corpus node-for-node
//! against the acknowledged pre-crash state
//! (`"schema":"twx-fuzz-crash/1"`). Here `--fault` takes the
//! `store=skip-fsync` form — acknowledge appends without syncing them —
//! the self-test that proves a silent durability bug would be caught.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use twx_conform::{
    corpus, run_crash_fuzz, run_fuzz, run_mutation_fuzz, CacheFault, Fault, FrontierFault,
    FuzzConfig, Repro, StoreFault,
};
use twx_obs::json::Json;

struct Args {
    cfg: FuzzConfig,
    replay: Option<PathBuf>,
    corpus: Option<PathBuf>,
    mutate: bool,
    crash: bool,
    cache_fault: Option<CacheFault>,
    store_fault: StoreFault,
}

fn usage() -> String {
    "usage: twx-fuzz [--seed N] [--iters N] [--time-budget SECS] [--max-depth N] \
     [--max-doc-nodes N] [--labels N] [--replay PATH] [--corpus PATH] \
     [--fault ROUTE=KIND|frontier=KIND|cache=KIND|store=KIND] [--no-shrink] \
     [--mutate] [--crash]"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: FuzzConfig::default(),
        replay: None,
        corpus: None,
        mutate: false,
        crash: false,
        cache_fault: None,
        store_fault: StoreFault::None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--seed" => args.cfg.seed = parse_num(&value("--seed")?)?,
            "--iters" => args.cfg.iters = parse_num(&value("--iters")?)?,
            "--time-budget" => {
                let secs: f64 = value("--time-budget")?
                    .parse()
                    .map_err(|e| format!("--time-budget: {e}"))?;
                args.cfg.time_budget = Some(Duration::from_secs_f64(secs));
            }
            "--max-depth" => args.cfg.max_depth = parse_num(&value("--max-depth")?)? as usize,
            "--max-doc-nodes" => {
                args.cfg.max_doc_nodes = parse_num(&value("--max-doc-nodes")?)? as usize
            }
            "--labels" => args.cfg.labels = parse_num(&value("--labels")?)? as usize,
            "--replay" => args.replay = Some(PathBuf::from(value("--replay")?)),
            "--corpus" => args.corpus = Some(PathBuf::from(value("--corpus")?)),
            "--fault" => {
                let spec = value("--fault")?;
                if spec.starts_with("cache=") {
                    args.cache_fault = Some(CacheFault::parse(&spec)?);
                } else if let Some(kind) = spec.strip_prefix("frontier=") {
                    args.cfg.frontier_fault = Some(
                        FrontierFault::parse(kind)
                            .ok_or_else(|| format!("unknown frontier fault '{spec}'"))?,
                    );
                } else if spec.starts_with("store=") {
                    args.store_fault = StoreFault::parse(&spec)
                        .ok_or_else(|| format!("unknown store fault '{spec}'"))?;
                } else {
                    args.cfg.fault = Some(Fault::parse(&spec)?);
                }
            }
            "--mutate" => args.mutate = true,
            "--crash" => args.crash = true,
            "--no-shrink" => args.cfg.shrink = false,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|e| format!("bad number '{s}': {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("twx-fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    if args.cache_fault.is_some() && !args.mutate {
        eprintln!("twx-fuzz: cache faults need --mutate\n{}", usage());
        return ExitCode::from(2);
    }
    if args.store_fault != StoreFault::None && !args.crash {
        eprintln!("twx-fuzz: store faults need --crash\n{}", usage());
        return ExitCode::from(2);
    }
    if args.mutate && args.crash {
        eprintln!("twx-fuzz: --mutate and --crash are exclusive\n{}", usage());
        return ExitCode::from(2);
    }
    if args.crash {
        return run_crash(&args);
    }
    if args.mutate {
        return run_mutate(&args);
    }

    // Phase 1: replay the golden corpus.
    let mut replayed = 0u64;
    let mut replay_divergences = 0u64;
    if let Some(path) = &args.replay {
        let repros = match corpus::load(path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("twx-fuzz: {e}");
                return ExitCode::from(2);
            }
        };
        for r in &repros {
            replayed += 1;
            match r.replay() {
                Ok(None) => {}
                Ok(Some(div)) => {
                    replay_divergences += 1;
                    eprintln!(
                        "twx-fuzz: REGRESSION {} — {}",
                        if r.note.is_empty() {
                            "(no note)"
                        } else {
                            &r.note
                        },
                        div.describe()
                    );
                }
                Err(e) => {
                    replay_divergences += 1;
                    eprintln!("twx-fuzz: corpus line broken: {e}");
                }
            }
        }
    }

    // Phase 2: fuzz.
    let report = run_fuzz(&args.cfg);
    for d in &report.divergences {
        eprintln!("twx-fuzz: DIVERGENCE {}", d.minimized.describe());
        if let Some(path) = &args.corpus {
            let repro = Repro::from_divergence(&d.minimized, "found by twx-fuzz");
            if let Err(e) = corpus::append(path, &repro) {
                eprintln!("twx-fuzz: cannot append to {}: {e}", path.display());
            }
        }
    }

    let summary = match report.to_json() {
        Json::Obj(fields) => {
            let mut j = Json::Obj(fields);
            j = j.field("replayed", replayed);
            j = j.field("replay_divergences", replay_divergences);
            j
        }
        other => other,
    };
    println!("{}", summary.render());

    if report.divergences.is_empty() && replay_divergences == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The `--crash` mode: store-backed corpora killed at arbitrary points
/// and recovered from disk; any recovered corpus that is not
/// node-for-node identical to the acknowledged pre-crash state is a
/// divergence. Same exit-status conventions as the other modes.
fn run_crash(args: &Args) -> ExitCode {
    let report = run_crash_fuzz(&args.cfg, args.store_fault);
    for d in &report.divergences {
        eprintln!("twx-fuzz: CRASH DIVERGENCE {}", d.describe());
    }
    println!("{}", report.to_json().render());
    if report.divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The `--mutate` mode: live-document edit/query fuzzing against the
/// result cache, same corpus-append and exit-status conventions.
fn run_mutate(args: &Args) -> ExitCode {
    let report = run_mutation_fuzz(&args.cfg, args.cache_fault);
    for d in &report.divergences {
        eprintln!("twx-fuzz: CACHE DIVERGENCE {}", d.describe());
        if let Some(path) = &args.corpus {
            let repro = Repro::from_mutation(d, "found by twx-fuzz --mutate");
            if let Err(e) = corpus::append(path, &repro) {
                eprintln!("twx-fuzz: cannot append to {}: {e}", path.display());
            }
        }
    }
    println!("{}", report.to_json().render());
    if report.divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

//! Mutation fuzzing: random edit/query interleavings on a live document.
//!
//! Where [`crate::fuzz`] checks that every *route* agrees on a static
//! `(query, document)` pair, this module checks that the **result cache
//! with precise invalidation** stays correct while the document changes
//! underneath it. Each trial generates a script of [`ScriptOp`]s — typed
//! edits and queries — and executes it against a
//! [`VersionedDocument`] fronted by an [`Engine`] and a [`ResultCache`];
//! every query answer (cached or not) is compared against a
//! recompute-from-scratch [`eval_rel_naive`] oracle on the pinned
//! snapshot. A divergence is shrunk over the *edit script* as well as
//! the query and the document, and serialises into the golden corpus via
//! the `ops` extension of [`crate::Repro`].
//!
//! The test-only [`CacheFault::SkipInvalidate`] hook commits an edit but
//! moves the cache's version forward **without** span filtering — the
//! precise unsoundness a broken invalidation pass would introduce — so
//! the harness can prove it would catch one.

use std::sync::Arc;
use std::time::{Duration, Instant};

use treewalk::{Backend, Engine, ResultCache};
use twx_obs::json::Json;
use twx_regxpath::eval_naive::eval_rel_naive;
use twx_regxpath::generate::{random_rpath, RGenConfig};
use twx_regxpath::parser::parse_rpath_catalog;
use twx_regxpath::print::rpath_to_string;
use twx_regxpath::shrink::shrink_rpath;
use twx_xtree::edit::{apply_edit, random_edit, Edit};
use twx_xtree::generate::random_document_in;
use twx_xtree::parse::parse_sexp_catalog;
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::serialize::to_sexp;
use twx_xtree::shrink::shrink_tree;
use twx_xtree::{Catalog, NodeId, NodeSet, Tree, VersionedDocument};

use crate::fuzz::{label_names, FuzzConfig, SHAPES};
use crate::{Divergence, RouteId};

/// A deliberate corruption of the edit→cache protocol, injected between
/// committing an edit and telling the result cache about it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheFault {
    /// Bump the cache's notion of the document version without filtering
    /// entries against the affected span — every cached answer survives
    /// an edit it may depend on.
    SkipInvalidate,
}

impl CacheFault {
    /// Parses the `cache=<kind>` form of a `--fault` spec.
    pub fn parse(spec: &str) -> Result<CacheFault, String> {
        match spec.strip_prefix("cache=") {
            Some("skip-invalidate") => Ok(CacheFault::SkipInvalidate),
            Some(other) => Err(format!("unknown cache fault kind '{other}'")),
            None => Err(format!("cache fault spec '{spec}' is not cache=<kind>")),
        }
    }

    /// Stable name for JSON summaries.
    pub fn name(self) -> &'static str {
        match self {
            CacheFault::SkipInvalidate => "cache=skip-invalidate",
        }
    }
}

/// One step of a mutation script. Labels are carried by *name* and node
/// ids are pre-edit preorder ids, so a script is self-contained text —
/// see [`ScriptOp::to_line`] / [`ScriptOp::from_line`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptOp {
    /// Evaluate `query` from context node `ctx` (clamped to the current
    /// document length) through the engine + result cache, and check the
    /// answer against the naive oracle on the same snapshot.
    Query { ctx: u32, query: String },
    /// Relabel node `node` to `label`.
    Relabel { node: u32, label: String },
    /// Insert a fresh `label` leaf as child `position` of `parent`.
    Insert {
        parent: u32,
        position: u32,
        label: String,
    },
    /// Remove the subtree rooted at `node`.
    Remove { node: u32 },
}

impl ScriptOp {
    /// Renders one op as a line of the script language:
    /// `query <ctx> <query…>` | `relabel <node> <label>` |
    /// `insert <parent> <position> <label>` | `remove <node>`.
    pub fn to_line(&self) -> String {
        match self {
            ScriptOp::Query { ctx, query } => format!("query {ctx} {query}"),
            ScriptOp::Relabel { node, label } => format!("relabel {node} {label}"),
            ScriptOp::Insert {
                parent,
                position,
                label,
            } => format!("insert {parent} {position} {label}"),
            ScriptOp::Remove { node } => format!("remove {node}"),
        }
    }

    /// Inverse of [`ScriptOp::to_line`].
    pub fn from_line(line: &str) -> Result<ScriptOp, String> {
        let line = line.trim();
        let (head, rest) = line
            .split_once(' ')
            .ok_or_else(|| format!("script op '{line}' has no operands"))?;
        let num = |s: &str| -> Result<u32, String> {
            s.parse()
                .map_err(|e| format!("script op '{line}': bad number '{s}': {e}"))
        };
        match head {
            "query" => {
                let (ctx, query) = rest
                    .split_once(' ')
                    .ok_or_else(|| format!("script op '{line}' needs a context and a query"))?;
                Ok(ScriptOp::Query {
                    ctx: num(ctx)?,
                    query: query.to_string(),
                })
            }
            "relabel" => {
                let (node, label) = rest
                    .split_once(' ')
                    .ok_or_else(|| format!("script op '{line}' needs a node and a label"))?;
                Ok(ScriptOp::Relabel {
                    node: num(node)?,
                    label: label.trim().to_string(),
                })
            }
            "insert" => {
                let mut it = rest.split_whitespace();
                let (Some(parent), Some(position), Some(label), None) =
                    (it.next(), it.next(), it.next(), it.next())
                else {
                    return Err(format!(
                        "script op '{line}' needs a parent, a position, and a label"
                    ));
                };
                Ok(ScriptOp::Insert {
                    parent: num(parent)?,
                    position: num(position)?,
                    label: label.to_string(),
                })
            }
            "remove" => Ok(ScriptOp::Remove {
                node: num(rest.trim())?,
            }),
            other => Err(format!(
                "unknown script op '{other}' (one of: query, relabel, insert, remove)"
            )),
        }
    }

    fn is_edit(&self) -> bool {
        !matches!(self, ScriptOp::Query { .. })
    }
}

/// Count of edit (non-query) ops in a script.
pub fn edit_count(ops: &[ScriptOp]) -> usize {
    ops.iter().filter(|o| o.is_edit()).count()
}

/// A cached answer that disagreed with the recompute-from-scratch oracle.
#[derive(Clone, Debug)]
pub struct MutDivergence {
    /// The base document (before any edit), as an s-expression.
    pub doc_sexp: String,
    /// The (possibly shrunk) script; the failing query is the op at
    /// [`MutDivergence::fail_index`].
    pub ops: Vec<ScriptOp>,
    /// The trial seed that produced the script (0 for replays).
    pub seed: u64,
    /// Index of the failing [`ScriptOp::Query`] within `ops`.
    pub fail_index: usize,
    /// The oracle's answer on the pinned snapshot.
    pub expected: Vec<u32>,
    /// What the engine + result cache returned.
    pub got: Vec<u32>,
}

impl MutDivergence {
    /// The failing query's surface syntax.
    pub fn query(&self) -> &str {
        match &self.ops[self.fail_index] {
            ScriptOp::Query { query, .. } => query,
            _ => unreachable!("fail_index always names a query op"),
        }
    }

    /// One-line human summary.
    pub fn describe(&self) -> String {
        format!(
            "script [{}] on {} : cached answer {:?} disagrees with oracle {:?} at op {}",
            self.ops
                .iter()
                .map(ScriptOp::to_line)
                .collect::<Vec<_>>()
                .join("; "),
            self.doc_sexp,
            self.got,
            self.expected,
            self.fail_index,
        )
    }

    /// Projects onto the cross-route [`Divergence`] shape so mutation
    /// repros flow through the same corpus/replay machinery. The
    /// disagreeing route is the cached engine path — a hot
    /// [`Backend::Product`] engine fronted by the result cache.
    pub fn to_divergence(&self) -> Divergence {
        Divergence {
            query: self.query().to_string(),
            doc_sexp: self.doc_sexp.clone(),
            seed: self.seed,
            reference: self.expected.clone(),
            disagreeing: vec![(RouteId::Hot(Backend::Product), Ok(self.got.clone()))],
        }
    }
}

/// Executes `ops` against `doc_sexp` through an engine + result cache,
/// checking every query against the naive oracle on the same snapshot.
/// Returns the first divergence, `Ok(None)` on a clean run, and `Err`
/// only if the document or a query fails to parse. Edits that no longer
/// apply (e.g. after the document was shrunk) are skipped, keeping every
/// script executable — the shrinker only accepts a candidate if the
/// divergence *persists*, so skipping is sound.
pub fn run_script(
    doc_sexp: &str,
    ops: &[ScriptOp],
    fault: Option<CacheFault>,
) -> Result<Option<MutDivergence>, String> {
    let catalog = Arc::new(Catalog::new());
    let base = parse_sexp_catalog(doc_sexp, &catalog)
        .map_err(|e| format!("script doc `{doc_sexp}`: {e}"))?;
    let mut vdoc = VersionedDocument::new(Arc::new(base));
    let engine = Engine::with_backend(Backend::Product);
    let cache = ResultCache::default();
    const DOC_ID: u64 = 0;

    for (i, op) in ops.iter().enumerate() {
        match op {
            ScriptOp::Query { ctx, query } => {
                let raw = parse_rpath_catalog(query, &catalog)
                    .map_err(|e| format!("script query `{query}`: {e}"))?;
                let prepared = engine
                    .prepare_in(&catalog, query)
                    .map_err(|e| format!("script query `{query}`: {e}"))?;
                let len = vdoc.doc.tree.len();
                let ctx = NodeId((*ctx).min(len as u32 - 1));
                let got: Vec<u32> = prepared
                    .eval_cached(&cache, DOC_ID, vdoc.version, &vdoc.doc, ctx)
                    .iter()
                    .map(|v| v.0)
                    .collect();
                let expected: Vec<u32> = eval_rel_naive(&vdoc.doc.tree, &raw)
                    .image(&NodeSet::singleton(len, ctx))
                    .iter()
                    .map(|v| v.0)
                    .collect();
                if got != expected {
                    return Ok(Some(MutDivergence {
                        doc_sexp: doc_sexp.to_string(),
                        ops: ops.to_vec(),
                        seed: 0,
                        fail_index: i,
                        expected,
                        got,
                    }));
                }
            }
            edit_op => {
                let edit = match edit_op {
                    ScriptOp::Relabel { node, label } => Edit::Relabel {
                        node: NodeId(*node),
                        label: catalog.intern(label),
                    },
                    ScriptOp::Insert {
                        parent,
                        position,
                        label,
                    } => Edit::InsertChild {
                        parent: NodeId(*parent),
                        position: *position as usize,
                        label: catalog.intern(label),
                    },
                    ScriptOp::Remove { node } => Edit::RemoveSubtree {
                        node: NodeId(*node),
                    },
                    ScriptOp::Query { .. } => unreachable!(),
                };
                let Ok(receipt) = vdoc.apply(&edit) else {
                    continue; // stale op after shrinking; skip
                };
                match fault {
                    None => {
                        cache.invalidate(DOC_ID, receipt.affected, receipt.version);
                    }
                    Some(CacheFault::SkipInvalidate) => {
                        cache.skip_invalidate(DOC_ID, receipt.version);
                    }
                }
            }
        }
    }
    Ok(None)
}

/// The outcome of a mutation-fuzzing run.
#[derive(Clone, Debug)]
pub struct MutationReport {
    /// The master seed.
    pub seed: u64,
    /// Trials actually executed (≤ `iters` under a time budget).
    pub iterations: u64,
    /// Every divergence found, post-shrink, in discovery order.
    pub divergences: Vec<MutDivergence>,
    /// Total accepted shrink steps.
    pub shrink_steps: u64,
    /// The injected fault, if any.
    pub fault: Option<CacheFault>,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl MutationReport {
    /// The machine-readable summary printed by `twx-fuzz --mutate`.
    pub fn to_json(&self) -> Json {
        let found: Vec<Json> = self
            .divergences
            .iter()
            .map(|d| {
                Json::obj()
                    .field("doc", d.doc_sexp.as_str())
                    .field(
                        "ops",
                        d.ops
                            .iter()
                            .map(|o| Json::from(o.to_line()))
                            .collect::<Vec<Json>>(),
                    )
                    .field("seed", d.seed)
                    .field("query", d.query())
                    .field("expected", render_ids(&d.expected))
                    .field("got", render_ids(&d.got))
                    .field("edits", edit_count(&d.ops))
            })
            .collect();
        let mut j = Json::obj()
            .field("schema", "twx-fuzz-mutate/1")
            .field("seed", self.seed)
            .field("iterations", self.iterations)
            .field("divergences", self.divergences.len())
            .field("shrink_steps", self.shrink_steps)
            .field("elapsed_ms", self.elapsed.as_millis() as u64)
            .field("found", Json::Arr(found));
        if let Some(f) = self.fault {
            j = j.field("fault", f.name());
        }
        j
    }
}

fn render_ids(ids: &[u32]) -> Vec<Json> {
    ids.iter().map(|&v| Json::from(v)).collect()
}

/// Runs the mutation fuzzer: `cfg.iters` deterministic trials, each a
/// fresh random document plus a random edit/query script, executed by
/// [`run_script`]. Divergences are shrunk (op drops, then document
/// subtrees, then the failing query's AST) before reporting when
/// `cfg.shrink` is set. `cfg.fault` (a *route* fault) is ignored here;
/// the cache-protocol fault comes in through `fault`.
pub fn run_mutation_fuzz(cfg: &FuzzConfig, fault: Option<CacheFault>) -> MutationReport {
    let started = Instant::now();
    let names = label_names(cfg.labels.max(1));
    let catalog = Arc::new(Catalog::from_names(names.iter().map(String::as_str)));
    let labels: Vec<_> = names.iter().map(|n| catalog.intern(n)).collect();
    let gen_cfg = RGenConfig {
        labels: cfg.labels.max(1),
        ..RGenConfig::default()
    };
    let alphabet = catalog.snapshot();
    let mut master = SplitMix64::seed_from_u64(cfg.seed);
    let mut report = MutationReport {
        seed: cfg.seed,
        iterations: 0,
        divergences: Vec::new(),
        shrink_steps: 0,
        fault,
        elapsed: Duration::ZERO,
    };

    for _ in 0..cfg.iters {
        if let Some(budget) = cfg.time_budget {
            if started.elapsed() >= budget {
                break;
            }
        }
        let trial_seed = master.next_u64();
        let mut rng = SplitMix64::seed_from_u64(trial_seed);
        let n = rng.gen_range(1..cfg.max_doc_nodes.max(1) + 1);
        let shape = SHAPES[rng.gen_range(0..SHAPES.len())];
        let doc = random_document_in(shape, n, &catalog, &mut rng);
        let doc_sexp = to_sexp(&doc.tree, &alphabet);

        // Generate the script against a mirror of the evolving tree so
        // every edit is valid at generation time, and queries reuse a
        // small pool (same fingerprint + context ⇒ cache hits to check).
        let mut cur: Tree = doc.tree.clone();
        let mut pool: Vec<String> = Vec::new();
        let mut ops: Vec<ScriptOp> = Vec::new();
        let script_len = rng.gen_range(3..17);
        for _ in 0..script_len {
            if rng.gen_range(0..100u32) < 40 {
                let edit = random_edit(&cur, &labels, &mut rng);
                ops.push(match edit {
                    Edit::Relabel { node, label } => ScriptOp::Relabel {
                        node: node.0,
                        label: catalog.name(label),
                    },
                    Edit::InsertChild {
                        parent,
                        position,
                        label,
                    } => ScriptOp::Insert {
                        parent: parent.0,
                        position: position as u32,
                        label: catalog.name(label),
                    },
                    Edit::RemoveSubtree { node } => ScriptOp::Remove { node: node.0 },
                });
                let (next, _) = apply_edit(&cur, &edit).expect("random_edit is always valid");
                cur = next;
            } else {
                let query = if !pool.is_empty() && rng.gen_range(0..100u32) < 50 {
                    pool[rng.gen_range(0..pool.len())].clone()
                } else {
                    let depth = rng.gen_range(1..cfg.max_depth.max(1) + 1);
                    let q = rpath_to_string(&random_rpath(&gen_cfg, depth, &mut rng), &alphabet);
                    pool.push(q.clone());
                    q
                };
                let ctx = if rng.gen_range(0..100u32) < 70 {
                    0
                } else {
                    rng.gen_range(0..cur.len()) as u32
                };
                ops.push(ScriptOp::Query { ctx, query });
            }
        }

        report.iterations += 1;
        let div = run_script(&doc_sexp, &ops, fault).expect("generated script must replay");
        let Some(mut div) = div else { continue };
        div.seed = trial_seed;
        if cfg.shrink {
            let steps = shrink_script(&mut div, fault);
            report.shrink_steps += steps;
        }
        report.divergences.push(div);
    }

    report.elapsed = started.elapsed();
    report
}

/// Upper bound on script re-executions per shrink, so a pathological
/// divergence cannot stall the fuzz loop.
const SHRINK_RUN_CAP: u32 = 2_000;

/// Greedily minimises a mutation divergence in place: drop script ops,
/// then shrink the base document over subtree deletions, then shrink the
/// failing query's AST — re-running the whole script after every
/// candidate and keeping it only if *a* divergence persists. Returns the
/// number of accepted steps.
pub fn shrink_script(div: &mut MutDivergence, fault: Option<CacheFault>) -> u64 {
    let mut steps = 0u64;
    let runs = std::cell::Cell::new(0u32);
    let try_candidate = |doc: &str, ops: &[ScriptOp]| -> Option<MutDivergence> {
        if runs.get() >= SHRINK_RUN_CAP {
            return None;
        }
        runs.set(runs.get() + 1);
        match run_script(doc, ops, fault) {
            Ok(Some(mut d)) => {
                d.seed = 0;
                Some(d)
            }
            _ => None,
        }
    };
    let seed = div.seed;

    loop {
        let mut improved = false;

        // Pass 1: drop ops, trailing first (ops after the failure are
        // dead weight and always drop).
        let mut i = div.ops.len();
        while i > 0 {
            i -= 1;
            if div.ops.len() <= 1 {
                break;
            }
            let mut candidate = div.ops.clone();
            candidate.remove(i);
            if let Some(d) = try_candidate(&div.doc_sexp, &candidate) {
                *div = d;
                improved = true;
                steps += 1;
                i = i.min(div.ops.len());
            }
        }

        // Pass 2: shrink the base document by subtree deletion.
        'doc: loop {
            let catalog = Arc::new(Catalog::new());
            let Ok(base) = parse_sexp_catalog(&div.doc_sexp, &catalog) else {
                break;
            };
            for smaller in shrink_tree(&base.tree) {
                let sexp = to_sexp(&smaller, &catalog.snapshot());
                if let Some(d) = try_candidate(&sexp, &div.ops) {
                    *div = d;
                    improved = true;
                    steps += 1;
                    continue 'doc;
                }
            }
            break;
        }

        // Pass 3: shrink the failing query's AST.
        'query: loop {
            let idx = div.fail_index;
            let ScriptOp::Query { ctx, query } = div.ops[idx].clone() else {
                break;
            };
            let catalog = Arc::new(Catalog::new());
            let Ok(path) = parse_rpath_catalog(&query, &catalog) else {
                break;
            };
            let alphabet = catalog.snapshot();
            for smaller in shrink_rpath(&path) {
                let mut candidate = div.ops.clone();
                candidate[idx] = ScriptOp::Query {
                    ctx,
                    query: rpath_to_string(&smaller, &alphabet),
                };
                if let Some(d) = try_candidate(&div.doc_sexp, &candidate) {
                    *div = d;
                    improved = true;
                    steps += 1;
                    continue 'query;
                }
            }
            break;
        }

        if !improved || runs.get() >= SHRINK_RUN_CAP {
            break;
        }
    }
    div.seed = seed;
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CI gate in miniature: with sound invalidation, cached answers
    /// never drift from the recompute-from-scratch oracle.
    #[test]
    fn clean_mutation_run_has_no_divergences() {
        let report = run_mutation_fuzz(
            &FuzzConfig {
                seed: 42,
                iters: 60,
                ..FuzzConfig::default()
            },
            None,
        );
        assert_eq!(report.iterations, 60);
        assert!(
            report.divergences.is_empty(),
            "divergence: {}",
            report.divergences[0].describe()
        );
        let json = report.to_json().render();
        assert!(json.contains("\"schema\":\"twx-fuzz-mutate/1\""));
        assert!(json.contains("\"divergences\":0"));
    }

    #[test]
    fn same_seed_same_run() {
        let cfg = FuzzConfig {
            seed: 9,
            iters: 25,
            ..FuzzConfig::default()
        };
        let a = run_mutation_fuzz(&cfg, None);
        let b = run_mutation_fuzz(&cfg, None);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.divergences.len(), b.divergences.len());
    }

    /// Acceptance criterion: skipping invalidation is caught, and the
    /// repro shrinks to a script of at most 6 edits.
    #[test]
    fn skip_invalidate_fault_is_caught_and_shrunk() {
        let report = run_mutation_fuzz(
            &FuzzConfig {
                seed: 42,
                iters: 120,
                ..FuzzConfig::default()
            },
            Some(CacheFault::SkipInvalidate),
        );
        assert!(
            !report.divergences.is_empty(),
            "skip-invalidate never diverged in {} iterations",
            report.iterations
        );
        let d = &report.divergences[0];
        assert!(
            edit_count(&d.ops) <= 6,
            "shrunk script has {} edits (> 6): {}",
            edit_count(&d.ops),
            d.describe()
        );
        // the shrunk script still reproduces, and is clean without the fault
        assert!(
            run_script(&d.doc_sexp, &d.ops, Some(CacheFault::SkipInvalidate))
                .unwrap()
                .is_some()
        );
        assert!(run_script(&d.doc_sexp, &d.ops, None).unwrap().is_none());
    }

    #[test]
    fn script_op_lines_roundtrip() {
        let ops = [
            ScriptOp::Query {
                ctx: 3,
                query: "down*[b and !a] | up".to_string(),
            },
            ScriptOp::Relabel {
                node: 2,
                label: "b".to_string(),
            },
            ScriptOp::Insert {
                parent: 0,
                position: 1,
                label: "a".to_string(),
            },
            ScriptOp::Remove { node: 4 },
        ];
        for op in &ops {
            assert_eq!(&ScriptOp::from_line(&op.to_line()).unwrap(), op);
        }
        assert!(ScriptOp::from_line("query 0").is_err());
        assert!(ScriptOp::from_line("relabel x a").is_err());
        assert!(ScriptOp::from_line("teleport 1 2").is_err());
    }

    #[test]
    fn cache_fault_spec_parses() {
        assert_eq!(
            CacheFault::parse("cache=skip-invalidate").unwrap(),
            CacheFault::SkipInvalidate
        );
        assert!(CacheFault::parse("cache=weird").is_err());
        assert!(CacheFault::parse("hot:product=drop-max").is_err());
    }

    /// A handcrafted script through the full stack: cache a downward
    /// query, edit a disjoint subtree (the entry must be carried), then
    /// edit inside its span (the entry must be invalidated) — the oracle
    /// agrees throughout.
    #[test]
    fn handcrafted_script_is_clean_with_sound_invalidation() {
        let ops = [
            ScriptOp::from_line("query 0 down*[b]").unwrap(),
            ScriptOp::from_line("relabel 4 a").unwrap(),
            ScriptOp::from_line("query 0 down*[b]").unwrap(),
            ScriptOp::from_line("relabel 1 a").unwrap(),
            ScriptOp::from_line("query 0 down*[b]").unwrap(),
            ScriptOp::from_line("remove 1").unwrap(),
            ScriptOp::from_line("query 0 down*[b]").unwrap(),
        ];
        assert!(run_script("(a (b c) (c b))", &ops, None).unwrap().is_none());
    }
}

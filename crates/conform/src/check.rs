//! The cross-route checker: one `(query, document)` pair through every
//! evaluation route, compared against the naive relational oracle.

use std::sync::Arc;
use std::time::Duration;

use treewalk::{Backend, Engine};
use twx_corpus::{Corpus, QueryService, ServiceConfig};
use twx_frontier::FrontierFault;
use twx_obs::{self as obs, Counter};
use twx_regxpath::eval::Compiled;
use twx_regxpath::eval_naive::eval_rel_naive;
use twx_regxpath::parser::parse_rpath_catalog;
use twx_xtree::serialize::to_sexp;
use twx_xtree::{Catalog, Document, NodeSet};

use crate::{Divergence, Fault, RouteAnswer, RouteId, BACKENDS};

/// The differential checker. Holds the shared label [`Catalog`], one
/// persistent (plan-cache-hot) [`Engine`] per backend, the optional
/// test-only [`Fault`], and per-route accumulated evaluation time.
///
/// All routes evaluate from the document root; answers are compared as
/// sorted node-id vectors. The reference is always [`RouteId::Naive`] —
/// the `n × n` bit-matrix semantics of `eval_rel_naive`.
pub struct Conformer {
    catalog: Arc<Catalog>,
    hot: Vec<Engine>,
    /// The persistent VM engine behind [`RouteId::Vm`]: plan-cache-hot,
    /// register arena warm — the production serving configuration.
    vm: Engine,
    /// The persistent frontier-parallel engine behind
    /// [`RouteId::Parallel`]: the VM backend at `parallelism = 2`.
    par: Engine,
    fault: Option<Fault>,
    /// Test-only corruption of the parallel kernels, armed only around
    /// the [`RouteId::Parallel`] evaluations.
    frontier_fault: Option<FrontierFault>,
    route_nanos: [u64; RouteId::ALL.len()],
}

impl Conformer {
    /// A checker over `catalog` with no fault injected.
    pub fn new(catalog: Arc<Catalog>) -> Conformer {
        Conformer::with_fault(catalog, None)
    }

    /// A checker that corrupts one route's answers (see [`Fault`]).
    pub fn with_fault(catalog: Arc<Catalog>, fault: Option<Fault>) -> Conformer {
        Conformer::with_faults(catalog, fault, None)
    }

    /// A checker with both fault hooks: post-hoc answer corruption
    /// ([`Fault`]) and in-kernel chunk corruption ([`FrontierFault`],
    /// applied only to the [`RouteId::Parallel`] route).
    pub fn with_faults(
        catalog: Arc<Catalog>,
        fault: Option<Fault>,
        frontier_fault: Option<FrontierFault>,
    ) -> Conformer {
        Conformer {
            catalog,
            hot: BACKENDS.iter().map(|&b| Engine::with_backend(b)).collect(),
            vm: Engine::with_backend(Backend::Vm),
            par: Engine::with_backend(Backend::Vm).with_parallelism(2),
            fault,
            frontier_fault,
            route_nanos: [0; RouteId::ALL.len()],
        }
    }

    /// The shared label space.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Accumulated `eval_nanos` per route (from `twx-obs` counter deltas
    /// around each route's evaluation), in [`RouteId::ALL`] order.
    pub fn route_nanos(&self) -> Vec<(RouteId, u64)> {
        RouteId::ALL
            .into_iter()
            .map(|r| (r, self.route_nanos[r.index()]))
            .collect()
    }

    /// Evaluates `query` on `doc` through every route. Returns
    /// `Ok(None)` if all routes agree, `Ok(Some(divergence))` naming the
    /// odd routes otherwise, and `Err` only if the query does not parse
    /// (a harness bug, since the harness prints the queries it checks).
    pub fn check(
        &mut self,
        query: &str,
        doc: &Document,
        seed: u64,
    ) -> Result<Option<Divergence>, String> {
        obs::incr(Counter::ConformChecks);
        let raw = parse_rpath_catalog(query, &self.catalog)
            .map_err(|e| format!("query `{query}` failed to parse: {e}"))?;
        let t = &doc.tree;
        let root = t.root();
        let ctx = NodeSet::singleton(t.len(), root);

        let mut answers: Vec<RouteAnswer> = Vec::with_capacity(RouteId::ALL.len());
        for route in RouteId::ALL {
            let before = obs::snapshot();
            let mut answer: RouteAnswer = match route {
                RouteId::Naive => {
                    let _s = obs::span(Counter::EvalNanos);
                    Ok(eval_rel_naive(t, &raw).image(&ctx))
                }
                RouteId::RawProduct => {
                    let _s = obs::span(Counter::EvalNanos);
                    Ok(Compiled::new(&raw).image(t, &ctx))
                }
                RouteId::Cold(b) => self.engine_answer(&Engine::with_backend(b), query, doc),
                RouteId::Hot(b) => {
                    let engine = &self.hot[BACKENDS.iter().position(|&x| x == b).unwrap()];
                    // prime the plan cache, then answer from the hit
                    let _ = engine.prepare_in(&self.catalog, query);
                    self.engine_answer(engine, query, doc)
                }
                RouteId::Vm => {
                    // prime the plan cache, then answer from the hit
                    let _ = self.vm.prepare_in(&self.catalog, query);
                    self.engine_answer(&self.vm, query, doc)
                }
                RouteId::Parallel => {
                    // prime the plan cache, then answer from the hit —
                    // with the kernel fault (if any) armed only while
                    // this route evaluates
                    let _ = self.par.prepare_in(&self.catalog, query);
                    twx_frontier::set_fault(self.frontier_fault);
                    let answer = self.engine_answer(&self.par, query, doc);
                    twx_frontier::set_fault(None);
                    answer
                }
                RouteId::Service => self.service_answer(query, doc),
            }
            .map(|s| {
                s.iter().map(|v| v.0).collect::<Vec<u32>>() // NodeSet iterates in id order
            });
            self.route_nanos[route.index()] += obs::delta_since(&before).get(Counter::EvalNanos);
            if let (Some(f), Ok(a)) = (&self.fault, &mut answer) {
                if f.route == route {
                    f.apply(a);
                }
            }
            answers.push(answer);
        }

        let reference = answers[RouteId::Naive.index()]
            .clone()
            .expect("naive route is infallible");
        let disagreeing: Vec<(RouteId, RouteAnswer)> = RouteId::ALL
            .into_iter()
            .zip(answers)
            .filter(|(_, a)| a.as_ref() != Ok(&reference))
            .collect();
        if disagreeing.is_empty() {
            return Ok(None);
        }
        obs::incr(Counter::ConformDivergences);
        Ok(Some(Divergence {
            query: query.to_string(),
            doc_sexp: to_sexp(t, &self.catalog.snapshot()),
            seed,
            reference,
            disagreeing,
        }))
    }

    fn engine_answer(
        &self,
        engine: &Engine,
        query: &str,
        doc: &Document,
    ) -> Result<NodeSet, String> {
        let prepared = engine
            .prepare_in(&self.catalog, query)
            .map_err(|e| format!("{}: {e}", engine.backend().name()))?;
        Ok(prepared.eval(doc, doc.tree.root()))
    }

    /// Runs the query through a 2-shard [`QueryService`] holding two
    /// copies of `doc` (one per shard, round-robin placement), checking
    /// that the shards agree with each other before returning the answer.
    fn service_answer(&self, query: &str, doc: &Document) -> Result<NodeSet, String> {
        let mut builder = Corpus::builder(Arc::clone(&self.catalog), 2);
        builder.add_document(doc.clone());
        builder.add_document(doc.clone());
        let corpus = Arc::new(builder.build());
        let service = QueryService::new(
            corpus,
            Engine::with_backend(Backend::Product),
            ServiceConfig {
                workers: 2,
                queue_capacity: 8,
                default_timeout: Some(Duration::from_secs(30)),
                slowlog_capacity: 16,
            },
        );
        let answer = service.query(query).map_err(|e| format!("service: {e}"))?;
        service.shutdown();
        if answer.timed_out {
            return Err("service: timed out".to_string());
        }
        let [(_, _, a), (_, _, b)] = &answer.per_doc[..] else {
            return Err(format!(
                "service: expected 2 per-doc answers, got {}",
                answer.per_doc.len()
            ));
        };
        if a != b {
            return Err(format!(
                "service: shards disagree ({:?} vs {:?})",
                a.to_vec(),
                b.to_vec()
            ));
        }
        Ok(a.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;

    fn doc(catalog: &Catalog, sexp: &str) -> Document {
        twx_xtree::parse::parse_sexp_catalog(sexp, catalog).unwrap()
    }

    #[test]
    fn all_routes_agree_on_handcrafted_pairs() {
        let catalog = Arc::new(Catalog::from_names(["a", "b"]));
        let mut conf = Conformer::new(Arc::clone(&catalog));
        let d = doc(&catalog, "(a (b a) b)");
        for q in [
            ".",
            "down",
            "down*",
            "down[b]",
            "down/down | down",
            "?(W(<down>))",
            "(down | up)*[a and !b]",
        ] {
            let r = conf.check(q, &d, 7).unwrap();
            assert!(
                r.is_none(),
                "unexpected divergence: {}",
                r.unwrap().describe()
            );
        }
        // every route actually ran and was timed
        for (route, nanos) in conf.route_nanos() {
            assert!(nanos > 0, "route {} recorded no eval time", route.name());
        }
    }

    #[test]
    fn fault_is_detected_and_named() {
        let catalog = Arc::new(Catalog::from_names(["a"]));
        let fault = Fault {
            route: RouteId::Hot(Backend::Automaton),
            kind: FaultKind::DropMax,
        };
        let mut conf = Conformer::with_fault(Arc::clone(&catalog), Some(fault));
        let d = doc(&catalog, "(a a a)");
        let div = conf
            .check("down", &d, 1)
            .unwrap()
            .expect("fault must diverge");
        assert_eq!(div.route_names(), vec!["hot:automaton"]);
        assert_eq!(div.reference, vec![1, 2]);
        assert_eq!(div.disagreeing[0].1, Ok(vec![1]));
    }

    #[test]
    fn unparseable_query_is_a_harness_error() {
        let catalog = Arc::new(Catalog::from_names(["a"]));
        let mut conf = Conformer::new(Arc::clone(&catalog));
        let d = doc(&catalog, "(a)");
        assert!(conf.check("down[", &d, 0).is_err());
    }
}

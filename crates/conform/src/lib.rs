//! # twx-conform — differential conformance harness
//!
//! The paper's headline result is an *effective* equivalence triangle —
//! Regular XPath(W) ≡ FO(MTC) ≡ NTWA — so the strongest executable
//! correctness claim this workspace can make is that every evaluation
//! route **never disagrees** on any query/document pair. This crate turns
//! that claim into a continuously-checked property:
//!
//! * [`check::Conformer`] evaluates one `(query, document)` pair through
//!   every route — the naive relational oracle, the raw (pipeline-off)
//!   product evaluator, `Engine::query` on the product/automaton/logic
//!   backends both plan-cache-cold and -hot, the bytecode VM in its
//!   production (hot, arena-recycled) configuration, the
//!   frontier-parallel VM (`parallelism = 2`, every evaluation through
//!   the `twx-frontier` push/pull kernels), and a sharded
//!   [`QueryService`] — and reports any disagreement as a typed
//!   [`Divergence`] naming the odd routes and their answers.
//! * [`shrink::minimize`] greedily minimises a failing pair over both the
//!   query AST (drop disjuncts, strip filters, shorten stars — see
//!   [`twx_regxpath::shrink`]) and the document (delete subtrees — see
//!   [`twx_xtree::shrink`]), re-checking the oracle at every step.
//! * [`corpus`] reads and writes the golden-regression format: one JSON
//!   line per repro (surface query + sexp document + seed), replayed
//!   forever by `tests/conformance.rs` at the workspace root.
//! * [`fuzz::run_fuzz`] is the seeded driver behind the `twx-fuzz`
//!   binary, with per-route timing drawn from `twx-obs` counters.
//! * [`mutate::run_mutation_fuzz`] (`twx-fuzz --mutate`) interleaves
//!   random typed edits with queries on a live versioned document,
//!   checking the engine's result cache — with its precise,
//!   affected-span invalidation — against a recompute-from-scratch
//!   oracle on every answer, and shrinking any divergence over the edit
//!   script as well as the query and the document.
//! * [`crash::run_crash_fuzz`] (`twx-fuzz --crash`) drives a
//!   store-backed corpus with random edit/snapshot scripts, simulates a
//!   crash with a torn journal tail, recovers from disk, and demands the
//!   recovered corpus match the acknowledged pre-crash state
//!   node-for-node — versions, placement, and sequence number included.
//!   Its `--fault store=skip-fsync` hook proves a broken group-commit
//!   would be caught and shrunk.
//!
//! A test-only [`Fault`] hook mutates one route's answer post-hoc, so the
//! harness can prove it *would* catch a broken backend and that the
//! shrinker converges to a small repro.
//!
//! [`QueryService`]: twx_corpus::QueryService

pub mod check;
pub mod corpus;
pub mod crash;
pub mod fuzz;
pub mod mutate;
pub mod shrink;

pub use check::Conformer;
pub use corpus::Repro;
pub use crash::{run_crash_fuzz, CrashDivergence, CrashOp, CrashReport};
pub use fuzz::{run_fuzz, FuzzConfig, FuzzReport};
pub use mutate::{run_mutation_fuzz, CacheFault, MutationReport, ScriptOp};
pub use shrink::{minimize, ShrinkOutcome};
pub use twx_corpus::StoreFault;
pub use twx_frontier::FrontierFault;

use treewalk::Backend;

/// The three engine backends in canonical order.
pub const BACKENDS: [Backend; 3] = [Backend::Product, Backend::Automaton, Backend::Logic];

/// One evaluation route through the system. Every route must produce the
/// same answer set for the triangle (and the serving layer on top of it)
/// to be correct.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RouteId {
    /// `eval_rel_naive` on the raw parsed AST — the `n × n` bit-matrix
    /// reference semantics, and the oracle every other route is compared
    /// against.
    Naive,
    /// `Compiled::new` on the raw AST: the product evaluator with the
    /// simplify/unsat-prune pipeline **off**.
    RawProduct,
    /// A fresh [`treewalk::Engine`] per trial (plan-cache cold), full
    /// pipeline on.
    Cold(Backend),
    /// A persistent [`treewalk::Engine`] whose plan cache has already
    /// seen the query (the answer comes from a guaranteed cache hit).
    Hot(Backend),
    /// A [`twx_corpus::QueryService`] over a 2-shard corpus holding two
    /// copies of the document, checked for internal agreement and
    /// compared against the sequential answer.
    Service,
    /// The bytecode VM in its production configuration: a persistent
    /// `Backend::Vm` engine, plan-cache-hot, registers recycled through
    /// the thread-local arena across checks. The route that must agree
    /// node-for-node before the VM can become a default backend.
    Vm,
    /// The frontier-parallel evaluator: a persistent `Backend::Vm`
    /// engine, plan-cache-hot, with `parallelism = 2` so every
    /// evaluation takes the `twx-frontier` push/pull kernel paths. The
    /// route that must agree node-for-node before parallel evaluation
    /// can be switched on in production.
    Parallel,
}

impl RouteId {
    /// Every route, in the order answers are collected and reported.
    pub const ALL: [RouteId; 11] = [
        RouteId::Naive,
        RouteId::RawProduct,
        RouteId::Cold(Backend::Product),
        RouteId::Cold(Backend::Automaton),
        RouteId::Cold(Backend::Logic),
        RouteId::Hot(Backend::Product),
        RouteId::Hot(Backend::Automaton),
        RouteId::Hot(Backend::Logic),
        RouteId::Vm,
        RouteId::Parallel,
        RouteId::Service,
    ];

    /// Stable name used in JSON summaries and `--fault` specs.
    pub fn name(self) -> &'static str {
        match self {
            RouteId::Naive => "naive",
            RouteId::RawProduct => "raw-product",
            RouteId::Cold(Backend::Product) => "cold:product",
            RouteId::Cold(Backend::Automaton) => "cold:automaton",
            RouteId::Cold(Backend::Logic) => "cold:logic",
            RouteId::Hot(Backend::Product) => "hot:product",
            RouteId::Hot(Backend::Automaton) => "hot:automaton",
            RouteId::Hot(Backend::Logic) => "hot:logic",
            // the VM rides as its own (hot) route; Cold/Hot(Vm) are
            // representable but not part of ALL — named for completeness
            RouteId::Cold(Backend::Vm) => "cold:vm",
            RouteId::Hot(Backend::Vm) => "hot:vm",
            RouteId::Vm => "vm",
            RouteId::Parallel => "parallel",
            RouteId::Service => "service",
        }
    }

    /// Inverse of [`RouteId::name`].
    pub fn parse(s: &str) -> Option<RouteId> {
        RouteId::ALL.into_iter().find(|r| r.name() == s)
    }

    /// Position in [`RouteId::ALL`].
    pub fn index(self) -> usize {
        RouteId::ALL
            .into_iter()
            .position(|r| r == self)
            .expect("route in ALL")
    }
}

/// How a [`Fault`] corrupts an answer set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Remove the largest node id from the answer (a no-op on empty
    /// answers, so the repro must keep the query *matching* something).
    DropMax,
    /// Insert the root (node 0) into the answer (a no-op when the root
    /// already matches).
    InsertRoot,
}

/// A test-only fault: mutate the named route's answer after evaluation.
/// Used to prove the harness detects a broken backend and that the
/// shrinker converges; never enabled in CI fuzzing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// The route whose answers are corrupted.
    pub route: RouteId,
    /// The corruption applied.
    pub kind: FaultKind,
}

impl Fault {
    /// Parses a `--fault` spec of the form `<route>=<kind>`, e.g.
    /// `hot:automaton=drop-max` or `naive=insert-root`.
    pub fn parse(spec: &str) -> Result<Fault, String> {
        let (route, kind) = spec
            .split_once('=')
            .ok_or_else(|| format!("fault spec '{spec}' is not <route>=<kind>"))?;
        let route = RouteId::parse(route).ok_or_else(|| {
            let names: Vec<&str> = RouteId::ALL.iter().map(|r| r.name()).collect();
            format!("unknown route '{route}' (one of: {})", names.join(", "))
        })?;
        let kind = match kind {
            "drop-max" => FaultKind::DropMax,
            "insert-root" => FaultKind::InsertRoot,
            other => return Err(format!("unknown fault kind '{other}'")),
        };
        Ok(Fault { route, kind })
    }

    /// Applies the corruption to a sorted answer vector.
    pub fn apply(&self, answer: &mut Vec<u32>) {
        match self.kind {
            FaultKind::DropMax => {
                answer.pop();
            }
            FaultKind::InsertRoot => {
                if answer.first() != Some(&0) {
                    answer.insert(0, 0);
                }
            }
        }
    }
}

/// A route's answer: the sorted matched node ids, or an error rendered as
/// a string (an erroring route counts as divergent — routes must agree on
/// *success*, too).
pub type RouteAnswer = Result<Vec<u32>, String>;

/// A disagreement between routes on one `(query, document)` pair.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The query in surface syntax.
    pub query: String,
    /// The document as an s-expression.
    pub doc_sexp: String,
    /// The trial seed that produced the pair (0 for replays).
    pub seed: u64,
    /// The oracle's answer ([`RouteId::Naive`]).
    pub reference: Vec<u32>,
    /// Every route that disagreed with the oracle, with its answer.
    pub disagreeing: Vec<(RouteId, RouteAnswer)>,
}

impl Divergence {
    /// The names of the disagreeing routes (the odd-ones-out).
    pub fn route_names(&self) -> Vec<&'static str> {
        self.disagreeing.iter().map(|(r, _)| r.name()).collect()
    }

    /// One-line human summary.
    pub fn describe(&self) -> String {
        format!(
            "query `{}` on {} : routes [{}] disagree with reference {:?}",
            self.query,
            self.doc_sexp,
            self.route_names().join(", "),
            self.reference,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_names_roundtrip() {
        for r in RouteId::ALL {
            assert_eq!(RouteId::parse(r.name()), Some(r));
            assert_eq!(RouteId::ALL[r.index()], r);
        }
        assert_eq!(RouteId::parse("bogus"), None);
    }

    #[test]
    fn fault_spec_parses() {
        let f = Fault::parse("hot:automaton=drop-max").unwrap();
        assert_eq!(f.route, RouteId::Hot(Backend::Automaton));
        assert_eq!(f.kind, FaultKind::DropMax);
        assert!(Fault::parse("naive").is_err());
        assert!(Fault::parse("naive=weird").is_err());
        assert!(Fault::parse("weird=drop-max").is_err());
    }

    #[test]
    fn fault_apply() {
        let f = Fault {
            route: RouteId::Naive,
            kind: FaultKind::DropMax,
        };
        let mut a = vec![1, 3];
        f.apply(&mut a);
        assert_eq!(a, vec![1]);
        let mut empty: Vec<u32> = vec![];
        f.apply(&mut empty);
        assert!(empty.is_empty());

        let g = Fault {
            route: RouteId::Naive,
            kind: FaultKind::InsertRoot,
        };
        let mut b = vec![2];
        g.apply(&mut b);
        assert_eq!(b, vec![0, 2]);
        g.apply(&mut b);
        assert_eq!(b, vec![0, 2], "idempotent when root present");
    }
}

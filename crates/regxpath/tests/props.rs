//! Property-based tests for Regular XPath(W): Kleene-algebra laws,
//! evaluator agreement, printer inversion, simplifier soundness.

use proptest::prelude::*;
use twx_regxpath::ast::{Axis, RNode, RPath};
use twx_regxpath::eval::{eval_node, eval_rel};
use twx_regxpath::eval_naive::{eval_node_naive, eval_rel_naive};
use twx_regxpath::parser::{parse_rnode, parse_rpath};
use twx_regxpath::print::{rnode_to_string, rpath_to_string};
use twx_regxpath::simplify::{simplify_rnode, simplify_rpath};
use twx_xtree::generate::from_parent_vec;
use twx_xtree::{Alphabet, Label, Tree};

fn arb_axis() -> impl Strategy<Value = Axis> {
    prop_oneof![
        Just(Axis::Down),
        Just(Axis::Up),
        Just(Axis::Left),
        Just(Axis::Right),
    ]
}

fn arb_rpath() -> impl Strategy<Value = RPath> {
    let leaf = prop_oneof![
        arb_axis().prop_map(RPath::Axis),
        Just(RPath::Eps),
        (0u32..2).prop_map(|l| RPath::test(RNode::Label(Label(l)))),
    ];
    leaf.prop_recursive(4, 20, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.seq(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            inner.clone().prop_map(|a| a.star()),
            (inner.clone(), arb_rnode_from(inner)).prop_map(|(a, f)| a.filter(f)),
        ]
    })
}

fn arb_rnode_from(paths: impl Strategy<Value = RPath> + Clone + 'static) -> BoxedStrategy<RNode> {
    let leaf = prop_oneof![
        Just(RNode::True),
        (0u32..2).prop_map(|l| RNode::Label(Label(l))),
    ];
    leaf.prop_recursive(3, 12, 2, move |inner| {
        prop_oneof![
            paths.clone().prop_map(RNode::some),
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.and(g)),
            inner.clone().prop_map(|f| f.within()),
        ]
    })
    .boxed()
}

fn arb_rnode() -> impl Strategy<Value = RNode> {
    arb_rnode_from(arb_rpath().boxed())
}

fn arb_tree(max_n: usize) -> impl Strategy<Value = Tree> {
    (1..=max_n).prop_flat_map(|n| {
        let parents = (1..n).map(|i| 0..i as u32).collect::<Vec<_>>().prop_map(|mut ps| {
            ps.insert(0, 0);
            ps
        });
        let labels = proptest::collection::vec(0u32..2, n);
        (parents, labels).prop_map(|(ps, ls)| {
            let ls: Vec<Label> = ls.into_iter().map(Label).collect();
            from_parent_vec(&ps, &ls)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// print ∘ parse = id.
    #[test]
    fn rpath_print_parse_roundtrip(p in arb_rpath()) {
        let mut ab = Alphabet::from_names(["l0", "l1"]);
        let s = rpath_to_string(&p, &ab);
        prop_assert_eq!(parse_rpath(&s, &mut ab).expect("reparse"), p, "via '{}'", s);
    }

    #[test]
    fn rnode_print_parse_roundtrip(f in arb_rnode()) {
        let mut ab = Alphabet::from_names(["l0", "l1"]);
        let s = rnode_to_string(&f, &ab);
        prop_assert_eq!(parse_rnode(&s, &mut ab).expect("reparse"), f, "via '{}'", s);
    }

    /// Product evaluator ≡ relational semantics.
    #[test]
    fn evaluators_agree(p in arb_rpath(), t in arb_tree(8)) {
        prop_assert_eq!(eval_rel(&t, &p), eval_rel_naive(&t, &p));
    }

    #[test]
    fn node_evaluators_agree(f in arb_rnode(), t in arb_tree(7)) {
        prop_assert_eq!(eval_node(&t, &f), eval_node_naive(&t, &f));
    }

    /// Simplification is sound and size-non-increasing.
    #[test]
    fn simplify_sound(p in arb_rpath(), t in arb_tree(7)) {
        let sp = simplify_rpath(&p);
        prop_assert!(sp.size() <= p.size(), "{:?} grew to {:?}", p, sp);
        prop_assert_eq!(eval_rel(&t, &p), eval_rel(&t, &sp));
    }

    #[test]
    fn simplify_node_sound(f in arb_rnode(), t in arb_tree(6)) {
        let sf = simplify_rnode(&f);
        prop_assert!(sf.size() <= f.size());
        prop_assert_eq!(eval_node(&t, &f), eval_node(&t, &sf));
    }

    /// Kleene-algebra laws, checked semantically:
    /// A* = ε ∪ A/A*, (A ∪ B)* = (A*/B*)*, A*/A* = A*.
    #[test]
    fn kleene_laws(a in arb_rpath(), b in arb_rpath(), t in arb_tree(6)) {
        let star = eval_rel(&t, &a.clone().star());
        // unfolding
        let unfold = eval_rel(&t, &RPath::Eps.union(a.clone().seq(a.clone().star())));
        prop_assert_eq!(&star, &unfold);
        // denesting
        let lhs = eval_rel(&t, &a.clone().union(b.clone()).star());
        let rhs = eval_rel(&t, &a.clone().star().seq(b.clone().star()).star());
        prop_assert_eq!(lhs, rhs);
        // idempotence of star composition
        let ss = eval_rel(&t, &a.clone().star().seq(a.clone().star()));
        prop_assert_eq!(ss, star);
    }

    /// W is monotone with respect to subtree restriction: `W φ` at `v`
    /// equals `φ` at the root of the extracted subtree.
    #[test]
    fn within_definition(f in arb_rnode(), t in arb_tree(7)) {
        let wf = eval_node(&t, &f.clone().within());
        for v in t.nodes() {
            let sub = t.subtree(v);
            let direct = eval_node(&sub, &f).contains(sub.root());
            prop_assert_eq!(wf.contains(v), direct, "at {:?}", v);
        }
    }

    /// The domain of a filter is bounded by the domain of its base.
    #[test]
    fn filter_shrinks_relation(a in arb_rpath(), f in arb_rnode(), t in arb_tree(7)) {
        let base = eval_rel(&t, &a);
        let filtered = eval_rel(&t, &a.clone().filter(f));
        for x in t.nodes() {
            for y in t.nodes() {
                if filtered.get(x, y) {
                    prop_assert!(base.get(x, y));
                }
            }
        }
    }
}

//! Property-based tests for Regular XPath(W): Kleene-algebra laws,
//! evaluator agreement, printer inversion, simplifier soundness.
//!
//! Instances are drawn from the workspace's own expression generators
//! with the deterministic in-tree PRNG (no `proptest`, offline build).

use twx_regxpath::ast::{RNode, RPath};
use twx_regxpath::eval::{eval_node, eval_rel};
use twx_regxpath::eval_naive::{eval_node_naive, eval_rel_naive};
use twx_regxpath::generate::{random_rnode, random_rpath, RGenConfig};
use twx_regxpath::parser::{parse_rnode, parse_rpath};
use twx_regxpath::print::{rnode_to_string, rpath_to_string};
use twx_regxpath::simplify::{simplify_rnode, simplify_rpath};
use twx_xtree::generate::from_parent_vec;
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::{Alphabet, Label, Tree};

fn rand_tree(rng: &mut SplitMix64, max_n: usize) -> Tree {
    let n = rng.gen_range(1..max_n + 1);
    let mut parents = vec![0u32; n];
    for (i, p) in parents.iter_mut().enumerate().skip(1) {
        *p = rng.gen_range(0..i as u32);
    }
    let ls: Vec<Label> = (0..n).map(|_| Label(rng.gen_range(0..2u32))).collect();
    from_parent_vec(&parents, &ls)
}

fn rand_rpath(rng: &mut SplitMix64, depth: usize) -> RPath {
    random_rpath(&RGenConfig::default(), depth, rng)
}

fn rand_rnode(rng: &mut SplitMix64, depth: usize) -> RNode {
    random_rnode(&RGenConfig::default(), depth, rng)
}

const ROUNDS: usize = 48;

/// print ∘ parse = id.
#[test]
fn rpath_print_parse_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0x9a12);
    for _ in 0..ROUNDS {
        let p = rand_rpath(&mut rng, 4);
        let mut ab = Alphabet::from_names(["l0", "l1"]);
        let s = rpath_to_string(&p, &ab);
        assert_eq!(parse_rpath(&s, &mut ab).expect("reparse"), p, "via '{s}'");
    }
}

#[test]
fn rnode_print_parse_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0x9a13);
    for _ in 0..ROUNDS {
        let f = rand_rnode(&mut rng, 4);
        let mut ab = Alphabet::from_names(["l0", "l1"]);
        let s = rnode_to_string(&f, &ab);
        assert_eq!(parse_rnode(&s, &mut ab).expect("reparse"), f, "via '{s}'");
    }
}

/// Product evaluator ≡ relational semantics.
#[test]
fn evaluators_agree() {
    let mut rng = SplitMix64::seed_from_u64(0xe7a1);
    for _ in 0..ROUNDS {
        let p = rand_rpath(&mut rng, 3);
        let t = rand_tree(&mut rng, 8);
        assert_eq!(eval_rel(&t, &p), eval_rel_naive(&t, &p), "{p:?}");
    }
}

#[test]
fn node_evaluators_agree() {
    let mut rng = SplitMix64::seed_from_u64(0xe7a2);
    for _ in 0..ROUNDS {
        let f = rand_rnode(&mut rng, 3);
        let t = rand_tree(&mut rng, 7);
        assert_eq!(eval_node(&t, &f), eval_node_naive(&t, &f), "{f:?}");
    }
}

/// Simplification is sound and size-non-increasing.
#[test]
fn simplify_sound() {
    let mut rng = SplitMix64::seed_from_u64(0x51a9);
    for _ in 0..ROUNDS {
        let p = rand_rpath(&mut rng, 3);
        let t = rand_tree(&mut rng, 7);
        let sp = simplify_rpath(&p);
        assert!(sp.size() <= p.size(), "{p:?} grew to {sp:?}");
        assert_eq!(eval_rel(&t, &p), eval_rel(&t, &sp), "{p:?}");
    }
}

#[test]
fn simplify_node_sound() {
    let mut rng = SplitMix64::seed_from_u64(0x51aa);
    for _ in 0..ROUNDS {
        let f = rand_rnode(&mut rng, 3);
        let t = rand_tree(&mut rng, 6);
        let sf = simplify_rnode(&f);
        assert!(sf.size() <= f.size());
        assert_eq!(eval_node(&t, &f), eval_node(&t, &sf), "{f:?}");
    }
}

/// Kleene-algebra laws, checked semantically:
/// A* = ε ∪ A/A*, (A ∪ B)* = (A*/B*)*, A*/A* = A*.
#[test]
fn kleene_laws() {
    let mut rng = SplitMix64::seed_from_u64(0x61ee);
    for _ in 0..ROUNDS {
        let a = rand_rpath(&mut rng, 3);
        let b = rand_rpath(&mut rng, 3);
        let t = rand_tree(&mut rng, 6);
        let star = eval_rel(&t, &a.clone().star());
        // unfolding
        let unfold = eval_rel(&t, &RPath::Eps.union(a.clone().seq(a.clone().star())));
        assert_eq!(&star, &unfold);
        // denesting
        let lhs = eval_rel(&t, &a.clone().union(b.clone()).star());
        let rhs = eval_rel(&t, &a.clone().star().seq(b.clone().star()).star());
        assert_eq!(lhs, rhs);
        // idempotence of star composition
        let ss = eval_rel(&t, &a.clone().star().seq(a.clone().star()));
        assert_eq!(ss, star);
    }
}

/// W is monotone with respect to subtree restriction: `W φ` at `v`
/// equals `φ` at the root of the extracted subtree.
#[test]
fn within_definition() {
    let mut rng = SplitMix64::seed_from_u64(0x3417);
    for _ in 0..ROUNDS {
        let f = rand_rnode(&mut rng, 3);
        let t = rand_tree(&mut rng, 7);
        let wf = eval_node(&t, &f.clone().within());
        for v in t.nodes() {
            let sub = t.subtree(v);
            let direct = eval_node(&sub, &f).contains(sub.root());
            assert_eq!(wf.contains(v), direct, "at {v:?}");
        }
    }
}

/// The domain of a filter is bounded by the domain of its base.
#[test]
fn filter_shrinks_relation() {
    let mut rng = SplitMix64::seed_from_u64(0xf1e7);
    for _ in 0..ROUNDS {
        let a = rand_rpath(&mut rng, 3);
        let f = rand_rnode(&mut rng, 3);
        let t = rand_tree(&mut rng, 7);
        let base = eval_rel(&t, &a);
        let filtered = eval_rel(&t, &a.clone().filter(f));
        for x in t.nodes() {
            for y in t.nodes() {
                if filtered.get(x, y) {
                    assert!(base.get(x, y));
                }
            }
        }
    }
}

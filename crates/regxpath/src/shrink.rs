//! Query shrinking for counterexample minimisation.
//!
//! Deterministic single-step shrink candidates for Regular XPath(W)
//! ASTs, in the QuickCheck tradition: every candidate is **strictly
//! smaller** (by [`RPath::size`] / [`RNode::size`]) than the input, so a
//! greedy minimiser that accepts any candidate terminates. The moves are
//! the ones a human uses to minimise an XPath repro by hand — take one
//! branch of a union or composition, strip a filter, shorten a star to
//! its body (or to `ε`), collapse a test — applied at every position.
//!
//! Candidates are returned **smallest-first**, so a first-accept greedy
//! scan takes the most aggressive cut that still reproduces a failure.

use crate::ast::{RNode, RPath};

/// All single-step shrink candidates of a path expression, each strictly
/// smaller than `p`, ordered by ascending size (then syntactically, for
/// determinism).
pub fn shrink_rpath(p: &RPath) -> Vec<RPath> {
    let mut out = Vec::new();
    path_candidates(p, &mut out);
    let bound = p.size();
    out.retain(|c| c.size() < bound);
    out.sort_by(|a, b| a.size().cmp(&b.size()).then_with(|| a.cmp(b)));
    out.dedup();
    out
}

/// All single-step shrink candidates of a node expression (see
/// [`shrink_rpath`]).
pub fn shrink_rnode(f: &RNode) -> Vec<RNode> {
    let mut out = Vec::new();
    node_candidates(f, &mut out);
    let bound = f.size();
    out.retain(|c| c.size() < bound);
    out.sort_by(|a, b| a.size().cmp(&b.size()).then_with(|| a.cmp(b)));
    out.dedup();
    out
}

fn path_candidates(p: &RPath, out: &mut Vec<RPath>) {
    match p {
        RPath::Axis(_) | RPath::Eps => {}
        RPath::Test(f) => {
            out.push(RPath::Eps);
            for g in shrink_rnode(f) {
                out.push(RPath::test(g));
            }
        }
        RPath::Seq(a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
            for x in shrink_rpath(a) {
                out.push(x.seq((**b).clone()));
            }
            for y in shrink_rpath(b) {
                out.push((**a).clone().seq(y));
            }
        }
        RPath::Union(a, b) => {
            // "drop a disjunct"
            out.push((**a).clone());
            out.push((**b).clone());
            for x in shrink_rpath(a) {
                out.push(x.union((**b).clone()));
            }
            for y in shrink_rpath(b) {
                out.push((**a).clone().union(y));
            }
        }
        RPath::Star(a) => {
            // "shorten the star": ε (zero iterations) or the body (one)
            out.push(RPath::Eps);
            out.push((**a).clone());
            for x in shrink_rpath(a) {
                out.push(x.star());
            }
        }
        RPath::Filter(a, f) => {
            // "strip the filter"
            out.push((**a).clone());
            out.push(RPath::test((**f).clone()));
            for x in shrink_rpath(a) {
                out.push(x.filter((**f).clone()));
            }
            for g in shrink_rnode(f) {
                out.push((**a).clone().filter(g));
            }
        }
    }
}

fn node_candidates(f: &RNode, out: &mut Vec<RNode>) {
    match f {
        RNode::True | RNode::Label(_) => {}
        RNode::Some(a) => {
            out.push(RNode::True);
            for x in shrink_rpath(a) {
                out.push(RNode::some(x));
            }
        }
        RNode::Not(g) => {
            out.push((**g).clone());
            out.push(RNode::True);
            for h in shrink_rnode(g) {
                out.push(h.not());
            }
        }
        RNode::And(g, h) | RNode::Or(g, h) => {
            out.push((**g).clone());
            out.push((**h).clone());
            let rebuild: fn(RNode, RNode) -> RNode = if matches!(f, RNode::And(_, _)) {
                RNode::and
            } else {
                RNode::or
            };
            for x in shrink_rnode(g) {
                out.push(rebuild(x, (**h).clone()));
            }
            for y in shrink_rnode(h) {
                out.push(rebuild((**g).clone(), y));
            }
        }
        RNode::Within(g) => {
            out.push((**g).clone());
            for h in shrink_rnode(g) {
                out.push(h.within());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Axis;
    use crate::generate::{random_rnode, random_rpath, RGenConfig};
    use twx_xtree::rng::SplitMix64;

    #[test]
    fn atoms_have_no_candidates() {
        assert!(shrink_rpath(&RPath::Eps).is_empty());
        assert!(shrink_rpath(&RPath::Axis(Axis::Down)).is_empty());
        assert!(shrink_rnode(&RNode::True).is_empty());
    }

    #[test]
    fn structural_moves_present() {
        let d = RPath::Axis(Axis::Down);
        let u = RPath::Axis(Axis::Up);
        let union = d.clone().union(u.clone());
        let cands = shrink_rpath(&union);
        assert!(cands.contains(&d), "drop right disjunct");
        assert!(cands.contains(&u), "drop left disjunct");

        let star = d.clone().star();
        let cands = shrink_rpath(&star);
        assert!(cands.contains(&RPath::Eps), "star → ε");
        assert!(cands.contains(&d), "star → body");

        let filt = d.clone().filter(RNode::Label(twx_xtree::Label(0)));
        assert!(shrink_rpath(&filt).contains(&d), "strip filter");
    }

    /// Every candidate is strictly smaller, so greedy shrinking
    /// terminates; candidate lists are deterministic and sorted.
    #[test]
    fn candidates_strictly_smaller_and_sorted() {
        let mut rng = SplitMix64::seed_from_u64(77);
        let cfg = RGenConfig::default();
        for _ in 0..60 {
            let p = random_rpath(&cfg, 4, &mut rng);
            let cands = shrink_rpath(&p);
            assert_eq!(cands, shrink_rpath(&p), "deterministic");
            for (i, c) in cands.iter().enumerate() {
                assert!(c.size() < p.size(), "{c:?} not smaller than {p:?}");
                if i > 0 {
                    assert!(cands[i - 1].size() <= c.size(), "not sorted");
                }
            }
            let f = random_rnode(&cfg, 4, &mut rng);
            for c in shrink_rnode(&f) {
                assert!(c.size() < f.size());
            }
        }
    }

    /// Greedily descending through candidates always reaches an atom.
    #[test]
    fn greedy_descent_terminates_at_an_atom() {
        let mut rng = SplitMix64::seed_from_u64(8);
        let cfg = RGenConfig::default();
        for _ in 0..20 {
            let mut p = random_rpath(&cfg, 5, &mut rng);
            let mut steps = 0usize;
            while let Some(next) = shrink_rpath(&p).into_iter().next() {
                p = next;
                steps += 1;
                assert!(steps < 10_000, "runaway shrink");
            }
            assert!(p.size() <= 2, "stuck at {p:?}");
        }
    }
}

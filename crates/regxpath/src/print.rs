//! Pretty printing for Regular XPath(W): `parse(print(e)) == e`.
//!
//! The `+` sugar is parse-only (printed as `A/A*`), everything else
//! round-trips syntactically.

use crate::ast::{Axis, RNode, RPath};
use std::fmt::Write;
use twx_xtree::Alphabet;

/// Renders a path expression.
pub fn rpath_to_string(p: &RPath, alphabet: &Alphabet) -> String {
    let mut out = String::new();
    write_path(p, alphabet, 0, &mut out);
    out
}

/// Renders a node expression.
pub fn rnode_to_string(f: &RNode, alphabet: &Alphabet) -> String {
    let mut out = String::new();
    write_node(f, alphabet, 0, &mut out);
    out
}

fn axis_name(a: Axis) -> &'static str {
    match a {
        Axis::Down => "down",
        Axis::Up => "up",
        Axis::Left => "left",
        Axis::Right => "right",
    }
}

/// Precedence: 0 = union, 1 = seq, 2 = postfix, 3 = atom.
fn write_path(p: &RPath, ab: &Alphabet, prec: u8, out: &mut String) {
    match p {
        RPath::Axis(a) => out.push_str(axis_name(*a)),
        RPath::Eps => out.push('.'),
        RPath::Test(f) => {
            out.push_str("?(");
            write_node(f, ab, 0, out);
            out.push(')');
        }
        RPath::Union(a, b) => {
            let parens = prec > 0;
            if parens {
                out.push('(');
            }
            write_path(a, ab, 0, out);
            out.push_str(" | ");
            write_path(b, ab, 1, out);
            if parens {
                out.push(')');
            }
        }
        RPath::Seq(a, b) => {
            let parens = prec > 1;
            if parens {
                out.push('(');
            }
            write_path(a, ab, 1, out);
            out.push('/');
            write_path(b, ab, 2, out);
            if parens {
                out.push(')');
            }
        }
        RPath::Star(a) => {
            write_path(a, ab, 3, out);
            out.push('*');
        }
        RPath::Filter(a, f) => {
            write_path(a, ab, 2, out);
            out.push('[');
            write_node(f, ab, 0, out);
            out.push(']');
        }
    }
}

/// Node precedence: 0 = or, 1 = and, 2 = unary/atom.
fn write_node(f: &RNode, ab: &Alphabet, prec: u8, out: &mut String) {
    match f {
        RNode::True => out.push_str("true"),
        RNode::Label(l) => {
            let _ = write!(out, "{}", ab.name(*l));
        }
        RNode::Some(a) => {
            out.push('<');
            write_path(a, ab, 0, out);
            out.push('>');
        }
        RNode::Not(g) => {
            out.push('!');
            write_node(g, ab, 2, out);
        }
        RNode::Within(g) => {
            out.push_str("W(");
            write_node(g, ab, 0, out);
            out.push(')');
        }
        RNode::And(g, h) => {
            let parens = prec > 1;
            if parens {
                out.push('(');
            }
            write_node(g, ab, 1, out);
            out.push_str(" and ");
            write_node(h, ab, 2, out);
            if parens {
                out.push(')');
            }
        }
        RNode::Or(g, h) => {
            let parens = prec > 0;
            if parens {
                out.push('(');
            }
            write_node(g, ab, 0, out);
            out.push_str(" or ");
            write_node(h, ab, 1, out);
            if parens {
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_rnode, random_rpath, RGenConfig};
    use crate::parser::{parse_rnode, parse_rpath};
    use twx_xtree::rng::SplitMix64 as StdRng;

    #[test]
    fn examples() {
        let mut ab = Alphabet::new();
        let p = parse_rpath("(down | up)*[a]/?(b)", &mut ab).unwrap();
        assert_eq!(rpath_to_string(&p, &ab), "(down | up)*[a]/?(b)");
        let f = parse_rnode("W(!a and <down*>)", &mut ab).unwrap();
        assert_eq!(rnode_to_string(&f, &ab), "W(!a and <down*>)");
    }

    #[test]
    fn star_of_composite_parenthesized() {
        let mut ab = Alphabet::new();
        let p = RPath::Axis(Axis::Down).seq(RPath::Axis(Axis::Up)).star();
        let s = rpath_to_string(&p, &ab);
        assert_eq!(s, "(down/up)*");
        assert_eq!(parse_rpath(&s, &mut ab).unwrap(), p);
    }

    #[test]
    fn roundtrip_fuzz() {
        let mut rng = StdRng::seed_from_u64(123);
        let cfg = RGenConfig::default();
        let mut ab = Alphabet::new();
        for i in 0..cfg.labels {
            ab.intern(&format!("p{i}"));
        }
        for _ in 0..300 {
            let p = random_rpath(&cfg, 5, &mut rng);
            let s = rpath_to_string(&p, &ab);
            let back = parse_rpath(&s, &mut ab)
                .unwrap_or_else(|e| panic!("reparse failed for '{s}': {e}"));
            assert_eq!(back, p, "roundtrip failed: {s}");
            let f = random_rnode(&cfg, 5, &mut rng);
            let s = rnode_to_string(&f, &ab);
            let back = parse_rnode(&s, &mut ab)
                .unwrap_or_else(|e| panic!("reparse failed for '{s}': {e}"));
            assert_eq!(back, f, "roundtrip failed: {s}");
        }
    }
}

//! Regular XPath(W) abstract syntax.

use twx_xtree::Label;

pub use twx_corexpath::ast::Axis;

/// A Regular XPath(W) path expression (binary relation on nodes).
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum RPath {
    /// A single primitive axis step.
    Axis(Axis),
    /// `ε` — the identity relation.
    Eps,
    /// `?φ` — the diagonal test `{(x,x) | x ⊨ φ}`.
    Test(Box<RNode>),
    /// `A/B` — composition.
    Seq(Box<RPath>, Box<RPath>),
    /// `A ∪ B` — union.
    Union(Box<RPath>, Box<RPath>),
    /// `A*` — reflexive-transitive closure (of an **arbitrary** path
    /// expression; this is what "Regular" adds to Core XPath).
    Star(Box<RPath>),
    /// `A[φ]` — codomain filter (expressible as `A/?φ`, kept primitive for
    /// round-tripping with Core XPath).
    Filter(Box<RPath>, Box<RNode>),
}

/// A Regular XPath(W) node expression (set of nodes).
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum RNode {
    /// `⊤`.
    True,
    /// Label test.
    Label(Label),
    /// `⟨A⟩` — an `A`-path starts here.
    Some(Box<RPath>),
    /// `¬φ`.
    Not(Box<RNode>),
    /// `φ ∧ ψ`.
    And(Box<RNode>, Box<RNode>),
    /// `φ ∨ ψ`.
    Or(Box<RNode>, Box<RNode>),
    /// `W φ` — subtree relativisation: `φ` holds here *within the subtree
    /// rooted here*.
    Within(Box<RNode>),
}

impl RPath {
    /// `self/other`.
    pub fn seq(self, other: RPath) -> RPath {
        RPath::Seq(Box::new(self), Box::new(other))
    }

    /// `self ∪ other`.
    pub fn union(self, other: RPath) -> RPath {
        RPath::Union(Box::new(self), Box::new(other))
    }

    /// `self*`.
    pub fn star(self) -> RPath {
        RPath::Star(Box::new(self))
    }

    /// `self⁺` as sugar: `self/self*`.
    pub fn plus(self) -> RPath {
        self.clone().seq(self.star())
    }

    /// `self[φ]`.
    pub fn filter(self, phi: RNode) -> RPath {
        RPath::Filter(Box::new(self), Box::new(phi))
    }

    /// `?φ`.
    pub fn test(phi: RNode) -> RPath {
        RPath::Test(Box::new(phi))
    }

    /// Syntactic size (AST nodes of both sorts).
    pub fn size(&self) -> usize {
        match self {
            RPath::Axis(_) | RPath::Eps => 1,
            RPath::Test(f) => 1 + f.size(),
            RPath::Seq(a, b) | RPath::Union(a, b) => 1 + a.size() + b.size(),
            RPath::Star(a) => 1 + a.size(),
            RPath::Filter(a, f) => 1 + a.size() + f.size(),
        }
    }

    /// Star height (nesting depth of `*`).
    pub fn star_height(&self) -> usize {
        match self {
            RPath::Axis(_) | RPath::Eps => 0,
            RPath::Test(f) => f.star_height(),
            RPath::Seq(a, b) | RPath::Union(a, b) => a.star_height().max(b.star_height()),
            RPath::Star(a) => 1 + a.star_height(),
            RPath::Filter(a, f) => a.star_height().max(f.star_height()),
        }
    }

    /// Whether the `W` operator occurs anywhere in this expression.
    pub fn uses_within(&self) -> bool {
        match self {
            RPath::Axis(_) | RPath::Eps => false,
            RPath::Test(f) => f.uses_within(),
            RPath::Seq(a, b) | RPath::Union(a, b) => a.uses_within() || b.uses_within(),
            RPath::Star(a) => a.uses_within(),
            RPath::Filter(a, f) => a.uses_within() || f.uses_within(),
        }
    }

    /// Whether every axis occurring anywhere in this expression —
    /// including inside tests and filters, at any nesting depth — is
    /// [`Axis::Down`]. Such a path is **subtree-local**: evaluated from a
    /// context node `c`, every node it can visit (and hence its full
    /// answer) lies inside `c`'s subtree, so the answer is unaffected by
    /// any edit strictly outside `[c, subtree_end(c))`. `Up`, `Left`, or
    /// `Right` anywhere breaks locality (the walk can escape the
    /// subtree); `W` is harmless (it only restricts further).
    pub fn is_downward(&self) -> bool {
        match self {
            RPath::Axis(a) => *a == Axis::Down,
            RPath::Eps => true,
            RPath::Test(f) => f.is_downward(),
            RPath::Seq(a, b) | RPath::Union(a, b) => a.is_downward() && b.is_downward(),
            RPath::Star(a) => a.is_downward(),
            RPath::Filter(a, f) => a.is_downward() && f.is_downward(),
        }
    }
}

impl RNode {
    /// `⊥` as sugar.
    pub fn fals() -> RNode {
        RNode::Not(Box::new(RNode::True))
    }

    /// `⟨A⟩`.
    pub fn some(a: RPath) -> RNode {
        RNode::Some(Box::new(a))
    }

    /// `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> RNode {
        RNode::Not(Box::new(self))
    }

    /// `self ∧ other`.
    pub fn and(self, other: RNode) -> RNode {
        RNode::And(Box::new(self), Box::new(other))
    }

    /// `self ∨ other`.
    pub fn or(self, other: RNode) -> RNode {
        RNode::Or(Box::new(self), Box::new(other))
    }

    /// `W self`.
    pub fn within(self) -> RNode {
        RNode::Within(Box::new(self))
    }

    /// `root` sugar: `¬⟨↑⟩`.
    pub fn root() -> RNode {
        RNode::some(RPath::Axis(Axis::Up)).not()
    }

    /// `leaf` sugar: `¬⟨↓⟩`.
    pub fn leaf() -> RNode {
        RNode::some(RPath::Axis(Axis::Down)).not()
    }

    /// Syntactic size.
    pub fn size(&self) -> usize {
        match self {
            RNode::True | RNode::Label(_) => 1,
            RNode::Some(a) => 1 + a.size(),
            RNode::Not(f) | RNode::Within(f) => 1 + f.size(),
            RNode::And(f, g) | RNode::Or(f, g) => 1 + f.size() + g.size(),
        }
    }

    /// Star height.
    pub fn star_height(&self) -> usize {
        match self {
            RNode::True | RNode::Label(_) => 0,
            RNode::Some(a) => a.star_height(),
            RNode::Not(f) | RNode::Within(f) => f.star_height(),
            RNode::And(f, g) | RNode::Or(f, g) => f.star_height().max(g.star_height()),
        }
    }

    /// Whether `W` occurs.
    pub fn uses_within(&self) -> bool {
        match self {
            RNode::True | RNode::Label(_) => false,
            RNode::Some(a) => a.uses_within(),
            RNode::Within(_) => true,
            RNode::Not(f) => f.uses_within(),
            RNode::And(f, g) | RNode::Or(f, g) => f.uses_within() || g.uses_within(),
        }
    }

    /// Node-expression half of [`RPath::is_downward`]: true iff every
    /// embedded path uses only [`Axis::Down`]. Evaluated at a node `x`,
    /// such a test depends only on `x`'s subtree.
    pub fn is_downward(&self) -> bool {
        match self {
            RNode::True | RNode::Label(_) => true,
            RNode::Some(a) => a.is_downward(),
            RNode::Not(f) | RNode::Within(f) => f.is_downward(),
            RNode::And(f, g) | RNode::Or(f, g) => f.is_downward() && g.is_downward(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_desugars_to_seq_star() {
        let a = RPath::Axis(Axis::Down);
        assert_eq!(a.clone().plus(), a.clone().seq(a.star()));
    }

    #[test]
    fn metrics() {
        let e = RPath::Axis(Axis::Down)
            .star()
            .seq(RPath::test(RNode::some(RPath::Axis(Axis::Right).star())));
        assert_eq!(e.star_height(), 1);
        assert_eq!(e.size(), 7);
        assert!(!e.uses_within());
        let w = RPath::test(RNode::True.within());
        assert!(w.uses_within());
    }

    #[test]
    fn downward_detection() {
        let down = RPath::Axis(Axis::Down);
        assert!(down
            .clone()
            .star()
            .filter(RNode::some(RPath::Axis(Axis::Down)))
            .is_downward());
        assert!(RPath::Eps.is_downward());
        assert!(!RPath::Axis(Axis::Up).is_downward());
        assert!(!down
            .seq(RPath::test(RNode::some(RPath::Axis(Axis::Left))))
            .is_downward());
        assert!(RPath::test(RNode::True.within()).is_downward()); // W stays local
        assert!(!RPath::test(RNode::root()).is_downward()); // root = ¬⟨↑⟩ mentions up
    }
}

//! Random Regular XPath(W) expression generators.

use crate::ast::{Axis, RNode, RPath};
use twx_xtree::rng::Rng;
use twx_xtree::Label;

/// Configuration for random generation.
#[derive(Clone, Debug)]
pub struct RGenConfig {
    /// Axes allowed.
    pub axes: Vec<Axis>,
    /// Number of labels.
    pub labels: usize,
    /// Whether `*` may appear.
    pub stars: bool,
    /// Whether `W` may appear.
    pub within: bool,
}

impl Default for RGenConfig {
    fn default() -> Self {
        RGenConfig {
            axes: Axis::ALL.to_vec(),
            labels: 2,
            stars: true,
            within: true,
        }
    }
}

/// Generates a random path expression with recursion budget `depth`.
pub fn random_rpath<R: Rng>(cfg: &RGenConfig, depth: usize, rng: &mut R) -> RPath {
    if depth == 0 {
        return match rng.gen_range(0..4) {
            0 => RPath::Eps,
            _ => RPath::Axis(cfg.axes[rng.gen_range(0..cfg.axes.len())]),
        };
    }
    match rng.gen_range(0..10) {
        0 | 1 => RPath::Axis(cfg.axes[rng.gen_range(0..cfg.axes.len())]),
        2 => RPath::Eps,
        3 => RPath::test(random_rnode(cfg, depth - 1, rng)),
        4 | 5 => random_rpath(cfg, depth - 1, rng).seq(random_rpath(cfg, depth - 1, rng)),
        6 => random_rpath(cfg, depth - 1, rng).union(random_rpath(cfg, depth - 1, rng)),
        7 if cfg.stars => random_rpath(cfg, depth - 1, rng).star(),
        _ => random_rpath(cfg, depth - 1, rng).filter(random_rnode(cfg, depth - 1, rng)),
    }
}

/// Generates a random node expression with recursion budget `depth`.
pub fn random_rnode<R: Rng>(cfg: &RGenConfig, depth: usize, rng: &mut R) -> RNode {
    if depth == 0 {
        return match rng.gen_range(0..3) {
            0 => RNode::True,
            _ => RNode::Label(Label(rng.gen_range(0..cfg.labels) as u32)),
        };
    }
    match rng.gen_range(0..9) {
        0 => RNode::True,
        1 | 2 => RNode::Label(Label(rng.gen_range(0..cfg.labels) as u32)),
        3 | 4 => RNode::some(random_rpath(cfg, depth - 1, rng)),
        5 => random_rnode(cfg, depth - 1, rng).not(),
        6 => random_rnode(cfg, depth - 1, rng).and(random_rnode(cfg, depth - 1, rng)),
        7 => random_rnode(cfg, depth - 1, rng).or(random_rnode(cfg, depth - 1, rng)),
        _ if cfg.within => random_rnode(cfg, depth - 1, rng).within(),
        _ => random_rnode(cfg, depth - 1, rng).not(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::rng::SplitMix64 as StdRng;

    #[test]
    fn respects_flags() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = RGenConfig {
            stars: false,
            within: false,
            ..RGenConfig::default()
        };
        for _ in 0..100 {
            let p = random_rpath(&cfg, 5, &mut rng);
            assert_eq!(p.star_height(), 0, "{p:?}");
            assert!(!p.uses_within());
            let f = random_rnode(&cfg, 5, &mut rng);
            assert!(!f.uses_within(), "{f:?}");
        }
    }

    #[test]
    fn produces_varied_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = RGenConfig::default();
        let sizes: Vec<usize> = (0..50)
            .map(|_| random_rpath(&cfg, 5, &mut rng).size())
            .collect();
        assert!(sizes.iter().any(|&s| s > 5));
        assert!(sizes.iter().any(|&s| s <= 3));
    }
}

//! Surface syntax for Regular XPath(W).
//!
//! Extends the Core XPath surface syntax with:
//!
//! * postfix `*` (Kleene star of arbitrary paths) and `+` (sugar for
//!   `A/A*`);
//! * `?(φ)` — the diagonal node test;
//! * `W(φ)` — the *within* (subtree relativisation) operator;
//! * `.` denotes `ε`.
//!
//! ```text
//! path  ::=  seq ( '|' seq )*
//! seq   ::=  post ( '/' post )*
//! post  ::=  atom ( '[' node ']' | '*' | '+' )*
//! atom  ::=  AXIS | '.' | '?' '(' node ')' | '(' path ')'
//! node  ::=  conj ( 'or' conj )* ; conj ::= unary ( 'and' unary )*
//! unary ::=  '!' unary | 'not' '(' node ')' | 'W' '(' node ')'
//!         |  '<' path '>' | 'true' | 'false' | 'root' | 'leaf'
//!         |  LABEL | '(' node ')'
//! ```

use crate::ast::{Axis, RNode, RPath};
use std::fmt;
use twx_xtree::{Alphabet, Catalog, Label};

/// A syntax error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    /// Byte offset of the offending token.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SyntaxError {}

/// An error from the resolve-only entry points
/// ([`parse_rpath_resolved`] / [`parse_rnode_resolved`]), which look
/// labels up in a read-only label space instead of interning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// The input did not parse.
    Syntax(SyntaxError),
    /// The input parsed but names a label the label space does not
    /// contain — with `&mut` interning this would have silently created
    /// a query-only label.
    UnknownLabel {
        /// The label name that failed to resolve.
        label: String,
        /// Byte offset of the label in the input.
        offset: usize,
    },
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::Syntax(e) => e.fmt(f),
            ResolveError::UnknownLabel { label, offset } => {
                write!(f, "unknown label '{label}' at {offset}")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// How the parser maps label names to [`Label`]s: by interning into a
/// mutable alphabet (the historical behaviour) or by read-only lookup.
enum Labels<'a> {
    Intern(&'a mut Alphabet),
    Resolve(&'a Alphabet),
}

impl Labels<'_> {
    fn get(&mut self, name: &str) -> Option<Label> {
        match self {
            Labels::Intern(ab) => Some(ab.intern(name)),
            Labels::Resolve(ab) => ab.lookup(name),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Slash,
    Pipe,
    LBracket,
    RBracket,
    LParen,
    RParen,
    LAngle,
    RAngle,
    Bang,
    Dot,
    Plus,
    Star,
    Question,
    Eof,
}

struct Lexer<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn next_tok(&mut self) -> Result<(usize, Tok), SyntaxError> {
        while self
            .input
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
        let start = self.pos;
        let Some(&c) = self.input.get(self.pos) else {
            return Ok((start, Tok::Eof));
        };
        self.pos += 1;
        let tok = match c {
            b'/' => Tok::Slash,
            b'|' => Tok::Pipe,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'<' => Tok::LAngle,
            b'>' => Tok::RAngle,
            b'!' => Tok::Bang,
            b'.' => Tok::Dot,
            b'+' => Tok::Plus,
            b'*' => Tok::Star,
            b'?' => Tok::Question,
            c if c.is_ascii_alphanumeric() || c == b'_' || c == b'@' => {
                while self.input.get(self.pos).is_some_and(|&c| {
                    c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'@' | b'=')
                }) {
                    self.pos += 1;
                }
                Tok::Ident(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
            }
            c => {
                return Err(SyntaxError {
                    offset: start,
                    message: format!("unexpected character '{}'", c as char),
                })
            }
        };
        Ok((start, tok))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    tok_pos: usize,
    labels: Labels<'a>,
    /// Set when a label fails to resolve in [`Labels::Resolve`] mode, so
    /// the resolve entry points can surface a typed error.
    unknown: Option<String>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, labels: Labels<'a>) -> Result<Self, SyntaxError> {
        let mut lexer = Lexer {
            input: input.as_bytes(),
            pos: 0,
        };
        let (tok_pos, tok) = lexer.next_tok()?;
        Ok(Parser {
            lexer,
            tok,
            tok_pos,
            labels,
            unknown: None,
        })
    }

    /// Requires the whole input to have been consumed.
    fn eof(&mut self) -> Result<(), SyntaxError> {
        if self.tok == Tok::Eof {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {:?}", self.tok)))
        }
    }

    /// Converts a syntax error into the resolve-mode error, promoting a
    /// pending unknown-label record to the typed variant.
    fn resolve_err(&mut self, e: SyntaxError) -> ResolveError {
        match self.unknown.take() {
            Some(label) => ResolveError::UnknownLabel {
                label,
                offset: e.offset,
            },
            None => ResolveError::Syntax(e),
        }
    }

    fn bump(&mut self) -> Result<(), SyntaxError> {
        let (p, t) = self.lexer.next_tok()?;
        self.tok = t;
        self.tok_pos = p;
        Ok(())
    }

    fn expect(&mut self, t: Tok) -> Result<(), SyntaxError> {
        if self.tok == t {
            self.bump()
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.tok)))
        }
    }

    fn err(&self, message: String) -> SyntaxError {
        SyntaxError {
            offset: self.tok_pos,
            message,
        }
    }

    fn path(&mut self) -> Result<RPath, SyntaxError> {
        let mut e = self.seq()?;
        while self.tok == Tok::Pipe {
            self.bump()?;
            e = e.union(self.seq()?);
        }
        Ok(e)
    }

    fn seq(&mut self) -> Result<RPath, SyntaxError> {
        let mut e = self.postfix()?;
        while self.tok == Tok::Slash {
            self.bump()?;
            e = e.seq(self.postfix()?);
        }
        Ok(e)
    }

    fn postfix(&mut self) -> Result<RPath, SyntaxError> {
        let mut e = self.atom()?;
        loop {
            match self.tok {
                Tok::LBracket => {
                    self.bump()?;
                    let phi = self.node()?;
                    self.expect(Tok::RBracket)?;
                    e = e.filter(phi);
                }
                Tok::Star => {
                    self.bump()?;
                    e = e.star();
                }
                Tok::Plus => {
                    self.bump()?;
                    e = e.plus();
                }
                _ => return Ok(e),
            }
        }
    }

    fn atom(&mut self) -> Result<RPath, SyntaxError> {
        match self.tok.clone() {
            Tok::Dot => {
                self.bump()?;
                Ok(RPath::Eps)
            }
            Tok::Question => {
                self.bump()?;
                self.expect(Tok::LParen)?;
                let phi = self.node()?;
                self.expect(Tok::RParen)?;
                Ok(RPath::test(phi))
            }
            Tok::LParen => {
                self.bump()?;
                let e = self.path()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                let axis = match name.as_str() {
                    "down" | "child" => Axis::Down,
                    "up" | "parent" => Axis::Up,
                    "left" | "preceding-sibling" => Axis::Left,
                    "right" | "following-sibling" => Axis::Right,
                    other => {
                        return Err(self.err(format!(
                            "expected an axis (down/up/left/right), found '{other}'"
                        )))
                    }
                };
                self.bump()?;
                Ok(RPath::Axis(axis))
            }
            t => Err(self.err(format!("expected a path expression, found {t:?}"))),
        }
    }

    fn node(&mut self) -> Result<RNode, SyntaxError> {
        let mut e = self.conj()?;
        while self.tok == Tok::Ident("or".into()) {
            self.bump()?;
            e = e.or(self.conj()?);
        }
        Ok(e)
    }

    fn conj(&mut self) -> Result<RNode, SyntaxError> {
        let mut e = self.unary()?;
        while self.tok == Tok::Ident("and".into()) {
            self.bump()?;
            e = e.and(self.unary()?);
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<RNode, SyntaxError> {
        match self.tok.clone() {
            Tok::Bang => {
                self.bump()?;
                Ok(self.unary()?.not())
            }
            Tok::LAngle => {
                self.bump()?;
                let p = self.path()?;
                self.expect(Tok::RAngle)?;
                Ok(RNode::some(p))
            }
            Tok::LParen => {
                self.bump()?;
                let e = self.node()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => match name.as_str() {
                "true" => {
                    self.bump()?;
                    Ok(RNode::True)
                }
                "false" => {
                    self.bump()?;
                    Ok(RNode::fals())
                }
                "root" => {
                    self.bump()?;
                    Ok(RNode::root())
                }
                "leaf" => {
                    self.bump()?;
                    Ok(RNode::leaf())
                }
                "not" => {
                    self.bump()?;
                    self.expect(Tok::LParen)?;
                    let e = self.node()?;
                    self.expect(Tok::RParen)?;
                    Ok(e.not())
                }
                "W" | "within" => {
                    self.bump()?;
                    self.expect(Tok::LParen)?;
                    let e = self.node()?;
                    self.expect(Tok::RParen)?;
                    Ok(e.within())
                }
                "and" | "or" => Err(self.err(format!("'{name}' is a reserved word"))),
                _ => match self.labels.get(&name) {
                    Some(l) => {
                        self.bump()?;
                        Ok(RNode::Label(l))
                    }
                    None => {
                        let e = self.err(format!("unknown label '{name}'"));
                        self.unknown = Some(name);
                        Err(e)
                    }
                },
            },
            t => Err(self.err(format!("expected a node expression, found {t:?}"))),
        }
    }
}

/// Parses a Regular XPath(W) path expression, interning labels.
pub fn parse_rpath(input: &str, alphabet: &mut Alphabet) -> Result<RPath, SyntaxError> {
    let mut p = Parser::new(input, Labels::Intern(alphabet))?;
    let e = p.path()?;
    p.eof()?;
    Ok(e)
}

/// Parses a Regular XPath(W) node expression, interning labels.
pub fn parse_rnode(input: &str, alphabet: &mut Alphabet) -> Result<RNode, SyntaxError> {
    let mut p = Parser::new(input, Labels::Intern(alphabet))?;
    let e = p.node()?;
    p.eof()?;
    Ok(e)
}

/// Parses a path expression against a **read-only** label space: labels
/// are resolved by lookup, and a name the space does not contain is a
/// typed [`ResolveError::UnknownLabel`] instead of a silent intern.
///
/// This is the engine's parse stage for immutable documents.
pub fn parse_rpath_resolved(input: &str, alphabet: &Alphabet) -> Result<RPath, ResolveError> {
    let mut p = Parser::new(input, Labels::Resolve(alphabet)).map_err(ResolveError::Syntax)?;
    match p.path().and_then(|e| p.eof().map(|()| e)) {
        Ok(e) => Ok(e),
        Err(se) => Err(p.resolve_err(se)),
    }
}

/// Parses a node expression against a read-only label space (see
/// [`parse_rpath_resolved`]).
pub fn parse_rnode_resolved(input: &str, alphabet: &Alphabet) -> Result<RNode, ResolveError> {
    let mut p = Parser::new(input, Labels::Resolve(alphabet)).map_err(ResolveError::Syntax)?;
    match p.node().and_then(|e| p.eof().map(|()| e)) {
        Ok(e) => Ok(e),
        Err(se) => Err(p.resolve_err(se)),
    }
}

/// Parses a path expression, interning labels into a shared [`Catalog`]
/// (append-only, thread-safe): the entry point for compiling queries
/// that will be served across every document sharing the catalog.
pub fn parse_rpath_catalog(input: &str, catalog: &Catalog) -> Result<RPath, SyntaxError> {
    catalog.with_write(|ab| parse_rpath(input, ab))
}

/// Parses a node expression, interning labels into a shared [`Catalog`].
pub fn parse_rnode_catalog(input: &str, catalog: &Catalog) -> Result<RNode, SyntaxError> {
    catalog.with_write(|ab| parse_rnode(input, ab))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stars_and_plus() {
        let mut ab = Alphabet::new();
        let p = parse_rpath("down*", &mut ab).unwrap();
        assert_eq!(p, RPath::Axis(Axis::Down).star());
        let p = parse_rpath("down+", &mut ab).unwrap();
        assert_eq!(p, RPath::Axis(Axis::Down).plus());
        let p = parse_rpath("(down/up)*", &mut ab).unwrap();
        assert_eq!(p, RPath::Axis(Axis::Down).seq(RPath::Axis(Axis::Up)).star());
    }

    #[test]
    fn tests_and_within() {
        let mut ab = Alphabet::new();
        let p = parse_rpath("?(a)/down", &mut ab).unwrap();
        let a = ab.lookup("a").unwrap();
        assert_eq!(p, RPath::test(RNode::Label(a)).seq(RPath::Axis(Axis::Down)));
        let f = parse_rnode("W(<down+[b]>)", &mut ab).unwrap();
        let b = ab.lookup("b").unwrap();
        assert_eq!(
            f,
            RNode::some(RPath::Axis(Axis::Down).plus().filter(RNode::Label(b))).within()
        );
        assert_eq!(
            parse_rnode("within(true)", &mut ab).unwrap(),
            RNode::True.within()
        );
    }

    #[test]
    fn postfix_chains() {
        let mut ab = Alphabet::new();
        let p = parse_rpath("down[a]*[b]", &mut ab).unwrap();
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        assert_eq!(
            p,
            RPath::Axis(Axis::Down)
                .filter(RNode::Label(a))
                .star()
                .filter(RNode::Label(b))
        );
    }

    #[test]
    fn eps_dot() {
        let mut ab = Alphabet::new();
        assert_eq!(parse_rpath(".", &mut ab).unwrap(), RPath::Eps);
        assert_eq!(
            parse_rpath("./down", &mut ab).unwrap(),
            RPath::Eps.seq(RPath::Axis(Axis::Down))
        );
    }

    #[test]
    fn errors() {
        let mut ab = Alphabet::new();
        assert!(parse_rpath("down**[", &mut ab).is_err());
        assert!(parse_rpath("?a", &mut ab).is_err());
        assert!(parse_rnode("W down", &mut ab).is_err());
        assert!(parse_rpath("", &mut ab).is_err());
        assert!(parse_rnode("", &mut ab).is_err());
    }

    #[test]
    fn resolved_mode_rejects_unknown_labels_without_interning() {
        let ab = Alphabet::from_names(["a"]);
        let p = parse_rpath_resolved("down*[a]", &ab).unwrap();
        assert_eq!(
            p,
            RPath::Axis(Axis::Down)
                .star()
                .filter(RNode::Label(ab.lookup("a").unwrap()))
        );
        match parse_rpath_resolved("down[zzz]", &ab) {
            Err(ResolveError::UnknownLabel { label, .. }) => assert_eq!(label, "zzz"),
            other => panic!("expected UnknownLabel, got {other:?}"),
        }
        assert_eq!(ab.len(), 1, "resolve mode must not intern");
        // plain syntax errors still come out as Syntax
        assert!(matches!(
            parse_rnode_resolved("W down", &ab),
            Err(ResolveError::Syntax(_))
        ));
    }

    #[test]
    fn catalog_mode_interns_into_the_shared_space() {
        let catalog = Catalog::new();
        let p = parse_rpath_catalog("down[a]/down[b]", &catalog).unwrap();
        assert_eq!(catalog.len(), 2);
        let f = parse_rnode_catalog("a or b", &catalog).unwrap();
        assert_eq!(catalog.len(), 2, "names reused, not re-interned");
        let a = catalog.lookup("a").unwrap();
        let b = catalog.lookup("b").unwrap();
        assert_eq!(f, RNode::Label(a).or(RNode::Label(b)));
        assert_eq!(
            p,
            RPath::Axis(Axis::Down)
                .filter(RNode::Label(a))
                .seq(RPath::Axis(Axis::Down).filter(RNode::Label(b)))
        );
    }
}

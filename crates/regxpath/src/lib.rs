//! # twx-regxpath — Regular XPath(W)
//!
//! The query language at the centre of the paper: Core XPath closed under
//! the **Kleene star of arbitrary path expressions** (Regular XPath), plus
//! the **subtree relativisation operator `W`** ("within"):
//!
//! ```text
//! pexpr ::=  ↓ | ↑ | ← | → | ε | ?nexpr
//!         |  pexpr/pexpr | pexpr ∪ pexpr | pexpr* | pexpr[nexpr]
//! nexpr ::=  p | ⊤ | ⟨pexpr⟩ | ¬nexpr | nexpr ∧ nexpr | nexpr ∨ nexpr
//!         |  W nexpr
//! ```
//!
//! `W φ` holds at a node `v` iff `φ` holds at `v` in the subtree rooted at
//! `v` — the operator that closes Regular XPath under the FO(MTC)
//! translation and gives the equivalence with nested tree walking automata
//! (ten Cate & Segoufin 2008).
//!
//! Provided here:
//!
//! * the AST ([`ast`]), surface parser ([`parser`]) and printer ([`mod@print`]);
//! * Glushkov/Thompson-style compilation of path expressions to NFAs over
//!   the *move alphabet* `{↓, ↑, ←, →} ∪ {?φ}` ([`nfa`]) — the word-shaped
//!   view of tree walking that underlies both evaluation and the
//!   translation to tree walking automata;
//! * the **product evaluator** ([`eval`]): reachability in the product of
//!   the tree and the NFA, `O(|T| · |A|)` per context set;
//! * a naive relational baseline using `n × n` bit matrices and matrix
//!   star ([`eval_naive`]), `O(|A| · n³ log n / 64)`;
//! * random expression generation ([`generate`]) for differential testing.

pub mod ast;
pub mod eval;
pub mod eval_naive;
pub mod generate;
pub mod nfa;
pub mod parser;
pub mod print;
pub mod shrink;
pub mod simplify;

pub use ast::{RNode, RPath};
pub use eval::{eval_image, eval_node, eval_preimage, eval_rel, query};
pub use eval_naive::{eval_node_naive, eval_rel_naive};
pub use nfa::{Nfa, PathNfa};
pub use parser::{
    parse_rnode, parse_rnode_catalog, parse_rnode_resolved, parse_rpath, parse_rpath_catalog,
    parse_rpath_resolved, ResolveError,
};
pub use simplify::{simplify_rnode, simplify_rpath};

//! Naive relational evaluation of Regular XPath(W).
//!
//! Executes the denotational semantics literally with `n × n` bit matrices;
//! `Star` uses matrix closure (`O(n³ log n / 64)`). Baseline for E2 and the
//! differential-testing oracle for the product evaluator.

use crate::ast::{RNode, RPath};
use twx_corexpath::eval_naive::axis_matrix;
use twx_xtree::{BitMatrix, NodeSet, Tree};

/// Materialises `[[path]]` by structural recursion over the semantics.
pub fn eval_rel_naive(t: &Tree, path: &RPath) -> BitMatrix {
    match path {
        RPath::Axis(a) => axis_matrix(t, *a),
        RPath::Eps => BitMatrix::identity(t.len()),
        RPath::Test(f) => BitMatrix::diagonal(&eval_node_naive(t, f)),
        RPath::Seq(a, b) => eval_rel_naive(t, a).compose(&eval_rel_naive(t, b)),
        RPath::Union(a, b) => {
            let mut m = eval_rel_naive(t, a);
            m.union_with(&eval_rel_naive(t, b));
            m
        }
        RPath::Star(a) => eval_rel_naive(t, a).star(),
        RPath::Filter(a, f) => {
            let mut m = eval_rel_naive(t, a);
            m.filter_codomain(&eval_node_naive(t, f));
            m
        }
    }
}

/// Evaluates a node expression through the relational semantics.
pub fn eval_node_naive(t: &Tree, phi: &RNode) -> NodeSet {
    let n = t.len();
    match phi {
        RNode::True => NodeSet::full(n),
        RNode::Label(l) => NodeSet::from_iter(n, t.nodes().filter(|&v| t.label(v) == *l)),
        RNode::Some(a) => eval_rel_naive(t, a).domain(),
        RNode::Not(f) => {
            let mut s = eval_node_naive(t, f);
            s.complement();
            s
        }
        RNode::And(f, g) => {
            let mut s = eval_node_naive(t, f);
            s.intersect_with(&eval_node_naive(t, g));
            s
        }
        RNode::Or(f, g) => {
            let mut s = eval_node_naive(t, f);
            s.union_with(&eval_node_naive(t, g));
            s
        }
        RNode::Within(f) => {
            let mut s = NodeSet::empty(n);
            for v in t.nodes() {
                let sub = t.subtree(v);
                if eval_node_naive(&sub, f).contains(sub.root()) {
                    s.insert(v);
                }
            }
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Axis;
    use crate::eval::{eval_node, eval_rel};
    use crate::generate::{random_rnode, random_rpath, RGenConfig};
    use twx_xtree::generate::{random_tree, Shape};
    use twx_xtree::parse::parse_sexp;
    use twx_xtree::rng::SplitMix64 as StdRng;

    #[test]
    fn star_is_reflexive_transitive() {
        let t = parse_sexp("(a (b c) d)").unwrap().tree;
        let m = eval_rel_naive(&t, &RPath::Axis(Axis::Down).star());
        for v in t.nodes() {
            assert!(m.get(v, v));
        }
        assert!(m.get(twx_xtree::NodeId(0), twx_xtree::NodeId(2)));
        assert!(!m.get(twx_xtree::NodeId(2), twx_xtree::NodeId(0)));
    }

    /// Differential test: product evaluator vs relational semantics over a
    /// fuzzed corpus of expressions and trees (the E2 correctness oracle).
    #[test]
    fn product_evaluator_agrees_with_relational_semantics() {
        let mut rng = StdRng::seed_from_u64(2010);
        let cfg = RGenConfig::default();
        for round in 0..50 {
            let t = random_tree(Shape::Recursive, 1 + (round % 12), 2, &mut rng);
            let p = random_rpath(&cfg, 4, &mut rng);
            assert_eq!(
                eval_rel(&t, &p),
                eval_rel_naive(&t, &p),
                "path {p:?} on {t:?}"
            );
            let f = random_rnode(&cfg, 4, &mut rng);
            assert_eq!(
                eval_node(&t, &f),
                eval_node_naive(&t, &f),
                "node expr {f:?} on {t:?}"
            );
        }
    }

    /// `W` differential test with deeper trees (subtree extraction paths).
    #[test]
    fn within_agrees_between_evaluators() {
        let mut rng = StdRng::seed_from_u64(31);
        let cfg = RGenConfig {
            within: true,
            ..RGenConfig::default()
        };
        for round in 0..30 {
            let t = random_tree(Shape::Deep(2), 2 + (round % 10), 2, &mut rng);
            let f = random_rnode(&cfg, 3, &mut rng).within();
            assert_eq!(eval_node(&t, &f), eval_node_naive(&t, &f), "{f:?} on {t:?}");
        }
    }
}

//! Product-graph evaluation of Regular XPath(W).
//!
//! The image of a context set under a path expression is computed by
//! breadth-first reachability in the product of the tree and the compiled
//! NFA: product states are pairs `(node, nfa-state)`, axis transitions move
//! in the tree, test transitions are self-loops guarded by the (pre-
//! computed) node set of the test. Cost `O(|T| · |A|)` per context set —
//! the polynomial evaluation bound of the paper.
//!
//! `W φ` is evaluated by the subtree-extraction semantics (`φ` on the
//! subtree rooted at each node), which is `O(n · depth)` subtree work; the
//! relational baseline in [`eval_naive`](crate::eval_naive) shares the same
//! `W` strategy so differential tests exercise the product machinery.

use crate::ast::{Axis, RNode, RPath};
use crate::nfa::{compile, MoveLabel, PathNfa};
use twx_obs::{self as obs, Counter};
use twx_xtree::{BitMatrix, NodeId, NodeSet, Tree};

/// A path expression compiled for repeated evaluation.
///
/// ```
/// use twx_regxpath::eval::Compiled;
/// use twx_regxpath::parser::parse_rpath;
/// use twx_xtree::{parse::parse_sexp, NodeSet};
///
/// let doc = parse_sexp("(a (b c) b)").unwrap();
/// let mut ab = doc.alphabet.clone();
/// let q = Compiled::new(&parse_rpath("down*[b]", &mut ab).unwrap());
/// let ctx = NodeSet::singleton(doc.tree.len(), doc.tree.root());
/// assert_eq!(q.image(&doc.tree, &ctx).count(), 2); // both b nodes
/// ```
#[derive(Clone, Debug)]
pub struct Compiled {
    pnfa: PathNfa,
    fwd: Vec<Vec<(MoveLabel, u32)>>,
    bwd: Vec<Vec<(MoveLabel, u32)>>,
}

impl Compiled {
    /// Compiles `path` once; reuse across trees and context sets.
    pub fn new(path: &RPath) -> Compiled {
        let pnfa = compile(path);
        obs::add(Counter::CompiledNfaStates, pnfa.nfa.n_states as u64);
        let fwd = pnfa.nfa.forward_adj();
        let bwd = pnfa.nfa.backward_adj();
        Compiled { pnfa, fwd, bwd }
    }

    /// Number of NFA states.
    pub fn n_states(&self) -> u32 {
        self.pnfa.nfa.n_states
    }

    fn test_sets(&self, t: &Tree) -> Vec<NodeSet> {
        obs::add(Counter::ProductTestEvals, self.pnfa.tests.len() as u64);
        self.pnfa.tests.iter().map(|f| eval_node(t, f)).collect()
    }

    /// Forward image of `ctx` under the compiled path on tree `t`.
    pub fn image(&self, t: &Tree, ctx: &NodeSet) -> NodeSet {
        let tests = self.test_sets(t);
        self.image_with_tests(t, ctx, &tests)
    }

    fn image_with_tests(&self, t: &Tree, ctx: &NodeSet, tests: &[NodeSet]) -> NodeSet {
        let n = t.len();
        let m = self.pnfa.nfa.n_states as usize;
        let mut visited = vec![false; n * m];
        let mut work: Vec<(u32, u32)> = Vec::new();
        let mut expanded = 0u64;
        let start = self.pnfa.nfa.start;
        for v in ctx.iter() {
            push(&mut visited, &mut work, &mut expanded, m, v.0, start);
        }
        let mut out = NodeSet::empty(n);
        let accept = self.pnfa.nfa.accept;
        while let Some((v, q)) = work.pop() {
            if q == accept {
                out.insert(NodeId(v));
            }
            for &(label, q2) in &self.fwd[q as usize] {
                match label {
                    MoveLabel::Eps => push(&mut visited, &mut work, &mut expanded, m, v, q2),
                    MoveLabel::Test(i) => {
                        if tests[i as usize].contains(NodeId(v)) {
                            push(&mut visited, &mut work, &mut expanded, m, v, q2);
                        }
                    }
                    MoveLabel::Axis(a) => {
                        for_each_move(t, NodeId(v), a, |u| {
                            push(&mut visited, &mut work, &mut expanded, m, u.0, q2)
                        });
                    }
                }
            }
        }
        obs::add(Counter::ProductConfigs, expanded);
        out
    }

    /// Backward image of `targets`: the set of nodes from which some node
    /// in `targets` is reachable by the path.
    pub fn preimage(&self, t: &Tree, targets: &NodeSet) -> NodeSet {
        let tests = self.test_sets(t);
        self.preimage_with_tests(t, targets, &tests)
    }

    fn preimage_with_tests(&self, t: &Tree, targets: &NodeSet, tests: &[NodeSet]) -> NodeSet {
        let n = t.len();
        let m = self.pnfa.nfa.n_states as usize;
        let mut visited = vec![false; n * m];
        let mut work: Vec<(u32, u32)> = Vec::new();
        let mut expanded = 0u64;
        let accept = self.pnfa.nfa.accept;
        for v in targets.iter() {
            push(&mut visited, &mut work, &mut expanded, m, v.0, accept);
        }
        let mut out = NodeSet::empty(n);
        let start = self.pnfa.nfa.start;
        while let Some((v, q)) = work.pop() {
            if q == start {
                out.insert(NodeId(v));
            }
            // traverse transitions backwards: an edge p -label-> q means the
            // walk was at (u, p) with u -label-> v in the tree
            for &(label, p) in &self.bwd[q as usize] {
                match label {
                    MoveLabel::Eps => push(&mut visited, &mut work, &mut expanded, m, v, p),
                    MoveLabel::Test(i) => {
                        if tests[i as usize].contains(NodeId(v)) {
                            push(&mut visited, &mut work, &mut expanded, m, v, p);
                        }
                    }
                    MoveLabel::Axis(a) => {
                        // predecessors of v under axis a = successors under a⁻¹
                        for_each_move(t, NodeId(v), a.inverse(), |u| {
                            push(&mut visited, &mut work, &mut expanded, m, u.0, p)
                        });
                    }
                }
            }
        }
        obs::add(Counter::ProductConfigs, expanded);
        out
    }

    /// The set of nodes at which `⟨path⟩` holds (the domain of the
    /// relation): backward reachability from every accepting configuration.
    pub fn domain(&self, t: &Tree) -> NodeSet {
        self.preimage(t, &NodeSet::full(t.len()))
    }

    /// Materialises the full relation (`n` forward searches).
    pub fn relation(&self, t: &Tree) -> BitMatrix {
        let n = t.len();
        let tests = self.test_sets(t);
        let mut out = BitMatrix::empty(n);
        let mut cells = 0u64;
        for v in t.nodes() {
            let img = self.image_with_tests(t, &NodeSet::singleton(n, v), &tests);
            for u in img.iter() {
                cells += 1;
                out.set(v, u);
            }
        }
        obs::add(Counter::BitMatrixCells, cells);
        out
    }
}

/// Pushes `(v, q)` if unseen, counting expansions in `expanded` — a
/// plain register increment, flushed to [`Counter::ProductConfigs`]
/// once per search so the BFS inner loop never touches the
/// thread-local counter slots.
#[inline]
fn push(
    visited: &mut [bool],
    work: &mut Vec<(u32, u32)>,
    expanded: &mut u64,
    m: usize,
    v: u32,
    q: u32,
) {
    let idx = v as usize * m + q as usize;
    if !visited[idx] {
        visited[idx] = true;
        *expanded += 1;
        work.push((v, q));
    }
}

/// Applies `f` to every node reachable from `v` by one primitive move.
#[inline]
fn for_each_move<F: FnMut(NodeId)>(t: &Tree, v: NodeId, a: Axis, mut f: F) {
    match a {
        Axis::Down => {
            let mut c = t.first_child(v);
            while let Some(u) = c {
                f(u);
                c = t.next_sibling(u);
            }
        }
        Axis::Up => {
            if let Some(p) = t.parent(v) {
                f(p);
            }
        }
        Axis::Left => {
            if let Some(p) = t.prev_sibling(v) {
                f(p);
            }
        }
        Axis::Right => {
            if let Some(s) = t.next_sibling(v) {
                f(s);
            }
        }
    }
}

/// Evaluates a node expression to the set of nodes where it holds.
pub fn eval_node(t: &Tree, phi: &RNode) -> NodeSet {
    let n = t.len();
    match phi {
        RNode::True => NodeSet::full(n),
        RNode::Label(l) => NodeSet::from_iter(n, t.nodes().filter(|&v| t.label(v) == *l)),
        RNode::Some(a) => Compiled::new(a).domain(t),
        RNode::Not(f) => {
            let mut s = eval_node(t, f);
            s.complement();
            s
        }
        RNode::And(f, g) => {
            let mut s = eval_node(t, f);
            s.intersect_with(&eval_node(t, g));
            s
        }
        RNode::Or(f, g) => {
            let mut s = eval_node(t, f);
            s.union_with(&eval_node(t, g));
            s
        }
        RNode::Within(f) => {
            // Wφ at v  ⇔  φ at the root of subtree(v)
            let mut s = NodeSet::empty(n);
            for v in t.nodes() {
                obs::incr(Counter::SubtreeExtractions);
                let sub = t.subtree(v);
                if eval_node(&sub, f).contains(sub.root()) {
                    s.insert(v);
                }
            }
            s
        }
    }
}

/// Forward image of `ctx` under `path` (compiles, then evaluates).
pub fn eval_image(t: &Tree, path: &RPath, ctx: &NodeSet) -> NodeSet {
    Compiled::new(path).image(t, ctx)
}

/// Backward image of `targets` under `path`.
pub fn eval_preimage(t: &Tree, path: &RPath, targets: &NodeSet) -> NodeSet {
    Compiled::new(path).preimage(t, targets)
}

/// Materialises the full relation of `path` on `t`.
pub fn eval_rel(t: &Tree, path: &RPath) -> BitMatrix {
    Compiled::new(path).relation(t)
}

/// The nodes reachable from a single context node.
pub fn query(t: &Tree, path: &RPath, ctx: NodeId) -> NodeSet {
    eval_image(t, path, &NodeSet::singleton(t.len(), ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::parse::parse_sexp;
    use twx_xtree::Label;

    /// (a (b d e) (c f))  — ids: a=0 b=1 d=2 e=3 c=4 f=5
    fn sample() -> Tree {
        parse_sexp("(a (b d e) (c f))").unwrap().tree
    }

    fn ids(s: &NodeSet) -> Vec<u32> {
        s.iter().map(|v| v.0).collect()
    }

    #[test]
    fn star_reaches_descendants() {
        let t = sample();
        let p = RPath::Axis(Axis::Down).star();
        assert_eq!(ids(&query(&t, &p, NodeId(0))), [0, 1, 2, 3, 4, 5]);
        let p = RPath::Axis(Axis::Down).plus();
        assert_eq!(ids(&query(&t, &p, NodeId(1))), [2, 3]);
    }

    #[test]
    fn mixed_axis_star() {
        let t = sample();
        // (↑ ∪ ↓)* from any node reaches the whole tree
        let p = RPath::Axis(Axis::Up).union(RPath::Axis(Axis::Down)).star();
        assert_eq!(ids(&query(&t, &p, NodeId(3))).len(), 6);
    }

    #[test]
    fn guarded_star() {
        let t = sample();
        // (↓[¬f-label])* from root: avoid walking onto f
        let guard = RNode::Label(Label(5)).not();
        let p = RPath::Axis(Axis::Down).filter(guard).star();
        assert_eq!(ids(&query(&t, &p, NodeId(0))), [0, 1, 2, 3, 4]);
    }

    #[test]
    fn tests_are_diagonals() {
        let t = sample();
        // ?b-label from b stays at b, from elsewhere nothing
        let p = RPath::test(RNode::Label(Label(1)));
        assert_eq!(ids(&query(&t, &p, NodeId(1))), [1]);
        assert_eq!(ids(&query(&t, &p, NodeId(0))), Vec::<u32>::new());
    }

    #[test]
    fn preimage_inverts_image() {
        let t = sample();
        let p = RPath::Axis(Axis::Down).plus().seq(RPath::Axis(Axis::Right));
        let rel = eval_rel(&t, &p);
        for v in t.nodes() {
            let pre = eval_preimage(&t, &p, &NodeSet::singleton(6, v));
            let expect: Vec<u32> = t.nodes().filter(|&x| rel.get(x, v)).map(|x| x.0).collect();
            assert_eq!(ids(&pre), expect, "preimage of {v:?}");
        }
    }

    #[test]
    fn domain_is_some_semantics() {
        let t = sample();
        // ⟨↓/↓⟩ — has a grandchild
        let p = RPath::Axis(Axis::Down).seq(RPath::Axis(Axis::Down));
        assert_eq!(ids(&eval_node(&t, &RNode::some(p))), [0]);
    }

    #[test]
    fn within_restricts_to_subtree() {
        let t = sample();
        // ⟨↑⟩ holds everywhere except the root...
        let has_parent = RNode::some(RPath::Axis(Axis::Up));
        assert_eq!(ids(&eval_node(&t, &has_parent)), [1, 2, 3, 4, 5]);
        // ...but W⟨↑⟩ holds nowhere: each node is the root of its subtree
        assert_eq!(
            ids(&eval_node(&t, &has_parent.clone().within())),
            Vec::<u32>::new()
        );
        // W⟨↓⁺[d-label]⟩: the subtree below contains a d — true at a and b
        let has_d = RNode::some(
            RPath::Axis(Axis::Down)
                .plus()
                .filter(RNode::Label(Label(2))),
        );
        assert_eq!(ids(&eval_node(&t, &has_d.clone().within())), [0, 1]);
        // without W it is the same here (descendants stay in the subtree)
        assert_eq!(ids(&eval_node(&t, &has_d)), [0, 1]);
    }

    #[test]
    fn within_vs_global_difference() {
        // W distinguishes: "some ancestor-or-self has label a, then a b
        // sibling to the right" style conditions escape subtrees.
        let t = parse_sexp("(r (a x) (b y))").unwrap().tree;
        // φ = ⟨↑/↓[b-label]⟩: parent has a b-child — true at a(1), b(3)...
        // within the subtree of each node, the parent does not exist.
        let b_label = RNode::Label(Label(3)); // labels: r=0,a=1,x=2,b=3,y=4
        let phi = RNode::some(RPath::Axis(Axis::Up).seq(RPath::Axis(Axis::Down).filter(b_label)));
        let global = eval_node(&t, &phi);
        assert_eq!(ids(&global), [1, 3]);
        let within = eval_node(&t, &phi.within());
        assert_eq!(ids(&within), Vec::<u32>::new());
    }

    #[test]
    fn compiled_reuse_across_trees() {
        let c = Compiled::new(&RPath::Axis(Axis::Down).star());
        let t1 = sample();
        let t2 = parse_sexp("(a (a (a)))").unwrap().tree;
        assert_eq!(c.image(&t1, &NodeSet::singleton(6, NodeId(0))).count(), 6);
        assert_eq!(c.image(&t2, &NodeSet::singleton(3, NodeId(0))).count(), 3);
    }
}

//! Compilation of path expressions to NFAs over the *move alphabet*.
//!
//! A Regular XPath path expression is a regular expression whose letters
//! are primitive tree moves `{↓, ↑, ←, →}` and node tests `?φ`. Compiling
//! it Thompson-style yields an NFA whose runs, interpreted over a tree, are
//! exactly the walks the expression denotes — the word-shaped view of tree
//! walking that also underlies the translation to tree walking automata.

use crate::ast::{Axis, RNode, RPath};

/// A transition label of a path NFA.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MoveLabel {
    /// Silent transition.
    Eps,
    /// A primitive tree move.
    Axis(Axis),
    /// A node test; the index refers to [`PathNfa::tests`].
    Test(u32),
}

/// A nondeterministic finite automaton with a single start and a single
/// accepting state (Thompson normal form).
#[derive(Clone, Debug)]
pub struct Nfa {
    /// Number of states (`0..n_states`).
    pub n_states: u32,
    /// The initial state.
    pub start: u32,
    /// The unique accepting state.
    pub accept: u32,
    /// Transition triples.
    pub transitions: Vec<(u32, MoveLabel, u32)>,
}

impl Nfa {
    /// Outgoing adjacency lists, indexed by state.
    pub fn forward_adj(&self) -> Vec<Vec<(MoveLabel, u32)>> {
        let mut adj = vec![Vec::new(); self.n_states as usize];
        for &(p, l, q) in &self.transitions {
            adj[p as usize].push((l, q));
        }
        adj
    }

    /// Incoming adjacency lists, indexed by state.
    pub fn backward_adj(&self) -> Vec<Vec<(MoveLabel, u32)>> {
        let mut adj = vec![Vec::new(); self.n_states as usize];
        for &(p, l, q) in &self.transitions {
            adj[q as usize].push((l, p));
        }
        adj
    }
}

/// A compiled path expression: the NFA plus the interned node tests its
/// `Test` labels refer to.
#[derive(Clone, Debug)]
pub struct PathNfa {
    /// The automaton over the move alphabet.
    pub nfa: Nfa,
    /// Node tests referenced by `MoveLabel::Test` indices.
    pub tests: Vec<RNode>,
}

/// Compiles a path expression to Thompson normal form.
///
/// States are linear in the size of the expression; each `Filter`/`Test`
/// contributes one interned test (the nested node expression is *not*
/// inlined into the automaton — it is the "nested" part of a nested tree
/// walking automaton).
pub fn compile(path: &RPath) -> PathNfa {
    let mut b = Builder {
        next: 0,
        transitions: Vec::new(),
        tests: Vec::new(),
    };
    let (s, f) = b.go(path);
    PathNfa {
        nfa: Nfa {
            n_states: b.next,
            start: s,
            accept: f,
            transitions: b.transitions,
        },
        tests: b.tests,
    }
}

struct Builder {
    next: u32,
    transitions: Vec<(u32, MoveLabel, u32)>,
    tests: Vec<RNode>,
}

impl Builder {
    fn fresh(&mut self) -> u32 {
        let s = self.next;
        self.next += 1;
        s
    }

    fn edge(&mut self, p: u32, l: MoveLabel, q: u32) {
        self.transitions.push((p, l, q));
    }

    fn intern_test(&mut self, f: &RNode) -> u32 {
        if let Some(i) = self.tests.iter().position(|g| g == f) {
            return i as u32;
        }
        self.tests.push(f.clone());
        (self.tests.len() - 1) as u32
    }

    fn go(&mut self, path: &RPath) -> (u32, u32) {
        match path {
            RPath::Axis(a) => {
                let s = self.fresh();
                let f = self.fresh();
                self.edge(s, MoveLabel::Axis(*a), f);
                (s, f)
            }
            RPath::Eps => {
                let s = self.fresh();
                let f = self.fresh();
                self.edge(s, MoveLabel::Eps, f);
                (s, f)
            }
            RPath::Test(phi) => {
                let s = self.fresh();
                let f = self.fresh();
                let i = self.intern_test(phi);
                self.edge(s, MoveLabel::Test(i), f);
                (s, f)
            }
            RPath::Seq(a, b) => {
                let (sa, fa) = self.go(a);
                let (sb, fb) = self.go(b);
                self.edge(fa, MoveLabel::Eps, sb);
                (sa, fb)
            }
            RPath::Union(a, b) => {
                let s = self.fresh();
                let f = self.fresh();
                let (sa, fa) = self.go(a);
                let (sb, fb) = self.go(b);
                self.edge(s, MoveLabel::Eps, sa);
                self.edge(s, MoveLabel::Eps, sb);
                self.edge(fa, MoveLabel::Eps, f);
                self.edge(fb, MoveLabel::Eps, f);
                (s, f)
            }
            RPath::Star(a) => {
                let s = self.fresh();
                let f = self.fresh();
                let (sa, fa) = self.go(a);
                self.edge(s, MoveLabel::Eps, f);
                self.edge(s, MoveLabel::Eps, sa);
                self.edge(fa, MoveLabel::Eps, sa);
                self.edge(fa, MoveLabel::Eps, f);
                (s, f)
            }
            RPath::Filter(a, phi) => {
                let (sa, fa) = self.go(a);
                let f = self.fresh();
                let i = self.intern_test(phi);
                self.edge(fa, MoveLabel::Test(i), f);
                (sa, f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{RNode, RPath};

    #[test]
    fn state_count_is_linear() {
        let mut e = RPath::Axis(Axis::Down);
        for _ in 0..10 {
            e = e.clone().seq(e.clone().star().union(RPath::Eps));
        }
        let c = compile(&e);
        assert!(c.nfa.n_states as usize <= 2 * e.size());
    }

    #[test]
    fn tests_are_interned_once() {
        let phi = RNode::Label(twx_xtree::Label(0));
        let e = RPath::Axis(Axis::Down)
            .filter(phi.clone())
            .seq(RPath::Axis(Axis::Up).filter(phi.clone()))
            .union(RPath::test(phi));
        let c = compile(&e);
        assert_eq!(c.tests.len(), 1);
    }

    #[test]
    fn thompson_shape() {
        let c = compile(&RPath::Axis(Axis::Down).star());
        // star of a single axis: 4 states, 1 axis edge, 4 eps edges
        assert_eq!(c.nfa.n_states, 4);
        let axis_edges = c
            .nfa
            .transitions
            .iter()
            .filter(|(_, l, _)| matches!(l, MoveLabel::Axis(_)))
            .count();
        assert_eq!(axis_edges, 1);
        let fwd = c.nfa.forward_adj();
        assert_eq!(
            fwd.iter().map(|v| v.len()).sum::<usize>(),
            c.nfa.transitions.len()
        );
        let bwd = c.nfa.backward_adj();
        assert_eq!(
            bwd.iter().map(|v| v.len()).sum::<usize>(),
            c.nfa.transitions.len()
        );
    }
}

//! Size-non-increasing simplification for Regular XPath(W).
//!
//! Used heavily by the Kleene (NTWA → Regular XPath) translation in
//! `twx-core`, whose raw output contains many `ε` units, duplicated union
//! branches and trivial stars. All rules are oriented valid equivalences;
//! soundness is machine-checked on bounded domains by the tests.

use crate::ast::{RNode, RPath};
use twx_obs::{self as obs, Counter};

/// Whether a path expression denotes the empty relation on every tree
/// (recognisable syntactically).
pub fn is_empty_path(p: &RPath) -> bool {
    match p {
        RPath::Axis(_) | RPath::Eps => false,
        RPath::Test(f) => is_false(f),
        RPath::Seq(a, b) => is_empty_path(a) || is_empty_path(b),
        RPath::Union(a, b) => is_empty_path(a) && is_empty_path(b),
        RPath::Star(_) => false, // ε ⊆ A*
        RPath::Filter(a, f) => is_empty_path(a) || is_false(f),
    }
}

/// Whether a node expression is syntactically `⊥`.
pub fn is_false(f: &RNode) -> bool {
    match f {
        RNode::Not(g) => is_true(g),
        RNode::And(g, h) => is_false(g) || is_false(h),
        RNode::Or(g, h) => is_false(g) && is_false(h),
        RNode::Some(p) => is_empty_path(p),
        RNode::Within(g) => is_false(g),
        _ => false,
    }
}

/// Whether a node expression is syntactically `⊤`.
pub fn is_true(f: &RNode) -> bool {
    match f {
        RNode::True => true,
        RNode::Not(g) => is_false(g),
        RNode::And(g, h) => is_true(g) && is_true(h),
        RNode::Or(g, h) => is_true(g) || is_true(h),
        RNode::Within(g) => is_true(g),
        _ => false,
    }
}

/// Simplifies a path expression to a rewriting fixpoint.
///
/// This is the engine's mandatory simplify stage; it records one
/// `simplify_passes` counter tick per fixpoint iteration and the total
/// AST shrinkage as `simplify_shrunk_nodes`.
pub fn simplify_rpath(p: &RPath) -> RPath {
    let before = p.size();
    let mut cur = p.clone();
    loop {
        obs::incr(Counter::SimplifyPasses);
        let next = simp_path(&cur);
        if next == cur {
            obs::add(
                Counter::SimplifyShrunkNodes,
                before.saturating_sub(cur.size()) as u64,
            );
            return cur;
        }
        cur = next;
    }
}

/// Simplifies a node expression to a rewriting fixpoint (instrumented
/// like [`simplify_rpath`]).
pub fn simplify_rnode(f: &RNode) -> RNode {
    let before = f.size();
    let mut cur = f.clone();
    loop {
        obs::incr(Counter::SimplifyPasses);
        let next = simp_node(&cur);
        if next == cur {
            obs::add(
                Counter::SimplifyShrunkNodes,
                before.saturating_sub(cur.size()) as u64,
            );
            return cur;
        }
        cur = next;
    }
}

fn simp_path(p: &RPath) -> RPath {
    match p {
        RPath::Axis(_) | RPath::Eps => p.clone(),
        RPath::Test(f) => {
            let f = simp_node(f);
            if is_true(&f) {
                RPath::Eps
            } else {
                RPath::test(f)
            }
        }
        RPath::Seq(a, b) => {
            let a = simp_path(a);
            let b = simp_path(b);
            if is_empty_path(&a) || is_empty_path(&b) {
                return RPath::test(RNode::fals());
            }
            match (a, b) {
                (RPath::Eps, b) => b,
                (a, RPath::Eps) => a,
                // A*/A* = A*
                (RPath::Star(x), RPath::Star(y)) if x == y => RPath::Star(x),
                (RPath::Seq(x, y), b) => x.seq(y.seq(b)),
                (a, b) => a.seq(b),
            }
        }
        RPath::Union(_, _) => {
            let mut members = Vec::new();
            flatten_union(p, &mut members);
            let mut simplified: Vec<RPath> = members
                .iter()
                .map(simp_path)
                .filter(|m| !is_empty_path(m))
                .collect();
            simplified.sort();
            simplified.dedup();
            // ε ∪ A* = A*
            if simplified.len() > 1 && simplified.iter().any(|m| matches!(m, RPath::Star(_))) {
                simplified.retain(|m| *m != RPath::Eps);
            }
            match simplified.len() {
                0 => RPath::test(RNode::fals()),
                _ => {
                    let mut it = simplified.into_iter().rev();
                    let last = it.next().expect("nonempty");
                    it.fold(last, |acc, m| m.union(acc))
                }
            }
        }
        RPath::Star(a) => {
            let a = simp_path(a);
            match a {
                // ε* = ε, (A*)* = A*, ∅* = ε
                RPath::Eps => RPath::Eps,
                RPath::Star(x) => RPath::Star(x),
                a if is_empty_path(&a) => RPath::Eps,
                // (ε ∪ A)* = A*
                RPath::Union(x, y) if *x == RPath::Eps => y.star(),
                RPath::Union(x, y) if *y == RPath::Eps => x.star(),
                // (?φ)* = ε  (a test iterated is either taken once or not)
                RPath::Test(_) => RPath::Eps,
                a => a.star(),
            }
        }
        RPath::Filter(a, f) => {
            let a = simp_path(a);
            let f = simp_node(f);
            if is_true(&f) {
                return a;
            }
            if is_false(&f) || is_empty_path(&a) {
                return RPath::test(RNode::fals());
            }
            match a {
                RPath::Eps => RPath::test(f),
                RPath::Filter(inner, g) => inner.filter(g.and(f)),
                RPath::Seq(x, y) => x.seq(y.filter(f)),
                a => a.filter(f),
            }
        }
    }
}

fn flatten_union(p: &RPath, out: &mut Vec<RPath>) {
    match p {
        RPath::Union(a, b) => {
            flatten_union(a, out);
            flatten_union(b, out);
        }
        other => out.push(other.clone()),
    }
}

fn simp_node(f: &RNode) -> RNode {
    match f {
        RNode::True | RNode::Label(_) => f.clone(),
        RNode::Some(a) => {
            let a = simp_path(a);
            match a {
                RPath::Eps => RNode::True,
                RPath::Star(_) => RNode::True, // ε ⊆ A*: always some path
                RPath::Test(g) => *g,
                a if is_empty_path(&a) => RNode::fals(),
                a => RNode::some(a),
            }
        }
        RNode::Not(g) => {
            let g = simp_node(g);
            match g {
                RNode::Not(h) => *h,
                g if is_false(&g) => RNode::True,
                g => g.not(),
            }
        }
        RNode::Within(g) => {
            let g = simp_node(g);
            match g {
                // W of a purely boolean/label formula is the formula itself
                RNode::True => RNode::True,
                RNode::Label(l) => RNode::Label(l),
                g if is_false(&g) => RNode::fals(),
                // W(Wφ) = Wφ
                RNode::Within(h) => RNode::Within(h),
                g => g.within(),
            }
        }
        RNode::And(g, h) => {
            let g = simp_node(g);
            let h = simp_node(h);
            if is_false(&g) || is_false(&h) {
                return RNode::fals();
            }
            if is_true(&g) {
                return h;
            }
            if is_true(&h) {
                return g;
            }
            if g == h {
                return g;
            }
            g.and(h)
        }
        RNode::Or(g, h) => {
            let g = simp_node(g);
            let h = simp_node(h);
            if is_true(&g) || is_true(&h) {
                return RNode::True;
            }
            if is_false(&g) {
                return h;
            }
            if is_false(&h) {
                return g;
            }
            if g == h {
                return g;
            }
            g.or(h)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Axis;
    use crate::eval::{eval_node, eval_rel};
    use crate::generate::{random_rnode, random_rpath, RGenConfig};
    use twx_xtree::generate::enumerate_trees_up_to;
    use twx_xtree::rng::SplitMix64 as StdRng;

    #[test]
    fn unit_and_star_laws() {
        let d = RPath::Axis(Axis::Down);
        assert_eq!(simplify_rpath(&RPath::Eps.seq(d.clone())), d);
        assert_eq!(simplify_rpath(&RPath::Eps.star()), RPath::Eps);
        assert_eq!(simplify_rpath(&d.clone().star().star()), d.clone().star());
        assert_eq!(
            simplify_rpath(&RPath::Eps.union(d.clone()).star()),
            d.clone().star()
        );
        assert_eq!(simplify_rpath(&d.clone().union(d.clone())), d.clone());
        assert_eq!(simplify_rpath(&RPath::test(RNode::True).seq(d.clone())), d);
    }

    #[test]
    fn some_star_is_true() {
        let d = RPath::Axis(Axis::Down);
        assert_eq!(simplify_rnode(&RNode::some(d.star())), RNode::True);
    }

    #[test]
    fn within_of_boolean_collapses() {
        assert_eq!(simplify_rnode(&RNode::True.within()), RNode::True);
        assert_eq!(simplify_rnode(&RNode::True.within().within()), RNode::True);
        let l = RNode::Label(twx_xtree::Label(0));
        assert_eq!(simplify_rnode(&l.clone().within()), l);
    }

    /// Soundness of every rule on bounded domains, fuzzed.
    #[test]
    fn simplification_is_sound() {
        let trees = enumerate_trees_up_to(4, 2);
        let mut rng = StdRng::seed_from_u64(404);
        let cfg = RGenConfig::default();
        for _ in 0..40 {
            let p = random_rpath(&cfg, 4, &mut rng);
            let sp = simplify_rpath(&p);
            let f = random_rnode(&cfg, 4, &mut rng);
            let sf = simplify_rnode(&f);
            for t in &trees {
                assert_eq!(
                    eval_rel(t, &p),
                    eval_rel(t, &sp),
                    "unsound path rewrite {p:?} → {sp:?}"
                );
                assert_eq!(
                    eval_node(t, &f),
                    eval_node(t, &sf),
                    "unsound node rewrite {f:?} → {sf:?}"
                );
            }
        }
    }
}

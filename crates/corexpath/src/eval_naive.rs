//! Naive relational evaluation: materialise the full binary relation of a
//! path expression as an `n × n` bit matrix.
//!
//! `O(|Q| · n³/64)` — the textbook semantics executed literally, used as a
//! differential-testing oracle for the linear evaluator and as the baseline
//! in experiment E1.

use crate::ast::{Axis, NodeExpr, PathExpr, Step};
use twx_xtree::{BitMatrix, NodeSet, Tree};

/// The relation of a primitive axis as a bit matrix.
pub fn axis_matrix(t: &Tree, axis: Axis) -> BitMatrix {
    let n = t.len();
    let mut m = BitMatrix::empty(n);
    for v in t.nodes() {
        match axis {
            Axis::Down => {
                if let Some(p) = t.parent(v) {
                    m.set(p, v);
                }
            }
            Axis::Up => {
                if let Some(p) = t.parent(v) {
                    m.set(v, p);
                }
            }
            Axis::Right => {
                if let Some(s) = t.next_sibling(v) {
                    m.set(v, s);
                }
            }
            Axis::Left => {
                if let Some(s) = t.prev_sibling(v) {
                    m.set(v, s);
                }
            }
        }
    }
    m
}

/// The relation of a step (axis or its strict transitive closure).
pub fn step_matrix(t: &Tree, step: Step) -> BitMatrix {
    let m = axis_matrix(t, step.axis);
    if step.closure {
        m.plus()
    } else {
        m
    }
}

/// Materialises `[[path]]` as a bit matrix.
pub fn eval_path_rel(t: &Tree, path: &PathExpr) -> BitMatrix {
    match path {
        PathExpr::Step(s) => step_matrix(t, *s),
        PathExpr::Slf => BitMatrix::identity(t.len()),
        PathExpr::Seq(a, b) => eval_path_rel(t, a).compose(&eval_path_rel(t, b)),
        PathExpr::Union(a, b) => {
            let mut m = eval_path_rel(t, a);
            m.union_with(&eval_path_rel(t, b));
            m
        }
        PathExpr::Filter(a, phi) => {
            let mut m = eval_path_rel(t, a);
            m.filter_codomain(&eval_node_naive(t, phi));
            m
        }
    }
}

/// Evaluates a node expression through the relational semantics
/// (`[[⟨A⟩]] = domain of [[A]]`).
pub fn eval_node_naive(t: &Tree, phi: &NodeExpr) -> NodeSet {
    let n = t.len();
    match phi {
        NodeExpr::True => NodeSet::full(n),
        NodeExpr::Label(l) => NodeSet::from_iter(n, t.nodes().filter(|&v| t.label(v) == *l)),
        NodeExpr::Some(a) => eval_path_rel(t, a).domain(),
        NodeExpr::Not(f) => {
            let mut s = eval_node_naive(t, f);
            s.complement();
            s
        }
        NodeExpr::And(f, g) => {
            let mut s = eval_node_naive(t, f);
            s.intersect_with(&eval_node_naive(t, g));
            s
        }
        NodeExpr::Or(f, g) => {
            let mut s = eval_node_naive(t, f);
            s.union_with(&eval_node_naive(t, g));
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_node, eval_path_image};
    use twx_xtree::parse::parse_sexp;
    use twx_xtree::NodeId;

    fn sample() -> Tree {
        parse_sexp("(a (b d e) (c f))").unwrap().tree
    }

    #[test]
    fn axis_matrices() {
        let t = sample();
        let down = axis_matrix(&t, Axis::Down);
        assert!(down.get(NodeId(0), NodeId(1)));
        assert!(down.get(NodeId(1), NodeId(2)));
        assert!(!down.get(NodeId(0), NodeId(2)));
        assert_eq!(down.count(), 5);
        let up = axis_matrix(&t, Axis::Up);
        assert_eq!(up, down.transpose());
        let right = axis_matrix(&t, Axis::Right);
        assert!(right.get(NodeId(1), NodeId(4)));
        assert!(right.get(NodeId(2), NodeId(3)));
        assert_eq!(right.count(), 2);
        assert_eq!(axis_matrix(&t, Axis::Left), right.transpose());
    }

    #[test]
    fn closure_matrix() {
        let t = sample();
        let descplus = step_matrix(&t, Step::closure(Axis::Down));
        assert!(descplus.get(NodeId(0), NodeId(5)));
        assert!(!descplus.get(NodeId(0), NodeId(0)));
        assert_eq!(descplus.count(), 5 + 3); // edges + (0,2),(0,3),(0,5)
    }

    /// The two evaluators must agree on a pile of expressions — the central
    /// differential test backing E1.
    #[test]
    fn agrees_with_linear_evaluator() {
        use crate::generate::{random_node_expr, random_path_expr, GenConfig};
        use twx_xtree::generate::{random_tree, Shape};
        use twx_xtree::rng::SplitMix64 as StdRng;

        let mut rng = StdRng::seed_from_u64(2008);
        let cfg = GenConfig::default();
        for round in 0..60 {
            let t = random_tree(Shape::Recursive, 1 + (round % 14), 3, &mut rng);
            let n = t.len();
            let p = random_path_expr(&cfg, 4, &mut rng);
            let rel = eval_path_rel(&t, &p);
            for v in t.nodes() {
                let fast = eval_path_image(&t, &p, &NodeSet::singleton(n, v));
                let slow = rel.image(&NodeSet::singleton(n, v));
                assert_eq!(fast, slow, "path {p:?} from {v:?} on tree {t:?}");
            }
            let f = random_node_expr(&cfg, 4, &mut rng);
            assert_eq!(
                eval_node(&t, &f),
                eval_node_naive(&t, &f),
                "node expr {f:?} on {t:?}"
            );
        }
    }
}

//! Axiomatic rewriting.
//!
//! Directed instances of the equational axioms for Core XPath — the
//! idempotent-semiring axioms (ISAx), predicate axioms (PrAx) and node
//! axioms (NdAx) of the complete axiomatisations in the literature — used
//! as a size-non-increasing simplifier. Every rule is an *oriented valid
//! equivalence*; this crate's tests machine-check soundness of each rule on
//! exhaustive bounded tree domains (the "soundness problem" a query
//! optimizer faces: fake equivalences are not easy to spot by hand).
//!
//! The rewriter normalises:
//! * `./A → A`, `A/. → A` (ISAx5: `.` is the composition unit);
//! * associativity of `/` and `∪` to right spines (ISAx1/ISAx4);
//! * commutativity + idempotence of `∪`: sort and deduplicate (ISAx2/3);
//! * `A[⊤] → A` (PrAx4 direction), `A[φ][ψ] → A[φ∧ψ]` (PrAx2 direction);
//! * `(A/B)[φ] → A/(B[φ])` (PrAx3);
//! * units/absorption and double negation in the boolean sort (NdAx1);
//! * `⟨.⟩ → ⊤` and `⟨.[φ]⟩ → φ` (NdAx4); the valid distribution laws
//!   `⟨A ∪ B⟩ = ⟨A⟩ ∨ ⟨B⟩` and `⟨A/B⟩ = ⟨A[⟨B⟩]⟩` are *not* applied —
//!   they grow the expression, and the rewriter is size-non-increasing;
//! * subexpressions with syntactically empty denotation (filters by `⊥`)
//!   are absorbed in unions.

use crate::ast::{NodeExpr, PathExpr};

/// Whether a node expression is syntactically `⊥` (false at every node in
/// every tree, recognisable without semantic reasoning).
pub fn is_false(f: &NodeExpr) -> bool {
    match f {
        NodeExpr::Not(g) => is_true(g),
        NodeExpr::And(g, h) => is_false(g) || is_false(h),
        NodeExpr::Or(g, h) => is_false(g) && is_false(h),
        NodeExpr::Some(p) => is_empty_path(p),
        _ => false,
    }
}

/// Whether a node expression is syntactically `⊤`.
pub fn is_true(f: &NodeExpr) -> bool {
    match f {
        NodeExpr::True => true,
        NodeExpr::Not(g) => is_false(g),
        NodeExpr::And(g, h) => is_true(g) && is_true(h),
        NodeExpr::Or(g, h) => is_true(g) || is_true(h),
        _ => false,
    }
}

/// Whether a path expression denotes the empty relation on every tree,
/// recognisable syntactically.
pub fn is_empty_path(p: &PathExpr) -> bool {
    match p {
        PathExpr::Step(_) | PathExpr::Slf => false,
        PathExpr::Seq(a, b) => is_empty_path(a) || is_empty_path(b),
        PathExpr::Union(a, b) => is_empty_path(a) && is_empty_path(b),
        PathExpr::Filter(a, phi) => is_empty_path(a) || is_false(phi),
    }
}

/// Simplifies a path expression by rewriting to fixpoint (bottom-up).
pub fn simplify_path(p: &PathExpr) -> PathExpr {
    let mut cur = p.clone();
    loop {
        let next = simplify_path_once(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

/// Simplifies a node expression by rewriting to fixpoint (bottom-up).
pub fn simplify_node(f: &NodeExpr) -> NodeExpr {
    let mut cur = f.clone();
    loop {
        let next = simplify_node_once(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

fn simplify_path_once(p: &PathExpr) -> PathExpr {
    match p {
        PathExpr::Step(_) | PathExpr::Slf => p.clone(),
        PathExpr::Seq(a, b) => {
            let a = simplify_path_once(a);
            let b = simplify_path_once(b);
            match (a, b) {
                // ISAx5: ./A = A, A/. = A
                (PathExpr::Slf, b) => b,
                (a, PathExpr::Slf) => a,
                // ISAx4: reassociate to the right
                (PathExpr::Seq(x, y), b) => x.seq(y.seq(b)),
                (a, b) => a.seq(b),
            }
        }
        PathExpr::Union(_, _) => {
            // flatten, simplify members, drop empties, sort, dedupe (ISAx1-3)
            let mut members = Vec::new();
            flatten_union(p, &mut members);
            let mut simplified: Vec<PathExpr> = members
                .into_iter()
                .map(|m| simplify_path_once(&m))
                .filter(|m| !is_empty_path(m))
                .collect();
            simplified.sort();
            simplified.dedup();
            match simplified.len() {
                0 => {
                    // all branches empty: keep a canonical empty expression
                    PathExpr::Slf.filter(NodeExpr::fals())
                }
                _ => {
                    let mut it = simplified.into_iter().rev();
                    let last = it.next().expect("nonempty");
                    it.fold(last, |acc, m| m.union(acc))
                }
            }
        }
        PathExpr::Filter(a, phi) => {
            let a = simplify_path_once(a);
            let phi = simplify_node_once(phi);
            if is_true(&phi) {
                // PrAx4 direction: A[⊤] = A
                return a;
            }
            match a {
                // PrAx2 direction: A[φ][ψ] = A[φ ∧ ψ]
                PathExpr::Filter(inner, psi) => inner.filter(psi.and(phi)),
                // PrAx3: (A/B)[φ] = A/(B[φ])
                PathExpr::Seq(x, y) => x.seq(y.filter(phi)),
                a => a.filter(phi),
            }
        }
    }
}

fn flatten_union(p: &PathExpr, out: &mut Vec<PathExpr>) {
    match p {
        PathExpr::Union(a, b) => {
            flatten_union(a, out);
            flatten_union(b, out);
        }
        other => out.push(other.clone()),
    }
}

fn simplify_node_once(f: &NodeExpr) -> NodeExpr {
    match f {
        NodeExpr::True | NodeExpr::Label(_) => f.clone(),
        NodeExpr::Some(a) => {
            let a = simplify_path_once(a);
            match a {
                // ⟨.⟩ = ⊤
                PathExpr::Slf => NodeExpr::True,
                // ⟨.[φ]⟩ = φ (NdAx4)
                PathExpr::Filter(x, phi) if *x == PathExpr::Slf => *phi,
                a if is_empty_path(&a) => NodeExpr::fals(),
                a => NodeExpr::some(a),
            }
        }
        NodeExpr::Not(g) => {
            let g = simplify_node_once(g);
            match g {
                // double negation
                NodeExpr::Not(h) => *h,
                g if is_false(&g) => NodeExpr::True,
                g => g.not(),
            }
        }
        NodeExpr::And(_, _) => {
            let mut members = Vec::new();
            flatten_and(f, &mut members);
            let simplified: Vec<NodeExpr> = members
                .into_iter()
                .map(|m| simplify_node_once(&m))
                .filter(|m| !is_true(m))
                .collect();
            if simplified.iter().any(is_false) {
                return NodeExpr::fals();
            }
            let mut simplified = simplified;
            simplified.sort();
            simplified.dedup();
            // contradiction φ ∧ ¬φ
            for m in &simplified {
                if simplified.contains(&m.clone().not()) {
                    return NodeExpr::fals();
                }
            }
            match simplified.len() {
                0 => NodeExpr::True,
                _ => {
                    let mut it = simplified.into_iter().rev();
                    let last = it.next().expect("nonempty");
                    it.fold(last, |acc, m| m.and(acc))
                }
            }
        }
        NodeExpr::Or(_, _) => {
            let mut members = Vec::new();
            flatten_or(f, &mut members);
            let simplified: Vec<NodeExpr> = members
                .into_iter()
                .map(|m| simplify_node_once(&m))
                .filter(|m| !is_false(m))
                .collect();
            if simplified.iter().any(is_true) {
                return NodeExpr::True;
            }
            let mut simplified = simplified;
            simplified.sort();
            simplified.dedup();
            // tautology φ ∨ ¬φ
            for m in &simplified {
                if simplified.contains(&m.clone().not()) {
                    return NodeExpr::True;
                }
            }
            match simplified.len() {
                0 => NodeExpr::fals(),
                _ => {
                    let mut it = simplified.into_iter().rev();
                    let last = it.next().expect("nonempty");
                    it.fold(last, |acc, m| m.or(acc))
                }
            }
        }
    }
}

fn flatten_and(f: &NodeExpr, out: &mut Vec<NodeExpr>) {
    match f {
        NodeExpr::And(g, h) => {
            flatten_and(g, out);
            flatten_and(h, out);
        }
        other => out.push(other.clone()),
    }
}

fn flatten_or(f: &NodeExpr, out: &mut Vec<NodeExpr>) {
    match f {
        NodeExpr::Or(g, h) => {
            flatten_or(g, out);
            flatten_or(h, out);
        }
        other => out.push(other.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Axis;
    use crate::eval::{eval_node, eval_path_image};
    use crate::generate::{random_node_expr, random_path_expr, GenConfig};
    use twx_xtree::generate::enumerate_trees_up_to;
    use twx_xtree::rng::SplitMix64 as StdRng;
    use twx_xtree::{Label, NodeSet};

    #[test]
    fn unit_laws() {
        let a = PathExpr::axis(Axis::Down);
        assert_eq!(simplify_path(&PathExpr::Slf.seq(a.clone())), a);
        assert_eq!(simplify_path(&a.clone().seq(PathExpr::Slf)), a);
        assert_eq!(simplify_path(&a.clone().filter(NodeExpr::True)), a);
        assert_eq!(simplify_path(&a.clone().union(a.clone())), a);
    }

    #[test]
    fn filter_fusion_and_pushdown() {
        let a = PathExpr::axis(Axis::Down);
        let p = NodeExpr::Label(Label(0));
        let q = NodeExpr::Label(Label(1));
        // A[p][q] → A[p ∧ q]
        assert_eq!(
            simplify_path(&a.clone().filter(p.clone()).filter(q.clone())),
            a.clone().filter(p.clone().and(q.clone()))
        );
        // (A/B)[p] → A/(B[p])
        let b = PathExpr::axis(Axis::Right);
        assert_eq!(
            simplify_path(&a.clone().seq(b.clone()).filter(p.clone())),
            a.seq(b.filter(p))
        );
    }

    #[test]
    fn boolean_laws() {
        let p = NodeExpr::Label(Label(0));
        assert_eq!(simplify_node(&p.clone().not().not()), p);
        assert_eq!(simplify_node(&p.clone().and(NodeExpr::True)), p);
        assert_eq!(simplify_node(&p.clone().or(NodeExpr::fals())), p);
        assert_eq!(
            simplify_node(&p.clone().and(p.clone().not())),
            NodeExpr::fals()
        );
        assert_eq!(
            simplify_node(&p.clone().or(p.clone().not())),
            NodeExpr::True
        );
        assert_eq!(
            simplify_node(&NodeExpr::some(PathExpr::Slf)),
            NodeExpr::True
        );
    }

    #[test]
    fn empty_paths_absorbed() {
        let a = PathExpr::axis(Axis::Down);
        let dead = PathExpr::axis(Axis::Up).filter(NodeExpr::fals());
        assert!(is_empty_path(&dead));
        assert_eq!(simplify_path(&a.clone().union(dead.clone())), a);
        assert!(is_false(&NodeExpr::some(dead)));
    }

    #[test]
    fn diamond_laws() {
        // ⟨A ∪ A⟩ = ⟨A⟩ (dedupe happens at the path level, under the ⟨·⟩)
        let a = PathExpr::axis(Axis::Down);
        let f = NodeExpr::some(a.clone().union(a.clone()));
        assert_eq!(simplify_node(&f), NodeExpr::some(a));
        // ⟨.[φ]⟩ = φ
        let phi = NodeExpr::Label(Label(1));
        assert_eq!(
            simplify_node(&NodeExpr::some(PathExpr::Slf.filter(phi.clone()))),
            phi
        );
    }

    /// Soundness of the whole rule system: `simplify(e) ≡ e` on every tree
    /// with ≤ 5 nodes over 2 labels, for a fuzzed corpus of expressions —
    /// precisely the check a query optimizer's rewrite rules need.
    #[test]
    fn rewriting_is_sound_on_bounded_domains() {
        let trees = enumerate_trees_up_to(5, 2);
        let mut rng = StdRng::seed_from_u64(77);
        let cfg = GenConfig {
            labels: 2,
            ..GenConfig::default()
        };
        for _ in 0..40 {
            let p = random_path_expr(&cfg, 4, &mut rng);
            let sp = simplify_path(&p);
            assert!(sp.size() <= p.size(), "simplify grew {p:?} to {sp:?}");
            let f = random_node_expr(&cfg, 4, &mut rng);
            let sf = simplify_node(&f);
            for t in &trees {
                for v in t.nodes() {
                    let ctx = NodeSet::singleton(t.len(), v);
                    assert_eq!(
                        eval_path_image(t, &p, &ctx),
                        eval_path_image(t, &sp, &ctx),
                        "unsound path rewrite: {p:?} → {sp:?} on {t:?}"
                    );
                }
                assert_eq!(
                    eval_node(t, &f),
                    eval_node(t, &sf),
                    "unsound node rewrite: {f:?} → {sf:?}"
                );
            }
        }
    }

    /// `↓/↓⁺`, `↓⁺/↓` and `↓⁺/↓⁺` happen to be semantically equivalent
    /// (all mean "descend at least two levels"); the rewriter is sound but
    /// deliberately incomplete and keeps them syntactically distinct — it
    /// must not conflate arbitrary expressions without a validity proof.
    #[test]
    fn does_not_conflate_quiz_expressions() {
        let dd = PathExpr::axis(Axis::Down).seq(PathExpr::plus(Axis::Down));
        let pd = PathExpr::plus(Axis::Down).seq(PathExpr::axis(Axis::Down));
        let pp = PathExpr::plus(Axis::Down).seq(PathExpr::plus(Axis::Down));
        let s: std::collections::HashSet<_> =
            [simplify_path(&dd), simplify_path(&pd), simplify_path(&pp)]
                .into_iter()
                .collect();
        assert_eq!(s.len(), 3);
    }
}

//! Random expression generators (fuzzing + differential tests + benches).

use crate::ast::{Axis, NodeExpr, PathExpr, Step};
use twx_xtree::rng::Rng;
use twx_xtree::Label;

/// Configuration for random expression generation.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Axes allowed to appear (fragments restrict this).
    pub axes: Vec<Axis>,
    /// Whether transitive-closure steps `s⁺` may appear.
    pub closures: bool,
    /// Number of labels to draw label tests from.
    pub labels: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            axes: Axis::ALL.to_vec(),
            closures: true,
            labels: 3,
        }
    }
}

impl GenConfig {
    /// A single-axis fragment configuration.
    pub fn single_axis(axis: Axis, closure: bool, labels: usize) -> Self {
        GenConfig {
            axes: vec![axis],
            closures: closure,
            labels,
        }
    }
}

fn random_step<R: Rng>(cfg: &GenConfig, rng: &mut R) -> Step {
    let axis = cfg.axes[rng.gen_range(0..cfg.axes.len())];
    let closure = cfg.closures && rng.gen_bool(0.4);
    Step { axis, closure }
}

/// Generates a random path expression with recursion budget `depth`.
pub fn random_path_expr<R: Rng>(cfg: &GenConfig, depth: usize, rng: &mut R) -> PathExpr {
    if depth == 0 {
        return if rng.gen_bool(0.15) {
            PathExpr::Slf
        } else {
            PathExpr::Step(random_step(cfg, rng))
        };
    }
    match rng.gen_range(0..8) {
        0 | 1 => PathExpr::Step(random_step(cfg, rng)),
        2 => PathExpr::Slf,
        3 | 4 => random_path_expr(cfg, depth - 1, rng).seq(random_path_expr(cfg, depth - 1, rng)),
        5 => random_path_expr(cfg, depth - 1, rng).union(random_path_expr(cfg, depth - 1, rng)),
        _ => random_path_expr(cfg, depth - 1, rng).filter(random_node_expr(cfg, depth - 1, rng)),
    }
}

/// Generates a random node expression with recursion budget `depth`.
pub fn random_node_expr<R: Rng>(cfg: &GenConfig, depth: usize, rng: &mut R) -> NodeExpr {
    if depth == 0 {
        return match rng.gen_range(0..3) {
            0 => NodeExpr::True,
            _ => NodeExpr::Label(Label(rng.gen_range(0..cfg.labels) as u32)),
        };
    }
    match rng.gen_range(0..8) {
        0 => NodeExpr::True,
        1 | 2 => NodeExpr::Label(Label(rng.gen_range(0..cfg.labels) as u32)),
        3 | 4 => NodeExpr::some(random_path_expr(cfg, depth - 1, rng)),
        5 => random_node_expr(cfg, depth - 1, rng).not(),
        6 => random_node_expr(cfg, depth - 1, rng).and(random_node_expr(cfg, depth - 1, rng)),
        _ => random_node_expr(cfg, depth - 1, rng).or(random_node_expr(cfg, depth - 1, rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::axes_of_path;
    use twx_xtree::rng::SplitMix64 as StdRng;

    #[test]
    fn respects_axis_restriction() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = GenConfig::single_axis(Axis::Down, true, 2);
        for _ in 0..50 {
            let p = random_path_expr(&cfg, 5, &mut rng);
            for (axis, _) in axes_of_path(&p) {
                assert_eq!(axis, Axis::Down);
            }
        }
    }

    #[test]
    fn depth_zero_is_atomic() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = GenConfig::default();
        for _ in 0..20 {
            let p = random_path_expr(&cfg, 0, &mut rng);
            assert!(p.size() == 1, "{p:?}");
        }
    }
}

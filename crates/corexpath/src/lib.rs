//! # twx-corexpath — Core XPath 1.0
//!
//! The navigational core of XPath 1.0 as isolated by Gottlob, Koch and
//! Pichler (2002), in the notation of the logical literature. Two sorts of
//! expressions over sibling-ordered labelled trees:
//!
//! ```text
//! s      ::=  ↓ | ↑ | ← | →                        (primitive axes)
//! a      ::=  s | s⁺                               (steps)
//! pexpr  ::=  a | . | pexpr/pexpr | pexpr ∪ pexpr | pexpr[nexpr]
//! nexpr  ::=  p | ⟨pexpr⟩ | ¬nexpr | nexpr ∧ nexpr | nexpr ∨ nexpr | ⊤
//! ```
//!
//! Path expressions denote binary relations over nodes, node expressions
//! denote node sets. This crate provides:
//!
//! * the two-sorted AST ([`ast`]) with surface parser ([`parser`]) and
//!   pretty printer ([`mod@print`]);
//! * the **linear-time evaluator** ([`eval`]) in the style of
//!   Gottlob–Koch–Pichler: `O(|Q| · |T|)` set-at-a-time evaluation using
//!   per-axis image/preimage passes;
//! * a naive `O(|Q| · |T|³)` relational evaluator ([`eval_naive`]) used as a
//!   differential-testing baseline and in the E1 experiment;
//! * the axiomatic rewrite engine ([`rewrite`]) implementing directed
//!   instances of the idempotent-semiring, predicate and node axioms — each
//!   rule machine-verified sound on bounded tree domains by this crate's
//!   tests (the "soundness problem" for optimizer rule sets);
//! * axis-fragment analysis ([`fragment`]) for the single-axis and
//!   restricted-axis sublanguages whose equivalence problems have known
//!   complexity (coNP / PSPACE / EXPTIME);
//! * random expression generators for fuzzing ([`generate`]).

pub mod abbrev;
pub mod ast;
pub mod axioms;
pub mod derived;
pub mod eval;
pub mod eval_naive;
pub mod fragment;
pub mod generate;
pub mod parser;
pub mod print;
pub mod rewrite;

pub use abbrev::{parse_abbrev, parse_abbrev_catalog};
pub use ast::{Axis, NodeExpr, PathExpr, Step};
pub use eval::{eval_node, eval_path_image, eval_path_preimage, query};
pub use eval_naive::{eval_node_naive, eval_path_rel};
pub use parser::{
    parse_node_expr, parse_node_expr_catalog, parse_path_expr, parse_path_expr_catalog,
};

//! Linear-time set-at-a-time evaluation (Gottlob–Koch–Pichler style).
//!
//! Every axis image/preimage of a node set is computed in a single O(|T|)
//! pass (transitive axes use the preorder-range and link-chasing tricks
//! documented on [`step_image`]), so evaluating a query costs
//! `O(|Q| · |T|)` — the bound that motivated the isolation of Core XPath.

use crate::ast::{Axis, NodeExpr, PathExpr, Step};
use twx_obs::{self as obs, Counter};
use twx_xtree::{NodeId, NodeSet, Tree};

/// The image of `s` under one step: `{ y | ∃x ∈ s. (x,y) ∈ [[step]] }`.
///
/// Single O(|T|) pass per step:
/// * `↓`: `y` qualifies iff `parent(y) ∈ s`;
/// * `↓⁺`: top-down propagation along parent links (ids are preorder, so a
///   forward scan sees parents before children);
/// * `↑`: `y` qualifies iff some child of `y` is in `s` — equivalently
///   `y = parent(x)` for `x ∈ s`;
/// * `↑⁺`: `y` has a descendant in `s` iff the prefix count of `s` over the
///   preorder range `(y, subtree_end(y))` is positive;
/// * `→` / `→⁺`: forward scan along `prev_sibling` links;
/// * `←` / `←⁺`: backward scan along `next_sibling` links.
pub fn step_image(t: &Tree, step: Step, s: &NodeSet) -> NodeSet {
    let n = t.len();
    debug_assert_eq!(s.universe(), n);
    obs::incr(Counter::CoreStepImages);
    obs::add(Counter::CoreNodesScanned, n as u64);
    let mut out = NodeSet::empty(n);
    match (step.axis, step.closure) {
        (Axis::Down, false) => {
            for y in t.nodes() {
                if let Some(p) = t.parent(y) {
                    if s.contains(p) {
                        out.insert(y);
                    }
                }
            }
        }
        (Axis::Down, true) => {
            // y ∈ out iff some strict ancestor of y ∈ s
            for y in t.nodes() {
                if let Some(p) = t.parent(y) {
                    if s.contains(p) || out.contains(p) {
                        out.insert(y);
                    }
                }
            }
        }
        (Axis::Up, false) => {
            for x in s.iter() {
                if let Some(p) = t.parent(x) {
                    out.insert(p);
                }
            }
        }
        (Axis::Up, true) => {
            // y ∈ out iff subtree(y) \ {y} intersects s: prefix sums
            let mut prefix = vec![0u32; n + 1];
            for i in 0..n {
                prefix[i + 1] = prefix[i] + u32::from(s.contains(NodeId(i as u32)));
            }
            for y in t.nodes() {
                let lo = y.0 as usize + 1;
                let hi = t.subtree_end(y) as usize;
                if prefix[hi] > prefix[lo] {
                    out.insert(y);
                }
            }
        }
        (Axis::Right, false) => {
            for x in s.iter() {
                if let Some(r) = t.next_sibling(x) {
                    out.insert(r);
                }
            }
        }
        (Axis::Right, true) => {
            // forward scan: prev-sibling ids are smaller (preorder)
            for y in t.nodes() {
                if let Some(l) = t.prev_sibling(y) {
                    if s.contains(l) || out.contains(l) {
                        out.insert(y);
                    }
                }
            }
        }
        (Axis::Left, false) => {
            for x in s.iter() {
                if let Some(l) = t.prev_sibling(x) {
                    out.insert(l);
                }
            }
        }
        (Axis::Left, true) => {
            // backward scan: next-sibling ids are larger (preorder)
            for i in (0..n as u32).rev() {
                let y = NodeId(i);
                if let Some(r) = t.next_sibling(y) {
                    if s.contains(r) || out.contains(r) {
                        out.insert(y);
                    }
                }
            }
        }
    }
    out
}

/// The preimage of `s` under a step: the image under the converse step.
pub fn step_preimage(t: &Tree, step: Step, s: &NodeSet) -> NodeSet {
    step_image(t, step.inverse(), s)
}

/// Forward image of a context set under a path expression:
/// `{ y | ∃x ∈ ctx. (x,y) ∈ [[path]] }`.
pub fn eval_path_image(t: &Tree, path: &PathExpr, ctx: &NodeSet) -> NodeSet {
    match path {
        PathExpr::Step(st) => step_image(t, *st, ctx),
        PathExpr::Slf => ctx.clone(),
        PathExpr::Seq(a, b) => {
            let mid = eval_path_image(t, a, ctx);
            eval_path_image(t, b, &mid)
        }
        PathExpr::Union(a, b) => {
            let mut l = eval_path_image(t, a, ctx);
            l.union_with(&eval_path_image(t, b, ctx));
            l
        }
        PathExpr::Filter(a, phi) => {
            let mut img = eval_path_image(t, a, ctx);
            img.intersect_with(&eval_node(t, phi));
            img
        }
    }
}

/// Backward image: `{ x | ∃y ∈ targets. (x,y) ∈ [[path]] }`.
pub fn eval_path_preimage(t: &Tree, path: &PathExpr, targets: &NodeSet) -> NodeSet {
    match path {
        PathExpr::Step(st) => step_preimage(t, *st, targets),
        PathExpr::Slf => targets.clone(),
        PathExpr::Seq(a, b) => {
            let mid = eval_path_preimage(t, b, targets);
            eval_path_preimage(t, a, &mid)
        }
        PathExpr::Union(a, b) => {
            let mut l = eval_path_preimage(t, a, targets);
            l.union_with(&eval_path_preimage(t, b, targets));
            l
        }
        PathExpr::Filter(a, phi) => {
            let mut tg = targets.clone();
            tg.intersect_with(&eval_node(t, phi));
            eval_path_preimage(t, a, &tg)
        }
    }
}

/// Evaluates a node expression to the set of nodes where it holds.
pub fn eval_node(t: &Tree, phi: &NodeExpr) -> NodeSet {
    let n = t.len();
    match phi {
        NodeExpr::True => NodeSet::full(n),
        NodeExpr::Label(l) => {
            let mut s = NodeSet::empty(n);
            for v in t.nodes() {
                if t.label(v) == *l {
                    s.insert(v);
                }
            }
            s
        }
        NodeExpr::Some(a) => eval_path_preimage(t, a, &NodeSet::full(n)),
        NodeExpr::Not(f) => {
            let mut s = eval_node(t, f);
            s.complement();
            s
        }
        NodeExpr::And(f, g) => {
            let mut s = eval_node(t, f);
            s.intersect_with(&eval_node(t, g));
            s
        }
        NodeExpr::Or(f, g) => {
            let mut s = eval_node(t, f);
            s.union_with(&eval_node(t, g));
            s
        }
    }
}

/// Answers a path query from a single context node (the common API for
/// document querying): the set of nodes reachable from `ctx`.
///
/// ```
/// use twx_corexpath::{parse_path_expr, query};
/// use twx_xtree::parse::parse_sexp;
///
/// let doc = parse_sexp("(a (b c) c)").unwrap();
/// let mut ab = doc.alphabet.clone();
/// let p = parse_path_expr("down+[c]", &mut ab).unwrap();
/// assert_eq!(query(&doc.tree, &p, doc.tree.root()).count(), 2);
/// ```
pub fn query(t: &Tree, path: &PathExpr, ctx: NodeId) -> NodeSet {
    eval_path_image(t, path, &NodeSet::singleton(t.len(), ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Axis, NodeExpr, PathExpr};
    use twx_xtree::parse::parse_sexp;
    use twx_xtree::Label;

    /// (a (b (d) (e)) (c (f)))  — ids: a=0 b=1 d=2 e=3 c=4 f=5
    fn sample() -> Tree {
        parse_sexp("(a (b d e) (c f))").unwrap().tree
    }

    fn ids(s: &NodeSet) -> Vec<u32> {
        s.iter().map(|v| v.0).collect()
    }

    #[test]
    fn step_images() {
        let t = sample();
        let root = NodeSet::singleton(6, NodeId(0));
        assert_eq!(ids(&step_image(&t, Step::axis(Axis::Down), &root)), [1, 4]);
        assert_eq!(
            ids(&step_image(&t, Step::closure(Axis::Down), &root)),
            [1, 2, 3, 4, 5]
        );
        let d = NodeSet::singleton(6, NodeId(2));
        assert_eq!(ids(&step_image(&t, Step::axis(Axis::Up), &d)), [1]);
        assert_eq!(ids(&step_image(&t, Step::closure(Axis::Up), &d)), [0, 1]);
        assert_eq!(ids(&step_image(&t, Step::axis(Axis::Right), &d)), [3]);
        let e = NodeSet::singleton(6, NodeId(3));
        assert_eq!(ids(&step_image(&t, Step::axis(Axis::Left), &e)), [2]);
        assert_eq!(ids(&step_image(&t, Step::closure(Axis::Left), &e)), [2]);
        let b = NodeSet::singleton(6, NodeId(1));
        assert_eq!(ids(&step_image(&t, Step::closure(Axis::Right), &b)), [4]);
    }

    #[test]
    fn path_queries() {
        let t = sample();
        // ↓/↓ from root = grandchildren
        let p = PathExpr::axis(Axis::Down).seq(PathExpr::axis(Axis::Down));
        assert_eq!(ids(&query(&t, &p, NodeId(0))), [2, 3, 5]);
        // ↓[b]/↓ from root = children of b
        let p = PathExpr::axis(Axis::Down)
            .filter(NodeExpr::Label(Label(1)))
            .seq(PathExpr::axis(Axis::Down));
        assert_eq!(ids(&query(&t, &p, NodeId(0))), [2, 3]);
        // union
        let p = PathExpr::axis(Axis::Down).union(PathExpr::plus(Axis::Down));
        assert_eq!(ids(&query(&t, &p, NodeId(1))), [2, 3]);
    }

    #[test]
    fn node_expressions() {
        let t = sample();
        // leaf = ¬⟨↓⟩
        assert_eq!(ids(&eval_node(&t, &NodeExpr::leaf())), [2, 3, 5]);
        // root = ¬⟨↑⟩
        assert_eq!(ids(&eval_node(&t, &NodeExpr::root())), [0]);
        // ⟨→⟩ — has a next sibling
        let phi = NodeExpr::some(PathExpr::axis(Axis::Right));
        assert_eq!(ids(&eval_node(&t, &phi)), [1, 2]);
        // label e ∧ leaf (labels interned in document order: e = Label(3))
        let phi = NodeExpr::Label(Label(3)).and(NodeExpr::leaf());
        assert_eq!(ids(&eval_node(&t, &phi)), [3]);
        // ⊤ and ⊥
        assert_eq!(eval_node(&t, &NodeExpr::True).count(), 6);
        assert_eq!(eval_node(&t, &NodeExpr::fals()).count(), 0);
    }

    #[test]
    fn preimage_matches_domain_semantics() {
        let t = sample();
        // ⟨↓[f-label]⟩ = nodes with an f-child = {c}
        let phi = NodeExpr::some(PathExpr::axis(Axis::Down).filter(NodeExpr::Label(Label(5))));
        assert_eq!(ids(&eval_node(&t, &phi)), [4]);
        // preimage of {e} under ↓⁺ = ancestors of e
        let pre = eval_path_preimage(
            &t,
            &PathExpr::plus(Axis::Down),
            &NodeSet::singleton(6, NodeId(3)),
        );
        assert_eq!(ids(&pre), [0, 1]);
    }

    #[test]
    fn filter_applies_to_codomain() {
        let t = sample();
        // ↓⁺[leaf] from root
        let p = PathExpr::plus(Axis::Down).filter(NodeExpr::leaf());
        assert_eq!(ids(&query(&t, &p, NodeId(0))), [2, 3, 5]);
        // preimage of full set under ↓⁺[b]: nodes with a b-descendant
        let p = PathExpr::plus(Axis::Down).filter(NodeExpr::Label(Label(1)));
        let pre = eval_path_preimage(&t, &p, &NodeSet::full(6));
        assert_eq!(ids(&pre), [0]);
    }
}

//! Surface syntax for Core XPath.
//!
//! ```text
//! path  ::=  union
//! union ::=  seq ( '|' seq )*
//! seq   ::=  post ( '/' post )*
//! post  ::=  atom ( '[' node ']' )*
//! atom  ::=  'down' | 'up' | 'left' | 'right'      (optionally '+')
//!         |  '.' | '(' path ')'
//!
//! node  ::=  disj
//! disj  ::=  conj ( 'or' conj )*
//! conj  ::=  unary ( 'and' unary )*
//! unary ::=  '!' unary | 'not' '(' node ')'
//!         |  '<' path '>' | 'true' | 'false' | 'root' | 'leaf'
//!         |  LABEL | '(' node ')'
//! ```
//!
//! `root` and `leaf` expand to `!<up>` and `!<down>`. Identifiers that are
//! not keywords are label tests (interned into the supplied alphabet).

use crate::ast::{Axis, NodeExpr, PathExpr, Step};
use std::fmt;
use twx_xtree::{Alphabet, Catalog};

/// A syntax error with character position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    /// Byte offset of the offending token.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SyntaxError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Slash,
    Pipe,
    LBracket,
    RBracket,
    LParen,
    RParen,
    LAngle,
    RAngle,
    Bang,
    Dot,
    Plus,
    Eof,
}

struct Lexer<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn next_tok(&mut self) -> Result<(usize, Tok), SyntaxError> {
        while self
            .input
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
        let start = self.pos;
        let Some(&c) = self.input.get(self.pos) else {
            return Ok((start, Tok::Eof));
        };
        self.pos += 1;
        let tok = match c {
            b'/' => Tok::Slash,
            b'|' => Tok::Pipe,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'<' => Tok::LAngle,
            b'>' => Tok::RAngle,
            b'!' => Tok::Bang,
            b'.' => Tok::Dot,
            b'+' => Tok::Plus,
            c if c.is_ascii_alphanumeric() || c == b'_' || c == b'@' => {
                while self.input.get(self.pos).is_some_and(|&c| {
                    c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'@' | b'=')
                }) {
                    self.pos += 1;
                }
                Tok::Ident(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
            }
            c => {
                return Err(SyntaxError {
                    offset: start,
                    message: format!("unexpected character '{}'", c as char),
                })
            }
        };
        Ok((start, tok))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    tok_pos: usize,
    alphabet: &'a mut Alphabet,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, alphabet: &'a mut Alphabet) -> Result<Self, SyntaxError> {
        let mut lexer = Lexer::new(input);
        let (tok_pos, tok) = lexer.next_tok()?;
        Ok(Parser {
            lexer,
            tok,
            tok_pos,
            alphabet,
        })
    }

    fn bump(&mut self) -> Result<(), SyntaxError> {
        let (p, t) = self.lexer.next_tok()?;
        self.tok = t;
        self.tok_pos = p;
        Ok(())
    }

    fn expect(&mut self, t: Tok) -> Result<(), SyntaxError> {
        if self.tok == t {
            self.bump()
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.tok)))
        }
    }

    fn err(&self, message: String) -> SyntaxError {
        SyntaxError {
            offset: self.tok_pos,
            message,
        }
    }

    // ---- path grammar ----

    fn path(&mut self) -> Result<PathExpr, SyntaxError> {
        let mut e = self.seq()?;
        while self.tok == Tok::Pipe {
            self.bump()?;
            e = e.union(self.seq()?);
        }
        Ok(e)
    }

    fn seq(&mut self) -> Result<PathExpr, SyntaxError> {
        let mut e = self.postfix()?;
        while self.tok == Tok::Slash {
            self.bump()?;
            e = e.seq(self.postfix()?);
        }
        Ok(e)
    }

    fn postfix(&mut self) -> Result<PathExpr, SyntaxError> {
        let mut e = self.path_atom()?;
        while self.tok == Tok::LBracket {
            self.bump()?;
            let phi = self.node()?;
            self.expect(Tok::RBracket)?;
            e = e.filter(phi);
        }
        Ok(e)
    }

    fn path_atom(&mut self) -> Result<PathExpr, SyntaxError> {
        match self.tok.clone() {
            Tok::Dot => {
                self.bump()?;
                Ok(PathExpr::Slf)
            }
            Tok::LParen => {
                self.bump()?;
                let e = self.path()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                let axis = match name.as_str() {
                    "down" | "child" => Axis::Down,
                    "up" | "parent" => Axis::Up,
                    "left" | "preceding-sibling" => Axis::Left,
                    "right" | "following-sibling" => Axis::Right,
                    other => {
                        return Err(self.err(format!(
                            "expected an axis (down/up/left/right), found '{other}'"
                        )))
                    }
                };
                self.bump()?;
                let closure = if self.tok == Tok::Plus {
                    self.bump()?;
                    true
                } else {
                    false
                };
                Ok(PathExpr::Step(Step { axis, closure }))
            }
            t => Err(self.err(format!("expected a path expression, found {t:?}"))),
        }
    }

    // ---- node grammar ----

    fn node(&mut self) -> Result<NodeExpr, SyntaxError> {
        let mut e = self.conj()?;
        while self.tok == Tok::Ident("or".into()) {
            self.bump()?;
            e = e.or(self.conj()?);
        }
        Ok(e)
    }

    fn conj(&mut self) -> Result<NodeExpr, SyntaxError> {
        let mut e = self.unary()?;
        while self.tok == Tok::Ident("and".into()) {
            self.bump()?;
            e = e.and(self.unary()?);
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<NodeExpr, SyntaxError> {
        match self.tok.clone() {
            Tok::Bang => {
                self.bump()?;
                Ok(self.unary()?.not())
            }
            Tok::LAngle => {
                self.bump()?;
                let p = self.path()?;
                self.expect(Tok::RAngle)?;
                Ok(NodeExpr::some(p))
            }
            Tok::LParen => {
                self.bump()?;
                let e = self.node()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => match name.as_str() {
                "true" => {
                    self.bump()?;
                    Ok(NodeExpr::True)
                }
                "false" => {
                    self.bump()?;
                    Ok(NodeExpr::fals())
                }
                "root" => {
                    self.bump()?;
                    Ok(NodeExpr::root())
                }
                "leaf" => {
                    self.bump()?;
                    Ok(NodeExpr::leaf())
                }
                "not" => {
                    self.bump()?;
                    self.expect(Tok::LParen)?;
                    let e = self.node()?;
                    self.expect(Tok::RParen)?;
                    Ok(e.not())
                }
                "and" | "or" => Err(self.err(format!("'{name}' is a reserved word"))),
                _ => {
                    let l = self.alphabet.intern(&name);
                    self.bump()?;
                    Ok(NodeExpr::Label(l))
                }
            },
            t => Err(self.err(format!("expected a node expression, found {t:?}"))),
        }
    }
}

/// Parses a path expression, interning label tests into `alphabet`.
pub fn parse_path_expr(input: &str, alphabet: &mut Alphabet) -> Result<PathExpr, SyntaxError> {
    let mut p = Parser::new(input, alphabet)?;
    let e = p.path()?;
    if p.tok != Tok::Eof {
        return Err(p.err(format!("trailing input: {:?}", p.tok)));
    }
    Ok(e)
}

/// Parses a node expression, interning label tests into `alphabet`.
pub fn parse_node_expr(input: &str, alphabet: &mut Alphabet) -> Result<NodeExpr, SyntaxError> {
    let mut p = Parser::new(input, alphabet)?;
    let e = p.node()?;
    if p.tok != Tok::Eof {
        return Err(p.err(format!("trailing input: {:?}", p.tok)));
    }
    Ok(e)
}

/// Parses a path expression, interning label tests into a shared
/// [`Catalog`] so the resulting AST is valid for every document built
/// from the same catalog.
pub fn parse_path_expr_catalog(input: &str, catalog: &Catalog) -> Result<PathExpr, SyntaxError> {
    catalog.with_write(|ab| parse_path_expr(input, ab))
}

/// Parses a node expression, interning label tests into a shared
/// [`Catalog`].
pub fn parse_node_expr_catalog(input: &str, catalog: &Catalog) -> Result<NodeExpr, SyntaxError> {
    catalog.with_write(|ab| parse_node_expr(input, ab))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Axis, PathExpr};

    #[test]
    fn parses_steps_and_composition() {
        let mut ab = Alphabet::new();
        let p = parse_path_expr("down/right+", &mut ab).unwrap();
        assert_eq!(
            p,
            PathExpr::axis(Axis::Down).seq(PathExpr::plus(Axis::Right))
        );
    }

    #[test]
    fn precedence_union_binds_loosest() {
        let mut ab = Alphabet::new();
        let p = parse_path_expr("down/up | left", &mut ab).unwrap();
        assert_eq!(
            p,
            PathExpr::axis(Axis::Down)
                .seq(PathExpr::axis(Axis::Up))
                .union(PathExpr::axis(Axis::Left))
        );
    }

    #[test]
    fn filters_and_labels() {
        let mut ab = Alphabet::new();
        let p = parse_path_expr("down[b]/down", &mut ab).unwrap();
        let b = ab.lookup("b").unwrap();
        assert_eq!(
            p,
            PathExpr::axis(Axis::Down)
                .filter(crate::NodeExpr::Label(b))
                .seq(PathExpr::axis(Axis::Down))
        );
    }

    #[test]
    fn node_expressions() {
        let mut ab = Alphabet::new();
        let f = parse_node_expr("!a and <down+[b]> or true", &mut ab).unwrap();
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        use crate::NodeExpr as N;
        assert_eq!(
            f,
            N::Label(a)
                .not()
                .and(N::some(PathExpr::plus(Axis::Down).filter(N::Label(b))))
                .or(N::True)
        );
    }

    #[test]
    fn sugar_keywords() {
        let mut ab = Alphabet::new();
        assert_eq!(
            parse_node_expr("root", &mut ab).unwrap(),
            crate::NodeExpr::root()
        );
        assert_eq!(
            parse_node_expr("leaf", &mut ab).unwrap(),
            crate::NodeExpr::leaf()
        );
        assert_eq!(
            parse_node_expr("not(x)", &mut ab).unwrap(),
            parse_node_expr("!x", &mut ab).unwrap()
        );
        assert_eq!(
            parse_node_expr("false", &mut ab).unwrap(),
            crate::NodeExpr::fals()
        );
    }

    #[test]
    fn xpath_axis_aliases() {
        let mut ab = Alphabet::new();
        assert_eq!(
            parse_path_expr("child/parent", &mut ab).unwrap(),
            parse_path_expr("down/up", &mut ab).unwrap()
        );
        assert_eq!(
            parse_path_expr("following-sibling+", &mut ab).unwrap(),
            parse_path_expr("right+", &mut ab).unwrap()
        );
    }

    #[test]
    fn nested_filters_and_parens() {
        let mut ab = Alphabet::new();
        let p = parse_path_expr("(down | up)[<down[a]>]/.", &mut ab).unwrap();
        assert_eq!(p.filter_depth(), 2);
        assert_eq!(p.size(), 10);
    }

    #[test]
    fn errors() {
        let mut ab = Alphabet::new();
        assert!(parse_path_expr("", &mut ab).is_err());
        assert!(parse_path_expr("down/", &mut ab).is_err());
        assert!(parse_path_expr("down[", &mut ab).is_err());
        assert!(parse_path_expr("foo", &mut ab).is_err());
        assert!(parse_path_expr("down down", &mut ab).is_err());
        assert!(parse_node_expr("<down", &mut ab).is_err());
        assert!(parse_node_expr("and", &mut ab).is_err());
        assert!(parse_path_expr("down$", &mut ab).is_err());
    }
}

//! Pretty printing, inverse to the parser: `parse(print(e)) == e`.

use crate::ast::{Axis, NodeExpr, PathExpr, Step};
use std::fmt::Write;
use twx_xtree::Alphabet;

/// Renders a path expression in the surface syntax of
/// [`parse_path_expr`](crate::parser::parse_path_expr).
pub fn path_to_string(p: &PathExpr, alphabet: &Alphabet) -> String {
    let mut out = String::new();
    write_path(p, alphabet, 0, &mut out);
    out
}

/// Renders a node expression in the surface syntax of
/// [`parse_node_expr`](crate::parser::parse_node_expr).
pub fn node_to_string(f: &NodeExpr, alphabet: &Alphabet) -> String {
    let mut out = String::new();
    write_node(f, alphabet, 0, &mut out);
    out
}

fn axis_name(a: Axis) -> &'static str {
    match a {
        Axis::Down => "down",
        Axis::Up => "up",
        Axis::Left => "left",
        Axis::Right => "right",
    }
}

/// Path precedence: 0 = union, 1 = seq, 2 = postfix/atom.
fn write_path(p: &PathExpr, ab: &Alphabet, prec: u8, out: &mut String) {
    match p {
        PathExpr::Step(Step { axis, closure }) => {
            out.push_str(axis_name(*axis));
            if *closure {
                out.push('+');
            }
        }
        PathExpr::Slf => out.push('.'),
        PathExpr::Union(a, b) => {
            let parens = prec > 0;
            if parens {
                out.push('(');
            }
            write_path(a, ab, 0, out);
            out.push_str(" | ");
            write_path(b, ab, 1, out);
            if parens {
                out.push(')');
            }
        }
        PathExpr::Seq(a, b) => {
            let parens = prec > 1;
            if parens {
                out.push('(');
            }
            write_path(a, ab, 1, out);
            out.push('/');
            write_path(b, ab, 2, out);
            if parens {
                out.push(')');
            }
        }
        PathExpr::Filter(a, phi) => {
            // postfix: the filtered expression must be atomic-or-postfix
            write_path(a, ab, 2, out);
            out.push('[');
            write_node(phi, ab, 0, out);
            out.push(']');
        }
    }
}

/// Node precedence: 0 = or, 1 = and, 2 = unary/atom.
fn write_node(f: &NodeExpr, ab: &Alphabet, prec: u8, out: &mut String) {
    match f {
        NodeExpr::True => out.push_str("true"),
        NodeExpr::Label(l) => {
            let _ = write!(out, "{}", ab.name(*l));
        }
        NodeExpr::Some(a) => {
            out.push('<');
            write_path(a, ab, 0, out);
            out.push('>');
        }
        NodeExpr::Not(g) => {
            out.push('!');
            write_node(g, ab, 2, out);
        }
        NodeExpr::And(g, h) => {
            let parens = prec > 1;
            if parens {
                out.push('(');
            }
            write_node(g, ab, 1, out);
            out.push_str(" and ");
            write_node(h, ab, 2, out);
            if parens {
                out.push(')');
            }
        }
        NodeExpr::Or(g, h) => {
            let parens = prec > 0;
            if parens {
                out.push('(');
            }
            write_node(g, ab, 0, out);
            out.push_str(" or ");
            write_node(h, ab, 1, out);
            if parens {
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_node_expr, random_path_expr, GenConfig};
    use crate::parser::{parse_node_expr, parse_path_expr};
    use twx_xtree::rng::SplitMix64 as StdRng;

    #[test]
    fn simple_forms() {
        let mut ab = Alphabet::new();
        let p = parse_path_expr("down[b]/right+ | .", &mut ab).unwrap();
        assert_eq!(path_to_string(&p, &ab), "down[b]/right+ | .");
        let f = parse_node_expr("!a and (b or true)", &mut ab).unwrap();
        assert_eq!(node_to_string(&f, &ab), "!a and (b or true)");
    }

    #[test]
    fn parenthesization_preserves_shape() {
        let mut ab = Alphabet::new();
        // (a|b)/c needs parens; a|(b/c) does not
        let p1 = parse_path_expr("(down | up)/left", &mut ab).unwrap();
        let p2 = parse_path_expr("down | up/left", &mut ab).unwrap();
        assert_ne!(p1, p2);
        let s1 = path_to_string(&p1, &ab);
        let s2 = path_to_string(&p2, &ab);
        assert_eq!(parse_path_expr(&s1, &mut ab).unwrap(), p1);
        assert_eq!(parse_path_expr(&s2, &mut ab).unwrap(), p2);
    }

    /// print→parse roundtrip over a fuzzed corpus (the printer/parser pair
    /// is the substrate for all textual tooling, so this must be exact).
    #[test]
    fn roundtrip_fuzz() {
        let mut rng = StdRng::seed_from_u64(99);
        let cfg = GenConfig::default();
        let mut ab = Alphabet::new();
        // pre-intern generator labels l0..l2 with names matching nothing
        for i in 0..cfg.labels {
            ab.intern(&format!("p{i}"));
        }
        for _ in 0..300 {
            let p = random_path_expr(&cfg, 5, &mut rng);
            let s = path_to_string(&p, &ab);
            let back = parse_path_expr(&s, &mut ab)
                .unwrap_or_else(|e| panic!("reparse failed for '{s}': {e}"));
            assert_eq!(back, p, "roundtrip failed: {s}");
            let f = random_node_expr(&cfg, 5, &mut rng);
            let s = node_to_string(&f, &ab);
            let back = parse_node_expr(&s, &mut ab)
                .unwrap_or_else(|e| panic!("reparse failed for '{s}': {e}"));
            assert_eq!(back, f, "roundtrip failed: {s}");
        }
    }
}

//! The two-sorted Core XPath abstract syntax.

use std::fmt;
use twx_xtree::Label;

/// The four primitive axes: child (↓), parent (↑), previous sibling (←),
/// next sibling (→).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Axis {
    /// `↓` — child.
    Down,
    /// `↑` — parent.
    Up,
    /// `←` — previous sibling.
    Left,
    /// `→` — next sibling.
    Right,
}

impl Axis {
    /// The converse axis (↓↔↑, ←↔→).
    pub fn inverse(self) -> Axis {
        match self {
            Axis::Down => Axis::Up,
            Axis::Up => Axis::Down,
            Axis::Left => Axis::Right,
            Axis::Right => Axis::Left,
        }
    }

    /// All four axes.
    pub const ALL: [Axis; 4] = [Axis::Down, Axis::Up, Axis::Left, Axis::Right];
}

/// A step: a primitive axis or its strict transitive closure.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Step {
    /// The underlying primitive axis.
    pub axis: Axis,
    /// Whether this is the transitive closure `s⁺`.
    pub closure: bool,
}

impl Step {
    /// A primitive step.
    pub fn axis(axis: Axis) -> Step {
        Step {
            axis,
            closure: false,
        }
    }

    /// The transitive-closure step `s⁺`.
    pub fn closure(axis: Axis) -> Step {
        Step {
            axis,
            closure: true,
        }
    }

    /// The converse step.
    pub fn inverse(self) -> Step {
        Step {
            axis: self.axis.inverse(),
            closure: self.closure,
        }
    }
}

/// A Core XPath path expression, denoting a binary relation on nodes.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum PathExpr {
    /// A step `a` (axis or its transitive closure).
    Step(Step),
    /// `.` — the identity relation (self).
    Slf,
    /// `A/B` — relational composition.
    Seq(Box<PathExpr>, Box<PathExpr>),
    /// `A ∪ B` — union.
    Union(Box<PathExpr>, Box<PathExpr>),
    /// `A[φ]` — codomain filter: `{(x,y) ∈ A | y ⊨ φ}`.
    Filter(Box<PathExpr>, Box<NodeExpr>),
}

/// A Core XPath node expression, denoting a set of nodes.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum NodeExpr {
    /// `⊤` — true at every node.
    True,
    /// A label test `p`.
    Label(Label),
    /// `⟨A⟩` — some `A`-path starts here (domain of the relation).
    Some(Box<PathExpr>),
    /// `¬φ`.
    Not(Box<NodeExpr>),
    /// `φ ∧ ψ`.
    And(Box<NodeExpr>, Box<NodeExpr>),
    /// `φ ∨ ψ`.
    Or(Box<NodeExpr>, Box<NodeExpr>),
}

impl PathExpr {
    /// A primitive axis step.
    pub fn axis(a: Axis) -> PathExpr {
        PathExpr::Step(Step::axis(a))
    }

    /// A transitive-closure step `a⁺`.
    pub fn plus(a: Axis) -> PathExpr {
        PathExpr::Step(Step::closure(a))
    }

    /// The reflexive closure `a*` as syntactic sugar: `. ∪ a⁺`.
    pub fn star(a: Axis) -> PathExpr {
        PathExpr::Slf.union(PathExpr::plus(a))
    }

    /// `self/other`.
    pub fn seq(self, other: PathExpr) -> PathExpr {
        PathExpr::Seq(Box::new(self), Box::new(other))
    }

    /// `self ∪ other`.
    pub fn union(self, other: PathExpr) -> PathExpr {
        PathExpr::Union(Box::new(self), Box::new(other))
    }

    /// `self[φ]`.
    pub fn filter(self, phi: NodeExpr) -> PathExpr {
        PathExpr::Filter(Box::new(self), Box::new(phi))
    }

    /// Syntactic size (number of AST nodes, both sorts).
    pub fn size(&self) -> usize {
        match self {
            PathExpr::Step(_) | PathExpr::Slf => 1,
            PathExpr::Seq(a, b) | PathExpr::Union(a, b) => 1 + a.size() + b.size(),
            PathExpr::Filter(a, phi) => 1 + a.size() + phi.size(),
        }
    }

    /// Maximum nesting depth of filters (`[...]`).
    pub fn filter_depth(&self) -> usize {
        match self {
            PathExpr::Step(_) | PathExpr::Slf => 0,
            PathExpr::Seq(a, b) | PathExpr::Union(a, b) => a.filter_depth().max(b.filter_depth()),
            PathExpr::Filter(a, phi) => a.filter_depth().max(1 + phi.filter_depth()),
        }
    }
}

impl NodeExpr {
    /// `⊥` as sugar: `¬⊤`.
    pub fn fals() -> NodeExpr {
        NodeExpr::Not(Box::new(NodeExpr::True))
    }

    /// `⟨A⟩`.
    pub fn some(a: PathExpr) -> NodeExpr {
        NodeExpr::Some(Box::new(a))
    }

    /// `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> NodeExpr {
        NodeExpr::Not(Box::new(self))
    }

    /// `self ∧ other`.
    pub fn and(self, other: NodeExpr) -> NodeExpr {
        NodeExpr::And(Box::new(self), Box::new(other))
    }

    /// `self ∨ other`.
    pub fn or(self, other: NodeExpr) -> NodeExpr {
        NodeExpr::Or(Box::new(self), Box::new(other))
    }

    /// `root` as sugar: `¬⟨↑⟩`.
    pub fn root() -> NodeExpr {
        NodeExpr::some(PathExpr::axis(Axis::Up)).not()
    }

    /// `leaf` as sugar: `¬⟨↓⟩`.
    pub fn leaf() -> NodeExpr {
        NodeExpr::some(PathExpr::axis(Axis::Down)).not()
    }

    /// Syntactic size (number of AST nodes, both sorts).
    pub fn size(&self) -> usize {
        match self {
            NodeExpr::True | NodeExpr::Label(_) => 1,
            NodeExpr::Some(a) => 1 + a.size(),
            NodeExpr::Not(f) => 1 + f.size(),
            NodeExpr::And(f, g) | NodeExpr::Or(f, g) => 1 + f.size() + g.size(),
        }
    }

    /// Maximum nesting depth of filters inside this node expression.
    pub fn filter_depth(&self) -> usize {
        match self {
            NodeExpr::True | NodeExpr::Label(_) => 0,
            NodeExpr::Some(a) => a.filter_depth(),
            NodeExpr::Not(f) => f.filter_depth(),
            NodeExpr::And(f, g) | NodeExpr::Or(f, g) => f.filter_depth().max(g.filter_depth()),
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Axis::Down => "down",
            Axis::Up => "up",
            Axis::Left => "left",
            Axis::Right => "right",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_is_involution() {
        for a in Axis::ALL {
            assert_eq!(a.inverse().inverse(), a);
        }
        assert_eq!(Axis::Down.inverse(), Axis::Up);
        assert_eq!(Axis::Left.inverse(), Axis::Right);
        assert_eq!(Step::closure(Axis::Down).inverse(), Step::closure(Axis::Up));
    }

    #[test]
    fn sizes() {
        let e = PathExpr::axis(Axis::Down)
            .filter(NodeExpr::Label(Label(0)))
            .seq(PathExpr::plus(Axis::Right));
        assert_eq!(e.size(), 5);
        assert_eq!(e.filter_depth(), 1);
        let nested = PathExpr::axis(Axis::Down).filter(NodeExpr::some(
            PathExpr::axis(Axis::Down).filter(NodeExpr::True),
        ));
        assert_eq!(nested.filter_depth(), 2);
    }

    #[test]
    fn sugar() {
        assert_eq!(
            NodeExpr::root(),
            NodeExpr::Not(Box::new(NodeExpr::Some(Box::new(PathExpr::Step(
                Step::axis(Axis::Up)
            )))))
        );
        assert_eq!(
            PathExpr::star(Axis::Down),
            PathExpr::Slf.union(PathExpr::plus(Axis::Down))
        );
    }
}

//! The abbreviated XPath surface syntax, compiled into Core XPath.
//!
//! The familiar W3C notation is sugar over the logical core:
//!
//! ```text
//! /a/b          root, then a-child, then b-child
//! //a           any a-descendant (of the root when absolute)
//! a/b           from the context node
//! .             context node     ..          parent
//! *             any label        a[b]        filter: has a b-child
//! a[.//b]       nested relative paths in filters
//! a | b         union
//! ```
//!
//! Compilation targets (`PathExpr`, `NodeExpr`) are ordinary Core XPath;
//! an *absolute* path (leading `/` or `//`) is anchored by navigating to
//! the root first (`.[¬⟨↑⟩] ∪ ↑⁺[¬⟨↑⟩]`, i.e. "self-or-ancestor that has
//! no parent"), so the result is still a binary relation usable from any
//! context node.

use crate::ast::{Axis, NodeExpr, PathExpr};
use crate::parser::SyntaxError;
use twx_xtree::{Alphabet, Catalog};

fn err<T>(offset: usize, message: impl Into<String>) -> Result<T, SyntaxError> {
    Err(SyntaxError {
        offset,
        message: message.into(),
    })
}

/// The path expression navigating from anywhere to the root:
/// `.[root] ∪ ↑⁺[root]`.
pub fn to_root() -> PathExpr {
    PathExpr::Slf
        .filter(NodeExpr::root())
        .union(PathExpr::plus(Axis::Up).filter(NodeExpr::root()))
}

/// Parses an abbreviated XPath expression into a Core XPath path
/// expression (a binary relation from the context node).
pub fn parse_abbrev(input: &str, alphabet: &mut Alphabet) -> Result<PathExpr, SyntaxError> {
    let mut p = AbbrevParser {
        input: input.as_bytes(),
        pos: 0,
        alphabet,
    };
    let e = p.union_expr()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return err(p.pos, "trailing input");
    }
    Ok(e)
}

/// Parses an abbreviated XPath expression, interning label tests into a
/// shared [`Catalog`].
pub fn parse_abbrev_catalog(input: &str, catalog: &Catalog) -> Result<PathExpr, SyntaxError> {
    catalog.with_write(|ab| parse_abbrev(input, ab))
}

struct AbbrevParser<'a> {
    input: &'a [u8],
    pos: usize,
    alphabet: &'a mut Alphabet,
}

impl AbbrevParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .input
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn name(&mut self) -> Result<String, SyntaxError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .input
            .get(self.pos)
            .is_some_and(|&c| c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'@' | b'='))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return err(start, "expected a name");
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn union_expr(&mut self) -> Result<PathExpr, SyntaxError> {
        let mut e = self.path()?;
        while self.eat(b'|') {
            e = e.union(self.path()?);
        }
        Ok(e)
    }

    /// `path ::= ('/' | '//')? step (('/' | '//') step)*`
    fn path(&mut self) -> Result<PathExpr, SyntaxError> {
        let mut e: Option<PathExpr> = None;
        // leading anchor
        if self.eat(b'/') {
            let anchor = to_root();
            if self.eat(b'/') {
                // `//a` = root, descend-or-self, step
                e = Some(anchor.seq(PathExpr::star(Axis::Down)));
            } else {
                e = Some(anchor);
            }
            // bare "/" selects the root itself
            if self.peek().is_none() || self.peek() == Some(b'|') || self.peek() == Some(b']') {
                return Ok(e.expect("anchored"));
            }
        }
        loop {
            let step = self.step()?;
            e = Some(match e {
                None => step,
                Some(prev) => prev.seq(step),
            });
            self.skip_ws();
            if self.eat(b'/') {
                if self.eat(b'/') {
                    // `a//b` = a, descend-or-self, b
                    e = Some(e.take().expect("nonempty").seq(PathExpr::star(Axis::Down)));
                }
                continue;
            }
            return Ok(e.expect("nonempty"));
        }
    }

    /// `step ::= '.' | '..' | '*' | NAME, each followed by '[' pred ']'*`
    fn step(&mut self) -> Result<PathExpr, SyntaxError> {
        let mut e = match self.peek() {
            Some(b'.') => {
                self.pos += 1;
                if self.eat(b'.') {
                    PathExpr::axis(Axis::Up)
                } else {
                    PathExpr::Slf
                }
            }
            Some(b'*') => {
                self.pos += 1;
                PathExpr::axis(Axis::Down)
            }
            Some(b'(') => {
                self.pos += 1;
                let inner = self.union_expr()?;
                if !self.eat(b')') {
                    return err(self.pos, "expected ')'");
                }
                inner
            }
            _ => {
                let n = self.name()?;
                let l = self.alphabet.intern(&n);
                PathExpr::axis(Axis::Down).filter(NodeExpr::Label(l))
            }
        };
        while self.eat(b'[') {
            let pred = self.predicate()?;
            if !self.eat(b']') {
                return err(self.pos, "expected ']'");
            }
            e = e.filter(pred);
        }
        Ok(e)
    }

    /// A predicate is a relative path (existential) or a name test.
    fn predicate(&mut self) -> Result<NodeExpr, SyntaxError> {
        if self.peek() == Some(b'!') {
            self.pos += 1;
            return Ok(self.predicate()?.not());
        }
        // a relative abbreviated path, interpreted existentially
        let p = self.rel_pred_path()?;
        Ok(NodeExpr::some(p))
    }

    /// Relative path inside a predicate: `a/b`, `.//a`, `..`, etc.
    fn rel_pred_path(&mut self) -> Result<PathExpr, SyntaxError> {
        let mut e: Option<PathExpr> = None;
        if self.eat(b'/') {
            let anchor = to_root();
            if self.eat(b'/') {
                e = Some(anchor.seq(PathExpr::star(Axis::Down)));
            } else {
                e = Some(anchor);
            }
        }
        loop {
            let step = self.step()?;
            e = Some(match e {
                None => step,
                Some(prev) => prev.seq(step),
            });
            if self.eat(b'/') {
                if self.eat(b'/') {
                    e = Some(e.take().expect("nonempty").seq(PathExpr::star(Axis::Down)));
                }
                continue;
            }
            return Ok(e.expect("nonempty"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_path_image, query};
    use twx_xtree::parse::parse_xml;
    use twx_xtree::NodeSet;

    fn doc() -> twx_xtree::Document {
        parse_xml(
            "<catalog>\
               <book><title/><chapter><section/></chapter></book>\
               <book><chapter><section/><section/></chapter></book>\
               <journal><title/></journal>\
             </catalog>",
        )
        .unwrap()
    }

    fn names(doc: &twx_xtree::Document, s: &NodeSet) -> Vec<String> {
        s.iter().map(|v| doc.label_name(v).to_owned()).collect()
    }

    #[test]
    fn absolute_paths() {
        let mut d = doc();
        let p = parse_abbrev("/book/chapter", &mut d.alphabet).unwrap();
        // absolute: same answer from any context node
        for v in [d.tree.root(), twx_xtree::NodeId(3)] {
            let ans = query(&d.tree, &p, v);
            assert_eq!(names(&d, &ans), ["chapter", "chapter"]);
        }
    }

    #[test]
    fn descendant_abbreviation() {
        let mut d = doc();
        let p = parse_abbrev("//section", &mut d.alphabet).unwrap();
        let ans = query(&d.tree, &p, twx_xtree::NodeId(5));
        assert_eq!(ans.count(), 3);
        let p = parse_abbrev("/book//section", &mut d.alphabet).unwrap();
        let ans = query(&d.tree, &p, d.tree.root());
        assert_eq!(ans.count(), 3);
    }

    #[test]
    fn predicates() {
        let mut d = doc();
        // books that have a title
        let p = parse_abbrev("/book[title]", &mut d.alphabet).unwrap();
        let ans = query(&d.tree, &p, d.tree.root());
        assert_eq!(ans.count(), 1);
        // books without a title
        let p = parse_abbrev("/book[!title]", &mut d.alphabet).unwrap();
        let ans = query(&d.tree, &p, d.tree.root());
        assert_eq!(ans.count(), 1);
        // nested relative predicate with //
        let p = parse_abbrev("/book[chapter//section]/title", &mut d.alphabet).unwrap();
        let ans = query(&d.tree, &p, d.tree.root());
        assert_eq!(ans.count(), 1);
    }

    #[test]
    fn dots_and_stars() {
        let mut d = doc();
        let p = parse_abbrev("book/..", &mut d.alphabet).unwrap();
        let ans = query(&d.tree, &p, d.tree.root());
        assert_eq!(names(&d, &ans), ["catalog"]);
        let p = parse_abbrev("*/*", &mut d.alphabet).unwrap();
        let ans = query(&d.tree, &p, d.tree.root());
        assert_eq!(ans.count(), 4); // title, chapter, chapter, title
        let p = parse_abbrev("./book", &mut d.alphabet).unwrap();
        assert_eq!(query(&d.tree, &p, d.tree.root()).count(), 2);
    }

    #[test]
    fn union_and_groups() {
        let mut d = doc();
        let p = parse_abbrev("/book/title | /journal/title", &mut d.alphabet).unwrap();
        assert_eq!(query(&d.tree, &p, d.tree.root()).count(), 2);
        let p = parse_abbrev("(book | journal)/title", &mut d.alphabet).unwrap();
        assert_eq!(query(&d.tree, &p, d.tree.root()).count(), 2);
    }

    #[test]
    fn bare_root() {
        let mut d = doc();
        let p = parse_abbrev("/", &mut d.alphabet).unwrap();
        let from_leaf = eval_path_image(
            &d.tree,
            &p,
            &NodeSet::singleton(d.tree.len(), twx_xtree::NodeId(3)),
        );
        assert_eq!(from_leaf.to_vec(), vec![d.tree.root()]);
    }

    #[test]
    fn errors() {
        let mut d = doc();
        assert!(parse_abbrev("", &mut d.alphabet).is_err());
        assert!(parse_abbrev("book[", &mut d.alphabet).is_err());
        assert!(parse_abbrev("book]", &mut d.alphabet).is_err());
        assert!(parse_abbrev("(book", &mut d.alphabet).is_err());
    }
}

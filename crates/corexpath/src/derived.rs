//! Derived XPath axes, defined inside Core XPath.
//!
//! The W3C axis set beyond the four primitives is definable: each builder
//! returns a plain [`PathExpr`] whose relation is the derived axis, and
//! the tests verify it against the direct navigational computation in
//! `twx-xtree::traverse`.

use crate::ast::{Axis, NodeExpr, PathExpr};

/// `descendant-or-self` — `. ∪ ↓⁺`.
pub fn descendant_or_self() -> PathExpr {
    PathExpr::star(Axis::Down)
}

/// `ancestor-or-self` — `. ∪ ↑⁺`.
pub fn ancestor_or_self() -> PathExpr {
    PathExpr::star(Axis::Up)
}

/// The `following` axis: everything strictly after the context node in
/// document order that is not a descendant — `↑*/→⁺/↓*`.
pub fn following() -> PathExpr {
    ancestor_or_self()
        .seq(PathExpr::plus(Axis::Right))
        .seq(descendant_or_self())
}

/// The `preceding` axis: everything strictly before the context node in
/// document order that is not an ancestor — `↑*/←⁺/↓*`.
pub fn preceding() -> PathExpr {
    ancestor_or_self()
        .seq(PathExpr::plus(Axis::Left))
        .seq(descendant_or_self())
}

/// Strict document order (`<<` in XPath 2.0 terms): `↓⁺ ∪ following`.
pub fn document_order() -> PathExpr {
    PathExpr::plus(Axis::Down).union(following())
}

/// The total relation on a tree: `↑*/↓*` (through any common ancestor).
pub fn anywhere() -> PathExpr {
    ancestor_or_self().seq(descendant_or_self())
}

/// `self-or-sibling`: children of the parent, or self at the root —
/// `. ∪ ←⁺ ∪ →⁺`.
pub fn self_or_sibling() -> PathExpr {
    PathExpr::Slf
        .union(PathExpr::plus(Axis::Left))
        .union(PathExpr::plus(Axis::Right))
}

/// Navigate to the root from anywhere: `(. ∪ ↑⁺)[¬⟨↑⟩]`.
pub fn to_root() -> PathExpr {
    ancestor_or_self().filter(NodeExpr::root())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval_naive::eval_path_rel;
    use twx_xtree::generate::{random_tree, Shape};
    use twx_xtree::rng::SplitMix64 as StdRng;
    use twx_xtree::traverse;

    #[test]
    fn derived_axes_match_navigation() {
        let mut rng = StdRng::seed_from_u64(2005);
        for round in 0..12 {
            let t = random_tree(Shape::Recursive, 2 + round, 2, &mut rng);
            let fol = eval_path_rel(&t, &following());
            let pre = eval_path_rel(&t, &preceding());
            let doc = eval_path_rel(&t, &document_order());
            let any = eval_path_rel(&t, &anywhere());
            let root = eval_path_rel(&t, &to_root());
            for v in t.nodes() {
                let fol_expect: Vec<_> = traverse::following(&t, v).collect();
                let fol_got: Vec<_> = t.nodes().filter(|&u| fol.get(v, u)).collect();
                assert_eq!(fol_got, fol_expect, "following({v:?})");
                let pre_expect: Vec<_> = traverse::preceding(&t, v).collect();
                let pre_got: Vec<_> = t.nodes().filter(|&u| pre.get(v, u)).collect();
                assert_eq!(pre_got, pre_expect, "preceding({v:?})");
                for u in t.nodes() {
                    assert_eq!(doc.get(v, u), v.0 < u.0, "doc order ({v:?},{u:?})");
                    assert!(any.get(v, u), "anywhere misses ({v:?},{u:?})");
                }
                assert_eq!(
                    t.nodes().filter(|&u| root.get(v, u)).collect::<Vec<_>>(),
                    vec![t.root()],
                    "to_root({v:?})"
                );
            }
        }
    }

    #[test]
    fn siblings_axis() {
        let t = twx_xtree::parse::parse_sexp("(a (b d e) (c f))")
            .unwrap()
            .tree;
        let sib = eval_path_rel(&t, &self_or_sibling());
        use twx_xtree::NodeId;
        assert!(sib.get(NodeId(1), NodeId(4)));
        assert!(sib.get(NodeId(4), NodeId(1)));
        assert!(sib.get(NodeId(0), NodeId(0)));
        assert!(!sib.get(NodeId(2), NodeId(5)));
    }
}

//! The equational axiom schemas for Core XPath.
//!
//! The complete axiomatisations of Core XPath fragments rest on a small
//! set of equivalence schemas: the idempotent-semiring axioms (ISAx), the
//! predicate axioms (PrAx), the node/boolean axioms (NdAx — booleanity via
//! Huntington's single axiom), the transitivity and **Löb**
//! (well-foundedness) axioms for transitive axes (TransAx), functionality
//! axioms for the linear axes (LinAx), and the axes-interaction axioms of
//! the tree signature (TreeAx).
//!
//! This module states each schema *executably*: an [`Axiom`] instantiates
//! its metavariables `A, B, C, φ, ψ` with concrete expressions, producing
//! a pair that must be semantically equivalent on every tree. The tests
//! validate every schema over random instantiations on exhaustive bounded
//! tree domains — the machine-checked soundness half of an axiomatisation
//! (completeness is the literature's theorem, out of executable reach).

use crate::ast::{Axis, NodeExpr, PathExpr};

/// A metavariable assignment for schema instantiation.
#[derive(Clone, Debug)]
pub struct Instantiation {
    /// Path metavariable `A`.
    pub a: PathExpr,
    /// Path metavariable `B`.
    pub b: PathExpr,
    /// Path metavariable `C`.
    pub c: PathExpr,
    /// Node metavariable `φ`.
    pub phi: NodeExpr,
    /// Node metavariable `ψ`.
    pub psi: NodeExpr,
}

/// A concrete instance of an axiom: two expressions claimed equivalent.
#[derive(Clone, Debug)]
pub enum AxiomInstance {
    /// An equivalence between path expressions.
    Path(PathExpr, PathExpr),
    /// An equivalence between node expressions.
    Node(NodeExpr, NodeExpr),
}

/// An axiom schema.
pub struct Axiom {
    /// Conventional name (e.g. `ISAx4`).
    pub name: &'static str,
    /// The group it belongs to.
    pub group: &'static str,
    /// Human-readable statement.
    pub statement: &'static str,
    /// Instantiates the schema.
    pub instantiate: fn(&Instantiation) -> AxiomInstance,
}

/// All axiom schemas, grouped as in the literature.
pub fn all_axioms() -> Vec<Axiom> {
    use AxiomInstance::{Node, Path};
    fn total() -> PathExpr {
        // the total relation on trees: ↑*/↓* (via any common ancestor)
        PathExpr::star(Axis::Up).seq(PathExpr::star(Axis::Down))
    }
    vec![
        // ---------------- idempotent semiring ----------------
        Axiom {
            name: "ISAx1",
            group: "semiring",
            statement: "(A ∪ B) ∪ C ≡ A ∪ (B ∪ C)",
            instantiate: |i| {
                Path(
                    i.a.clone().union(i.b.clone()).union(i.c.clone()),
                    i.a.clone().union(i.b.clone().union(i.c.clone())),
                )
            },
        },
        Axiom {
            name: "ISAx2",
            group: "semiring",
            statement: "A ∪ B ≡ B ∪ A",
            instantiate: |i| {
                Path(
                    i.a.clone().union(i.b.clone()),
                    i.b.clone().union(i.a.clone()),
                )
            },
        },
        Axiom {
            name: "ISAx3",
            group: "semiring",
            statement: "A ∪ A ≡ A",
            instantiate: |i| Path(i.a.clone().union(i.a.clone()), i.a.clone()),
        },
        Axiom {
            name: "ISAx4",
            group: "semiring",
            statement: "A/(B/C) ≡ (A/B)/C",
            instantiate: |i| {
                Path(
                    i.a.clone().seq(i.b.clone().seq(i.c.clone())),
                    i.a.clone().seq(i.b.clone()).seq(i.c.clone()),
                )
            },
        },
        Axiom {
            name: "ISAx5a",
            group: "semiring",
            statement: "./A ≡ A",
            instantiate: |i| Path(PathExpr::Slf.seq(i.a.clone()), i.a.clone()),
        },
        Axiom {
            name: "ISAx5b",
            group: "semiring",
            statement: "A/. ≡ A",
            instantiate: |i| Path(i.a.clone().seq(PathExpr::Slf), i.a.clone()),
        },
        Axiom {
            name: "ISAx6a",
            group: "semiring",
            statement: "A/(B ∪ C) ≡ A/B ∪ A/C",
            instantiate: |i| {
                Path(
                    i.a.clone().seq(i.b.clone().union(i.c.clone())),
                    i.a.clone()
                        .seq(i.b.clone())
                        .union(i.a.clone().seq(i.c.clone())),
                )
            },
        },
        Axiom {
            name: "ISAx6b",
            group: "semiring",
            statement: "(A ∪ B)/C ≡ A/C ∪ B/C",
            instantiate: |i| {
                Path(
                    i.a.clone().union(i.b.clone()).seq(i.c.clone()),
                    i.a.clone()
                        .seq(i.c.clone())
                        .union(i.b.clone().seq(i.c.clone())),
                )
            },
        },
        Axiom {
            name: "ISAx7",
            group: "semiring",
            statement: "A ∪ ⊤ ≡ ⊤   (⊤ = ↑*/↓*, the total relation on trees)",
            instantiate: |i| Path(i.a.clone().union(total()), total()),
        },
        // ---------------- predicates ----------------
        Axiom {
            name: "PrAx1",
            group: "predicates",
            statement: "A[⟨B⟩]/B ≡ A/B",
            instantiate: |i| {
                Path(
                    i.a.clone()
                        .filter(NodeExpr::some(i.b.clone()))
                        .seq(i.b.clone()),
                    i.a.clone().seq(i.b.clone()),
                )
            },
        },
        Axiom {
            name: "PrAx2",
            group: "predicates",
            statement: "A[φ ∧ ψ] ≡ A[φ][ψ]",
            instantiate: |i| {
                Path(
                    i.a.clone().filter(i.phi.clone().and(i.psi.clone())),
                    i.a.clone().filter(i.phi.clone()).filter(i.psi.clone()),
                )
            },
        },
        Axiom {
            name: "PrAx3",
            group: "predicates",
            statement: "(A/B)[φ] ≡ A/(B[φ])",
            instantiate: |i| {
                Path(
                    i.a.clone().seq(i.b.clone()).filter(i.phi.clone()),
                    i.a.clone().seq(i.b.clone().filter(i.phi.clone())),
                )
            },
        },
        Axiom {
            name: "PrAx4",
            group: "predicates",
            statement: "A[⊤] ≡ A",
            instantiate: |i| Path(i.a.clone().filter(NodeExpr::True), i.a.clone()),
        },
        // ---------------- node / boolean ----------------
        Axiom {
            name: "NdAx1",
            group: "boolean",
            statement: "Huntington: ¬(¬φ ∨ ψ) ∨ ¬(¬φ ∨ ¬ψ) ≡ φ",
            instantiate: |i| {
                let phi = i.phi.clone();
                let psi = i.psi.clone();
                Node(
                    phi.clone().not().or(psi.clone()).not().or(phi
                        .clone()
                        .not()
                        .or(psi.not())
                        .not()),
                    phi,
                )
            },
        },
        Axiom {
            name: "NdAx2",
            group: "boolean",
            statement: "⟨A ∪ B⟩ ≡ ⟨A⟩ ∨ ⟨B⟩",
            instantiate: |i| {
                Node(
                    NodeExpr::some(i.a.clone().union(i.b.clone())),
                    NodeExpr::some(i.a.clone()).or(NodeExpr::some(i.b.clone())),
                )
            },
        },
        Axiom {
            name: "NdAx3",
            group: "boolean",
            statement: "⟨A/B⟩ ≡ ⟨A[⟨B⟩]⟩",
            instantiate: |i| {
                Node(
                    NodeExpr::some(i.a.clone().seq(i.b.clone())),
                    NodeExpr::some(i.a.clone().filter(NodeExpr::some(i.b.clone()))),
                )
            },
        },
        Axiom {
            name: "NdAx4",
            group: "boolean",
            statement: "⟨.[φ]⟩ ≡ φ",
            instantiate: |i| {
                Node(
                    NodeExpr::some(PathExpr::Slf.filter(i.phi.clone())),
                    i.phi.clone(),
                )
            },
        },
        // ---------------- transitive axes ----------------
        Axiom {
            name: "TransAx1-down",
            group: "transitive",
            statement: "Löb: ⟨↓⁺[φ]⟩ ≡ ⟨↓⁺[φ ∧ ¬⟨↓⁺[φ]⟩]⟩ (a deepest witness exists)",
            instantiate: |i| {
                let dp = || PathExpr::plus(Axis::Down);
                let inner = NodeExpr::some(dp().filter(i.phi.clone()));
                Node(
                    inner.clone(),
                    NodeExpr::some(dp().filter(i.phi.clone().and(inner.not()))),
                )
            },
        },
        Axiom {
            name: "TransAx1-right",
            group: "transitive",
            statement: "Löb for →⁺: ⟨→⁺[φ]⟩ ≡ ⟨→⁺[φ ∧ ¬⟨→⁺[φ]⟩]⟩",
            instantiate: |i| {
                let rp = || PathExpr::plus(Axis::Right);
                let inner = NodeExpr::some(rp().filter(i.phi.clone()));
                Node(
                    inner.clone(),
                    NodeExpr::some(rp().filter(i.phi.clone().and(inner.not()))),
                )
            },
        },
        Axiom {
            name: "TransAx2",
            group: "transitive",
            statement: "↓⁺ ∪ ↓⁺/↓⁺ ≡ ↓⁺ (transitivity)",
            instantiate: |_| {
                let dp = || PathExpr::plus(Axis::Down);
                Path(dp().union(dp().seq(dp())), dp())
            },
        },
        // ---------------- linear (functional) axes ----------------
        Axiom {
            name: "LinAx1-up",
            group: "linear",
            statement: "↑[¬φ] ≡ .[¬⟨↑[φ]⟩]/↑ (functionality of ↑)",
            instantiate: |i| {
                let up = || PathExpr::axis(Axis::Up);
                Path(
                    up().filter(i.phi.clone().not()),
                    PathExpr::Slf
                        .filter(NodeExpr::some(up().filter(i.phi.clone())).not())
                        .seq(up()),
                )
            },
        },
        Axiom {
            name: "LinAx1-right",
            group: "linear",
            statement: "→[¬φ] ≡ .[¬⟨→[φ]⟩]/→ (functionality of →)",
            instantiate: |i| {
                let r = || PathExpr::axis(Axis::Right);
                Path(
                    r().filter(i.phi.clone().not()),
                    PathExpr::Slf
                        .filter(NodeExpr::some(r().filter(i.phi.clone())).not())
                        .seq(r()),
                )
            },
        },
        // ---------------- tree axioms (axes interaction) ----------------
        Axiom {
            name: "TreeAx1a",
            group: "tree",
            statement: "↓ ∪ ↓/↓⁺ ≡ ↓⁺ (↓⁺ is the transitive closure of ↓)",
            instantiate: |_| {
                let d = || PathExpr::axis(Axis::Down);
                let dp = || PathExpr::plus(Axis::Down);
                Path(d().union(d().seq(dp())), dp())
            },
        },
        Axiom {
            name: "TreeAx1b",
            group: "tree",
            statement: "↓ ∪ ↓⁺/↓ ≡ ↓⁺",
            instantiate: |_| {
                let d = || PathExpr::axis(Axis::Down);
                let dp = || PathExpr::plus(Axis::Down);
                Path(d().union(dp().seq(d())), dp())
            },
        },
        Axiom {
            name: "TreeAx2",
            group: "tree",
            statement: "↓/↑ ≡ .[⟨↓⟩] (the parent of a child is oneself)",
            instantiate: |_| {
                Path(
                    PathExpr::axis(Axis::Down).seq(PathExpr::axis(Axis::Up)),
                    PathExpr::Slf.filter(NodeExpr::some(PathExpr::axis(Axis::Down))),
                )
            },
        },
        Axiom {
            name: "TreeAx3",
            group: "tree",
            statement: "→[φ]/← ≡ .[⟨→[φ]⟩] (siblings: → and ← are converse partial functions)",
            instantiate: |i| {
                Path(
                    PathExpr::axis(Axis::Right)
                        .filter(i.phi.clone())
                        .seq(PathExpr::axis(Axis::Left)),
                    PathExpr::Slf.filter(NodeExpr::some(
                        PathExpr::axis(Axis::Right).filter(i.phi.clone()),
                    )),
                )
            },
        },
        Axiom {
            name: "TreeAx4",
            group: "tree",
            statement: "↑/↓ ≡ (. ∪ ←⁺ ∪ →⁺)[⟨↑⟩] (children of the parent are the siblings)",
            instantiate: |_| {
                let has_parent = NodeExpr::some(PathExpr::axis(Axis::Up));
                Path(
                    PathExpr::axis(Axis::Up).seq(PathExpr::axis(Axis::Down)),
                    PathExpr::Slf
                        .union(PathExpr::plus(Axis::Left))
                        .union(PathExpr::plus(Axis::Right))
                        .filter(has_parent),
                )
            },
        },
        Axiom {
            name: "TreeAx5",
            group: "tree",
            statement: "roots have no siblings: ←⁺ ∪ →⁺ ⊑ .[⟨↑⟩]/(←⁺ ∪ →⁺)",
            instantiate: |_| {
                let sib = || PathExpr::plus(Axis::Left).union(PathExpr::plus(Axis::Right));
                Path(
                    sib(),
                    PathExpr::Slf
                        .filter(NodeExpr::some(PathExpr::axis(Axis::Up)))
                        .seq(sib()),
                )
            },
        },
    ]
}

/// Checks one instance on one tree.
pub fn holds_on(instance: &AxiomInstance, t: &twx_xtree::Tree) -> bool {
    match instance {
        AxiomInstance::Path(l, r) => crate::eval_path_rel(t, l) == crate::eval_path_rel(t, r),
        AxiomInstance::Node(l, r) => crate::eval_node(t, l) == crate::eval_node(t, r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_node_expr, random_path_expr, GenConfig};
    use twx_xtree::generate::enumerate_trees_up_to;
    use twx_xtree::rng::SplitMix64 as StdRng;

    fn random_instantiation(rng: &mut StdRng) -> Instantiation {
        let cfg = GenConfig {
            labels: 2,
            ..GenConfig::default()
        };
        Instantiation {
            a: random_path_expr(&cfg, 2, rng),
            b: random_path_expr(&cfg, 2, rng),
            c: random_path_expr(&cfg, 2, rng),
            phi: random_node_expr(&cfg, 2, rng),
            psi: random_node_expr(&cfg, 2, rng),
        }
    }

    /// Soundness of the whole axiom system: every schema, under random
    /// instantiation, holds on every tree of the bounded domain. This is
    /// the executable half of the completeness theorems.
    #[test]
    fn all_axioms_are_valid() {
        let trees = enumerate_trees_up_to(5, 2);
        let mut rng = StdRng::seed_from_u64(1930); // Birkhoff's decade
        for axiom in all_axioms() {
            for _ in 0..8 {
                let inst = (axiom.instantiate)(&random_instantiation(&mut rng));
                for t in &trees {
                    assert!(
                        holds_on(&inst, t),
                        "axiom {} ({}) refuted on {t:?}\n  instance: {inst:?}",
                        axiom.name,
                        axiom.statement,
                    );
                }
            }
        }
    }

    /// Negative control: the machinery detects an invalid schema (the
    /// classic trap `↓/↓⁺ ≡ ↓⁺` — off by one level).
    #[test]
    fn detects_fake_axiom() {
        let trees = enumerate_trees_up_to(4, 1);
        let fake = AxiomInstance::Path(
            PathExpr::axis(Axis::Down).seq(PathExpr::plus(Axis::Down)),
            PathExpr::plus(Axis::Down),
        );
        assert!(
            trees.iter().any(|t| !holds_on(&fake, t)),
            "fake axiom not refuted"
        );
    }

    /// Axiom count and groups are stable (documentation consistency).
    #[test]
    fn inventory() {
        let axioms = all_axioms();
        assert_eq!(axioms.len(), 28);
        let groups: std::collections::BTreeSet<_> = axioms.iter().map(|a| a.group).collect();
        assert_eq!(
            groups.into_iter().collect::<Vec<_>>(),
            vec![
                "boolean",
                "linear",
                "predicates",
                "semiring",
                "transitive",
                "tree"
            ]
        );
    }
}

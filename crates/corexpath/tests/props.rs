//! Property-based tests for Core XPath: parser/printer inversion,
//! evaluator agreement, rewrite soundness, semantic laws.
//!
//! Instances come from the crate's own expression generators driven by
//! the deterministic in-tree PRNG (no `proptest`, offline build).

use twx_corexpath::ast::{Axis, NodeExpr, PathExpr, Step};
use twx_corexpath::eval::{eval_node, eval_path_image, eval_path_preimage};
use twx_corexpath::eval_naive::{eval_node_naive, eval_path_rel};
use twx_corexpath::generate::{random_node_expr, random_path_expr, GenConfig};
use twx_corexpath::parser::{parse_node_expr, parse_path_expr};
use twx_corexpath::print::{node_to_string, path_to_string};
use twx_corexpath::rewrite::{simplify_node, simplify_path};
use twx_xtree::generate::from_parent_vec;
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::{Alphabet, Label, NodeSet, Tree};

fn rand_tree(rng: &mut SplitMix64, max_n: usize) -> Tree {
    let n = rng.gen_range(1..max_n + 1);
    let mut parents = vec![0u32; n];
    for (i, p) in parents.iter_mut().enumerate().skip(1) {
        *p = rng.gen_range(0..i as u32);
    }
    let ls: Vec<Label> = (0..n).map(|_| Label(rng.gen_range(0..3u32))).collect();
    from_parent_vec(&parents, &ls)
}

fn rand_path(rng: &mut SplitMix64, depth: usize) -> PathExpr {
    random_path_expr(&GenConfig::default(), depth, rng)
}

fn rand_node(rng: &mut SplitMix64, depth: usize) -> NodeExpr {
    random_node_expr(&GenConfig::default(), depth, rng)
}

fn test_alphabet() -> Alphabet {
    Alphabet::from_names(["l0", "l1", "l2"])
}

const ROUNDS: usize = 64;

/// print ∘ parse = id on path expressions.
#[test]
fn path_print_parse_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0xc0a1);
    for _ in 0..ROUNDS {
        let p = rand_path(&mut rng, 4);
        let mut ab = test_alphabet();
        let s = path_to_string(&p, &ab);
        let back = parse_path_expr(&s, &mut ab).expect("reparse");
        assert_eq!(back, p, "via '{s}'");
    }
}

/// print ∘ parse = id on node expressions.
#[test]
fn node_print_parse_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0xc0a2);
    for _ in 0..ROUNDS {
        let f = rand_node(&mut rng, 4);
        let mut ab = test_alphabet();
        let s = node_to_string(&f, &ab);
        let back = parse_node_expr(&s, &mut ab).expect("reparse");
        assert_eq!(back, f, "via '{s}'");
    }
}

/// The linear evaluator agrees with the relational semantics, for
/// images and preimages from every singleton context.
#[test]
fn evaluators_agree() {
    let mut rng = SplitMix64::seed_from_u64(0xc0a3);
    for _ in 0..ROUNDS {
        let p = rand_path(&mut rng, 3);
        let t = rand_tree(&mut rng, 10);
        let rel = eval_path_rel(&t, &p);
        let relt = rel.transpose();
        for v in t.nodes() {
            let ctx = NodeSet::singleton(t.len(), v);
            assert_eq!(eval_path_image(&t, &p, &ctx), rel.image(&ctx), "{p:?}");
            assert_eq!(eval_path_preimage(&t, &p, &ctx), relt.image(&ctx), "{p:?}");
        }
    }
}

/// Node evaluators agree.
#[test]
fn node_evaluators_agree() {
    let mut rng = SplitMix64::seed_from_u64(0xc0a4);
    for _ in 0..ROUNDS {
        let f = rand_node(&mut rng, 3);
        let t = rand_tree(&mut rng, 10);
        assert_eq!(eval_node(&t, &f), eval_node_naive(&t, &f), "{f:?}");
    }
}

/// Rewriting never grows expressions and never changes semantics.
#[test]
fn simplify_sound_and_nonincreasing() {
    let mut rng = SplitMix64::seed_from_u64(0xc0a5);
    for _ in 0..ROUNDS {
        let p = rand_path(&mut rng, 3);
        let t = rand_tree(&mut rng, 8);
        let sp = simplify_path(&p);
        assert!(sp.size() <= p.size());
        assert_eq!(eval_path_rel(&t, &p), eval_path_rel(&t, &sp), "{p:?}");
    }
}

/// Same for node expressions.
#[test]
fn simplify_node_sound() {
    let mut rng = SplitMix64::seed_from_u64(0xc0a6);
    for _ in 0..ROUNDS {
        let f = rand_node(&mut rng, 3);
        let t = rand_tree(&mut rng, 8);
        let sf = simplify_node(&f);
        assert!(sf.size() <= f.size());
        assert_eq!(eval_node(&t, &f), eval_node(&t, &sf), "{f:?}");
    }
}

/// Semantic law: the image under `A/B` equals composing images.
#[test]
fn composition_law() {
    let mut rng = SplitMix64::seed_from_u64(0xc0a7);
    for _ in 0..ROUNDS {
        let a = rand_path(&mut rng, 3);
        let b = rand_path(&mut rng, 3);
        let t = rand_tree(&mut rng, 8);
        let seq = a.clone().seq(b.clone());
        for v in t.nodes() {
            let ctx = NodeSet::singleton(t.len(), v);
            let via_seq = eval_path_image(&t, &seq, &ctx);
            let mid = eval_path_image(&t, &a, &ctx);
            let via_steps = eval_path_image(&t, &b, &mid);
            assert_eq!(via_seq, via_steps);
        }
    }
}

/// Semantic law: ⟨A⟩ is the domain of [[A]].
#[test]
fn diamond_is_domain() {
    let mut rng = SplitMix64::seed_from_u64(0xc0a8);
    for _ in 0..ROUNDS {
        let a = rand_path(&mut rng, 3);
        let t = rand_tree(&mut rng, 8);
        let dom = eval_path_rel(&t, &a).domain();
        assert_eq!(eval_node(&t, &NodeExpr::some(a)), dom);
    }
}

/// Semantic law: steps and their inverses are converse relations.
#[test]
fn step_inverse_is_converse() {
    let mut rng = SplitMix64::seed_from_u64(0xc0a9);
    for _ in 0..ROUNDS {
        let axis = *rng.choose(&Axis::ALL);
        let closure = rng.gen_bool(0.5);
        let t = rand_tree(&mut rng, 10);
        let step = Step { axis, closure };
        let fwd = eval_path_rel(&t, &PathExpr::Step(step));
        let bwd = eval_path_rel(&t, &PathExpr::Step(step.inverse()));
        assert_eq!(fwd.transpose(), bwd);
    }
}

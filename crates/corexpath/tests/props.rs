//! Property-based tests for Core XPath: parser/printer inversion,
//! evaluator agreement, rewrite soundness, semantic laws.

use proptest::prelude::*;
use twx_corexpath::ast::{Axis, NodeExpr, PathExpr, Step};
use twx_corexpath::eval::{eval_node, eval_path_image, eval_path_preimage};
use twx_corexpath::eval_naive::{eval_node_naive, eval_path_rel};
use twx_corexpath::parser::{parse_node_expr, parse_path_expr};
use twx_corexpath::print::{node_to_string, path_to_string};
use twx_corexpath::rewrite::{simplify_node, simplify_path};
use twx_xtree::generate::from_parent_vec;
use twx_xtree::{Alphabet, Label, NodeSet, Tree};

fn arb_axis() -> impl Strategy<Value = Axis> {
    prop_oneof![
        Just(Axis::Down),
        Just(Axis::Up),
        Just(Axis::Left),
        Just(Axis::Right),
    ]
}

fn arb_path() -> impl Strategy<Value = PathExpr> {
    let leaf = prop_oneof![
        (arb_axis(), any::<bool>()).prop_map(|(axis, closure)| PathExpr::Step(Step { axis, closure })),
        Just(PathExpr::Slf),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.seq(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), arb_node_from(inner)).prop_map(|(a, f)| a.filter(f)),
        ]
    })
}

fn arb_node_from(paths: impl Strategy<Value = PathExpr> + Clone + 'static) -> BoxedStrategy<NodeExpr> {
    let leaf = prop_oneof![
        Just(NodeExpr::True),
        (0u32..3).prop_map(|l| NodeExpr::Label(Label(l))),
    ];
    leaf.prop_recursive(3, 16, 2, move |inner| {
        prop_oneof![
            paths.clone().prop_map(NodeExpr::some),
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.and(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.or(g)),
        ]
    })
    .boxed()
}

fn arb_node() -> impl Strategy<Value = NodeExpr> {
    arb_node_from(arb_path().boxed())
}

fn arb_tree(max_n: usize) -> impl Strategy<Value = Tree> {
    (1..=max_n).prop_flat_map(|n| {
        let parents = (1..n).map(|i| 0..i as u32).collect::<Vec<_>>().prop_map(|mut ps| {
            ps.insert(0, 0);
            ps
        });
        let labels = proptest::collection::vec(0u32..3, n);
        (parents, labels).prop_map(|(ps, ls)| {
            let ls: Vec<Label> = ls.into_iter().map(Label).collect();
            from_parent_vec(&ps, &ls)
        })
    })
}

fn test_alphabet() -> Alphabet {
    Alphabet::from_names(["l0", "l1", "l2"])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print ∘ parse = id on path expressions.
    #[test]
    fn path_print_parse_roundtrip(p in arb_path()) {
        let mut ab = test_alphabet();
        let s = path_to_string(&p, &ab);
        let back = parse_path_expr(&s, &mut ab).expect("reparse");
        prop_assert_eq!(back, p, "via '{}'", s);
    }

    /// print ∘ parse = id on node expressions.
    #[test]
    fn node_print_parse_roundtrip(f in arb_node()) {
        let mut ab = test_alphabet();
        let s = node_to_string(&f, &ab);
        let back = parse_node_expr(&s, &mut ab).expect("reparse");
        prop_assert_eq!(back, f, "via '{}'", s);
    }

    /// The linear evaluator agrees with the relational semantics, for
    /// images and preimages from every singleton context.
    #[test]
    fn evaluators_agree(p in arb_path(), t in arb_tree(10)) {
        let rel = eval_path_rel(&t, &p);
        let relt = rel.transpose();
        for v in t.nodes() {
            let ctx = NodeSet::singleton(t.len(), v);
            prop_assert_eq!(eval_path_image(&t, &p, &ctx), rel.image(&ctx));
            prop_assert_eq!(eval_path_preimage(&t, &p, &ctx), relt.image(&ctx));
        }
    }

    /// Node evaluators agree.
    #[test]
    fn node_evaluators_agree(f in arb_node(), t in arb_tree(10)) {
        prop_assert_eq!(eval_node(&t, &f), eval_node_naive(&t, &f));
    }

    /// Rewriting never grows expressions and never changes semantics.
    #[test]
    fn simplify_sound_and_nonincreasing(p in arb_path(), t in arb_tree(8)) {
        let sp = simplify_path(&p);
        prop_assert!(sp.size() <= p.size());
        prop_assert_eq!(eval_path_rel(&t, &p), eval_path_rel(&t, &sp));
    }

    /// Same for node expressions.
    #[test]
    fn simplify_node_sound(f in arb_node(), t in arb_tree(8)) {
        let sf = simplify_node(&f);
        prop_assert!(sf.size() <= f.size());
        prop_assert_eq!(eval_node(&t, &f), eval_node(&t, &sf));
    }

    /// Semantic law: the image under `A/B` equals composing images.
    #[test]
    fn composition_law(a in arb_path(), b in arb_path(), t in arb_tree(8)) {
        let seq = a.clone().seq(b.clone());
        for v in t.nodes() {
            let ctx = NodeSet::singleton(t.len(), v);
            let via_seq = eval_path_image(&t, &seq, &ctx);
            let mid = eval_path_image(&t, &a, &ctx);
            let via_steps = eval_path_image(&t, &b, &mid);
            prop_assert_eq!(via_seq, via_steps);
        }
    }

    /// Semantic law: ⟨A⟩ is the domain of [[A]].
    #[test]
    fn diamond_is_domain(a in arb_path(), t in arb_tree(8)) {
        let dom = eval_path_rel(&t, &a).domain();
        prop_assert_eq!(eval_node(&t, &NodeExpr::some(a)), dom);
    }

    /// Semantic law: steps and their inverses are converse relations.
    #[test]
    fn step_inverse_is_converse(axis in arb_axis(), closure in any::<bool>(), t in arb_tree(10)) {
        let step = Step { axis, closure };
        let fwd = eval_path_rel(&t, &PathExpr::Step(step));
        let bwd = eval_path_rel(&t, &PathExpr::Step(step.inverse()));
        prop_assert_eq!(fwd.transpose(), bwd);
    }
}

//! Seeded property suite for the binary frame codec: round-trips under
//! arbitrary chunking, torn-frame resumption at every byte boundary,
//! oversize rejection at the serving tier's 64 KiB cap, and garbage
//! recovery — the decoder must never lose a healthy frame and never
//! kill the stream.

use twx_netio::frame::{encode_frame, DecodeStep, FrameDecoder, HEADER_BYTES, MAGIC};
use twx_xtree::rng::{Rng, SplitMix64};

/// The per-request cap `twx-serve` enforces on both framings.
const SERVE_CAP: usize = 64 * 1024;

fn random_payload(rng: &mut SplitMix64, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len + 1);
    (0..len).map(|_| rng.gen_range(0..256u64) as u8).collect()
}

/// Drains every currently decodable step, appending recovered frames.
fn drain(d: &mut FrameDecoder, frames: &mut Vec<Vec<u8>>) {
    loop {
        match d.next_step() {
            DecodeStep::Frame(p) => frames.push(p),
            DecodeStep::Oversize { .. } | DecodeStep::Garbage { .. } => {}
            DecodeStep::NeedMore => return,
        }
    }
}

#[test]
fn roundtrip_random_payloads_random_chunking() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(0xF7A0 + seed);
        let n_frames = rng.gen_range(1..12usize);
        let payloads: Vec<Vec<u8>> = (0..n_frames)
            .map(|_| random_payload(&mut rng, 2000))
            .collect();
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(&encode_frame(p));
        }
        // feed the concatenated stream in random-size slices
        let mut d = FrameDecoder::new(4096);
        let mut frames = Vec::new();
        let mut off = 0;
        while off < wire.len() {
            let take = rng.gen_range(1..64usize).min(wire.len() - off);
            d.extend(&wire[off..off + take]);
            off += take;
            drain(&mut d, &mut frames);
        }
        assert_eq!(frames, payloads, "seed {seed}");
        assert_eq!(d.buffered(), 0, "seed {seed}: leftover bytes");
    }
}

#[test]
fn torn_frame_resumes_at_every_byte_boundary() {
    let payload = b"{\"op\":\"stats\"} torn-frame probe \xF7\xF7".to_vec();
    let wire = encode_frame(&payload);
    for split in 0..=wire.len() {
        let mut d = FrameDecoder::new(SERVE_CAP);
        d.extend(&wire[..split]);
        // an incomplete healthy frame must never yield anything but
        // NeedMore — no phantom garbage, no partial frame
        if split < wire.len() {
            assert_eq!(
                d.next_step(),
                DecodeStep::NeedMore,
                "split at {split}: decoder jumped the gun"
            );
        }
        d.extend(&wire[split..]);
        assert_eq!(
            d.next_step(),
            DecodeStep::Frame(payload.clone()),
            "split at {split}: frame lost"
        );
        assert_eq!(d.next_step(), DecodeStep::NeedMore);
    }
}

#[test]
fn torn_delivery_byte_by_byte() {
    let payloads: Vec<Vec<u8>> = vec![b"x".to_vec(), Vec::new(), b"{\"op\":\"stats\"}".to_vec()];
    let mut wire = Vec::new();
    for p in &payloads {
        wire.extend_from_slice(&encode_frame(p));
    }
    let mut d = FrameDecoder::new(SERVE_CAP);
    let mut frames = Vec::new();
    for &b in &wire {
        d.extend(&[b]);
        drain(&mut d, &mut frames);
    }
    assert_eq!(frames, payloads);
}

#[test]
fn oversize_rejected_at_serve_cap_and_stream_survives() {
    let mut d = FrameDecoder::new(SERVE_CAP);
    // exactly at the cap: fine
    let at_cap = vec![7u8; SERVE_CAP];
    d.extend(&encode_frame(&at_cap));
    assert_eq!(d.next_step(), DecodeStep::Frame(at_cap));
    // one past the cap: rejected, then the next frame still decodes
    let over = vec![9u8; SERVE_CAP + 1];
    d.extend(&encode_frame(&over));
    d.extend(&encode_frame(b"still alive"));
    assert_eq!(d.next_step(), DecodeStep::Oversize { len: SERVE_CAP + 1 });
    assert_eq!(d.next_step(), DecodeStep::Frame(b"still alive".to_vec()));
    assert_eq!(d.next_step(), DecodeStep::NeedMore);
}

#[test]
fn oversize_payload_delivered_in_chunks_is_fully_discarded() {
    let mut rng = SplitMix64::seed_from_u64(0xBEEF);
    let over = rng.gen_range(SERVE_CAP + 1..3 * SERVE_CAP);
    let wire = encode_frame(&vec![1u8; over]);
    let mut d = FrameDecoder::new(SERVE_CAP);
    let mut frames = Vec::new();
    let mut saw_oversize = false;
    let mut off = 0;
    while off < wire.len() {
        let take = rng.gen_range(1..1000usize).min(wire.len() - off);
        d.extend(&wire[off..off + take]);
        off += take;
        loop {
            match d.next_step() {
                DecodeStep::Oversize { len } => {
                    assert_eq!(len, over);
                    saw_oversize = true;
                }
                DecodeStep::Frame(p) => frames.push(p),
                DecodeStep::Garbage { .. } => panic!("oversize payload misread as garbage"),
                DecodeStep::NeedMore => break,
            }
        }
    }
    assert!(saw_oversize);
    d.extend(&encode_frame(b"after"));
    assert_eq!(d.next_step(), DecodeStep::Frame(b"after".to_vec()));
    assert!(frames.is_empty(), "oversize payload leaked as frames");
}

#[test]
fn garbage_prefix_skipped_exactly_then_frame_recovered() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(0x6A3B + seed);
        // garbage free of the magic lead byte: must be skipped in full,
        // in one reported run, with the following frame intact
        let glen = rng.gen_range(1..300usize);
        let garbage: Vec<u8> = (0..glen)
            .map(|_| loop {
                let b = rng.gen_range(0..256u64) as u8;
                if b != MAGIC[0] {
                    break b;
                }
            })
            .collect();
        let mut d = FrameDecoder::new(SERVE_CAP);
        d.extend(&garbage);
        d.extend(&encode_frame(b"recovered"));
        assert_eq!(
            d.next_step(),
            DecodeStep::Garbage { skipped: glen },
            "seed {seed}"
        );
        assert_eq!(d.next_step(), DecodeStep::Frame(b"recovered".to_vec()));
        assert_eq!(d.next_step(), DecodeStep::NeedMore);
    }
}

#[test]
fn partial_magic_impostors_recovered() {
    // prefixes that *start* like the magic but diverge: the decoder must
    // shed them byte by byte and still find the real frame
    let impostors: Vec<Vec<u8>> = vec![
        vec![MAGIC[0]],
        vec![MAGIC[0], MAGIC[1]],
        vec![MAGIC[0], MAGIC[1], MAGIC[2]],
        vec![MAGIC[0], b'X'],
        vec![MAGIC[0], MAGIC[1], b'X'],
        vec![MAGIC[0], MAGIC[1], MAGIC[2], 0x02], // wrong version
    ];
    for imp in impostors {
        let mut d = FrameDecoder::new(SERVE_CAP);
        d.extend(&imp);
        d.extend(&encode_frame(b"real"));
        let mut frames = Vec::new();
        drain(&mut d, &mut frames);
        assert_eq!(frames, vec![b"real".to_vec()], "impostor {imp:?}");
    }
}

#[test]
fn interleaved_garbage_oversize_and_frames() {
    // a hostile stream mixing every failure mode: every healthy frame
    // must still come out, in order
    let mut rng = SplitMix64::seed_from_u64(0xD15EA5E);
    for round in 0..16u64 {
        let mut wire = Vec::new();
        let mut expect = Vec::new();
        for i in 0..rng.gen_range(2..8usize) {
            match rng.gen_range(0..3u32) {
                0 => {
                    let glen = rng.gen_range(1..40usize);
                    wire.extend((0..glen).map(|_| loop {
                        let b = rng.gen_range(0..256u64) as u8;
                        if b != MAGIC[0] {
                            break b;
                        }
                    }));
                }
                1 => wire.extend_from_slice(&encode_frame(&vec![0xAB; SERVE_CAP + 7])),
                _ => {
                    let p = format!("round {round} frame {i}").into_bytes();
                    wire.extend_from_slice(&encode_frame(&p));
                    expect.push(p);
                }
            }
        }
        // always end healthy so the tail garbage cannot eat a frame
        wire.extend_from_slice(&encode_frame(b"tail"));
        expect.push(b"tail".to_vec());
        let mut d = FrameDecoder::new(SERVE_CAP);
        let mut frames = Vec::new();
        let mut off = 0;
        while off < wire.len() {
            let take = rng.gen_range(1..200usize).min(wire.len() - off);
            d.extend(&wire[off..off + take]);
            off += take;
            drain(&mut d, &mut frames);
        }
        assert_eq!(frames, expect, "round {round}");
    }
}

#[test]
fn header_constants_are_wire_stable() {
    // bytes-on-the-wire pin: magic, little-endian length, 8-byte header
    let w = encode_frame(b"ab");
    assert_eq!(&w[..4], &[0xF7, b'T', b'W', 0x01]);
    assert_eq!(&w[4..8], &[2, 0, 0, 0]);
    assert_eq!(w.len(), HEADER_BYTES + 2);
}

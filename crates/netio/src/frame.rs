//! The length-prefixed binary frame codec, negotiated beside NDJSON.
//!
//! # Bytes on the wire
//!
//! ```text
//! offset 0..4   magic  F7 54 57 01           ("÷TW" + version 1)
//! offset 4..8   payload length, u32 little-endian (<= max_payload)
//! offset 8..    payload bytes (a JSON document, no trailing newline)
//! ```
//!
//! Every frame carries the magic, not just the first one: the decoder
//! can resynchronise after garbage by scanning for the next `0xF7`.
//! `0xF7` can never begin well-formed UTF-8 text (RFC 3629 stops lead
//! bytes at `0xF4`), so the first byte of a connection cleanly selects
//! the framing — magic means binary frames, anything else means NDJSON.
//!
//! # Decoder contract
//!
//! [`FrameDecoder`] is incremental: feed it arbitrary byte slices
//! ([`FrameDecoder::extend`]), pull [`DecodeStep`]s until `NeedMore`.
//! Three properties the protocol tests pin down:
//!
//! * **Torn frames resume at every byte boundary** — a frame split at
//!   any position decodes identically once the rest arrives.
//! * **Oversize frames are rejected, not fatal** — a declared length
//!   over the cap yields [`DecodeStep::Oversize`]; the decoder then
//!   discards exactly the declared payload (when it is sane enough to
//!   trust, see [`MAX_DISCARD`]) and resumes at the next frame.
//! * **Garbage prefixes are skipped, not fatal** — bytes before the
//!   next magic yield one [`DecodeStep::Garbage`] per run, and decoding
//!   continues with the frame that follows.

/// Frame magic: an invalid-UTF-8 lead byte, "TW", and the codec version.
pub const MAGIC: [u8; 4] = [0xF7, b'T', b'W', 0x01];

/// Fixed header size: magic plus the little-endian payload length.
pub const HEADER_BYTES: usize = 8;

/// An oversize frame whose declared length is at most this is skipped
/// exactly (clean resync at the next frame). Beyond it the length word
/// itself is presumed corrupt and the decoder falls back to scanning
/// for the next magic instead of trusting a multi-gigabyte skip.
pub const MAX_DISCARD: usize = 16 * 1024 * 1024;

/// Encodes one payload into a framed byte vector.
///
/// # Panics
/// If `payload` exceeds `u32::MAX` bytes (far beyond any request cap).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("frame payload fits u32");
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One step of incremental decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeStep {
    /// A complete frame's payload.
    Frame(Vec<u8>),
    /// A frame declared `len` bytes of payload, over the decoder's cap.
    /// The payload is being discarded; the connection survives.
    Oversize { len: usize },
    /// `skipped` bytes that belonged to no frame were dropped before
    /// the decoder found (or is still seeking) the next magic.
    Garbage { skipped: usize },
    /// No complete item in the buffer; feed more bytes.
    NeedMore,
}

enum Mode {
    /// Normal operation: expect a header at the buffer start.
    Frames,
    /// Discarding the remainder of an oversize-but-sane frame.
    Discard { remaining: usize },
}

/// The incremental binary-frame decoder (one per connection).
pub struct FrameDecoder {
    buf: Vec<u8>,
    max_payload: usize,
    mode: Mode,
}

impl FrameDecoder {
    /// A decoder enforcing `max_payload` bytes per frame.
    pub fn new(max_payload: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            max_payload,
            mode: Mode::Frames,
        }
    }

    /// Appends raw bytes from the wire.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pulls the next decode step. Call until it returns
    /// [`DecodeStep::NeedMore`].
    pub fn next_step(&mut self) -> DecodeStep {
        if let Mode::Discard { remaining } = &mut self.mode {
            let take = (*remaining).min(self.buf.len());
            self.buf.drain(..take);
            *remaining -= take;
            if *remaining > 0 {
                return DecodeStep::NeedMore;
            }
            self.mode = Mode::Frames;
        }
        // resynchronise: drop everything before the next possible magic
        if !self.buf.is_empty() && self.buf[0] != MAGIC[0] {
            let skipped = self
                .buf
                .iter()
                .position(|&b| b == MAGIC[0])
                .unwrap_or(self.buf.len());
            self.buf.drain(..skipped);
            return DecodeStep::Garbage { skipped };
        }
        // a first byte that matches but a prefix that diverges is garbage
        let check = self.buf.len().min(MAGIC.len());
        if self.buf[..check] != MAGIC[..check] {
            self.buf.drain(..1);
            return DecodeStep::Garbage { skipped: 1 };
        }
        if self.buf.len() < HEADER_BYTES {
            return DecodeStep::NeedMore; // torn header
        }
        let len = u32::from_le_bytes(self.buf[4..8].try_into().expect("4 bytes")) as usize;
        if len > self.max_payload {
            self.buf.drain(..HEADER_BYTES);
            if len <= MAX_DISCARD {
                self.mode = Mode::Discard { remaining: len };
            }
            // beyond MAX_DISCARD the length itself is garbage: stay in
            // Frames mode and let magic-scanning find the next frame
            return DecodeStep::Oversize { len };
        }
        if self.buf.len() < HEADER_BYTES + len {
            return DecodeStep::NeedMore; // torn payload
        }
        let payload = self.buf[HEADER_BYTES..HEADER_BYTES + len].to_vec();
        self.buf.drain(..HEADER_BYTES + len);
        DecodeStep::Frame(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_one_frame() {
        let mut d = FrameDecoder::new(1024);
        d.extend(&encode_frame(b"hello"));
        assert_eq!(d.next_step(), DecodeStep::Frame(b"hello".to_vec()));
        assert_eq!(d.next_step(), DecodeStep::NeedMore);
    }

    #[test]
    fn empty_payload_frame() {
        let mut d = FrameDecoder::new(1024);
        d.extend(&encode_frame(b""));
        assert_eq!(d.next_step(), DecodeStep::Frame(Vec::new()));
    }

    #[test]
    fn oversize_then_healthy() {
        let mut d = FrameDecoder::new(8);
        d.extend(&encode_frame(b"way too large"));
        d.extend(&encode_frame(b"ok"));
        assert_eq!(d.next_step(), DecodeStep::Oversize { len: 13 });
        assert_eq!(d.next_step(), DecodeStep::Frame(b"ok".to_vec()));
    }

    #[test]
    fn garbage_then_frame() {
        let mut d = FrameDecoder::new(1024);
        d.extend(b"junk");
        d.extend(&encode_frame(b"x"));
        assert_eq!(d.next_step(), DecodeStep::Garbage { skipped: 4 });
        assert_eq!(d.next_step(), DecodeStep::Frame(b"x".to_vec()));
    }
}

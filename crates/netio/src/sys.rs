//! The raw syscall shim: `extern "C"` declarations against the platform
//! C library that `std` already links, so the crate needs no external
//! `libc` dependency.
//!
//! Only what the event loop actually uses is declared: epoll (readiness
//! notification), `eventfd` (cross-thread wakeups), `listen` (to widen
//! the accept backlog of a bound `std` listener — Linux allows calling
//! `listen` again with a larger backlog), `setsockopt` (socket-buffer
//! and linger tuning for tests and benches), and `getrlimit`/`setrlimit`
//! (raising the open-file soft limit to the hard cap before a
//! many-thousand-connection run). Sockets themselves stay `std`
//! (`TcpListener`/`TcpStream` with `set_nonblocking`); the shim covers
//! only what `std` does not expose.

use std::io;
use std::os::raw::{c_int, c_uint, c_void};

/// One epoll readiness record. On x86-64 the kernel ABI packs this
/// struct (no padding between `events` and `data`); other architectures
/// use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

pub const EPOLL_CLOEXEC: c_int = 0o2000000;
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EFD_CLOEXEC: c_int = 0o2000000;
pub const EFD_NONBLOCK: c_int = 0o4000;

pub const SOL_SOCKET: c_int = 1;
pub const SO_SNDBUF: c_int = 7;
pub const SO_RCVBUF: c_int = 8;
pub const SO_LINGER: c_int = 13;

const RLIMIT_NOFILE: c_int = 7;

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

#[repr(C)]
struct Linger {
    l_onoff: c_int,
    l_linger: c_int,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn listen(sockfd: c_int, backlog: c_int) -> c_int;
    fn setsockopt(
        sockfd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

pub fn sys_epoll_create1() -> io::Result<c_int> {
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

pub fn sys_epoll_ctl(epfd: c_int, op: c_int, fd: c_int, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

/// Waits for readiness; retries `EINTR` internally. Returns the number
/// of records written into `events`.
pub fn sys_epoll_wait(
    epfd: c_int,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    loop {
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

pub fn sys_eventfd() -> io::Result<c_int> {
    cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

/// Reads and discards the eventfd counter (drains a pending wakeup).
pub fn sys_eventfd_drain(fd: c_int) {
    let mut buf = [0u8; 8];
    unsafe { read(fd, buf.as_mut_ptr().cast(), 8) };
}

/// Adds 1 to the eventfd counter (posts a wakeup). Infallible in
/// practice: the counter only overflows at `u64::MAX - 1`.
pub fn sys_eventfd_wake(fd: c_int) {
    let one = 1u64.to_ne_bytes();
    unsafe { write(fd, one.as_ptr().cast(), 8) };
}

pub fn sys_close(fd: c_int) {
    unsafe { close(fd) };
}

/// Re-issues `listen` on an already-listening socket to widen its
/// accept backlog (`std::net::TcpListener` hard-codes a small one).
pub fn widen_backlog(fd: c_int, backlog: i32) -> io::Result<()> {
    cvt(unsafe { listen(fd, backlog) }).map(|_| ())
}

fn set_buf_size(fd: c_int, opt: c_int, bytes: usize) -> io::Result<()> {
    let v = bytes as c_int;
    cvt(unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            opt,
            (&v as *const c_int).cast(),
            std::mem::size_of::<c_int>() as u32,
        )
    })
    .map(|_| ())
}

/// Shrinks (or grows) the kernel receive buffer of a socket — test and
/// bench helper for making backpressure reproducible.
pub fn set_recv_buffer(fd: c_int, bytes: usize) -> io::Result<()> {
    set_buf_size(fd, SO_RCVBUF, bytes)
}

/// Shrinks (or grows) the kernel send buffer of a socket.
pub fn set_send_buffer(fd: c_int, bytes: usize) -> io::Result<()> {
    set_buf_size(fd, SO_SNDBUF, bytes)
}

/// Arms `SO_LINGER` with a zero timeout: closing the socket sends RST
/// instead of FIN, leaving no TIME_WAIT entry behind. Connection-scale
/// benches tearing down tens of thousands of sockets need this to keep
/// the ephemeral-port range from filling with corpses.
pub fn set_linger_abort(fd: c_int) -> io::Result<()> {
    let l = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    cvt(unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_LINGER,
            (&l as *const Linger).cast(),
            std::mem::size_of::<Linger>() as u32,
        )
    })
    .map(|_| ())
}

/// Raises the soft open-file limit to `min(desired, hard cap)` and
/// returns the resulting soft limit. Never fails the caller: on any
/// error the current (unchanged) soft limit is returned.
pub fn raise_nofile_limit(desired: u64) -> u64 {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 1024;
    }
    let want = desired.min(lim.rlim_max);
    if want > lim.rlim_cur {
        let new = Rlimit {
            rlim_cur: want,
            rlim_max: lim.rlim_max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
            return want;
        }
    }
    lim.rlim_cur
}

//! The event-loop server: one readiness-loop thread owning every
//! socket, a small dispatcher pool executing requests, and per-
//! connection state machines in between.
//!
//! # Architecture
//!
//! ```text
//!            epoll                 bounded by max_pipeline
//!   sockets ──────► readiness loop ────► job queue ────► dispatchers
//!      ▲                 │  ▲                               │
//!      │   framed reply  │  │ eventfd wake + done list      │
//!      └─────────────────┘  └───────────────────────────────┘
//! ```
//!
//! * The **loop thread** accepts, reads, decodes (NDJSON lines or
//!   binary frames, negotiated by the first byte of each connection),
//!   writes replies, and never blocks on a socket or a query.
//! * **Dispatchers** run [`Handler::handle`] — which may block on the
//!   query service's worker pool — and post the reply through the done
//!   list + [`Waker`].
//! * **Pipelining** is per-connection FIFO: any number of requests may
//!   arrive before the first reply is read (up to
//!   [`ServerConfig::max_pipeline`]), and replies always come back in
//!   request order because a connection has at most one request in a
//!   dispatcher at a time. Distinct connections proceed independently.
//! * **Backpressure**: a connection whose buffered replies pass
//!   [`ServerConfig::outbuf_hiwat`] (or whose pipeline fills) is
//!   *parked* — read interest is dropped until the peer drains its
//!   replies — so a slow reader costs one connection's buffers, never
//!   the loop. Each park is counted in
//!   [`NetStats::backpressure_stalls`].
//! * **Admission**: past [`ServerConfig::max_conns`] open connections,
//!   an accept is answered with [`Handler::overloaded`] (one NDJSON
//!   line — framing is negotiated by the *client's* first byte, which
//!   a rejected connection never gets to send) and closed, counted in
//!   [`NetStats::conns_rejected`].
//! * **Decode errors stay in-band**: oversize or garbage input becomes
//!   a [`Handler::protocol_error`] reply queued *in order* with the
//!   requests around it, and the connection lives on.
//!
//! Shutdown: when a handler reply carries [`Reply::shutdown`], the loop
//! stops accepting, flushes that reply (tolerating a client that hangs
//! up without reading it), and returns.

use crate::frame::{encode_frame, DecodeStep, FrameDecoder};
use crate::poller::{Event, Interest, Poller, Waker};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for [`serve`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Open-connection cap; accepts past it are answered with
    /// [`Handler::overloaded`] and closed.
    pub max_conns: usize,
    /// Threads executing [`Handler::handle`] (each may block on the
    /// downstream service).
    pub dispatchers: usize,
    /// Per-request byte cap, applied to NDJSON lines and binary frame
    /// payloads alike.
    pub max_request_bytes: usize,
    /// Park a connection's reads once this many reply bytes are
    /// buffered for it (resume at half).
    pub outbuf_hiwat: usize,
    /// Decoded-but-unanswered requests a connection may pipeline before
    /// its reads are parked.
    pub max_pipeline: usize,
    /// Accept backlog re-armed on the listener (see
    /// [`crate::widen_backlog`]).
    pub listen_backlog: i32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_conns: 10_000,
            dispatchers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            max_request_bytes: 64 * 1024,
            outbuf_hiwat: 256 * 1024,
            max_pipeline: 128,
            listen_backlog: 4096,
        }
    }
}

/// Shared connection-tier counters, readable from any thread (the
/// serving binary mirrors them into the metrics registry).
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections currently open.
    pub conns_open: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub conns_total: AtomicU64,
    /// Connections refused at the `max_conns` cap.
    pub conns_rejected: AtomicU64,
    /// Requests decoded (NDJSON lines and binary frames both count).
    pub frames_rx: AtomicU64,
    /// Replies written (either framing).
    pub frames_tx: AtomicU64,
    /// Times a connection's reads were parked for backpressure.
    pub backpressure_stalls: AtomicU64,
}

impl NetStats {
    fn load(v: &AtomicU64) -> u64 {
        v.load(Ordering::Relaxed)
    }

    /// A plain-value snapshot `(open, total, rejected, rx, tx, stalls)`.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            conns_open: Self::load(&self.conns_open),
            conns_total: Self::load(&self.conns_total),
            conns_rejected: Self::load(&self.conns_rejected),
            frames_rx: Self::load(&self.frames_rx),
            frames_tx: Self::load(&self.frames_tx),
            backpressure_stalls: Self::load(&self.backpressure_stalls),
        }
    }
}

/// Plain-value view of [`NetStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    pub conns_open: u64,
    pub conns_total: u64,
    pub conns_rejected: u64,
    pub frames_rx: u64,
    pub frames_tx: u64,
    pub backpressure_stalls: u64,
}

/// What a [`Handler`] returns for one request payload.
pub struct Reply {
    /// The reply payload (framed by the loop per the connection's
    /// negotiated framing).
    pub payload: Vec<u8>,
    /// Flush this reply, then shut the server down.
    pub shutdown: bool,
}

impl Reply {
    /// An ordinary reply.
    pub fn send(payload: Vec<u8>) -> Reply {
        Reply {
            payload,
            shutdown: false,
        }
    }
}

/// The application protocol behind the socket tier. Implementations are
/// called from dispatcher threads and may block.
pub trait Handler: Send + Sync + 'static {
    /// Handles one request payload (one NDJSON line without its
    /// newline, or one binary frame payload) and produces the reply.
    fn handle(&self, payload: &[u8]) -> Reply;

    /// The typed reply for a transport-level protocol error (oversize
    /// request, garbage on the wire). Queued in-band on the connection.
    fn protocol_error(&self, detail: &str) -> Vec<u8>;

    /// The typed reply for an accept refused at the connection cap.
    fn overloaded(&self, open: usize, max_conns: usize) -> Vec<u8>;
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Framing {
    Ndjson,
    Binary,
}

enum Work {
    /// A decoded request awaiting its turn in the dispatcher.
    Request(Vec<u8>),
    /// An already-rendered error reply keeping its place in line.
    Error(Vec<u8>),
}

struct Conn {
    stream: TcpStream,
    token: u64,
    framing: Option<Framing>,
    /// Binary-framing decoder (allocated lazily — NDJSON conns never
    /// touch it beyond construction; it holds no buffer until fed).
    decoder: FrameDecoder,
    /// NDJSON line assembly.
    line_buf: Vec<u8>,
    /// Discarding the tail of an over-cap NDJSON line.
    skipping_line: bool,
    /// Decoded work in arrival order.
    pending: VecDeque<Work>,
    /// A request of this connection is in (or queued for) a dispatcher.
    inflight: bool,
    /// Framed reply bytes not yet written, with the write cursor.
    outbuf: Vec<u8>,
    out_pos: usize,
    interest: Interest,
    /// Reads parked for backpressure.
    parked: bool,
    /// Peer sent EOF; finish writing, then close.
    peer_closed: bool,
    /// Unrecoverable (I/O error); close as soon as control returns.
    dead: bool,
    /// Flush the pending reply, then stop the server.
    shutdown_after_flush: bool,
}

impl Conn {
    fn buffered_out(&self) -> usize {
        self.outbuf.len() - self.out_pos
    }
}

struct Job {
    token: u64,
    payload: Vec<u8>,
}

struct Done {
    token: u64,
    payload: Vec<u8>,
    shutdown: bool,
}

/// State shared between the loop thread and the dispatcher pool.
struct Shared {
    jobs: Mutex<(VecDeque<Job>, bool)>,
    jobs_cv: Condvar,
    done: Mutex<Vec<Done>>,
    waker: Waker,
}

impl Shared {
    fn push_job(&self, job: Job) {
        let mut q = self.jobs.lock().expect("jobs poisoned");
        q.0.push_back(job);
        drop(q);
        self.jobs_cv.notify_one();
    }

    fn close_jobs(&self) {
        self.jobs.lock().expect("jobs poisoned").1 = true;
        self.jobs_cv.notify_all();
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_BASE: u64 = 2;

fn conn_token(slot: usize, generation: u32) -> u64 {
    ((generation as u64) << 32) | (slot as u64 + TOKEN_BASE)
}

fn token_slot(token: u64) -> usize {
    ((token & 0xffff_ffff) - TOKEN_BASE) as usize
}

struct EventLoop<H: Handler> {
    listener: TcpListener,
    poller: Poller,
    handler: Arc<H>,
    shared: Arc<Shared>,
    stats: Arc<NetStats>,
    cfg: ServerConfig,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    open: usize,
    generation: u32,
    /// Accepts paused until this instant (fd exhaustion recovery).
    accept_paused_until: Option<Instant>,
    shutting_down: bool,
    shutdown_flushed: bool,
}

/// Runs the event loop over `listener` until a handler reply requests
/// shutdown. The listener is switched to nonblocking and its backlog
/// widened to [`ServerConfig::listen_backlog`].
pub fn serve<H: Handler>(
    listener: TcpListener,
    handler: Arc<H>,
    cfg: ServerConfig,
    stats: Arc<NetStats>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    // best effort: a listener that cannot widen its backlog still works
    let _ = crate::sys::widen_backlog(listener.as_raw_fd(), cfg.listen_backlog);
    let poller = Poller::new()?;
    let shared = Arc::new(Shared {
        jobs: Mutex::new((VecDeque::new(), false)),
        jobs_cv: Condvar::new(),
        done: Mutex::new(Vec::new()),
        waker: Waker::new()?,
    });
    poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    shared.waker.register(&poller, TOKEN_WAKER)?;
    let dispatchers: Vec<_> = (0..cfg.dispatchers.max(1))
        .map(|i| {
            let handler = Arc::clone(&handler);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("twx-netio-dispatch-{i}"))
                .spawn(move || dispatcher_loop(&*handler, &shared))
                .expect("spawn dispatcher")
        })
        .collect();
    let mut el = EventLoop {
        listener,
        poller,
        handler,
        shared,
        stats,
        cfg,
        conns: Vec::new(),
        free: Vec::new(),
        open: 0,
        generation: 0,
        accept_paused_until: None,
        shutting_down: false,
        shutdown_flushed: false,
    };
    let result = el.run();
    el.shared.close_jobs();
    for d in dispatchers {
        let _ = d.join();
    }
    result
}

fn dispatcher_loop<H: Handler>(handler: &H, shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.jobs.lock().expect("jobs poisoned");
            loop {
                if let Some(job) = q.0.pop_front() {
                    break job;
                }
                if q.1 {
                    return;
                }
                q = shared.jobs_cv.wait(q).expect("jobs poisoned");
            }
        };
        let reply = handler.handle(&job.payload);
        shared.done.lock().expect("done poisoned").push(Done {
            token: job.token,
            payload: reply.payload,
            shutdown: reply.shutdown,
        });
        shared.waker.wake();
    }
}

impl<H: Handler> EventLoop<H> {
    fn run(&mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = match self.accept_paused_until {
                Some(_) => 50,
                None => -1,
            };
            events.clear();
            self.poller.wait(&mut events, timeout)?;
            if let Some(t) = self.accept_paused_until {
                if Instant::now() >= t {
                    self.accept_paused_until = None;
                    self.poller.modify(
                        self.listener.as_raw_fd(),
                        TOKEN_LISTENER,
                        Interest::READ,
                    )?;
                }
            }
            for &ev in events.iter() {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.shared.waker.drain(),
                    token => self.conn_ready(token, ev),
                }
            }
            self.drain_completions();
            if self.shutting_down && self.shutdown_flushed {
                return Ok(());
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shutting_down {
                        continue; // dropped: the server is on its way out
                    }
                    if self.open >= self.cfg.max_conns {
                        self.reject(stream);
                        continue;
                    }
                    self.admit(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) if e.raw_os_error() == Some(24) || e.raw_os_error() == Some(23) => {
                    // EMFILE/ENFILE: out of descriptors. Pause accepting
                    // briefly instead of spinning on a level-triggered
                    // listener; existing connections keep draining and
                    // freeing descriptors.
                    self.accept_paused_until = Some(Instant::now() + Duration::from_millis(100));
                    let _ = self.poller.modify(
                        self.listener.as_raw_fd(),
                        TOKEN_LISTENER,
                        Interest {
                            readable: false,
                            writable: false,
                        },
                    );
                    break;
                }
                Err(_) => break,
            }
        }
    }

    /// Typed refusal at the connection cap: one best-effort NDJSON
    /// error line, then close.
    fn reject(&mut self, stream: TcpStream) {
        self.stats.conns_rejected.fetch_add(1, Ordering::Relaxed);
        let mut line = self.handler.overloaded(self.open, self.cfg.max_conns);
        line.push(b'\n');
        let _ = stream.set_nonblocking(true);
        let mut s = stream;
        let _ = s.write(&line);
    }

    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        self.generation = self.generation.wrapping_add(1);
        let token = conn_token(slot, self.generation);
        if self
            .poller
            .add(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(Conn {
            stream,
            token,
            framing: None,
            decoder: FrameDecoder::new(self.cfg.max_request_bytes),
            line_buf: Vec::new(),
            skipping_line: false,
            pending: VecDeque::new(),
            inflight: false,
            outbuf: Vec::new(),
            out_pos: 0,
            interest: Interest::READ,
            parked: false,
            peer_closed: false,
            dead: false,
            shutdown_after_flush: false,
        });
        self.open += 1;
        self.stats
            .conns_open
            .store(self.open as u64, Ordering::Relaxed);
        self.stats.conns_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Looks a token up, guarding against slots recycled to a newer
    /// connection while an event or completion was in flight.
    fn live_slot(&self, token: u64) -> Option<usize> {
        let slot = token_slot(token);
        match self.conns.get(slot) {
            Some(Some(c)) if c.token == token => Some(slot),
            _ => None,
        }
    }

    fn conn_ready(&mut self, token: u64, ev: Event) {
        let Some(slot) = self.live_slot(token) else {
            return;
        };
        if ev.hangup {
            let c = self.conns[slot].as_mut().expect("live slot");
            c.dead = true;
        } else {
            if ev.readable {
                self.read_conn(slot);
            }
            if ev.writable {
                let c = self.conns[slot].as_mut().expect("live slot");
                flush_conn(c);
            }
        }
        self.pump(slot);
    }

    fn read_conn(&mut self, slot: usize) {
        let mut buf = [0u8; 16384];
        loop {
            let c = self.conns[slot].as_mut().expect("live slot");
            if c.parked || c.peer_closed || c.dead || c.shutdown_after_flush {
                break;
            }
            match c.stream.read(&mut buf) {
                Ok(0) => {
                    c.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    self.ingest(slot, &buf[..n]);
                    // decoded work may already warrant parking; stop
                    // pulling more bytes until pump() re-evaluates
                    let c = self.conns[slot].as_ref().expect("live slot");
                    if c.pending.len() >= self.cfg.max_pipeline
                        || c.buffered_out() > self.cfg.outbuf_hiwat
                    {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    c.dead = true;
                    break;
                }
            }
        }
    }

    /// Feeds raw bytes through the connection's (possibly still
    /// undetermined) framing, queueing requests and in-band errors.
    fn ingest(&mut self, slot: usize, mut bytes: &[u8]) {
        if self.conns[slot]
            .as_ref()
            .expect("live slot")
            .framing
            .is_none()
        {
            // the first non-whitespace byte picks the framing: the
            // frame magic's 0xF7 lead byte cannot open NDJSON text
            while let Some((&b, rest)) = bytes.split_first() {
                if b == b'\n' || b == b'\r' || b == b' ' || b == b'\t' {
                    bytes = rest;
                    continue;
                }
                let framing = if b == crate::frame::MAGIC[0] {
                    Framing::Binary
                } else {
                    Framing::Ndjson
                };
                self.conns[slot].as_mut().expect("live slot").framing = Some(framing);
                break;
            }
            if bytes.is_empty() {
                return;
            }
        }
        match self.conns[slot].as_ref().expect("live slot").framing {
            Some(Framing::Ndjson) => self.ingest_ndjson(slot, bytes),
            Some(Framing::Binary) => self.ingest_binary(slot, bytes),
            None => unreachable!("framing set above"),
        }
    }

    fn push_request(&mut self, slot: usize, payload: Vec<u8>) {
        self.stats.frames_rx.fetch_add(1, Ordering::Relaxed);
        self.conns[slot]
            .as_mut()
            .expect("live slot")
            .pending
            .push_back(Work::Request(payload));
    }

    fn push_error(&mut self, slot: usize, detail: &str) {
        let reply = self.handler.protocol_error(detail);
        self.conns[slot]
            .as_mut()
            .expect("live slot")
            .pending
            .push_back(Work::Error(reply));
    }

    fn ingest_ndjson(&mut self, slot: usize, bytes: &[u8]) {
        let max = self.cfg.max_request_bytes;
        let mut rest = bytes;
        loop {
            let c = self.conns[slot].as_mut().expect("live slot");
            if c.skipping_line {
                match rest.iter().position(|&b| b == b'\n') {
                    Some(nl) => {
                        c.skipping_line = false;
                        rest = &rest[nl + 1..];
                    }
                    None => return, // still inside the oversize line
                }
                continue;
            }
            match rest.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    let mut line = std::mem::take(&mut c.line_buf);
                    line.extend_from_slice(&rest[..nl]);
                    rest = &rest[nl + 1..];
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    if line.iter().all(|b| b.is_ascii_whitespace()) {
                        continue;
                    }
                    if line.len() > max {
                        let n = line.len();
                        self.push_error(
                            slot,
                            &format!("request of {n} bytes exceeds the {max}-byte limit"),
                        );
                    } else {
                        self.push_request(slot, line);
                    }
                }
                None => {
                    c.line_buf.extend_from_slice(rest);
                    if c.line_buf.len() > max {
                        let n = c.line_buf.len();
                        c.line_buf = Vec::new();
                        c.skipping_line = true;
                        self.push_error(
                            slot,
                            &format!(
                                "request exceeds the {max}-byte limit ({n}+ bytes and no newline)"
                            ),
                        );
                    }
                    return;
                }
            }
        }
    }

    fn ingest_binary(&mut self, slot: usize, bytes: &[u8]) {
        let max = self.cfg.max_request_bytes;
        self.conns[slot]
            .as_mut()
            .expect("live slot")
            .decoder
            .extend(bytes);
        // consecutive Garbage steps coalesce into one in-band error
        let mut garbage_run = 0usize;
        loop {
            let step = self.conns[slot]
                .as_mut()
                .expect("live slot")
                .decoder
                .next_step();
            if garbage_run > 0 && !matches!(step, DecodeStep::Garbage { .. }) {
                self.push_error(
                    slot,
                    &format!("garbage on the wire: {garbage_run} bytes skipped before a frame"),
                );
                garbage_run = 0;
            }
            match step {
                DecodeStep::Frame(payload) => self.push_request(slot, payload),
                DecodeStep::Oversize { len } => {
                    self.push_error(
                        slot,
                        &format!("frame of {len} bytes exceeds the {max}-byte limit"),
                    );
                }
                DecodeStep::Garbage { skipped } => garbage_run += skipped,
                DecodeStep::NeedMore => break,
            }
        }
    }

    /// Advances a connection's state machine: emit due replies, hand
    /// the next request to the dispatchers, flush, re-park or resume
    /// reads, and close if the connection is finished.
    fn pump(&mut self, slot: usize) {
        let hiwat = self.cfg.outbuf_hiwat;
        loop {
            let c = self.conns[slot].as_mut().expect("live slot");
            if c.dead || c.buffered_out() > hiwat {
                break;
            }
            match c.pending.front() {
                Some(Work::Error(_)) => {
                    let Some(Work::Error(reply)) = c.pending.pop_front() else {
                        unreachable!()
                    };
                    enqueue_reply(c, &reply, &self.stats);
                }
                Some(Work::Request(_)) if !c.inflight => {
                    let Some(Work::Request(payload)) = c.pending.pop_front() else {
                        unreachable!()
                    };
                    c.inflight = true;
                    let token = c.token;
                    self.shared.push_job(Job { token, payload });
                }
                _ => break,
            }
        }
        let c = self.conns[slot].as_mut().expect("live slot");
        flush_conn(c);
        if c.shutdown_after_flush && (c.dead || c.buffered_out() == 0) {
            // the goodbye is out (or the client hung up first — the
            // intent stands either way)
            self.shutdown_flushed = true;
            self.close_conn(slot);
            return;
        }
        if c.dead || (c.peer_closed && c.buffered_out() == 0 && c.pending.is_empty() && !c.inflight)
        {
            self.close_conn(slot);
            return;
        }
        self.update_interest(slot);
    }

    /// Applies the park/resume hysteresis and the epoll interest set.
    fn update_interest(&mut self, slot: usize) {
        let hiwat = self.cfg.outbuf_hiwat;
        let max_pipeline = self.cfg.max_pipeline;
        let stats = &self.stats;
        let c = self.conns[slot].as_mut().expect("live slot");
        let over = c.buffered_out() > hiwat || c.pending.len() >= max_pipeline;
        let under = c.buffered_out() <= hiwat / 2 && c.pending.len() < max_pipeline;
        if !c.parked && over {
            c.parked = true;
            stats.backpressure_stalls.fetch_add(1, Ordering::Relaxed);
        } else if c.parked && under {
            c.parked = false;
        }
        let want = Interest {
            readable: !c.parked && !c.peer_closed && !c.shutdown_after_flush,
            writable: c.buffered_out() > 0,
        };
        if want != c.interest {
            let token = c.token;
            if self
                .poller
                .modify(c.stream.as_raw_fd(), token, want)
                .is_ok()
            {
                let c = self.conns[slot].as_mut().expect("live slot");
                c.interest = want;
            }
        }
    }

    fn close_conn(&mut self, slot: usize) {
        let c = self.conns[slot].take().expect("live slot");
        let _ = self.poller.delete(c.stream.as_raw_fd());
        drop(c);
        self.free.push(slot);
        self.open -= 1;
        self.stats
            .conns_open
            .store(self.open as u64, Ordering::Relaxed);
    }

    fn drain_completions(&mut self) {
        let done: Vec<Done> = {
            let mut d = self.shared.done.lock().expect("done poisoned");
            std::mem::take(&mut *d)
        };
        for done in done {
            if done.shutdown {
                self.shutting_down = true;
            }
            let Some(slot) = self.live_slot(done.token) else {
                // the connection died while its request ran; a shutdown
                // intent still stands with nothing left to flush
                if done.shutdown {
                    self.shutdown_flushed = true;
                }
                continue;
            };
            let c = self.conns[slot].as_mut().expect("live slot");
            c.inflight = false;
            enqueue_reply(c, &done.payload, &self.stats);
            if done.shutdown {
                c.shutdown_after_flush = true;
            }
            self.pump(slot);
        }
    }
}

/// Frames one reply payload onto a connection's output buffer.
fn enqueue_reply(c: &mut Conn, payload: &[u8], stats: &NetStats) {
    match c.framing.unwrap_or(Framing::Ndjson) {
        Framing::Ndjson => {
            c.outbuf.extend_from_slice(payload);
            c.outbuf.push(b'\n');
        }
        Framing::Binary => c.outbuf.extend_from_slice(&encode_frame(payload)),
    }
    stats.frames_tx.fetch_add(1, Ordering::Relaxed);
}

/// Writes as much buffered output as the socket accepts right now.
fn flush_conn(c: &mut Conn) {
    while c.out_pos < c.outbuf.len() {
        match c.stream.write(&c.outbuf[c.out_pos..]) {
            Ok(0) => {
                c.dead = true;
                break;
            }
            Ok(n) => c.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                break;
            }
        }
    }
    if c.out_pos == c.outbuf.len() && c.out_pos > 0 {
        c.outbuf.clear();
        c.out_pos = 0;
    }
}

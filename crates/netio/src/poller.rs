//! A minimal epoll wrapper: register file descriptors under `u64`
//! tokens, wait for readiness, get `(token, readable, writable,
//! hangup)` records back.
//!
//! Level-triggered on purpose: the event loop re-attempts reads and
//! writes until `WouldBlock` anyway, and level semantics make parking a
//! connection (deregistering read interest under backpressure) trivially
//! correct — whatever is still buffered in the kernel re-fires the
//! moment interest is restored.

use crate::sys::{self, EpollEvent};
use std::io;
use std::os::fd::RawFd;

/// One readiness record from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (or a peer half-close — data may still be buffered).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup: the connection is beyond saving.
    pub hangup: bool,
}

/// Interest set for a registered fd.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut e = sys::EPOLLRDHUP;
        if self.readable {
            e |= sys::EPOLLIN;
        }
        if self.writable {
            e |= sys::EPOLLOUT;
        }
        e
    }
}

/// An epoll instance.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::sys_epoll_create1()?,
        })
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, interest.bits(), token)
    }

    /// Replaces the interest set of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, interest.bits(), token)
    }

    /// Deregisters a fd (safe to call right before closing it).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (`-1` = forever) and appends readiness
    /// records to `out`. Returns the number appended.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
        let n = sys::sys_epoll_wait(self.epfd, &mut raw, timeout_ms)?;
        for ev in raw.iter().take(n) {
            // copy out of the (possibly packed) kernel struct first
            let bits = { ev.events };
            let token = { ev.data };
            out.push(Event {
                token,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::sys_close(self.epfd);
    }
}

/// A cross-thread wakeup channel for the event loop: any thread calls
/// [`Waker::wake`], the loop sees a readable event on the waker token
/// and calls [`Waker::drain`].
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            fd: sys::sys_eventfd()?,
        })
    }

    /// Registers the waker with a poller under `token`.
    pub fn register(&self, poller: &Poller, token: u64) -> io::Result<()> {
        poller.add(self.fd, token, Interest::READ)
    }

    /// Posts a wakeup (callable from any thread, nonblocking).
    pub fn wake(&self) {
        sys::sys_eventfd_wake(self.fd);
    }

    /// Clears pending wakeups (loop side).
    pub fn drain(&self) {
        sys::sys_eventfd_drain(self.fd);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::sys_close(self.fd);
    }
}

//! `twx-netio`: the zero-dependency nonblocking socket tier behind
//! `twx-serve`.
//!
//! Three layers, each usable on its own:
//!
//! * [`sys`] — a tiny `extern "C"` shim over what `std` does not
//!   expose: epoll, `eventfd`, backlog widening, socket-buffer/linger
//!   tuning, and the open-file rlimit.
//! * [`poller`] — [`Poller`]/[`Waker`]: level-triggered readiness with
//!   `u64` tokens.
//! * [`frame`] — the length-prefixed binary frame codec
//!   ([`encode_frame`]/[`FrameDecoder`]) negotiated beside NDJSON by a
//!   connection's first byte.
//! * [`server`] — [`serve`]: the event loop itself — pipelined
//!   per-connection state machines, write backpressure, a `max_conns`
//!   admission cap, and a dispatcher pool running the supplied
//!   [`Handler`].

pub mod frame;
pub mod poller;
pub mod server;
pub mod sys;

pub use frame::{encode_frame, DecodeStep, FrameDecoder, HEADER_BYTES, MAGIC, MAX_DISCARD};
pub use poller::{Event, Interest, Poller, Waker};
pub use server::{serve, Handler, NetStats, NetStatsSnapshot, Reply, ServerConfig};
pub use sys::raise_nofile_limit;

use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;

/// Widens the accept backlog of a bound listener (see
/// [`sys::widen_backlog`]).
pub fn widen_backlog(listener: &TcpListener, backlog: i32) -> io::Result<()> {
    sys::widen_backlog(listener.as_raw_fd(), backlog)
}

/// Shrinks (or grows) a stream's kernel receive buffer — makes
/// slow-reader backpressure reproducible in tests.
pub fn set_recv_buffer(stream: &TcpStream, bytes: usize) -> io::Result<()> {
    sys::set_recv_buffer(stream.as_raw_fd(), bytes)
}

/// Shrinks (or grows) a stream's kernel send buffer.
pub fn set_send_buffer(stream: &TcpStream, bytes: usize) -> io::Result<()> {
    sys::set_send_buffer(stream.as_raw_fd(), bytes)
}

/// Makes `close` abortive (RST, no TIME_WAIT) — connection-scale
/// benches need this to keep the ephemeral-port range alive.
pub fn set_linger_abort(stream: &TcpStream) -> io::Result<()> {
    sys::set_linger_abort(stream.as_raw_fd())
}

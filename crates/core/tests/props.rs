//! Property-based tests for the translation triangle: every translation
//! preserves semantics on random trees, for proptest-generated queries.

use proptest::prelude::*;
use twx_core::{ntwa_to_rpath, rnode_to_formula, rnode_to_ntwa, rpath_to_formula, rpath_to_ntwa};
use twx_fotc::eval::{eval_binary, eval_unary};
use twx_regxpath::ast::{Axis, RNode, RPath};
use twx_twa::eval::{accepts_from, eval_rel as twa_rel};
use twx_xtree::generate::from_parent_vec;
use twx_xtree::{Label, Tree};

fn arb_axis() -> impl Strategy<Value = Axis> {
    prop_oneof![
        Just(Axis::Down),
        Just(Axis::Up),
        Just(Axis::Left),
        Just(Axis::Right),
    ]
}

fn arb_rpath() -> impl Strategy<Value = RPath> {
    let leaf = prop_oneof![
        arb_axis().prop_map(RPath::Axis),
        Just(RPath::Eps),
        (0u32..2).prop_map(|l| RPath::test(RNode::Label(Label(l)))),
    ];
    leaf.prop_recursive(3, 14, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.seq(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            inner.clone().prop_map(|a| a.star()),
            (inner.clone(), arb_rnode_from(inner)).prop_map(|(a, f)| a.filter(f)),
        ]
    })
}

fn arb_rnode_from(paths: impl Strategy<Value = RPath> + Clone + 'static) -> BoxedStrategy<RNode> {
    let leaf = prop_oneof![
        Just(RNode::True),
        (0u32..2).prop_map(|l| RNode::Label(Label(l))),
    ];
    leaf.prop_recursive(2, 8, 2, move |inner| {
        prop_oneof![
            paths.clone().prop_map(RNode::some),
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.and(g)),
            inner.clone().prop_map(|f| f.within()),
        ]
    })
    .boxed()
}

fn arb_rnode() -> impl Strategy<Value = RNode> {
    arb_rnode_from(arb_rpath().boxed())
}

fn arb_tree(max_n: usize) -> impl Strategy<Value = Tree> {
    (1..=max_n).prop_flat_map(|n| {
        let parents = (1..n).map(|i| 0..i as u32).collect::<Vec<_>>().prop_map(|mut ps| {
            ps.insert(0, 0);
            ps
        });
        let labels = proptest::collection::vec(0u32..2, n);
        (parents, labels).prop_map(|(ps, ls)| {
            let ls: Vec<Label> = ls.into_iter().map(Label).collect();
            from_parent_vec(&ps, &ls)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Regular XPath(W) → FO(MTC) preserves binary relations.
    #[test]
    fn logic_translation_exact(p in arb_rpath(), t in arb_tree(6)) {
        let f = rpath_to_formula(&p, 0, 1, 2);
        prop_assert_eq!(twx_regxpath::eval_rel(&t, &p), eval_binary(&t, &f, 0, 1));
    }

    /// … and node sets.
    #[test]
    fn logic_node_translation_exact(g in arb_rnode(), t in arb_tree(6)) {
        let f = rnode_to_formula(&g, 0, 1);
        prop_assert_eq!(twx_regxpath::eval_node(&t, &g), eval_unary(&t, &f, 0));
    }

    /// Regular XPath(W) → NTWA preserves binary relations.
    #[test]
    fn thompson_exact(p in arb_rpath(), t in arb_tree(7)) {
        let a = rpath_to_ntwa(&p);
        prop_assert!(a.validate().is_ok());
        prop_assert_eq!(twx_regxpath::eval_rel(&t, &p), twa_rel(&t, &a));
    }

    /// Node compilation preserves acceptance sets.
    #[test]
    fn thompson_node_exact(g in arb_rnode(), t in arb_tree(6)) {
        let a = rnode_to_ntwa(&g);
        prop_assert_eq!(twx_regxpath::eval_node(&t, &g), accepts_from(&t, &a));
    }

    /// The Kleene round trip is the identity up to semantics.
    #[test]
    fn kleene_roundtrip_exact(p in arb_rpath(), t in arb_tree(6)) {
        let back = ntwa_to_rpath(&rpath_to_ntwa(&p));
        prop_assert_eq!(
            twx_regxpath::eval_rel(&t, &p),
            twx_regxpath::eval_rel(&t, &back)
        );
    }

    /// Thompson state count is linear in expression size.
    #[test]
    fn thompson_linear(p in arb_rpath()) {
        let a = rpath_to_ntwa(&p);
        prop_assert!(a.total_states() <= 2 * p.size());
    }
}

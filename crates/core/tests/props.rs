//! Property-based tests for the translation triangle: every translation
//! preserves semantics on random trees, for randomly generated queries.
//!
//! Queries come from the workspace's own generators
//! ([`twx_regxpath::generate`]) driven by the deterministic in-tree PRNG,
//! so every failure reproduces from the seed in the test.

use twx_core::{ntwa_to_rpath, rnode_to_formula, rnode_to_ntwa, rpath_to_formula, rpath_to_ntwa};
use twx_fotc::eval::{eval_binary, eval_unary};
use twx_regxpath::generate::{random_rnode, random_rpath, RGenConfig};
use twx_twa::eval::{accepts_from, eval_rel as twa_rel};
use twx_xtree::generate::from_parent_vec;
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::{Label, Tree};

fn rand_tree(rng: &mut SplitMix64, max_n: usize) -> Tree {
    let n = rng.gen_range(1..max_n + 1);
    let mut parents = vec![0u32; n];
    for (i, p) in parents.iter_mut().enumerate().skip(1) {
        *p = rng.gen_range(0..i as u32);
    }
    let ls: Vec<Label> = (0..n).map(|_| Label(rng.gen_range(0..2u32))).collect();
    from_parent_vec(&parents, &ls)
}

const ROUNDS: usize = 32;

/// Regular XPath(W) → FO(MTC) preserves binary relations.
#[test]
fn logic_translation_exact() {
    let mut rng = SplitMix64::seed_from_u64(0x109c);
    let cfg = RGenConfig::default();
    for _ in 0..ROUNDS {
        let p = random_rpath(&cfg, 3, &mut rng);
        let t = rand_tree(&mut rng, 6);
        let f = rpath_to_formula(&p, 0, 1, 2);
        assert_eq!(
            twx_regxpath::eval_rel(&t, &p),
            eval_binary(&t, &f, 0, 1),
            "{p:?}"
        );
    }
}

/// … and node sets.
#[test]
fn logic_node_translation_exact() {
    let mut rng = SplitMix64::seed_from_u64(0x109d);
    let cfg = RGenConfig::default();
    for _ in 0..ROUNDS {
        let g = random_rnode(&cfg, 3, &mut rng);
        let t = rand_tree(&mut rng, 6);
        let f = rnode_to_formula(&g, 0, 1);
        assert_eq!(
            twx_regxpath::eval_node(&t, &g),
            eval_unary(&t, &f, 0),
            "{g:?}"
        );
    }
}

/// Regular XPath(W) → NTWA preserves binary relations.
#[test]
fn thompson_exact() {
    let mut rng = SplitMix64::seed_from_u64(0x7503);
    let cfg = RGenConfig::default();
    for _ in 0..ROUNDS {
        let p = random_rpath(&cfg, 3, &mut rng);
        let t = rand_tree(&mut rng, 7);
        let a = rpath_to_ntwa(&p);
        assert!(a.validate().is_ok());
        assert_eq!(twx_regxpath::eval_rel(&t, &p), twa_rel(&t, &a), "{p:?}");
    }
}

/// Node compilation preserves acceptance sets.
#[test]
fn thompson_node_exact() {
    let mut rng = SplitMix64::seed_from_u64(0x7504);
    let cfg = RGenConfig::default();
    for _ in 0..ROUNDS {
        let g = random_rnode(&cfg, 3, &mut rng);
        let t = rand_tree(&mut rng, 6);
        let a = rnode_to_ntwa(&g);
        assert_eq!(
            twx_regxpath::eval_node(&t, &g),
            accepts_from(&t, &a),
            "{g:?}"
        );
    }
}

/// The Kleene round trip is the identity up to semantics.
#[test]
fn kleene_roundtrip_exact() {
    let mut rng = SplitMix64::seed_from_u64(0x6133);
    let cfg = RGenConfig::default();
    for _ in 0..ROUNDS {
        let p = random_rpath(&cfg, 2, &mut rng);
        let t = rand_tree(&mut rng, 6);
        let back = ntwa_to_rpath(&rpath_to_ntwa(&p));
        assert_eq!(
            twx_regxpath::eval_rel(&t, &p),
            twx_regxpath::eval_rel(&t, &back),
            "{p:?}"
        );
    }
}

/// Thompson state count is linear in expression size.
#[test]
fn thompson_linear() {
    let mut rng = SplitMix64::seed_from_u64(0x7511);
    let cfg = RGenConfig::default();
    for _ in 0..200 {
        let p = random_rpath(&cfg, 4, &mut rng);
        let a = rpath_to_ntwa(&p);
        assert!(a.total_states() <= 2 * p.size(), "{p:?}");
    }
}

//! Decision procedures for query equivalence, containment and
//! satisfiability.
//!
//! Two regimes, as laid out in `DESIGN.md`:
//!
//! * **exact** decisions for the downward Core XPath fragment, delegated
//!   to the tree-automata compilation of `twx-treeauto` (EXPTIME
//!   worst-case, complete);
//! * **bounded-domain** decisions for full Regular XPath(W): exhaustive
//!   check over all trees up to a size bound (plus random trees), with a
//!   counterexample tree on the negative side. Complete only up to the
//!   bound — but equivalence of *tree* queries of modal character has the
//!   small-model flavour that makes modest bounds remarkably effective in
//!   practice, and every verdict is accompanied by the evidence.

use twx_regxpath::{RNode, RPath};
use twx_xtree::generate::enumerate_trees_up_to;
use twx_xtree::{NodeId, Tree};

/// The outcome of a bounded-domain equivalence check.
#[derive(Debug, Clone)]
pub enum BoundedVerdict {
    /// No difference found on any tree within the bound.
    EquivalentUpTo {
        /// The exhaustive bound that was checked.
        nodes: usize,
    },
    /// A tree (and, for path queries, a witness pair) where the two
    /// queries differ.
    Inequivalent {
        /// The counterexample tree.
        tree: Tree,
        /// A pair in the symmetric difference (for path queries) or a
        /// node in it (for node queries, stored as `(v, v)`).
        witness: (NodeId, NodeId),
    },
}

impl BoundedVerdict {
    /// Whether the verdict is (bounded) equivalence.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, BoundedVerdict::EquivalentUpTo { .. })
    }
}

/// Checks equivalence of two path expressions on every tree with at most
/// `max_nodes` nodes over `labels` labels.
pub fn path_equiv_bounded(p: &RPath, q: &RPath, max_nodes: usize, labels: usize) -> BoundedVerdict {
    for t in enumerate_trees_up_to(max_nodes, labels) {
        let rp = twx_regxpath::eval_rel(&t, p);
        let rq = twx_regxpath::eval_rel(&t, q);
        if rp != rq {
            // find a differing pair
            for a in t.nodes() {
                for b in t.nodes() {
                    if rp.get(a, b) != rq.get(a, b) {
                        return BoundedVerdict::Inequivalent {
                            tree: t,
                            witness: (a, b),
                        };
                    }
                }
            }
            unreachable!("relations differ but no differing pair found");
        }
    }
    BoundedVerdict::EquivalentUpTo { nodes: max_nodes }
}

/// Checks equivalence of two node expressions on every tree with at most
/// `max_nodes` nodes over `labels` labels.
pub fn node_equiv_bounded(f: &RNode, g: &RNode, max_nodes: usize, labels: usize) -> BoundedVerdict {
    for t in enumerate_trees_up_to(max_nodes, labels) {
        let sf = twx_regxpath::eval_node(&t, f);
        let sg = twx_regxpath::eval_node(&t, g);
        if sf != sg {
            let v = t
                .nodes()
                .find(|&v| sf.contains(v) != sg.contains(v))
                .expect("sets differ");
            return BoundedVerdict::Inequivalent {
                tree: t,
                witness: (v, v),
            };
        }
    }
    BoundedVerdict::EquivalentUpTo { nodes: max_nodes }
}

/// Bounded satisfiability of a node expression: searches for a tree with
/// a node satisfying `f`.
pub fn node_sat_bounded(f: &RNode, max_nodes: usize, labels: usize) -> Option<Tree> {
    enumerate_trees_up_to(max_nodes, labels)
        .into_iter()
        .find(|t| !twx_regxpath::eval_node(t, f).is_empty())
}

/// Bounded containment `f ⊨ g` (at every node of every tree within the
/// bound); returns a countermodel otherwise.
pub fn node_contained_bounded(
    f: &RNode,
    g: &RNode,
    max_nodes: usize,
    labels: usize,
) -> Option<Tree> {
    node_sat_bounded(&f.clone().and(g.clone().not()), max_nodes, labels)
}

/// Exact satisfiability for downward-fragment Core XPath (re-exported
/// convenience over `twx-treeauto`).
pub use twx_treeauto::xpath_compile::{
    contains as downward_contains, equivalent as downward_equivalent,
    satisfiable as downward_satisfiable,
};

#[cfg(test)]
mod tests {
    use super::*;
    use twx_regxpath::ast::Axis;
    use twx_xtree::Label;

    #[test]
    fn quiz_equivalences_from_the_talk() {
        // ↓/↓⁺ ≡ ↓⁺/↓ ≡ ↓⁺/↓⁺ (as relations: depth difference ≥ 2)
        let d = || RPath::Axis(Axis::Down);
        let p1 = d().seq(d().plus());
        let p2 = d().plus().seq(d());
        let p3 = d().plus().seq(d().plus());
        assert!(path_equiv_bounded(&p1, &p2, 5, 2).is_equivalent());
        assert!(path_equiv_bounded(&p1, &p3, 5, 2).is_equivalent());
        // but ↓ ≢ ↓/↓
        let v = path_equiv_bounded(&d(), &d().seq(d()), 4, 1);
        assert!(!v.is_equivalent());
        if let BoundedVerdict::Inequivalent { tree, witness } = v {
            // the minimal countermodel is the 2-chain with pair (root, child)
            assert_eq!(tree.len(), 2);
            assert_eq!(witness, (NodeId(0), NodeId(1)));
        }
    }

    #[test]
    fn filtered_quiz_inequivalence() {
        // with filters the variants differ: ↓[p]/↓⁺ vs ↓⁺[p]/↓ test the
        // label at different depths
        let p = RNode::Label(Label(0));
        let e1 = RPath::Axis(Axis::Down)
            .filter(p.clone())
            .seq(RPath::Axis(Axis::Down).plus());
        let e2 = RPath::Axis(Axis::Down)
            .plus()
            .filter(p)
            .seq(RPath::Axis(Axis::Down));
        let v = path_equiv_bounded(&e1, &e2, 4, 2);
        assert!(!v.is_equivalent());
    }

    #[test]
    fn node_equivalence_and_sat() {
        let has_child = RNode::some(RPath::Axis(Axis::Down));
        let has_desc = RNode::some(RPath::Axis(Axis::Down).plus());
        assert!(node_equiv_bounded(&has_child, &has_desc, 4, 2).is_equivalent());
        let unsat = RNode::Label(Label(0)).and(RNode::Label(Label(0)).not());
        assert!(node_sat_bounded(&unsat, 4, 2).is_none());
        let sat = RNode::Label(Label(1)).and(RNode::leaf());
        let w = node_sat_bounded(&sat, 3, 2).unwrap();
        assert!(!twx_regxpath::eval_node(&w, &sat).is_empty());
    }

    #[test]
    fn within_distinguishes() {
        // ⟨↑⟩ vs W⟨↑⟩: inequivalent (within cuts the parent off)
        let f = RNode::some(RPath::Axis(Axis::Up));
        let v = node_equiv_bounded(&f, &f.clone().within(), 3, 1);
        assert!(!v.is_equivalent());
        if let BoundedVerdict::Inequivalent { tree, .. } = v {
            assert_eq!(tree.len(), 2); // minimal countermodel: a 2-chain
        }
    }

    #[test]
    fn containment_with_countermodel() {
        let f = RNode::some(RPath::Axis(Axis::Down));
        let g = RNode::some(RPath::Axis(Axis::Down).filter(RNode::Label(Label(0))));
        // f ⊭ g over 2 labels: a child may be labelled otherwise
        let cm = node_contained_bounded(&f, &g, 3, 2).expect("countermodel");
        let sf = twx_regxpath::eval_node(&cm, &f);
        let sg = twx_regxpath::eval_node(&cm, &g);
        assert!(sf.iter().any(|v| !sg.contains(v)));
        // g ⊨ f always
        assert!(node_contained_bounded(&g, &f, 4, 2).is_none());
    }

    #[test]
    fn exact_and_bounded_agree_on_downward_fragment() {
        use twx_corexpath::parser::parse_node_expr;
        use twx_xtree::Alphabet;
        let mut ab = Alphabet::from_names(["a0", "a1"]);
        let pairs = [
            ("<down>", "<down+>", true),
            ("<down[a1]>", "<down+[a1]>", false),
            ("a0", "!a1", true), // unique labelling over 2 labels!
        ];
        for (fs, gs, _expected) in pairs {
            let f = parse_node_expr(fs, &mut ab).unwrap();
            let g = parse_node_expr(gs, &mut ab).unwrap();
            let exact = downward_equivalent(&f, &g, 2).unwrap();
            let bounded = node_equiv_bounded(
                &crate::from_core::core_node_to_regular(&f),
                &crate::from_core::core_node_to_regular(&g),
                4,
                2,
            )
            .is_equivalent();
            assert_eq!(exact, bounded, "{fs} vs {gs}");
        }
    }
}

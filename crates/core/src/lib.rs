//! # twx-core — the equivalence triangle
//!
//! The paper's contribution: *effective* translations establishing
//!
//! ```text
//!    Regular XPath(W)  ≡  FO(MTC)  ≡  nested tree walking automata
//! ```
//!
//! over finite sibling-ordered labelled trees, plus the deciders and the
//! differential-testing harness that machine-check every translation on
//! exhaustive bounded tree domains.
//!
//! | module | direction | status |
//! |---|---|---|
//! | [`from_core`] | Core XPath → Regular XPath | total, exact |
//! | [`to_core`] | Regular XPath → Core XPath | partial (Core fragment), exact |
//! | [`to_fotc`] | Regular XPath(W) → FO(MTC) | total, exact |
//! | [`from_fotc`] | FO(MTC) → Regular XPath(W) | guarded fragment (see below) |
//! | [`to_twa`] | Regular XPath(W) → NTWA | total, exact (Thompson) |
//! | [`to_regxpath`] | NTWA → Regular XPath(W) | total, exact (Kleene) |
//!
//! The hard direction FO(MTC) → NTWA of the paper rests on a
//! super-exponential complementation construction; as recorded in
//! `DESIGN.md`, this reproduction implements the *guarded fragment*
//! constructively ([`from_fotc`]) and validates the full equivalence
//! statement empirically: for both encodings of each random query the
//! evaluators agree on every tree of the bounded domains ([`diff`]).
//!
//! [`decide`] hosts equivalence/containment/satisfiability decision
//! procedures: exact automata-based decisions for the downward fragment
//! (via `twx-treeauto`) and bounded-domain decisions with counterexample
//! extraction for full Regular XPath(W).

pub mod decide;
pub mod diff;
pub mod from_core;
pub mod from_fotc;
pub mod to_core;
pub mod to_fotc;
pub mod to_regxpath;
pub mod to_twa;

pub use from_core::{core_node_to_regular, core_path_to_regular};
pub use from_fotc::{binary_to_rpath, unary_to_rnode};
pub use to_core::{is_core_expressible, lower_rnode, lower_rpath};
pub use to_fotc::{rnode_to_formula, rpath_to_formula};
pub use to_regxpath::{ntwa_to_rpath, ntwa_to_rpath_raw};
pub use to_twa::{rnode_to_ntwa, rpath_to_ntwa};

//! Differential-testing harness: the empirical backbone of the
//! equivalence theorem (experiment E4).
//!
//! Given a query in any of the three formalisms, [`TriQuery`] carries its
//! images under the implemented translations; [`check_tri`] evaluates all
//! of them on a tree corpus and reports the first offending tree together
//! with every rendition pair that disagrees on it.
//! `twx-core`'s tests and the E4 harness both drive these functions; a
//! translation bug anywhere in the triangle surfaces as a counterexample
//! tree here.

use crate::from_fotc::binary_to_rpath;
use crate::to_fotc::rpath_to_formula;
use crate::to_regxpath::ntwa_to_rpath;
use crate::to_twa::rpath_to_ntwa;
use twx_fotc::ast::Formula;
use twx_fotc::eval::eval_binary;
use twx_regxpath::RPath;
use twx_twa::machine::Ntwa;
use twx_xtree::generate::{enumerate_trees_up_to, random_tree, Shape};
use twx_xtree::Tree;

/// A binary query rendered in all three formalisms.
#[derive(Debug)]
pub struct TriQuery {
    /// The Regular XPath(W) form.
    pub xpath: RPath,
    /// The FO(MTC) form with free variables `(0, 1)`.
    pub logic: Formula,
    /// The nested tree walking automaton form.
    pub automaton: Ntwa,
    /// Regular XPath recovered from the automaton (Kleene direction).
    pub xpath_back: RPath,
    /// Regular XPath recovered from the logic (guarded fragment), when the
    /// formula lands in it.
    pub xpath_from_logic: Option<RPath>,
}

impl TriQuery {
    /// Builds all renditions from a Regular XPath(W) expression.
    pub fn from_xpath(p: &RPath) -> TriQuery {
        let logic = rpath_to_formula(p, 0, 1, 2);
        let automaton = rpath_to_ntwa(p);
        let xpath_back = ntwa_to_rpath(&automaton);
        let xpath_from_logic = binary_to_rpath(&logic, 0, 1).ok();
        TriQuery {
            xpath: p.clone(),
            logic,
            automaton,
            xpath_back,
            xpath_from_logic,
        }
    }
}

/// A disagreement found by [`check_tri`].
#[derive(Debug)]
pub struct Mismatch {
    /// Every rendition pair that disagreed on [`Mismatch::tree`] — all of
    /// them, not just the first, so a harness can name the odd-one-out
    /// route (e.g. only "xpath vs NTWA" failing fingers the automaton).
    pub disagreeing: Vec<&'static str>,
    /// The offending tree.
    pub tree: Tree,
}

impl Mismatch {
    /// Human-readable summary of the disagreeing routes.
    pub fn describe(&self) -> String {
        self.disagreeing.join(", ")
    }
}

/// Evaluates every rendition of `q` on every tree of `corpus`; returns the
/// first offending tree with **all** renditions that disagree on it, or
/// `None` if the triangle commutes on the corpus.
pub fn check_tri<'a, I: IntoIterator<Item = &'a Tree>>(
    q: &TriQuery,
    corpus: I,
) -> Option<Mismatch> {
    for t in corpus {
        let reference = twx_regxpath::eval_rel(t, &q.xpath);
        let mut disagreeing = Vec::new();
        if eval_binary(t, &q.logic, 0, 1) != reference {
            disagreeing.push("xpath vs FO(MTC)");
        }
        if twx_twa::eval::eval_rel(t, &q.automaton) != reference {
            disagreeing.push("xpath vs NTWA");
        }
        if twx_regxpath::eval_rel(t, &q.xpath_back) != reference {
            disagreeing.push("xpath vs Kleene(Thompson(xpath))");
        }
        if let Some(back) = &q.xpath_from_logic {
            if twx_regxpath::eval_rel(t, back) != reference {
                disagreeing.push("xpath vs guarded-FO round trip");
            }
        }
        if !disagreeing.is_empty() {
            return Some(Mismatch {
                disagreeing,
                tree: t.clone(),
            });
        }
    }
    None
}

/// The standard corpus: every tree with at most `exhaustive_n` nodes over
/// `labels` labels, plus `random_n` random trees of each workload family.
pub fn standard_corpus(
    exhaustive_n: usize,
    labels: usize,
    random_n: usize,
    seed: u64,
) -> Vec<Tree> {
    use twx_xtree::rng::SplitMix64 as StdRng;
    let mut corpus = enumerate_trees_up_to(exhaustive_n, labels);
    let mut rng = StdRng::seed_from_u64(seed);
    for shape in [
        Shape::Recursive,
        Shape::Deep(2),
        Shape::Bounded(3),
        Shape::Wide,
        Shape::DocumentLike,
    ] {
        for i in 0..random_n {
            corpus.push(random_tree(shape, 3 + (i % 10), labels, &mut rng));
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_regxpath::generate::{random_rpath, RGenConfig};
    use twx_xtree::rng::SplitMix64 as StdRng;

    /// E4 in miniature: the triangle commutes for a fuzzed corpus of
    /// queries on the standard tree corpus.
    #[test]
    fn triangle_commutes() {
        let corpus = standard_corpus(4, 2, 2, 7);
        let mut rng = StdRng::seed_from_u64(2026);
        let cfg = RGenConfig::default();
        for _ in 0..10 {
            let p = random_rpath(&cfg, 3, &mut rng);
            let q = TriQuery::from_xpath(&p);
            if let Some(m) = check_tri(&q, &corpus) {
                panic!(
                    "triangle broken ({}) for {p:?} on {:?}",
                    m.describe(),
                    m.tree
                );
            }
        }
    }

    #[test]
    fn corpus_shape() {
        let corpus = standard_corpus(3, 2, 1, 1);
        // 2 + 4 + 16 exhaustive + 5 random
        assert_eq!(corpus.len(), 2 + 4 + 16 + 5);
        for t in &corpus {
            assert!(t.validate().is_ok());
        }
    }

    #[test]
    fn w_free_queries_land_in_guarded_fragment() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = RGenConfig {
            within: false,
            ..RGenConfig::default()
        };
        for _ in 0..20 {
            let p = random_rpath(&cfg, 3, &mut rng);
            let q = TriQuery::from_xpath(&p);
            assert!(
                q.xpath_from_logic.is_some(),
                "W-free image fell outside the guarded fragment: {p:?}"
            );
        }
    }
}

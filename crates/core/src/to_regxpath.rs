//! Nested tree walking automata → Regular XPath(W) (Kleene direction).
//!
//! A walking automaton is an NFA over the move alphabet, so Kleene's
//! state-elimination algorithm applies verbatim once each transition is
//! rendered as a path expression:
//!
//! * moves: `Stay → ε`, `Up → up`, `AnyChild → down`,
//!   `FirstChild → down/?(¬⟨left⟩)`, `LastChild → down/?(¬⟨right⟩)`,
//!   `NextSib → right`, `PrevSib → left`;
//! * local guard atoms become node tests (`root = ¬⟨up⟩` etc.);
//! * a **global** nested invocation of sub-automaton `B` becomes
//!   `⟨tr(B)⟩` (recursively translating `B`), a **subtree-scoped** one
//!   becomes `W ⟨tr(B)⟩` — this is where the `W` operator is *necessary*:
//!   without it the subtree test of a nested automaton has no XPath
//!   counterpart, which is exactly the paper's motivation for
//!   Regular XPath(W) over plain Regular XPath.
//!
//! State elimination is worst-case exponential in the number of states
//! (measured in experiment E3); the output is post-simplified.

use twx_regxpath::ast::Axis;
use twx_regxpath::simplify::simplify_rpath;
use twx_regxpath::{RNode, RPath};
use twx_twa::machine::{Move, Ntwa, Scope, TestAtom};

/// Renders a move as a path expression.
fn move_expr(mv: Move) -> RPath {
    match mv {
        Move::Stay => RPath::Eps,
        Move::Up => RPath::Axis(Axis::Up),
        Move::AnyChild => RPath::Axis(Axis::Down),
        Move::FirstChild => {
            RPath::Axis(Axis::Down).seq(RPath::test(RNode::some(RPath::Axis(Axis::Left)).not()))
        }
        Move::LastChild => {
            RPath::Axis(Axis::Down).seq(RPath::test(RNode::some(RPath::Axis(Axis::Right)).not()))
        }
        Move::NextSib => RPath::Axis(Axis::Right),
        Move::PrevSib => RPath::Axis(Axis::Left),
    }
}

/// Renders one guard atom as a node expression.
fn atom_expr(atom: &TestAtom, subs: &[Ntwa]) -> RNode {
    match atom {
        TestAtom::Label(l) => RNode::Label(*l),
        TestAtom::NotLabel(l) => RNode::Label(*l).not(),
        TestAtom::Root(true) => RNode::root(),
        TestAtom::Root(false) => RNode::some(RPath::Axis(Axis::Up)),
        TestAtom::Leaf(true) => RNode::leaf(),
        TestAtom::Leaf(false) => RNode::some(RPath::Axis(Axis::Down)),
        TestAtom::First(true) => RNode::some(RPath::Axis(Axis::Left)).not(),
        TestAtom::First(false) => RNode::some(RPath::Axis(Axis::Left)),
        TestAtom::Last(true) => RNode::some(RPath::Axis(Axis::Right)).not(),
        TestAtom::Last(false) => RNode::some(RPath::Axis(Axis::Right)),
        TestAtom::Nested {
            automaton,
            negated,
            scope,
        } => {
            let sub = ntwa_to_rpath_raw(&subs[*automaton as usize]);
            let invoked = match scope {
                Scope::Global => RNode::some(sub),
                Scope::Subtree => RNode::some(sub).within(),
            };
            if *negated {
                invoked.not()
            } else {
                invoked
            }
        }
    }
}

/// Renders a whole guard (conjunction of atoms) as a node expression.
fn guard_expr(guard: &[TestAtom], subs: &[Ntwa]) -> RNode {
    guard
        .iter()
        .map(|a| atom_expr(a, subs))
        .reduce(|acc, g| acc.and(g))
        .unwrap_or(RNode::True)
}

/// Translates an NTWA to a Regular XPath(W) path expression with the same
/// relation, **without** final simplification (useful to measure the raw
/// Kleene blow-up in E3).
pub fn ntwa_to_rpath_raw(a: &Ntwa) -> RPath {
    // generalised-NFA matrix over n+2 states: n original plus fresh
    // start (index n) and end (index n+1)
    let n = a.top.n_states as usize;
    let start = n;
    let end = n + 1;
    let mut m: Vec<Vec<Option<RPath>>> = vec![vec![None; n + 2]; n + 2];

    let add = |m: &mut Vec<Vec<Option<RPath>>>, i: usize, j: usize, e: RPath| {
        m[i][j] = Some(match m[i][j].take() {
            Some(old) => old.union(e),
            None => e,
        });
    };

    for tr in &a.top.transitions {
        let g = guard_expr(&tr.guard, &a.subs);
        let e = if matches!(g, RNode::True) {
            move_expr(tr.mv)
        } else {
            RPath::test(g).seq(move_expr(tr.mv))
        };
        add(&mut m, tr.from as usize, tr.to as usize, e);
    }
    add(&mut m, start, a.top.initial as usize, RPath::Eps);
    for &q in &a.top.accepting {
        add(&mut m, q as usize, end, RPath::Eps);
    }

    // eliminate original states one by one
    for k in 0..n {
        let self_loop = m[k][k].take();
        let star: Option<RPath> = self_loop.map(|e| e.star());
        // collect incoming and outgoing edges of k
        let preds: Vec<(usize, RPath)> = (0..n + 2)
            .filter(|&i| i != k)
            .filter_map(|i| m[i][k].clone().map(|e| (i, e)))
            .collect();
        let succs: Vec<(usize, RPath)> = (0..n + 2)
            .filter(|&j| j != k)
            .filter_map(|j| m[k][j].clone().map(|e| (j, e)))
            .collect();
        for (i, ein) in &preds {
            for (j, eout) in &succs {
                let mut path = ein.clone();
                if let Some(s) = &star {
                    path = path.seq(s.clone());
                }
                path = path.seq(eout.clone());
                add(&mut m, *i, *j, path);
            }
        }
        for row in m.iter_mut() {
            row[k] = None;
        }
        for cell in m[k].iter_mut() {
            *cell = None;
        }
    }

    m[start][end]
        .take()
        .unwrap_or_else(|| RPath::test(RNode::fals()))
}

/// Translates an NTWA to a simplified Regular XPath(W) path expression
/// with the same relation.
///
/// ```
/// use twx_core::ntwa_to_rpath;
/// use twx_twa::machine::{Move, Ntwa, Twa};
/// use twx_regxpath::{ast::Axis, RPath};
///
/// // a one-state loop on AnyChild is ↓* … up to simplification
/// let walker = Ntwa::flat(Twa {
///     n_states: 1,
///     initial: 0,
///     accepting: vec![0],
///     transitions: vec![twx_twa::machine::Transition {
///         from: 0, guard: vec![], mv: Move::AnyChild, to: 0,
///     }],
/// });
/// assert_eq!(ntwa_to_rpath(&walker), RPath::Axis(Axis::Down).star());
/// ```
pub fn ntwa_to_rpath(a: &Ntwa) -> RPath {
    simplify_rpath(&ntwa_to_rpath_raw(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_twa::rpath_to_ntwa;
    use twx_regxpath::generate::{random_rpath, RGenConfig};
    use twx_twa::eval::eval_rel;
    use twx_twa::generate::{random_ntwa, TGenConfig};
    use twx_twa::machine::{Transition, Twa};
    use twx_xtree::generate::{enumerate_trees_up_to, random_tree, Shape};
    use twx_xtree::rng::SplitMix64 as StdRng;

    /// Theorem (NTWA ⊆ Regular XPath(W)), machine-checked on random
    /// automata: the Kleene translation yields the same relation.
    #[test]
    fn kleene_translation_preserves_relations() {
        let trees = enumerate_trees_up_to(4, 2);
        let mut rng = StdRng::seed_from_u64(1968);
        let cfg = TGenConfig {
            states: 3,
            transitions: 5,
            ..TGenConfig::default()
        };
        for _ in 0..20 {
            let a = random_ntwa(&cfg, &mut rng);
            let p = ntwa_to_rpath(&a);
            for t in &trees {
                assert_eq!(
                    eval_rel(t, &a),
                    twx_regxpath::eval_rel(t, &p),
                    "mismatch for {a:?} → {p:?} on {t:?}"
                );
            }
        }
    }

    /// Round trip: expression → automaton → expression stays equivalent.
    #[test]
    fn roundtrip_through_automata() {
        let trees = enumerate_trees_up_to(4, 2);
        let mut rng = StdRng::seed_from_u64(314);
        let cfg = RGenConfig::default();
        for round in 0..15 {
            let p = random_rpath(&cfg, 3, &mut rng);
            let a = rpath_to_ntwa(&p);
            let back = ntwa_to_rpath(&a);
            let extra = random_tree(Shape::Recursive, 3 + round % 6, 2, &mut rng);
            for t in trees.iter().chain(std::iter::once(&extra)) {
                assert_eq!(
                    twx_regxpath::eval_rel(t, &p),
                    twx_regxpath::eval_rel(t, &back),
                    "roundtrip broke {p:?} → {back:?} on {t:?}"
                );
            }
        }
    }

    #[test]
    fn single_moves_translate_cleanly() {
        for (mv, expect) in [
            (Move::Stay, RPath::Eps),
            (Move::Up, RPath::Axis(Axis::Up)),
            (Move::AnyChild, RPath::Axis(Axis::Down)),
            (Move::NextSib, RPath::Axis(Axis::Right)),
            (Move::PrevSib, RPath::Axis(Axis::Left)),
        ] {
            let a = Ntwa::flat(Twa::single_move(vec![], mv));
            assert_eq!(ntwa_to_rpath(&a), expect, "{mv:?}");
        }
    }

    #[test]
    fn dead_automaton_translates_to_empty() {
        let a = Ntwa::flat(Twa {
            n_states: 2,
            initial: 0,
            accepting: vec![1],
            transitions: vec![],
        });
        let p = ntwa_to_rpath(&a);
        assert!(twx_regxpath::simplify::is_empty_path(&p), "{p:?}");
    }

    #[test]
    fn first_child_move_roundtrip() {
        let a = Ntwa::flat(Twa {
            n_states: 2,
            initial: 0,
            accepting: vec![1],
            transitions: vec![Transition {
                from: 0,
                guard: vec![],
                mv: Move::FirstChild,
                to: 1,
            }],
        });
        let p = ntwa_to_rpath(&a);
        let t = twx_xtree::parse::parse_sexp("(a b c)").unwrap().tree;
        let rel = twx_regxpath::eval_rel(&t, &p);
        assert!(rel.get(twx_xtree::NodeId(0), twx_xtree::NodeId(1)));
        assert!(!rel.get(twx_xtree::NodeId(0), twx_xtree::NodeId(2)));
        assert_eq!(rel.count(), 1);
    }
}

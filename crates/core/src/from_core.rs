//! Embedding Core XPath into Regular XPath.
//!
//! Core XPath's transitive steps `s⁺` become `s/s*`; everything else is a
//! constructor-by-constructor image. The embedding is exact: the two
//! evaluators agree on every tree (checked below and in E4).

use twx_corexpath::ast::{NodeExpr, PathExpr, Step};
use twx_regxpath::{RNode, RPath};

/// Translates a Core XPath path expression into Regular XPath.
pub fn core_path_to_regular(p: &PathExpr) -> RPath {
    match p {
        PathExpr::Step(Step { axis, closure }) => {
            let a = RPath::Axis(*axis);
            if *closure {
                a.plus()
            } else {
                a
            }
        }
        PathExpr::Slf => RPath::Eps,
        PathExpr::Seq(a, b) => core_path_to_regular(a).seq(core_path_to_regular(b)),
        PathExpr::Union(a, b) => core_path_to_regular(a).union(core_path_to_regular(b)),
        PathExpr::Filter(a, f) => core_path_to_regular(a).filter(core_node_to_regular(f)),
    }
}

/// Translates a Core XPath node expression into Regular XPath.
pub fn core_node_to_regular(f: &NodeExpr) -> RNode {
    match f {
        NodeExpr::True => RNode::True,
        NodeExpr::Label(l) => RNode::Label(*l),
        NodeExpr::Some(a) => RNode::some(core_path_to_regular(a)),
        NodeExpr::Not(g) => core_node_to_regular(g).not(),
        NodeExpr::And(g, h) => core_node_to_regular(g).and(core_node_to_regular(h)),
        NodeExpr::Or(g, h) => core_node_to_regular(g).or(core_node_to_regular(h)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_corexpath::generate::{random_node_expr, random_path_expr, GenConfig};
    use twx_xtree::generate::{enumerate_trees_up_to, random_tree, Shape};
    use twx_xtree::rng::SplitMix64 as StdRng;

    /// The embedding preserves semantics on bounded domains and on random
    /// trees — the Core XPath ⊆ Regular XPath inclusion, machine-checked.
    #[test]
    fn embedding_preserves_semantics() {
        let trees = enumerate_trees_up_to(4, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GenConfig {
            labels: 2,
            ..GenConfig::default()
        };
        for round in 0..30 {
            let p = random_path_expr(&cfg, 4, &mut rng);
            let rp = core_path_to_regular(&p);
            let f = random_node_expr(&cfg, 4, &mut rng);
            let rf = core_node_to_regular(&f);
            let extra = random_tree(Shape::Recursive, 5 + round % 8, 2, &mut rng);
            for t in trees.iter().chain(std::iter::once(&extra)) {
                let core_rel = twx_corexpath::eval_path_rel(t, &p);
                let reg_rel = twx_regxpath::eval_rel(t, &rp);
                assert_eq!(core_rel, reg_rel, "path mismatch for {p:?} on {t:?}");
                assert_eq!(
                    twx_corexpath::eval_node(t, &f),
                    twx_regxpath::eval_node(t, &rf),
                    "node mismatch for {f:?} on {t:?}"
                );
            }
        }
    }

    #[test]
    fn closure_becomes_plus() {
        use twx_corexpath::ast::Axis;
        let p = PathExpr::plus(Axis::Down);
        assert_eq!(core_path_to_regular(&p), RPath::Axis(Axis::Down).plus());
    }
}

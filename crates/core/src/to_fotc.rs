//! Regular XPath(W) → FO(MTC): the easy inclusion of the paper's
//! equivalence, implemented in full.
//!
//! * A path expression `A` becomes a formula `TR_A(x, y)` with two free
//!   variables defining `[[A]]`;
//! * a node expression `φ` becomes `TR_φ(x)` with one free variable;
//! * `A*` becomes the monadic transitive closure
//!   `[TC_{u,v} TR_A(u, v)](x, y)`;
//! * `W φ` becomes the **relativisation** of `TR_φ` to the subtree of `x`:
//!   every quantifier is restricted to descendants-or-self of `x`, and
//!   every `TC` step is restricted at both ends — the logical trick that
//!   the `within` operator mirrors.
//!
//! The translation is linear except for relativisation (which multiplies
//! by the quantifier count). Exactness is machine-checked on bounded
//! domains by this module's tests (and E4/E5).

use twx_fotc::ast::{Formula, Var};
use twx_obs::{self as obs, Counter};
use twx_regxpath::ast::Axis;
use twx_regxpath::{RNode, RPath};

/// A fresh-variable allocator.
struct Fresh {
    next: Var,
}

impl Fresh {
    fn var(&mut self) -> Var {
        let v = self.next;
        self.next += 1;
        v
    }
}

/// Translates a path expression into a formula with free variables
/// `(x, y)` defining its relation. Bound variables are allocated from
/// `first_fresh` upwards; pass a value greater than any variable you care
/// about (callers usually pass `2` with `x = 0`, `y = 1`).
/// ```
/// use twx_core::rpath_to_formula;
/// use twx_regxpath::{ast::Axis, RPath};
///
/// // ↓* becomes a monadic transitive closure
/// let f = rpath_to_formula(&RPath::Axis(Axis::Down).star(), 0, 1, 2);
/// assert_eq!(f.tc_depth(), 1);
/// ```
pub fn rpath_to_formula(p: &RPath, x: Var, y: Var, first_fresh: Var) -> Formula {
    let mut fresh = Fresh { next: first_fresh };
    let f = tr_path(p, x, y, &mut fresh);
    obs::add(Counter::CompiledFormulaSize, f.size() as u64);
    f
}

/// Translates a node expression into a formula with free variable `x`.
pub fn rnode_to_formula(f: &RNode, x: Var, first_fresh: Var) -> Formula {
    let mut fresh = Fresh { next: first_fresh };
    let out = tr_node(f, x, &mut fresh);
    obs::add(Counter::CompiledFormulaSize, out.size() as u64);
    out
}

fn tr_path(p: &RPath, x: Var, y: Var, fresh: &mut Fresh) -> Formula {
    match p {
        RPath::Axis(Axis::Down) => Formula::Child(x, y),
        RPath::Axis(Axis::Up) => Formula::Child(y, x),
        RPath::Axis(Axis::Right) => Formula::NextSib(x, y),
        RPath::Axis(Axis::Left) => Formula::NextSib(y, x),
        RPath::Eps => Formula::Eq(x, y),
        RPath::Test(f) => Formula::Eq(x, y).and(tr_node(f, x, fresh)),
        RPath::Seq(a, b) => {
            let z = fresh.var();
            let fa = tr_path(a, x, z, fresh);
            let fb = tr_path(b, z, y, fresh);
            fa.and(fb).exists(z)
        }
        RPath::Union(a, b) => tr_path(a, x, y, fresh).or(tr_path(b, x, y, fresh)),
        RPath::Star(a) => {
            let u = fresh.var();
            let v = fresh.var();
            let step = tr_path(a, u, v, fresh);
            step.tc(u, v, x, y)
        }
        RPath::Filter(a, f) => tr_path(a, x, y, fresh).and(tr_node(f, y, fresh)),
    }
}

fn tr_node(f: &RNode, x: Var, fresh: &mut Fresh) -> Formula {
    match f {
        RNode::True => Formula::Eq(x, x),
        RNode::Label(l) => Formula::Label(*l, x),
        RNode::Some(a) => {
            let y = fresh.var();
            tr_path(a, x, y, fresh).exists(y)
        }
        RNode::Not(g) => tr_node(g, x, fresh).not(),
        RNode::And(g, h) => tr_node(g, x, fresh).and(tr_node(h, x, fresh)),
        RNode::Or(g, h) => tr_node(g, x, fresh).or(tr_node(h, x, fresh)),
        RNode::Within(g) => {
            let inner = tr_node(g, x, fresh);
            relativize(&inner, x, fresh)
        }
    }
}

/// Restricts `f` to the subtree of `root`: quantifiers range over
/// descendants-or-self of `root`, and `TC` steps stay inside the subtree.
///
/// Atomic relations need no rewriting: when both endpoints lie in the
/// subtree, `child` and `nextsib` agree with their restrictions (the
/// extracted subtree keeps exactly the edges between its nodes).
fn relativize(f: &Formula, root: Var, fresh: &mut Fresh) -> Formula {
    match f {
        Formula::Label(..) | Formula::Eq(..) | Formula::Child(..) | Formula::NextSib(..) => {
            f.clone()
        }
        Formula::Not(g) => relativize(g, root, fresh).not(),
        Formula::And(g, h) => relativize(g, root, fresh).and(relativize(h, root, fresh)),
        Formula::Or(g, h) => relativize(g, root, fresh).or(relativize(h, root, fresh)),
        Formula::Exists(v, g) => {
            let body = relativize(g, root, fresh);
            in_subtree(root, *v, fresh).and(body).exists(*v)
        }
        Formula::Forall(v, g) => {
            let body = relativize(g, root, fresh);
            in_subtree(root, *v, fresh).implies(body).forall(*v)
        }
        Formula::Tc {
            x,
            y,
            phi,
            from,
            to,
        } => {
            let step = relativize(phi, root, fresh);
            let bounded = in_subtree(root, *x, fresh)
                .and(in_subtree(root, *y, fresh))
                .and(step);
            bounded.tc(*x, *y, *from, *to)
        }
    }
}

/// `descendant-or-self(root, v)` via TC of `child`.
fn in_subtree(root: Var, v: Var, fresh: &mut Fresh) -> Formula {
    let a = fresh.var();
    let b = fresh.var();
    Formula::Child(a, b).tc(a, b, root, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_fotc::eval::{eval_binary, eval_unary};
    use twx_regxpath::generate::{random_rnode, random_rpath, RGenConfig};
    use twx_xtree::generate::{enumerate_trees_up_to, random_tree, Shape};
    use twx_xtree::rng::SplitMix64 as StdRng;

    /// Theorem (Regular XPath(W) ⊆ FO(MTC)): the translated formula
    /// defines exactly the same relation/set — exhaustively on trees ≤ 4
    /// nodes, fuzzed over expressions.
    #[test]
    fn translation_preserves_semantics() {
        let trees = enumerate_trees_up_to(4, 2);
        let mut rng = StdRng::seed_from_u64(2008);
        let cfg = RGenConfig::default();
        for _ in 0..25 {
            let p = random_rpath(&cfg, 3, &mut rng);
            let fp = rpath_to_formula(&p, 0, 1, 2);
            let f = random_rnode(&cfg, 3, &mut rng);
            let ff = rnode_to_formula(&f, 0, 1);
            for t in &trees {
                assert_eq!(
                    twx_regxpath::eval_rel(t, &p),
                    eval_binary(t, &fp, 0, 1),
                    "path mismatch: {p:?} on {t:?}"
                );
                assert_eq!(
                    twx_regxpath::eval_node(t, &f),
                    eval_unary(t, &ff, 0),
                    "node mismatch: {f:?} on {t:?}"
                );
            }
        }
    }

    /// `W` specifically, on deeper random trees (the relativisation is the
    /// delicate clause).
    #[test]
    fn within_relativisation_is_exact() {
        let mut rng = StdRng::seed_from_u64(77);
        let cfg = RGenConfig::default();
        for round in 0..20 {
            let f = random_rnode(&cfg, 3, &mut rng).within();
            let ff = rnode_to_formula(&f, 0, 1);
            let t = random_tree(Shape::Recursive, 2 + round % 7, 2, &mut rng);
            assert_eq!(
                twx_regxpath::eval_node(&t, &f),
                eval_unary(&t, &ff, 0),
                "within mismatch: {f:?} on {t:?}"
            );
        }
    }

    #[test]
    fn star_becomes_tc() {
        let p = RPath::Axis(Axis::Down).star();
        let f = rpath_to_formula(&p, 0, 1, 2);
        assert_eq!(f.tc_depth(), 1);
        assert_eq!(f.free_vars().into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn translation_has_expected_free_vars() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = RGenConfig::default();
        for _ in 0..50 {
            let p = random_rpath(&cfg, 4, &mut rng);
            let f = rpath_to_formula(&p, 0, 1, 2);
            for v in f.free_vars() {
                assert!(v < 2, "leaked variable x{v} in translation of {p:?}");
            }
            let g = random_rnode(&cfg, 4, &mut rng);
            let fg = rnode_to_formula(&g, 0, 1);
            for v in fg.free_vars() {
                assert!(v < 1, "leaked variable x{v} in translation of {g:?}");
            }
        }
    }
}

//! The partial inverse of the Core XPath embedding: recognising when a
//! Regular XPath(W) expression lies in the Core fragment.
//!
//! Regular XPath strictly extends Core XPath — `(↓/→)*` and `W` have no
//! Core counterpart — but many expressions produced by the Kleene
//! translation or by hand *are* Core-expressible: stars that apply to a
//! single axis (`s*`, recognised also in the unfolded forms `s/s*` and
//! `s*/s`) become `. ∪ s⁺` / `s⁺`. This module lowers such expressions
//! back, which matters in practice because the Core evaluator is the
//! fastest of the stack and the axiomatic rewriter only speaks Core.
//!
//! `lower_rpath ∘ core_path_to_regular = id` up to the `s⁺ = s/s*`
//! unfolding (tested below as semantic equality plus success-rate
//! assertions).

use twx_corexpath::ast::{NodeExpr, PathExpr};
use twx_regxpath::{RNode, RPath};

/// Error: the expression uses features outside Core XPath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotCore(pub String);

impl std::fmt::Display for NotCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "not Core-expressible: {}", self.0)
    }
}

impl std::error::Error for NotCore {}

fn reject<T>(why: impl Into<String>) -> Result<T, NotCore> {
    Err(NotCore(why.into()))
}

/// Lowers a Regular XPath path expression to Core XPath when possible.
pub fn lower_rpath(p: &RPath) -> Result<PathExpr, NotCore> {
    match p {
        RPath::Axis(a) => Ok(PathExpr::axis(*a)),
        RPath::Eps => Ok(PathExpr::Slf),
        RPath::Test(f) => Ok(PathExpr::Slf.filter(lower_rnode(f)?)),
        RPath::Seq(a, b) => {
            // recognise s/s* and s*/s as s⁺ before generic lowering
            if let (RPath::Axis(x), RPath::Star(inner)) = (&**a, &**b) {
                if **inner == RPath::Axis(*x) {
                    return Ok(PathExpr::plus(*x));
                }
            }
            if let (RPath::Star(inner), RPath::Axis(x)) = (&**a, &**b) {
                if **inner == RPath::Axis(*x) {
                    return Ok(PathExpr::plus(*x));
                }
            }
            Ok(lower_rpath(a)?.seq(lower_rpath(b)?))
        }
        RPath::Union(a, b) => Ok(lower_rpath(a)?.union(lower_rpath(b)?)),
        RPath::Star(inner) => match &**inner {
            // s* = . ∪ s⁺
            RPath::Axis(a) => Ok(PathExpr::Slf.union(PathExpr::plus(*a))),
            other => reject(format!("star over a non-axis expression: {other:?}")),
        },
        RPath::Filter(a, f) => Ok(lower_rpath(a)?.filter(lower_rnode(f)?)),
    }
}

/// Lowers a Regular XPath node expression to Core XPath when possible.
pub fn lower_rnode(f: &RNode) -> Result<NodeExpr, NotCore> {
    match f {
        RNode::True => Ok(NodeExpr::True),
        RNode::Label(l) => Ok(NodeExpr::Label(*l)),
        RNode::Some(a) => Ok(NodeExpr::some(lower_rpath(a)?)),
        RNode::Not(g) => Ok(lower_rnode(g)?.not()),
        RNode::And(g, h) => Ok(lower_rnode(g)?.and(lower_rnode(h)?)),
        RNode::Or(g, h) => Ok(lower_rnode(g)?.or(lower_rnode(h)?)),
        RNode::Within(_) => reject("the W operator has no Core XPath counterpart"),
    }
}

/// Whether a path expression lies in the Core fragment.
pub fn is_core_expressible(p: &RPath) -> bool {
    lower_rpath(p).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_core::core_path_to_regular;
    use twx_corexpath::generate::{random_path_expr, GenConfig};
    use twx_regxpath::ast::Axis;
    use twx_xtree::generate::enumerate_trees_up_to;
    use twx_xtree::rng::SplitMix64 as StdRng;

    /// Round trip from the Core side: embed, lower, compare semantics.
    #[test]
    fn roundtrip_from_core() {
        let trees = enumerate_trees_up_to(4, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GenConfig {
            labels: 2,
            ..GenConfig::default()
        };
        for _ in 0..40 {
            let core = random_path_expr(&cfg, 4, &mut rng);
            let reg = core_path_to_regular(&core);
            let back = lower_rpath(&reg)
                .unwrap_or_else(|e| panic!("embedding image not lowered: {e} for {core:?}"));
            for t in &trees {
                assert_eq!(
                    twx_corexpath::eval_path_rel(t, &core),
                    twx_corexpath::eval_path_rel(t, &back),
                    "lowering changed semantics of {core:?}"
                );
            }
        }
    }

    #[test]
    fn recognises_plus_patterns() {
        let d = || RPath::Axis(Axis::Down);
        // s/s* and s*/s both lower to s⁺
        assert_eq!(
            lower_rpath(&d().seq(d().star())).unwrap(),
            PathExpr::plus(Axis::Down)
        );
        assert_eq!(
            lower_rpath(&d().star().seq(d())).unwrap(),
            PathExpr::plus(Axis::Down)
        );
        // bare s* lowers to . ∪ s⁺
        assert_eq!(
            lower_rpath(&d().star()).unwrap(),
            PathExpr::Slf.union(PathExpr::plus(Axis::Down))
        );
    }

    #[test]
    fn rejects_proper_regular_features() {
        let d = || RPath::Axis(Axis::Down);
        let r = || RPath::Axis(Axis::Right);
        assert!(!is_core_expressible(&d().seq(r()).star()));
        assert!(lower_rnode(&RNode::True.within()).is_err());
        let e = lower_rpath(&d().seq(r()).star()).unwrap_err();
        assert!(e.to_string().contains("star over a non-axis"));
    }

    #[test]
    fn lowered_queries_run_on_the_fast_evaluator() {
        // end to end: a Regular XPath query that happens to be Core gets
        // the GKP evaluator — and both evaluators agree
        let mut ab = twx_xtree::Alphabet::from_names(["a", "b"]);
        let reg = twx_regxpath::parse_rpath("down/down*[a]/right", &mut ab).unwrap();
        let core = lower_rpath(&reg).unwrap();
        for t in enumerate_trees_up_to(5, 2) {
            assert_eq!(
                twx_regxpath::eval_rel(&t, &reg),
                twx_corexpath::eval_path_rel(&t, &core),
            );
        }
    }
}

//! Regular XPath(W) → nested tree walking automata (Thompson direction).
//!
//! A path expression is a regular expression over tree moves, so the
//! classical Thompson construction yields a walking automaton with O(|A|)
//! states. The nesting arises exactly where the paper says it does: XPath
//! *tests* become **nested invocations** —
//!
//! * a filter/test `?φ` becomes a `Stay` transition guarded by the nested
//!   automaton of `φ` (global scope: `⟨·⟩`-guards may roam the tree);
//! * `¬φ` becomes a *negated* invocation;
//! * `W φ` becomes a **subtree-scoped** invocation — the paper's subtree
//!   test;
//!
//! so the nesting depth of the automaton equals the test-nesting depth of
//! the expression.

use twx_obs::{self as obs, Counter};
use twx_regxpath::ast::Axis;
use twx_regxpath::{RNode, RPath};
use twx_twa::machine::{Move, Ntwa, Scope, TestAtom, Transition, Twa};
use twx_twa::ops;

/// Translates an axis into the corresponding walking move.
fn axis_move(a: Axis) -> Move {
    match a {
        Axis::Down => Move::AnyChild,
        Axis::Up => Move::Up,
        Axis::Left => Move::PrevSib,
        Axis::Right => Move::NextSib,
    }
}

/// Builder state for the Thompson construction of one (sub-)automaton.
struct Builder {
    next_state: u32,
    transitions: Vec<Transition>,
    subs: Vec<Ntwa>,
}

impl Builder {
    fn fresh(&mut self) -> u32 {
        let q = self.next_state;
        self.next_state += 1;
        q
    }

    fn edge(&mut self, from: u32, guard: Vec<TestAtom>, mv: Move, to: u32) {
        self.transitions.push(Transition {
            from,
            guard,
            mv,
            to,
        });
    }

    fn nested(&mut self, sub: Ntwa, negated: bool, scope: Scope) -> TestAtom {
        // reuse an identical sub-automaton if present
        let idx = match self.subs.iter().position(|s| *s == sub) {
            Some(i) => i,
            None => {
                self.subs.push(sub);
                self.subs.len() - 1
            }
        };
        TestAtom::Nested {
            automaton: idx as u32,
            negated,
            scope,
        }
    }

    /// Thompson fragment for a path expression; returns (start, accept).
    fn go(&mut self, p: &RPath) -> (u32, u32) {
        match p {
            RPath::Axis(a) => {
                let s = self.fresh();
                let f = self.fresh();
                self.edge(s, vec![], axis_move(*a), f);
                (s, f)
            }
            RPath::Eps => {
                let s = self.fresh();
                let f = self.fresh();
                self.edge(s, vec![], Move::Stay, f);
                (s, f)
            }
            RPath::Test(phi) => {
                let s = self.fresh();
                let f = self.fresh();
                let guard = self.node_guard(phi);
                self.edge(s, guard, Move::Stay, f);
                (s, f)
            }
            RPath::Seq(a, b) => {
                let (sa, fa) = self.go(a);
                let (sb, fb) = self.go(b);
                self.edge(fa, vec![], Move::Stay, sb);
                (sa, fb)
            }
            RPath::Union(a, b) => {
                let s = self.fresh();
                let f = self.fresh();
                let (sa, fa) = self.go(a);
                let (sb, fb) = self.go(b);
                self.edge(s, vec![], Move::Stay, sa);
                self.edge(s, vec![], Move::Stay, sb);
                self.edge(fa, vec![], Move::Stay, f);
                self.edge(fb, vec![], Move::Stay, f);
                (s, f)
            }
            RPath::Star(a) => {
                let s = self.fresh();
                let f = self.fresh();
                let (sa, fa) = self.go(a);
                self.edge(s, vec![], Move::Stay, f);
                self.edge(s, vec![], Move::Stay, sa);
                self.edge(fa, vec![], Move::Stay, sa);
                self.edge(fa, vec![], Move::Stay, f);
                (s, f)
            }
            RPath::Filter(a, phi) => {
                let (sa, fa) = self.go(a);
                let f = self.fresh();
                let guard = self.node_guard(phi);
                self.edge(fa, guard, Move::Stay, f);
                (sa, f)
            }
        }
    }

    /// The guard (conjunction of atoms) implementing a node expression.
    ///
    /// Conjunctions stay within one guard; everything else becomes a
    /// nested invocation of the sub-automaton built by
    /// [`rnode_to_ntwa`].
    fn node_guard(&mut self, f: &RNode) -> Vec<TestAtom> {
        match f {
            RNode::True => vec![],
            RNode::Label(l) => vec![TestAtom::Label(*l)],
            RNode::And(g, h) => {
                let mut gg = self.node_guard(g);
                gg.extend(self.node_guard(h));
                gg
            }
            RNode::Not(g) => match &**g {
                RNode::Label(l) => vec![TestAtom::NotLabel(*l)],
                other => {
                    let sub = rnode_to_ntwa(other);
                    vec![self.nested(sub, true, Scope::Global)]
                }
            },
            RNode::Some(a) => {
                let sub = rpath_to_ntwa(a);
                vec![self.nested(sub, false, Scope::Global)]
            }
            RNode::Within(g) => {
                let sub = rnode_to_ntwa(g);
                vec![self.nested(sub, false, Scope::Subtree)]
            }
            RNode::Or(_, _) => {
                let sub = rnode_to_ntwa(f);
                vec![self.nested(sub, false, Scope::Global)]
            }
        }
    }
}

/// Compiles a path expression into a nested tree walking automaton whose
/// relation equals `[[path]]`.
///
/// ```
/// use twx_core::rpath_to_ntwa;
/// use twx_regxpath::parser::parse_rpath;
/// use twx_xtree::{parse::parse_sexp, Alphabet};
///
/// let mut ab = Alphabet::from_names(["a", "b"]);
/// let p = parse_rpath("(down[a])*", &mut ab).unwrap();
/// let auto = rpath_to_ntwa(&p);
/// let doc = parse_sexp("(a (a b))").unwrap();
/// assert_eq!(
///     twx_twa::eval_rel(&doc.tree, &auto),
///     twx_regxpath::eval_rel(&doc.tree, &p),
/// );
/// ```
pub fn rpath_to_ntwa(p: &RPath) -> Ntwa {
    let mut b = Builder {
        next_state: 0,
        transitions: Vec::new(),
        subs: Vec::new(),
    };
    let (s, f) = b.go(p);
    // Each (recursive) call accounts for its own top-level layer, so the
    // sums over a whole compilation equal total_states() / subtest count
    // of the final artifact without double counting.
    obs::add(Counter::CompiledNtwaStates, b.next_state as u64);
    obs::add(Counter::CompiledNtwaSubtests, b.subs.len() as u64);
    Ntwa {
        top: Twa {
            n_states: b.next_state,
            initial: s,
            accepting: vec![f],
            transitions: b.transitions,
        },
        subs: b.subs,
    }
}

/// Compiles a node expression into an NTWA whose *acceptance set*
/// (`accepts_from`) equals `[[φ]]` — the automaton one invokes as a nested
/// test.
pub fn rnode_to_ntwa(f: &RNode) -> Ntwa {
    match f {
        // ⟨A⟩ is the domain of A: the path automaton itself works
        RNode::Some(a) => rpath_to_ntwa(a),
        // φ ∨ ψ: union of test automata
        RNode::Or(g, h) => {
            let ga = rnode_to_ntwa(g);
            let ha = rnode_to_ntwa(h);
            let u = ops::union(&ga, &ha);
            // count only the glue the union adds; operands counted themselves
            obs::add(
                Counter::CompiledNtwaStates,
                u.total_states()
                    .saturating_sub(ga.total_states() + ha.total_states()) as u64,
            );
            u
        }
        // everything else: a single Stay transition guarded appropriately
        other => {
            let mut b = Builder {
                next_state: 0,
                transitions: Vec::new(),
                subs: Vec::new(),
            };
            let s = b.fresh();
            let f2 = b.fresh();
            let guard = b.node_guard(other);
            b.edge(s, guard, Move::Stay, f2);
            obs::add(Counter::CompiledNtwaStates, b.next_state as u64);
            obs::add(Counter::CompiledNtwaSubtests, b.subs.len() as u64);
            Ntwa {
                top: Twa {
                    n_states: b.next_state,
                    initial: s,
                    accepting: vec![f2],
                    transitions: b.transitions,
                },
                subs: b.subs,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_regxpath::generate::{random_rnode, random_rpath, RGenConfig};
    use twx_twa::eval::{accepts_from, eval_rel};
    use twx_xtree::generate::{enumerate_trees_up_to, random_tree, Shape};
    use twx_xtree::rng::SplitMix64 as StdRng;

    /// Theorem (Regular XPath(W) ⊆ NTWA), machine-checked: the compiled
    /// automaton computes the same relation on every bounded-domain tree.
    #[test]
    fn compilation_preserves_relations() {
        let trees = enumerate_trees_up_to(4, 2);
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = RGenConfig::default();
        for _ in 0..25 {
            let p = random_rpath(&cfg, 3, &mut rng);
            let a = rpath_to_ntwa(&p);
            a.validate().expect("compiled automaton invalid");
            for t in &trees {
                assert_eq!(
                    twx_regxpath::eval_rel(t, &p),
                    eval_rel(t, &a),
                    "relation mismatch for {p:?} on {t:?}"
                );
            }
        }
    }

    #[test]
    fn node_compilation_preserves_sets() {
        let trees = enumerate_trees_up_to(4, 2);
        let mut rng = StdRng::seed_from_u64(43);
        let cfg = RGenConfig::default();
        for _ in 0..25 {
            let f = random_rnode(&cfg, 3, &mut rng);
            let a = rnode_to_ntwa(&f);
            a.validate().expect("compiled automaton invalid");
            for t in &trees {
                assert_eq!(
                    twx_regxpath::eval_node(t, &f),
                    accepts_from(t, &a),
                    "set mismatch for {f:?} on {t:?}"
                );
            }
        }
    }

    /// Deeper random trees hit the subtree-scoped (W) invocations harder.
    #[test]
    fn within_compiles_to_subtree_scope() {
        let mut rng = StdRng::seed_from_u64(44);
        let cfg = RGenConfig::default();
        for round in 0..15 {
            let f = random_rnode(&cfg, 3, &mut rng).within();
            let a = rnode_to_ntwa(&f);
            let t = random_tree(Shape::Recursive, 2 + round % 8, 2, &mut rng);
            assert_eq!(
                twx_regxpath::eval_node(&t, &f),
                accepts_from(&t, &a),
                "within mismatch for {f:?} on {t:?}"
            );
        }
    }

    /// Blow-up bound: states are linear in expression size, nesting depth
    /// bounded by test-nesting depth.
    #[test]
    fn size_bounds() {
        let mut rng = StdRng::seed_from_u64(45);
        let cfg = RGenConfig::default();
        for _ in 0..50 {
            let p = random_rpath(&cfg, 5, &mut rng);
            let a = rpath_to_ntwa(&p);
            assert!(
                a.total_states() <= 2 * p.size(),
                "{} states for size-{} expression {p:?}",
                a.total_states(),
                p.size()
            );
        }
    }
}

//! FO(MTC) → Regular XPath(W): the constructive **guarded fragment**.
//!
//! The paper's hard direction (all of FO(MTC) into nested TWA / Regular
//! XPath(W)) hinges on closing NTWA under complementation — a
//! super-exponential construction that is not implementable at useful
//! scale. As documented in `DESIGN.md`, this reproduction implements the
//! direction constructively on the *guarded* fragment, in which every
//! conjunction is of the form `binary(x,y) ∧ unary(x or y)` and every
//! quantifier chain decomposes into a path:
//!
//! * binary atoms translate to axes (`child(x,y) → down`, inverted
//!   arguments to the converse axis, `x = y → ε`);
//! * `[TC_{u,v} φ](x, y)` translates to `tr(φ)*`;
//! * `∃z. φ(x,z) ∧ ψ(z,y)` translates to composition;
//! * unary subformulas (including full boolean structure and `∃y φ(x,y)`)
//!   translate to node expressions — *negation is unrestricted* on the
//!   unary level, where Regular XPath is closed under complement;
//! * a unary conjunct guards a filter/test.
//!
//! Formulas outside the fragment are rejected with
//! [`NotGuarded`]; the full-logic equivalence is validated empirically
//! by [`crate::diff`] on bounded domains.

use twx_fotc::ast::{Formula, Var};
use twx_regxpath::ast::Axis;
use twx_regxpath::{RNode, RPath};

/// Error: the formula is outside the implemented guarded fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotGuarded(pub String);

impl std::fmt::Display for NotGuarded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "formula outside the guarded fragment: {}", self.0)
    }
}

impl std::error::Error for NotGuarded {}

fn reject<T>(why: impl Into<String>) -> Result<T, NotGuarded> {
    Err(NotGuarded(why.into()))
}

/// Translates `φ(x, y)` (free variables exactly `{x, y}`, or a subset)
/// into a path expression `P` with `[[P]] = {(a,b) | φ(a,b)}`.
pub fn binary_to_rpath(phi: &Formula, x: Var, y: Var) -> Result<RPath, NotGuarded> {
    // purely unary in x (y unconstrained): ?(ψ) then reach anywhere
    let fv = phi.free_vars();
    if !fv.iter().all(|v| *v == x || *v == y) {
        return reject(format!("free variables {fv:?} not among ({x}, {y})"));
    }
    match phi {
        Formula::Child(a, b) if *a == x && *b == y => Ok(RPath::Axis(Axis::Down)),
        Formula::Child(a, b) if *a == y && *b == x => Ok(RPath::Axis(Axis::Up)),
        Formula::NextSib(a, b) if *a == x && *b == y => Ok(RPath::Axis(Axis::Right)),
        Formula::NextSib(a, b) if *a == y && *b == x => Ok(RPath::Axis(Axis::Left)),
        Formula::Eq(a, b) if (*a == x && *b == y) || (*a == y && *b == x) => Ok(RPath::Eps),
        Formula::Eq(a, b) if a == b && (*a == x || *a == y) => {
            // x=x: total on that variable, unconstrained on the other
            Ok(anywhere())
        }
        Formula::Or(f, g) => Ok(binary_to_rpath(f, x, y)?.union(binary_to_rpath(g, x, y)?)),
        Formula::And(f, g) => {
            // guarded conjunction: one side must be unary
            let fv_f = f.free_vars();
            let fv_g = g.free_vars();
            let unary_f = fv_f.len() <= 1;
            let unary_g = fv_g.len() <= 1;
            if unary_f {
                let on = fv_f.first().copied().unwrap_or(x);
                let guard = unary_to_rnode(f, on)?;
                let rest = binary_to_rpath(g, x, y)?;
                return Ok(if on == x {
                    RPath::test(guard).seq(rest)
                } else {
                    rest.filter(guard)
                });
            }
            if unary_g {
                let on = fv_g.first().copied().unwrap_or(y);
                let guard = unary_to_rnode(g, on)?;
                let rest = binary_to_rpath(f, x, y)?;
                return Ok(if on == x {
                    RPath::test(guard).seq(rest)
                } else {
                    rest.filter(guard)
                });
            }
            reject("conjunction of two genuinely binary formulas (needs intersection)")
        }
        Formula::Exists(z, f) => {
            // path composition: f must split as f1(x,z) ∧ f2(z,y)
            let (f1, f2) = split_composition(f, x, *z, y)?;
            let p1 = binary_to_rpath(&f1, x, *z)?;
            let p2 = binary_to_rpath(&f2, *z, y)?;
            Ok(p1.seq(p2))
        }
        Formula::Tc {
            x: u,
            y: v,
            phi: step,
            from,
            to,
        } if *from == x && *to == y => {
            let inner = binary_to_rpath(step, *u, *v)?;
            Ok(inner.star())
        }
        _ => {
            // maybe it is really unary (in x or in y)
            if fv.len() <= 1 {
                let on = fv.first().copied().unwrap_or(x);
                let guard = unary_to_rnode(phi, on)?;
                return Ok(if on == x {
                    RPath::test(guard).seq(anywhere())
                } else {
                    anywhere().filter(guard)
                });
            }
            reject(format!("unsupported binary shape: {phi:?}"))
        }
    }
}

/// `(↑ ∪ ↓ ∪ ← ∪ →)*` — the total relation (trees are connected).
fn anywhere() -> RPath {
    RPath::Axis(Axis::Up)
        .union(RPath::Axis(Axis::Down))
        .union(RPath::Axis(Axis::Left))
        .union(RPath::Axis(Axis::Right))
        .star()
}

/// Splits `f` into conjuncts over `{x,z}` and `{z,y}` for composition
/// under `∃z`.
fn split_composition(
    f: &Formula,
    x: Var,
    z: Var,
    y: Var,
) -> Result<(Formula, Formula), NotGuarded> {
    let mut left: Option<Formula> = None;
    let mut right: Option<Formula> = None;
    let mut stack = vec![f.clone()];
    let mut conjuncts = Vec::new();
    while let Some(g) = stack.pop() {
        if let Formula::And(a, b) = g {
            stack.push(*a);
            stack.push(*b);
        } else {
            conjuncts.push(g);
        }
    }
    for c in conjuncts {
        let fv = c.free_vars();
        let mentions_y = fv.contains(&y) && y != z && y != x;
        let target = if mentions_y { &mut right } else { &mut left };
        *target = Some(match target.take() {
            Some(old) => old.and(c),
            None => c,
        });
    }
    let l = left.unwrap_or(Formula::Eq(x, x));
    let r = right.unwrap_or(Formula::Eq(z, z));
    Ok((l, r))
}

/// Translates `ψ(x)` (at most one free variable) into a node expression.
pub fn unary_to_rnode(psi: &Formula, x: Var) -> Result<RNode, NotGuarded> {
    let fv = psi.free_vars();
    if !fv.iter().all(|v| *v == x) {
        return reject(format!("unary translation with extra free vars {fv:?}"));
    }
    match psi {
        Formula::Label(l, _) => Ok(RNode::Label(*l)),
        Formula::Eq(_, _) => Ok(RNode::True), // only x=x possible here
        Formula::Not(g) => Ok(unary_to_rnode(g, x)?.not()),
        Formula::And(g, h) => Ok(unary_to_rnode(g, x)?.and(unary_to_rnode(h, x)?)),
        Formula::Or(g, h) => Ok(unary_to_rnode(g, x)?.or(unary_to_rnode(h, x)?)),
        Formula::Exists(z, g) => {
            // ∃z. g(x, z) — a reachability guard
            let p = binary_to_rpath(g, x, *z)?;
            Ok(RNode::some(p))
        }
        Formula::Forall(z, g) => {
            // ∀z. g = ¬∃z. ¬g
            let p = binary_to_rpath(&g.clone().not(), x, *z)?;
            Ok(RNode::some(p).not())
        }
        Formula::Tc { .. } | Formula::Child(..) | Formula::NextSib(..) => {
            // binary atoms with a repeated variable, e.g. child(x,x): false
            match psi {
                Formula::Child(a, b) | Formula::NextSib(a, b) if a == b => Ok(RNode::fals()),
                Formula::Tc { from, to, .. } if from == to => Ok(RNode::True),
                _ => reject(format!("unsupported unary shape: {psi:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_fotc::{rnode_to_formula, rpath_to_formula};
    use twx_fotc::eval::{eval_binary, eval_unary};
    use twx_regxpath::generate::{random_rpath, RGenConfig};
    use twx_xtree::generate::enumerate_trees_up_to;
    use twx_xtree::rng::SplitMix64 as StdRng;

    #[test]
    fn atoms_translate() {
        assert_eq!(
            binary_to_rpath(&Formula::Child(0, 1), 0, 1).unwrap(),
            RPath::Axis(Axis::Down)
        );
        assert_eq!(
            binary_to_rpath(&Formula::Child(1, 0), 0, 1).unwrap(),
            RPath::Axis(Axis::Up)
        );
        assert_eq!(
            binary_to_rpath(&Formula::Eq(0, 1), 0, 1).unwrap(),
            RPath::Eps
        );
    }

    #[test]
    fn tc_translates_to_star() {
        let desc = Formula::descendant_or_self(0, 1, 8, 9);
        let p = binary_to_rpath(&desc, 0, 1).unwrap();
        assert_eq!(p, RPath::Axis(Axis::Down).star());
    }

    #[test]
    fn guarded_composition() {
        // ∃z. child(x,z) ∧ P_a(z) ∧ child(z,y): a-labelled middle node
        let f = Formula::Child(0, 2)
            .and(Formula::Label(twx_xtree::Label(0), 2))
            .and(Formula::Child(2, 1))
            .exists(2);
        let p = binary_to_rpath(&f, 0, 1).unwrap();
        // verify semantically on bounded domain
        let trees = enumerate_trees_up_to(4, 2);
        for t in &trees {
            assert_eq!(
                twx_regxpath::eval_rel(t, &p),
                eval_binary(t, &f, 0, 1),
                "{t:?}"
            );
        }
    }

    #[test]
    fn rejects_unguarded() {
        // child(x,y) ∧ nextsib(x,y): genuine intersection of binary atoms
        let f = Formula::Child(0, 1).and(Formula::NextSib(0, 1));
        assert!(binary_to_rpath(&f, 0, 1).is_err());
        // negation of a binary formula
        let f = Formula::Child(0, 1).not();
        assert!(binary_to_rpath(&f, 0, 1).is_err());
    }

    #[test]
    fn unary_with_quantifiers() {
        // leaf(x) = ¬∃z child(x,z)
        let f = Formula::leaf(0, 1);
        let g = unary_to_rnode(&f, 0).unwrap();
        let trees = enumerate_trees_up_to(4, 2);
        for t in &trees {
            assert_eq!(twx_regxpath::eval_node(t, &g), eval_unary(t, &f, 0));
        }
    }

    /// Round trip: Regular XPath → FO(MTC) → Regular XPath (when the image
    /// lands in the guarded fragment, which it does by construction for
    /// `W`-free expressions) preserves semantics.
    #[test]
    fn roundtrip_from_xpath_side() {
        let trees = enumerate_trees_up_to(4, 2);
        let mut rng = StdRng::seed_from_u64(90);
        let cfg = RGenConfig {
            within: false,
            ..RGenConfig::default()
        };
        let mut translated = 0;
        for _ in 0..40 {
            let p = random_rpath(&cfg, 3, &mut rng);
            let f = rpath_to_formula(&p, 0, 1, 2);
            let Ok(back) = binary_to_rpath(&f, 0, 1) else {
                continue; // some images use unsupported shapes; fine
            };
            translated += 1;
            for t in &trees {
                assert_eq!(
                    twx_regxpath::eval_rel(t, &p),
                    twx_regxpath::eval_rel(t, &back),
                    "roundtrip broke {p:?} → {back:?}"
                );
            }
        }
        assert!(
            translated >= 20,
            "only {translated} round trips landed in the fragment"
        );
    }

    #[test]
    fn node_roundtrip() {
        let trees = enumerate_trees_up_to(4, 2);
        let mut rng = StdRng::seed_from_u64(91);
        let cfg = RGenConfig {
            within: false,
            ..RGenConfig::default()
        };
        let mut translated = 0;
        for _ in 0..40 {
            let f = twx_regxpath::generate::random_rnode(&cfg, 3, &mut rng);
            let formula = rnode_to_formula(&f, 0, 1);
            let Ok(back) = unary_to_rnode(&formula, 0) else {
                continue;
            };
            translated += 1;
            for t in &trees {
                assert_eq!(
                    twx_regxpath::eval_node(t, &f),
                    twx_regxpath::eval_node(t, &back),
                    "node roundtrip broke {f:?} → {back:?}"
                );
            }
        }
        assert!(
            translated >= 15,
            "only {translated} node round trips landed"
        );
    }
}

//! Seeded property suite: the compiled program's register algebra is
//! exactly the `NodeSet` semantics.
//!
//! 500 cases, each drawing a random Regular XPath(W) path *and* node
//! expression, a random tree, and a random context set, then checking
//! the VM against the naive `n × n` relational oracle
//! (`eval_rel_naive` / `eval_node_naive`):
//!
//! * every in-place register operation the compiler can emit — union,
//!   intersect, complement, difference, filter joins, and the star
//!   closure's frontier fixpoint — is exercised by the generator's
//!   grammar (unions, filters, stars, negated tests, `W`);
//! * context sets are drawn **sparse** (singletons and a few scattered
//!   bits) and **dense** (full universes and full-minus-a-few), so both
//!   the early-exit and saturated paths of the word loops run;
//! * document sizes deliberately straddle the `u64` word boundary:
//!   1-node trees, and 63/64/65-node trees where an off-by-one in the
//!   last-word mask or the popcount fast path would surface.

use twx_regxpath::eval_naive::{eval_node_naive, eval_rel_naive};
use twx_regxpath::generate::{random_rnode, random_rpath, RGenConfig};
use twx_vm::{compile_node, compile_path, eval_image, eval_node_set};
use twx_xtree::generate::{random_tree, Shape};
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::{NodeId, NodeSet, Tree};

/// Word-boundary sizes every run must cover, cycled through the cases
/// alongside random sizes: the 1-node tree (no room for any step) and
/// the 63/64/65 straddle of a single `u64` register word.
const BOUNDARY_SIZES: [usize; 4] = [1, 63, 64, 65];

const CASES: usize = 500;

fn random_ctx(t: &Tree, rng: &mut SplitMix64) -> NodeSet {
    let n = t.len();
    match rng.gen_range(0..4u32) {
        // sparse: a singleton
        0 => NodeSet::singleton(n, NodeId(rng.gen_range(0..n) as u32)),
        // sparse: a few scattered bits
        1 => {
            let mut s = NodeSet::empty(n);
            for _ in 0..rng.gen_range(1..4usize) {
                s.insert(NodeId(rng.gen_range(0..n) as u32));
            }
            s
        }
        // dense: the full universe
        2 => NodeSet::full(n),
        // dense: full minus a few bits
        _ => {
            let mut s = NodeSet::full(n);
            for _ in 0..rng.gen_range(1..4usize) {
                s.remove(NodeId(rng.gen_range(0..n) as u32));
            }
            s
        }
    }
}

#[test]
fn vm_register_algebra_matches_nodeset_semantics() {
    let cfg = RGenConfig::default();
    let mut rng = SplitMix64::seed_from_u64(0x5e9a1);
    let shapes = [
        Shape::Recursive,
        Shape::Deep(2),
        Shape::Wide,
        Shape::DocumentLike,
    ];

    for case in 0..CASES {
        // every 4th case pins a word-boundary size; the rest draw freely
        let n = if case % 4 == 0 {
            BOUNDARY_SIZES[(case / 4) % BOUNDARY_SIZES.len()]
        } else {
            rng.gen_range(1..40usize)
        };
        let shape = shapes[rng.gen_range(0..shapes.len())];
        let t = random_tree(shape, n, cfg.labels, &mut rng);
        let depth = rng.gen_range(1..4usize);

        // path programs: image through the VM vs the relational oracle
        let p = random_rpath(&cfg, depth, &mut rng);
        let ctx = random_ctx(&t, &mut rng);
        let vm = eval_image(&t, &compile_path(&p), &ctx);
        let oracle = eval_rel_naive(&t, &p).image(&ctx);
        assert_eq!(
            vm,
            oracle,
            "case {case}: path {p:?} on {} nodes, ctx {:?}",
            t.len(),
            ctx.to_vec()
        );

        // node programs: truth set through the VM vs the naive evaluator
        let phi = random_rnode(&cfg, depth, &mut rng);
        let vm = eval_node_set(&t, &compile_node(&phi));
        let oracle = eval_node_naive(&t, &phi);
        assert_eq!(
            vm,
            oracle,
            "case {case}: node expr {phi:?} on {} nodes",
            t.len()
        );
    }
}

/// The boundary sizes are genuinely exercised (the modular schedule
/// above covers each at least `CASES / 16` times).
#[test]
fn boundary_schedule_covers_every_size() {
    for size in BOUNDARY_SIZES {
        let hits = (0..CASES)
            .filter(|c| c % 4 == 0 && BOUNDARY_SIZES[(c / 4) % BOUNDARY_SIZES.len()] == size)
            .count();
        assert!(
            hits >= CASES / 16,
            "size {size} scheduled only {hits} times"
        );
    }
}

//! Interpreter: straight-line dispatch over arena-recycled set registers.
//!
//! A register file is a `Vec<NodeSet>` borrowed from a thread-local
//! `Arena` and returned when evaluation finishes. [`twx_xtree::NodeSet::reset`]
//! keeps the word buffers, so a hot `eval_cached` loop touches the
//! allocator only when a document is larger than anything the thread has
//! evaluated before.
//!
//! Dispatch counters are accumulated in a local `Stats` and flushed to
//! the thread-local obs slots once per top-level evaluation, keeping the
//! inner loop free of instrumentation cost (the overhead gate in ci.sh
//! measures exactly this).

use crate::{Instr, Program, Reg};
use twx_obs::{self as obs, Counter};
use twx_regxpath::ast::Axis;
use twx_xtree::{NodeSet, Tree};

/// A pool of recycled `NodeSet` registers.
#[derive(Default)]
pub struct Arena {
    pool: Vec<NodeSet>,
}

impl Arena {
    pub fn new() -> Arena {
        Arena::default()
    }

    /// Number of pooled registers (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    fn file(&mut self, n_regs: usize, universe: usize, stats: &mut Stats) -> Vec<NodeSet> {
        let mut file = Vec::with_capacity(n_regs);
        for _ in 0..n_regs {
            let mut s = self.pool.pop().unwrap_or_else(|| {
                stats.arena_allocs += 1;
                NodeSet::empty(0)
            });
            s.reset(universe);
            file.push(s);
        }
        file
    }

    fn put_back(&mut self, file: Vec<NodeSet>) {
        self.pool.extend(file);
    }
}

thread_local! {
    static ARENA: std::cell::RefCell<Arena> = std::cell::RefCell::new(Arena::new());
}

#[derive(Default)]
struct Stats {
    instrs: u64,
    closure_iters: u64,
    arena_allocs: u64,
}

impl Stats {
    fn flush(&self) {
        obs::add(Counter::VmInstructions, self.instrs);
        obs::add(Counter::VmClosureIters, self.closure_iters);
        obs::add(Counter::VmArenaAllocs, self.arena_allocs);
    }
}

/// Runs a path program: the image of `ctx` under the compiled expression.
pub fn eval_image(t: &Tree, prog: &Program, ctx: &NodeSet) -> NodeSet {
    assert_eq!(ctx.universe(), t.len(), "context set universe mismatch");
    let mut stats = Stats::default();
    let out = ARENA.with(|a| run(prog, t, Some(ctx), &mut a.borrow_mut(), &mut stats));
    stats.flush();
    out
}

/// Runs a node-expression program: the set of nodes where `φ` holds.
pub fn eval_node_set(t: &Tree, prog: &Program) -> NodeSet {
    let mut stats = Stats::default();
    let out = ARENA.with(|a| run(prog, t, None, &mut a.borrow_mut(), &mut stats));
    stats.flush();
    out
}

fn run(
    prog: &Program,
    t: &Tree,
    ctx: Option<&NodeSet>,
    arena: &mut Arena,
    stats: &mut Stats,
) -> NodeSet {
    let mut regs = arena.file(prog.n_regs as usize, t.len(), stats);
    exec_block(prog, 0, t, ctx, &mut regs, arena, stats);
    let out = std::mem::replace(&mut regs[prog.out as usize], NodeSet::empty(0));
    arena.put_back(regs);
    out
}

fn exec_block(
    prog: &Program,
    block: usize,
    t: &Tree,
    ctx: Option<&NodeSet>,
    regs: &mut [NodeSet],
    arena: &mut Arena,
    stats: &mut Stats,
) {
    let n = t.len();
    for instr in &prog.blocks[block] {
        stats.instrs += 1;
        match *instr {
            Instr::LoadEmpty { dst } => regs[dst as usize].reset(n),
            Instr::LoadFull { dst } => {
                let d = &mut regs[dst as usize];
                d.reset(n);
                d.set_full();
            }
            Instr::LoadLabel { dst, label } => {
                let d = &mut regs[dst as usize];
                d.reset(n);
                for v in t.nodes() {
                    if t.label(v) == label {
                        d.insert(v);
                    }
                }
            }
            Instr::LoadCtx { dst } => {
                let c = ctx.expect("vm: LoadCtx in a context-free (nested) program");
                regs[dst as usize].copy_from(c);
            }
            Instr::Copy { dst, src } => {
                let (d, s) = pair_mut(regs, dst, src);
                d.copy_from(s);
            }
            Instr::Union { dst, src } => {
                let (d, s) = pair_mut(regs, dst, src);
                d.union_with(s);
            }
            Instr::Intersect { dst, src } => {
                let (d, s) = pair_mut(regs, dst, src);
                d.intersect_with(s);
            }
            Instr::Difference { dst, src } => {
                let (d, s) = pair_mut(regs, dst, src);
                d.difference_with(s);
            }
            Instr::Complement { dst } => regs[dst as usize].complement(),
            Instr::AxisImage { dst, src, axis } => {
                let (d, s) = pair_mut(regs, dst, src);
                axis_image(t, axis, s, d);
            }
            Instr::FilterJoin { dst, test } => {
                let (d, s) = pair_mut(regs, dst, test);
                d.intersect_with(s);
            }
            Instr::Star {
                dst,
                src,
                frontier,
                step,
                body,
            } => {
                {
                    let (d, s) = pair_mut(regs, dst, src);
                    d.copy_from(s);
                }
                {
                    let (f, s) = pair_mut(regs, frontier, src);
                    f.copy_from(s);
                }
                while !regs[frontier as usize].is_empty() {
                    stats.closure_iters += 1;
                    exec_block(prog, body as usize, t, ctx, regs, arena, stats);
                    // fold the newly reached nodes into the accumulator;
                    // the difference doubles as the fixpoint test
                    {
                        let (s, d) = pair_mut(regs, step, dst);
                        s.difference_with(d);
                    }
                    if regs[step as usize].is_empty() {
                        break;
                    }
                    {
                        let (d, s) = pair_mut(regs, dst, step);
                        d.union_with(s);
                    }
                    regs.swap(frontier as usize, step as usize);
                }
            }
            Instr::Within { dst, sub } => {
                let nested = &prog.subs[sub as usize];
                let d = &mut regs[dst as usize];
                d.reset(n);
                for v in t.nodes() {
                    obs::incr(Counter::SubtreeExtractions);
                    let subtree = t.subtree(v);
                    let set = run(nested, &subtree, None, arena, stats);
                    if set.contains(subtree.root()) {
                        d.insert(v);
                    }
                    arena.put_back(vec![set]);
                }
            }
        }
    }
}

/// `dst ← { u : ∃ v ∈ src, v -axis→ u }`, overwriting `dst`.
fn axis_image(t: &Tree, axis: Axis, src: &NodeSet, dst: &mut NodeSet) {
    dst.reset(t.len());
    match axis {
        Axis::Down => {
            for v in src.iter() {
                let mut c = t.first_child(v);
                while let Some(u) = c {
                    dst.insert(u);
                    c = t.next_sibling(u);
                }
            }
        }
        Axis::Up => {
            for v in src.iter() {
                if let Some(p) = t.parent(v) {
                    dst.insert(p);
                }
            }
        }
        Axis::Left => {
            for v in src.iter() {
                if let Some(p) = t.prev_sibling(v) {
                    dst.insert(p);
                }
            }
        }
        Axis::Right => {
            for v in src.iter() {
                if let Some(s) = t.next_sibling(v) {
                    dst.insert(s);
                }
            }
        }
    }
}

/// Disjoint mutable/shared access to two registers of the file.
fn pair_mut(regs: &mut [NodeSet], a: Reg, b: Reg) -> (&mut NodeSet, &NodeSet) {
    let (a, b) = (a as usize, b as usize);
    debug_assert_ne!(a, b, "vm: aliased register operands");
    if a < b {
        let (lo, hi) = regs.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = regs.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_node, compile_path};
    use twx_regxpath::parser::{parse_rnode, parse_rpath};
    use twx_regxpath::{eval_image as product_image, eval_node};
    use twx_xtree::parse::parse_sexp;
    use twx_xtree::NodeId;

    #[test]
    fn vm_agrees_with_product_on_basics() {
        let doc = parse_sexp("(a (b d e) (c f))").unwrap();
        let t = &doc.tree;
        let mut ab = doc.alphabet.clone();
        for q in [
            "down",
            "down*",
            "down/right",
            "(up | down)*",
            "down*[b]",
            "down[<down>]*",
            "(down[b] | down/down)*",
        ] {
            let p = parse_rpath(q, &mut ab).unwrap();
            let prog = compile_path(&p);
            for v in t.nodes() {
                let ctx = NodeSet::singleton(t.len(), v);
                assert_eq!(
                    eval_image(t, &prog, &ctx),
                    product_image(t, &p, &ctx),
                    "query {q} from {v:?}"
                );
            }
        }
    }

    #[test]
    fn vm_node_programs_agree() {
        let doc = parse_sexp("(a (b d e) (c f))").unwrap();
        let t = &doc.tree;
        let mut ab = doc.alphabet.clone();
        for q in [
            "b",
            "<down*[d]>",
            "!<up>",
            "W(<up>)",
            "<down> and !<down/down>",
        ] {
            let f = parse_rnode(q, &mut ab).unwrap();
            let prog = compile_node(&f);
            assert_eq!(eval_node_set(t, &prog), eval_node(t, &f), "node expr {q}");
        }
    }

    #[test]
    fn arena_reuses_registers_across_evals() {
        let doc = parse_sexp("(a (b d e) (c f))").unwrap();
        let t = &doc.tree;
        let prog = compile_path(&parse_rpath("down*", &mut doc.alphabet.clone()).unwrap());
        let ctx = NodeSet::singleton(t.len(), NodeId(0));
        let _warm = eval_image(t, &prog, &ctx);
        let pooled = ARENA.with(|a| a.borrow().pooled());
        for _ in 0..10 {
            let _ = eval_image(t, &prog, &ctx);
        }
        // steady state: the pool neither grows nor shrinks across evals
        assert_eq!(ARENA.with(|a| a.borrow().pooled()), pooled);
    }
}
